"""Perf-regression smoke: fast enough for every CI run (<60 s total).

Two guards for future PRs, cheap enough to never be skipped:

* **cycle-exactness** — the golden cycle counts committed in
  ``BENCH_simspeed.json`` must keep reproducing bit-for-bit; a kernel or
  NoC "optimization" that drifts the architecture's timing fails here
  rather than silently shifting every figure;
* **gross throughput** — each workload must finish within a generous
  wall-time ceiling (~10x slower than the committed numbers on a slow
  host), so an accidental O(n) regression in a per-cycle loop is caught
  without making CI flaky on absolute cycles/sec.

Needs no pytest plugins: plain ``pytest benchmarks/bench_smoke.py``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.apps.jacobi.driver import JacobiParams, run_jacobi
from repro.system.config import SystemConfig

BENCH_FILE = Path(__file__).parent.parent / "BENCH_simspeed.json"

#: (config, params, wall-time ceiling in seconds) per committed workload.
SMOKE_WORKLOADS = {
    "reference_8w16kb_n30": (
        SystemConfig(n_workers=8, cache_size_kb=16),
        JacobiParams(n=30, iterations=3, warmup=1),
        20.0,
    ),
    "small_2w4kb_n16": (
        SystemConfig(n_workers=2, cache_size_kb=4),
        JacobiParams(n=16, iterations=3, warmup=1),
        10.0,
    ),
    "saturated_mpmmu_8w16kb_wt_n16": (
        SystemConfig(n_workers=8, cache_size_kb=16, cache_policy="wt"),
        JacobiParams(n=16, iterations=2, warmup=0),
        20.0,
    ),
}


def golden() -> dict:
    return json.loads(BENCH_FILE.read_text())["workloads"]


@pytest.mark.parametrize("name", sorted(SMOKE_WORKLOADS))
def test_smoke_workload(name):
    config, params, ceiling = SMOKE_WORKLOADS[name]
    reference = golden()[name]
    started = time.perf_counter()
    result = run_jacobi(config, params)
    wall = time.perf_counter() - started

    assert result.validated, f"{name}: numerical validation failed"
    assert result.total_cycles == reference["total_cycles"], (
        f"{name}: total cycles drifted from the committed golden value "
        f"({result.total_cycles} != {reference['total_cycles']}); either a "
        f"timing bug or an intentional architecture change — if the latter, "
        f"regenerate BENCH_simspeed.json"
    )
    assert result.iteration_cycles == reference["iteration_cycles"], (
        f"{name}: per-iteration cycles drifted: {result.iteration_cycles}"
    )
    assert wall < ceiling, (
        f"{name}: took {wall:.1f}s (ceiling {ceiling}s) — a gross "
        f"throughput regression in the simulation hot path"
    )
    print(f"\n{name}: {result.total_cycles / wall:,.0f} cycles/sec "
          f"({wall:.2f}s)")
