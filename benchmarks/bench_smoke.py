"""Perf-regression smoke: fast enough for every CI run (<60 s total).

Two guards for future PRs, cheap enough to never be skipped:

* **cycle-exactness** — the golden cycle counts committed in
  ``BENCH_simspeed.json`` must keep reproducing bit-for-bit; a kernel or
  NoC "optimization" that drifts the architecture's timing fails here
  rather than silently shifting every figure;
* **gross throughput** — each workload must finish within a generous
  wall-time ceiling (~10x slower than the committed numbers on a slow
  host), so an accidental O(n) regression in a per-cycle loop is caught
  without making CI flaky on absolute cycles/sec.

The workload set covers both traffic shapes: the Jacobi kernels guard
the memory system (cache/bridge/MPMMU path) and the collective workload
guards the communication layer (TIE streams, request tokens, the
arbiter's message class), so a comm-layer timing regression is caught
exactly like a kernel one.

Needs no pytest plugins: plain ``pytest benchmarks/bench_smoke.py``.
"""

from __future__ import annotations

import json
import time
from functools import partial
from pathlib import Path

import pytest

from repro.apps.collective_bench import (
    CollectiveBenchParams,
    run_collective_bench,
)
from repro.apps.jacobi.driver import JacobiParams, run_jacobi
from repro.faults import FaultPlan
from repro.system.config import SystemConfig
from repro.telemetry.config import TelemetryConfig

BENCH_FILE = Path(__file__).parent.parent / "BENCH_simspeed.json"

#: (runner, wall-time ceiling in seconds) per committed workload.  Each
#: runner returns a result with ``validated``, ``total_cycles`` and —
#: where meaningful — ``iteration_cycles``/``op_cycles``, which are
#: checked against the golden file when committed there.
SMOKE_WORKLOADS = {
    "reference_8w16kb_n30": (
        partial(
            run_jacobi,
            SystemConfig(n_workers=8, cache_size_kb=16),
            JacobiParams(n=30, iterations=3, warmup=1),
        ),
        20.0,
    ),
    "small_2w4kb_n16": (
        partial(
            run_jacobi,
            SystemConfig(n_workers=2, cache_size_kb=4),
            JacobiParams(n=16, iterations=3, warmup=1),
        ),
        10.0,
    ),
    "saturated_mpmmu_8w16kb_wt_n16": (
        partial(
            run_jacobi,
            SystemConfig(n_workers=8, cache_size_kb=16, cache_policy="wt"),
            JacobiParams(n=16, iterations=2, warmup=0),
        ),
        20.0,
    ),
    "collective_allreduce_8w_tree": (
        partial(
            run_collective_bench,
            SystemConfig(n_workers=8, cache_size_kb=16),
            CollectiveBenchParams(
                collective="allreduce", model="empi", algorithm="tree",
                n_values=16, repeats=4,
            ),
        ),
        10.0,
    ),
    # The hardware collective engine: DMA TX queue + NoC multicast.  This
    # golden pins the offloaded path's timing (descriptor posting, fabric
    # replication, multicast streams and their credits) exactly like the
    # kernel goldens pin the memory system's.
    "multicast_bcast_8w": (
        partial(
            run_collective_bench,
            SystemConfig(n_workers=8, cache_size_kb=16,
                         dma_tx_queue_depth=4),
            CollectiveBenchParams(
                collective="bcast", model="empi", algorithm="hw",
                n_values=16, repeats=4,
            ),
        ),
        10.0,
    ),
    # Long-vector allreduce over the ring schedule on the engine path
    # (neighbour multicast descriptors + qreduce accumulate-on-receive):
    # pins the reduction assist's timing and the reduce-scatter/allgather
    # segment arithmetic, so long-vector comm timing is CI-guarded.
    "ring_allreduce_8w_long": (
        partial(
            run_collective_bench,
            SystemConfig(n_workers=8, cache_size_kb=16,
                         dma_tx_queue_depth=4),
            CollectiveBenchParams(
                collective="allreduce", model="empi", algorithm="ring",
                n_values=256, repeats=2,
            ),
        ),
        10.0,
    ),
    # The fault layer under fire: the tree-allreduce workload with 2%
    # seeded flit loss.  Pins the recovery protocol's timing (CRC drops,
    # NACK/retransmit rounds, credit probes) exactly like the fault-free
    # goldens pin the clean paths; the run is watchdog-guarded (the
    # injector arms a default no-progress watchdog), so a recovery
    # regression fails with a structured report instead of hanging CI.
    "lossy_allreduce_8w_tree": (
        partial(
            run_collective_bench,
            SystemConfig(n_workers=8, cache_size_kb=16,
                         faults=FaultPlan(seed=3, drop_rate=0.02)),
            CollectiveBenchParams(
                collective="allreduce", model="empi", algorithm="tree",
                n_values=16, repeats=4,
            ),
        ),
        10.0,
    ),
    # The hierarchical package: 4 compute chiplets of 2x2 around the IO
    # hub, serialized inter-chiplet links, and the hierarchical allreduce
    # schedule (intra-chiplet ring + gateway tree).  Pins the chiplet
    # topology's routing tables, the serializing-link fabric path and the
    # hierarchical collective's timing the way the grid goldens pin the
    # flat ones.
    "chiplet_allreduce_16w_hier": (
        partial(
            run_collective_bench,
            SystemConfig(n_workers=16, cache_size_kb=16,
                         topology_kind="chiplet", chiplets=4,
                         chiplet_grid=(2, 2), chiplet_link_latency=4,
                         chiplet_link_width=2),
            CollectiveBenchParams(
                collective="allreduce", model="empi", algorithm="hier",
                n_values=16, repeats=2,
            ),
        ),
        10.0,
    ),
    # The full observability stack armed: metric sampler, event tracer and
    # NoC spatial counters all recording.  Guards the *recording* cost
    # with the usual wall ceiling, and — because telemetry is bookkeeping
    # only — its cycle golden is identical to the untelemetered
    # collective_allreduce_8w_tree entry above.
    "telemetry_allreduce_8w_tree": (
        partial(
            run_collective_bench,
            SystemConfig(n_workers=8, cache_size_kb=16,
                         telemetry=TelemetryConfig(sample_interval=1024)),
            CollectiveBenchParams(
                collective="allreduce", model="empi", algorithm="tree",
                n_values=16, repeats=4,
            ),
        ),
        10.0,
    ),
}


def test_fault_layer_off_is_zero_overhead():
    """With ``faults=None`` (the default) the fault layer must cost
    exactly nothing: the same machine and workload as the lossy smoke
    above reproduces the committed fault-free golden bit for bit."""
    result = run_collective_bench(
        SystemConfig(n_workers=8, cache_size_kb=16, faults=None),
        CollectiveBenchParams(
            collective="allreduce", model="empi", algorithm="tree",
            n_values=16, repeats=4,
        ),
    )
    reference = golden()["collective_allreduce_8w_tree"]
    assert result.validated
    assert result.total_cycles == reference["total_cycles"]
    assert result.op_cycles == reference["op_cycles"]


def test_telemetry_layer_is_timing_neutral():
    """Telemetry must observe without perturbing: the fully instrumented
    workload (sampler + tracer + spatial counters) reproduces the
    *untelemetered* golden bit for bit, and with ``telemetry=None`` (the
    default) the layer's hot-path cost is a single attribute check."""
    result = run_collective_bench(
        SystemConfig(n_workers=8, cache_size_kb=16,
                     telemetry=TelemetryConfig(sample_interval=1024)),
        CollectiveBenchParams(
            collective="allreduce", model="empi", algorithm="tree",
            n_values=16, repeats=4,
        ),
    )
    reference = golden()["collective_allreduce_8w_tree"]
    assert result.validated
    assert result.total_cycles == reference["total_cycles"]
    assert result.op_cycles == reference["op_cycles"]
    summary = result.stats["telemetry"]
    assert summary["samples"] > 0
    assert summary["trace_events"] > 0


def test_attribution_is_timing_neutral():
    """Arming cycle attribution must not move a single cycle: the
    ``cp+``/``cph``/``cp-`` notes it adds are zero-cycle ops, so the
    instrumented workload reproduces the untelemetered golden bit for
    bit — while actually recording critical-path spans."""
    from repro.telemetry.attribution import critical_paths

    captured = {}
    result = run_collective_bench(
        SystemConfig(n_workers=8, cache_size_kb=16,
                     telemetry=TelemetryConfig(sample_interval=1024,
                                               attribution=True)),
        CollectiveBenchParams(
            collective="allreduce", model="empi", algorithm="tree",
            n_values=16, repeats=4,
        ),
        observer=lambda system: captured.setdefault("system", system),
    )
    reference = golden()["collective_allreduce_8w_tree"]
    assert result.validated
    assert result.total_cycles == reference["total_cycles"]
    assert result.op_cycles == reference["op_cycles"]
    paths = critical_paths(captured["system"].notes)
    assert len(paths) == 4  # one per repeat
    for path in paths:
        assert sum(edge["cycles"] for edge in path["edges"]) == path["latency"]


def golden() -> dict:
    return json.loads(BENCH_FILE.read_text())["workloads"]


@pytest.mark.parametrize("name", sorted(SMOKE_WORKLOADS))
def test_smoke_workload(name):
    runner, ceiling = SMOKE_WORKLOADS[name]
    reference = golden()[name]
    started = time.perf_counter()
    result = runner()
    wall = time.perf_counter() - started

    assert result.validated, f"{name}: numerical validation failed"
    assert result.total_cycles == reference["total_cycles"], (
        f"{name}: total cycles drifted from the committed golden value "
        f"({result.total_cycles} != {reference['total_cycles']}); either a "
        f"timing bug or an intentional architecture change — if the latter, "
        f"regenerate BENCH_simspeed.json"
    )
    if "iteration_cycles" in reference:
        assert result.iteration_cycles == reference["iteration_cycles"], (
            f"{name}: per-iteration cycles drifted: {result.iteration_cycles}"
        )
    if "op_cycles" in reference:
        assert result.op_cycles == reference["op_cycles"], (
            f"{name}: collective op cycles drifted: {result.op_cycles}"
        )
    assert wall < ceiling, (
        f"{name}: took {wall:.1f}s (ceiling {ceiling}s) — a gross "
        f"throughput regression in the simulation hot path"
    )
    print(f"\n{name}: {result.total_cycles / wall:,.0f} cycles/sec "
          f"({wall:.2f}s)")
