"""Figure 8: execution time for the 30x30 Jacobi, write-back caches."""

from __future__ import annotations

from repro.dse.experiments import experiment_fig8

from conftest import save_and_echo


def test_fig8_regeneration(benchmark, results_dir):
    report = benchmark.pedantic(
        lambda: experiment_fig8(cache_dir=results_dir),
        rounds=1, iterations=1,
    )
    save_and_echo(report, results_dir)
    series = report.series
    assert series
    # Paper: scalability is hampered when caches are too small — the
    # smallest cache's curve must sit at or above the largest cache's.
    smallest = min(series, key=lambda lab: int(lab.split("kB")[0]))
    largest = max(series, key=lambda lab: int(lab.split("kB")[0]))
    small_curve = dict(series[smallest])
    large_curve = dict(series[largest])
    for cores, cycles in small_curve.items():
        assert cycles >= large_curve[cores]
