"""Section III in-text comparison: hybrid vs sync-only vs pure shared memory.

Paper claims reproduced here:

* ``cmp-sm``: Medea (full message passing) beats pure shared memory by ~2x
  at 6 cores / 16 kB, growing past 5x at high core counts;
* ``cmp-sync``: the sync-only hybrid recovers 2x-2.8x over pure SM, i.e.
  synchronization alone accounts for >= 56% of the headline 5x win;
* full vs sync-only stay within 2-20% while the miss rate is relevant.
"""

from __future__ import annotations

from repro.dse.experiments import experiment_compare

from conftest import save_and_echo


def test_model_comparison(benchmark, results_dir):
    report = benchmark.pedantic(
        lambda: experiment_compare(cache_dir=results_dir),
        rounds=1, iterations=1,
    )
    save_and_echo(report, results_dir)
    sm_over_full = dict(report.series["sm_over_full"])
    sm_over_sync = dict(report.series["sm_over_sync"])
    sync_over_full = dict(report.series["sync_over_full"])

    cores = sorted(sm_over_full)
    low, high = cores[0], cores[-1]
    # The gap grows with core count, reaching ~2x by 6 cores.
    assert sm_over_full[high] > sm_over_full[low]
    assert sm_over_full[high] >= 2.0
    # Sync-only recovers a large share (paper band: 2x-2.8x at the top).
    assert sm_over_sync[high] >= 1.5
    # Full and sync-only stay close at low core counts (2-20% band).
    assert sync_over_full[low] <= 1.25

    # Synchronization share of the full win (paper: >= 56% at the top).
    share = (sm_over_sync[high] - 1.0) / max(sm_over_full[high] - 1.0, 1e-9)
    print(f"\nsync share of hybrid win at {high} cores: {share:.0%}")
    assert share >= 0.4
