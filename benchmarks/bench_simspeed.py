"""Simulator throughput — the counterpart of the paper's 15x/overnight claim.

The authors' SystemC model ran 15x faster than HDL-ISS co-simulation and
completed 168 configurations x 3 sizes overnight on five servers.  Our
analogue: simulated cycles per wall-clock second on reference workloads,
plus the projected wall time of the full paper sweep on this host.
"""

from __future__ import annotations

from repro.apps.jacobi.driver import JacobiParams, run_jacobi
from repro.dse.experiments import experiment_simspeed
from repro.system.config import SystemConfig

from conftest import save_and_echo


def test_simspeed_report(benchmark, results_dir):
    report = benchmark.pedantic(lambda: experiment_simspeed(), rounds=1,
                                iterations=1)
    save_and_echo(report, results_dir)
    assert report.rows[0][2] > 0


def test_reference_config_throughput(benchmark):
    """Benchmark the kernel on the 8-core/16 kB reference machine."""
    config = SystemConfig(n_workers=8, cache_size_kb=16)
    params = JacobiParams(n=30, iterations=3, warmup=1)

    result = benchmark(lambda: run_jacobi(config, params))
    assert result.validated


def test_small_system_throughput(benchmark):
    """Benchmark the kernel on the smallest interesting machine."""
    config = SystemConfig(n_workers=2, cache_size_kb=4)
    params = JacobiParams(n=16, iterations=3, warmup=1)

    result = benchmark(lambda: run_jacobi(config, params))
    assert result.validated


def test_saturated_mpmmu_throughput(benchmark):
    """Worst case for the event kernel: WT traffic saturating the MPMMU."""
    config = SystemConfig(n_workers=8, cache_size_kb=16, cache_policy="wt")
    params = JacobiParams(n=16, iterations=2, warmup=0)

    result = benchmark(lambda: run_jacobi(config, params))
    assert result.validated
