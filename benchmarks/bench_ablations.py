"""Ablations of the design choices DESIGN.md calls out.

Each benchmark sweeps one architectural knob on a fixed workload and
prints a small table, making the cost/benefit of the paper's choices
visible: arbiter configuration (Fig. 3), barrier algorithm, write-buffer
depth, ejection width, torus vs mesh, and the Section II-C lock-write
protocol.
"""

from __future__ import annotations

from repro.apps.jacobi.driver import JacobiParams, run_jacobi
from repro.dse.report import format_table
from repro.system.config import SystemConfig


def _sweep(benchmark, title, rows_fn):
    rows = benchmark.pedantic(rows_fn, rounds=1, iterations=1)
    print("\n" + format_table(["variant", "cycles/iter"], rows, title=title))
    return dict(rows)


def test_arbiter_modes(benchmark):
    params = JacobiParams(n=24, iterations=3, warmup=1)

    def run():
        rows = []
        for mode in ("mux", "single_fifo", "dual_fifo"):
            config = SystemConfig(n_workers=6, cache_size_kb=8,
                                  arbiter_mode=mode)
            result = run_jacobi(config, params)
            assert result.validated
            rows.append([mode, f"{result.cycles_per_iteration:.0f}"])
        return rows

    cycles = _sweep(benchmark, "arbiter configurations (Fig. 3)", run)
    assert len(cycles) == 3


def test_barrier_algorithms(benchmark):
    params = JacobiParams(n=16, iterations=3, warmup=1)

    def run():
        rows = []
        for algorithm in ("central", "dissemination"):
            config = SystemConfig(n_workers=8, cache_size_kb=8,
                                  empi_barrier=algorithm)
            result = run_jacobi(config, params)
            assert result.validated
            rows.append([algorithm, f"{result.cycles_per_iteration:.0f}"])
        return rows

    cycles = _sweep(benchmark, "eMPI barrier algorithm", run)
    assert len(cycles) == 2


def test_write_buffer_depth(benchmark):
    params = JacobiParams(n=16, iterations=2, warmup=0)

    def run():
        rows = []
        for depth in (1, 2, 4, 8):
            config = SystemConfig(n_workers=4, cache_size_kb=8,
                                  cache_policy="wt",
                                  write_buffer_depth=depth)
            result = run_jacobi(config, params)
            assert result.validated
            rows.append([f"depth={depth}", f"{result.cycles_per_iteration:.0f}"])
        return rows

    cycles = _sweep(benchmark, "write buffer depth (WT stores)", run)
    # Deeper buffers can only help store throughput.
    assert float(cycles["depth=8"]) <= float(cycles["depth=1"])


def test_topology_torus_vs_mesh(benchmark):
    params = JacobiParams(n=24, iterations=3, warmup=1)

    def run():
        rows = []
        for kind in ("folded_torus", "mesh"):
            config = SystemConfig(n_workers=8, cache_size_kb=8,
                                  topology_kind=kind)
            result = run_jacobi(config, params)
            assert result.validated
            rows.append([kind, f"{result.cycles_per_iteration:.0f}"])
        return rows

    cycles = _sweep(benchmark, "topology", run)
    assert len(cycles) == 2


def test_eject_width(benchmark):
    params = JacobiParams(n=16, iterations=2, warmup=0)

    def run():
        rows = []
        for width in (1, 2):
            config = SystemConfig(n_workers=8, cache_size_kb=8,
                                  eject_width=width)
            result = run_jacobi(config, params)
            assert result.validated
            rows.append([f"eject={width}", f"{result.cycles_per_iteration:.0f}"])
        return rows

    cycles = _sweep(benchmark, "ejection width (flits/cycle)", run)
    assert float(cycles["eject=2"]) <= float(cycles["eject=1"]) * 1.05


def test_lock_write_protocol_cost(benchmark):
    """Section II-C locking on the shared-data model: the cost of safety."""
    params_base = dict(n=24, iterations=2, warmup=0)

    def run():
        rows = []
        for locked in (False, True):
            result = run_jacobi(
                SystemConfig(n_workers=4, cache_size_kb=8),
                JacobiParams(model="hybrid_sync", lock_writes=locked,
                             **params_base),
            )
            assert result.validated
            label = "lock/flush/unlock" if locked else "barrier-ordered"
            rows.append([label, f"{result.cycles_per_iteration:.0f}"])
        return rows

    cycles = _sweep(benchmark, "II-C shared-write protocol", run)
    assert float(cycles["lock/flush/unlock"]) > float(cycles["barrier-ordered"])


def test_mul_high_option(benchmark):
    """The paper's Multiply-High core option (26 vs 60 cycle DP multiply)."""
    from repro.pe.costmodel import FpCostModel

    params = JacobiParams(n=24, iterations=3, warmup=1)

    def run():
        rows = []
        for mul_high in (True, False):
            config = SystemConfig(n_workers=4, cache_size_kb=16,
                                  fp=FpCostModel(use_mul_high=mul_high))
            result = run_jacobi(config, params)
            assert result.validated
            label = "mul-high" if mul_high else "16/32-bit mul"
            rows.append([label, f"{result.cycles_per_iteration:.0f}"])
        return rows

    cycles = _sweep(benchmark, "Multiply High option", run)
    assert float(cycles["mul-high"]) < float(cycles["16/32-bit mul"])
