"""Regenerate the throughput numbers committed in BENCH_simspeed.json.

Run from the repo root::

    PYTHONPATH=src python benchmarks/record_simspeed.py            # print
    PYTHONPATH=src python benchmarks/record_simspeed.py --write    # update

Measures each workload (median of 7 timed runs after one warm-up run) and
emits the full ``BENCH_simspeed.json`` schema.  When the committed file
exists, its ``after`` numbers roll over into the new ``before`` column, so
every perf PR carries its own before/after evidence; with ``--write`` the
file is updated in place.
"""

from __future__ import annotations

import json
import statistics
import sys
import time
from functools import partial
from pathlib import Path

from repro.apps.collective_bench import (
    CollectiveBenchParams,
    run_collective_bench,
)
from repro.apps.jacobi.driver import JacobiParams, run_jacobi
from repro.faults import FaultPlan
from repro.system.config import SystemConfig

BENCH_FILE = Path(__file__).parent.parent / "BENCH_simspeed.json"

WORKLOADS = {
    "reference_8w16kb_n30": (
        "n_workers=8, cache_size_kb=16, wb",
        "JacobiParams(n=30, iterations=3, warmup=1)",
        partial(
            run_jacobi,
            SystemConfig(n_workers=8, cache_size_kb=16),
            JacobiParams(n=30, iterations=3, warmup=1),
        ),
    ),
    "small_2w4kb_n16": (
        "n_workers=2, cache_size_kb=4, wb",
        "JacobiParams(n=16, iterations=3, warmup=1)",
        partial(
            run_jacobi,
            SystemConfig(n_workers=2, cache_size_kb=4),
            JacobiParams(n=16, iterations=3, warmup=1),
        ),
    ),
    "saturated_mpmmu_8w16kb_wt_n16": (
        "n_workers=8, cache_size_kb=16, wt",
        "JacobiParams(n=16, iterations=2, warmup=0)",
        partial(
            run_jacobi,
            SystemConfig(n_workers=8, cache_size_kb=16, cache_policy="wt"),
            JacobiParams(n=16, iterations=2, warmup=0),
        ),
    ),
    "collective_allreduce_8w_tree": (
        "n_workers=8, cache_size_kb=16, wb",
        "CollectiveBenchParams(allreduce, empi, tree, n_values=16, repeats=4)",
        partial(
            run_collective_bench,
            SystemConfig(n_workers=8, cache_size_kb=16),
            CollectiveBenchParams(
                collective="allreduce", model="empi", algorithm="tree",
                n_values=16, repeats=4,
            ),
        ),
    ),
    "multicast_bcast_8w": (
        "n_workers=8, cache_size_kb=16, wb, dma_tx_queue_depth=4",
        "CollectiveBenchParams(bcast, empi, hw, n_values=16, repeats=4)",
        partial(
            run_collective_bench,
            SystemConfig(n_workers=8, cache_size_kb=16,
                         dma_tx_queue_depth=4),
            CollectiveBenchParams(
                collective="bcast", model="empi", algorithm="hw",
                n_values=16, repeats=4,
            ),
        ),
    ),
    "ring_allreduce_8w_long": (
        "n_workers=8, cache_size_kb=16, wb, dma_tx_queue_depth=4",
        "CollectiveBenchParams(allreduce, empi, ring, n_values=256, repeats=2)",
        partial(
            run_collective_bench,
            SystemConfig(n_workers=8, cache_size_kb=16,
                         dma_tx_queue_depth=4),
            CollectiveBenchParams(
                collective="allreduce", model="empi", algorithm="ring",
                n_values=256, repeats=2,
            ),
        ),
    ),
    "lossy_allreduce_8w_tree": (
        "n_workers=8, cache_size_kb=16, wb, "
        "faults=FaultPlan(seed=3, drop_rate=0.02)",
        "CollectiveBenchParams(allreduce, empi, tree, n_values=16, repeats=4)",
        partial(
            run_collective_bench,
            SystemConfig(n_workers=8, cache_size_kb=16,
                         faults=FaultPlan(seed=3, drop_rate=0.02)),
            CollectiveBenchParams(
                collective="allreduce", model="empi", algorithm="tree",
                n_values=16, repeats=4,
            ),
        ),
    ),
}


def measure(runner, rounds: int = 7):
    runner()  # warm-up
    rates = []
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = runner()
        rates.append(result.total_cycles / (time.perf_counter() - started))
    assert result is not None and result.validated
    return result, round(statistics.median(rates))


def main(argv: list[str]) -> int:
    committed = json.loads(BENCH_FILE.read_text()) if BENCH_FILE.exists() else {}
    old_workloads = committed.get("workloads", {})
    workloads = {}
    for name, (config_label, params_label, runner) in WORKLOADS.items():
        result, median = measure(runner)
        before = old_workloads.get(name, {}).get("after_cycles_per_sec", median)
        workloads[name] = {
            "config": config_label,
            "params": params_label,
            "total_cycles": result.total_cycles,
            "before_cycles_per_sec": before,
            "after_cycles_per_sec": median,
            "speedup": round(median / before, 2),
        }
        for extra in ("iteration_cycles", "op_cycles"):
            if hasattr(result, extra):
                workloads[name][extra] = getattr(result, extra)
    payload = {
        key: committed.get(key, "")
        for key in ("description", "methodology", "host_note")
    }
    payload["workloads"] = workloads
    payload["cycle_exactness"] = committed.get("cycle_exactness", "")
    text = json.dumps(payload, indent=2) + "\n"
    if "--write" in argv:
        BENCH_FILE.write_text(text)
        print(f"updated {BENCH_FILE}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
