"""Validate a Chrome trace-event JSON file (the CI trace-smoke gate).

Checks the contract Perfetto and ``chrome://tracing`` rely on:

* the file parses and has a ``traceEvents`` list;
* every event carries the required ``ph``/``ts``/``pid``/``tid``/``name``
  keys (with sane types);
* timestamps are monotonically non-decreasing within each
  ``(pid, tid)`` track;
* complete events ("X") have a non-negative ``dur``.

Usage: ``python benchmarks/validate_trace.py trace.json``; also imported
by the telemetry tests, so the CI job and the test suite enforce the
same schema.
"""

from __future__ import annotations

import json
import sys

REQUIRED_KEYS = ("ph", "ts", "pid", "tid", "name")


def validate_trace_events(events: list) -> dict:
    """Raise ``ValueError`` on any schema violation; return a summary."""
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty list")
    last_ts: dict[tuple, float] = {}
    phases: dict[str, int] = {}
    tracks = set()
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {index} is not an object")
        for key in REQUIRED_KEYS:
            if key not in event:
                raise ValueError(f"event {index} missing {key!r}: {event}")
        if not isinstance(event["name"], str):
            raise ValueError(f"event {index} name is not a string")
        if not isinstance(event["ts"], (int, float)):
            raise ValueError(f"event {index} ts is not numeric")
        ph = event["ph"]
        phases[ph] = phases.get(ph, 0) + 1
        if ph == "M":
            continue  # metadata sits at ts 0, outside track ordering
        track = (event["pid"], event["tid"])
        tracks.add(track)
        if event["ts"] < last_ts.get(track, 0):
            raise ValueError(
                f"event {index} breaks ts monotonicity on track {track}: "
                f"{event['ts']} after {last_ts[track]}"
            )
        last_ts[track] = event["ts"]
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"event {index} 'X' has bad dur: {dur!r}")
    return {
        "events": len(events),
        "tracks": len(tracks),
        "phases": phases,
    }


def validate_trace_file(path: str) -> dict:
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError("top level must be an object with 'traceEvents'")
    return validate_trace_events(payload["traceEvents"])


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: validate_trace.py <trace.json>", file=sys.stderr)
        return 2
    summary = validate_trace_file(argv[0])
    phases = ", ".join(
        f"{ph}={count}" for ph, count in sorted(summary["phases"].items())
    )
    print(
        f"{argv[0]}: OK — {summary['events']} events on "
        f"{summary['tracks']} tracks ({phases})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
