"""Figure 6: execution time for the 60x60 Jacobi vs cores/cache/policy.

``pytest benchmarks/bench_fig6.py --benchmark-only`` regenerates the
figure's series (reduced scale by default, ``MEDEA_FULL=1`` for the paper's
full 2-15 cores x 2-64 kB x WB/WT grid) and saves the rendered table +
ASCII plot under ``benchmarks/out/fig6.txt``.
"""

from __future__ import annotations

from repro.apps.jacobi.driver import JacobiParams, run_jacobi
from repro.dse.experiments import experiment_fig6
from repro.system.config import SystemConfig

from conftest import save_and_echo


def test_fig6_regeneration(benchmark, results_dir):
    report = benchmark.pedantic(
        lambda: experiment_fig6(cache_dir=results_dir),
        rounds=1, iterations=1,
    )
    save_and_echo(report, results_dir)
    # Shape checks from the paper: WT never beats WB at matched geometry,
    # and adding cores never hurts with the largest cache.
    by_label = report.series
    for label, values in by_label.items():
        if label.endswith("WT"):
            twin = label.replace("WT", "WB")
            if twin in by_label:
                wt = dict(values)
                wb = dict(by_label[twin])
                for cores in wt:
                    if cores in wb:
                        assert wt[cores] >= wb[cores]
    largest_wb = max(
        (label for label in by_label if label.endswith("WB")),
        key=lambda lab: int(lab.split("kB")[0]),
    )
    curve = sorted(by_label[largest_wb])
    assert curve[-1][1] <= curve[0][1]  # more cores, less time


def test_fig6_single_point_60x60(benchmark):
    """Wall-time of one representative fig6 point (8 cores, 16 kB, WB)."""
    config = SystemConfig(n_workers=8, cache_size_kb=16)
    params = JacobiParams(n=60, iterations=3, warmup=1)
    result = benchmark.pedantic(
        lambda: run_jacobi(config, params), rounds=1, iterations=1
    )
    assert result.validated
