"""Validate a ``medea analyze`` report JSON (the CI analyze-smoke gate).

Checks the contract the attribution report promises:

* the schema tag matches ``medea.attribution/1``;
* every tile ledger carries every cycle class and sums to the run's
  total cycles **bit-exactly** (the conservation property the whole
  attribution story rests on), and the aggregate equals the tile sum;
* stall rows reference real ranks/classes with cycles within the total;
* every critical path's per-edge cycles telescope to its latency
  exactly, and its ``bound_hop`` (when present) names an edge on it.

Usage: ``python benchmarks/validate_report.py report.json``; also
imported by the telemetry tests, so the CI job and the test suite
enforce the same schema — the ``validate_trace.py`` pattern.
"""

from __future__ import annotations

import json
import sys

SCHEMA = "medea.attribution/1"

LEDGER_CLASSES = (
    "compute", "wait_msg", "mem_stall", "credit_stall", "tx_stream",
    "barrier_spin", "lock_spin", "idle",
)

STALL_CLASSES = (
    "wait_msg", "mem_stall", "credit_stall", "tx_stream",
    "barrier_spin", "lock_spin",
)


def validate_report(report: dict) -> dict:
    """Raise ``ValueError`` on any schema violation; return a summary."""
    if not isinstance(report, dict):
        raise ValueError("report must be an object")
    if report.get("schema") != SCHEMA:
        raise ValueError(
            f"schema mismatch: {report.get('schema')!r} != {SCHEMA!r}"
        )
    cycles = report.get("cycles")
    if not isinstance(cycles, int) or cycles < 0:
        raise ValueError(f"cycles must be a non-negative int, got {cycles!r}")

    ledger = report.get("ledger")
    if not isinstance(ledger, dict):
        raise ValueError("missing ledger object")
    tiles = ledger.get("tiles")
    if not isinstance(tiles, list) or not tiles:
        raise ValueError("ledger.tiles must be a non-empty list")
    ranks = set()
    for tile in tiles:
        rank = tile.get("rank")
        if not isinstance(rank, int) or rank in ranks:
            raise ValueError(f"bad or duplicate tile rank: {rank!r}")
        ranks.add(rank)
        for cls in LEDGER_CLASSES:
            if not isinstance(tile.get(cls), int) or tile[cls] < 0:
                raise ValueError(
                    f"tile {rank}: class {cls!r} missing or negative"
                )
        total = sum(tile[cls] for cls in LEDGER_CLASSES)
        if total != cycles or tile.get("total") != cycles:
            raise ValueError(
                f"tile {rank}: ledger sums to {total}, expected {cycles} "
                f"— conservation violated"
            )
    aggregate = ledger.get("aggregate")
    if not isinstance(aggregate, dict):
        raise ValueError("missing ledger.aggregate")
    for cls in LEDGER_CLASSES:
        expected = sum(tile[cls] for tile in tiles)
        if aggregate.get(cls) != expected:
            raise ValueError(
                f"aggregate[{cls}] = {aggregate.get(cls)} != tile sum "
                f"{expected}"
            )
    mpmmu = ledger.get("mpmmu")
    if not isinstance(mpmmu, dict) or "busy" not in mpmmu:
        raise ValueError("missing ledger.mpmmu occupancy")

    stalls = report.get("stalls")
    if not isinstance(stalls, list):
        raise ValueError("stalls must be a list")
    for row in stalls:
        if row.get("class") not in STALL_CLASSES:
            raise ValueError(f"unknown stall class {row.get('class')!r}")
        if row.get("rank") not in ranks:
            raise ValueError(f"stall row names unknown rank {row.get('rank')!r}")
        if not isinstance(row.get("cycles"), int) or not (
            0 <= row["cycles"] <= cycles
        ):
            raise ValueError(f"stall cycles out of range: {row.get('cycles')!r}")

    dispatch = report.get("dispatch")
    if not isinstance(dispatch, dict):
        raise ValueError("dispatch histogram must be an object")
    for opcode, count in dispatch.items():
        if not isinstance(count, int) or count < 0:
            raise ValueError(f"dispatch[{opcode!r}] = {count!r} is not a count")

    paths = report.get("critical_paths")
    if not isinstance(paths, list):
        raise ValueError("critical_paths must be a list")
    for path in paths:
        op = path.get("op")
        latency = path.get("latency")
        edges = path.get("edges")
        if not isinstance(op, str) or not isinstance(edges, list):
            raise ValueError(f"malformed critical path: {path.get('op')!r}")
        if not isinstance(latency, int) or latency < 0:
            raise ValueError(f"{op}: bad latency {latency!r}")
        edge_sum = 0
        for edge in edges:
            if not isinstance(edge.get("cycles"), int):
                raise ValueError(f"{op}: edge without integer cycles")
            if edge.get("kind") not in ("local", "xfer", "skew"):
                raise ValueError(f"{op}: unknown edge kind {edge.get('kind')!r}")
            edge_sum += edge["cycles"]
        if edges and edge_sum != latency:
            raise ValueError(
                f"{op}: per-edge cycles sum to {edge_sum}, latency is "
                f"{latency} — the path does not telescope"
            )
        bound = path.get("bound_hop")
        if bound is not None:
            if not any(
                edge["from_rank"] == bound.get("from_rank")
                and edge["to_rank"] == bound.get("to_rank")
                and edge["cycles"] == bound.get("cycles")
                for edge in edges
            ):
                raise ValueError(f"{op}: bound_hop is not an edge of the path")

    return {
        "cycles": cycles,
        "tiles": len(tiles),
        "stall_rows": len(stalls),
        "opcodes": len(dispatch),
        "critical_paths": len(paths),
    }


def validate_report_file(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        return validate_report(json.load(handle))


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: validate_report.py <report.json>", file=sys.stderr)
        return 2
    summary = validate_report_file(argv[0])
    print(
        f"{argv[0]}: OK — {summary['tiles']} tile ledgers conserve "
        f"{summary['cycles']} cycles, {summary['critical_paths']} critical "
        f"paths telescope, {summary['opcodes']} opcodes, "
        f"{summary['stall_rows']} stall rows"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
