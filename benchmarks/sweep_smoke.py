"""CI smoke for the sweep service: pool run, kill, resume, count hits.

Drives a tiny Jacobi sweep through the *process* backend, then rehearses
the failure that motivated the journaled cache: a second sweep is
SIGKILLed partway through, and the resumed run must recompute only the
points the kill left pending.  The cache-hit accounting is written to
``sweep-smoke.json`` (uploaded as a CI artifact) and the script exits
nonzero on any violated invariant.

Run with::

    PYTHONPATH=src python benchmarks/sweep_smoke.py [out.json]
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import sys
import tempfile

from repro.apps.jacobi.driver import JacobiParams
from repro.dse.executor import run_space
from repro.dse.space import jacobi_sweep_space

KILL_AFTER = 2  # points completed before the rehearsed crash


def deterministic(payloads: list[dict]) -> list[dict]:
    """Strip the one inherently run-dependent field (measured wall time)."""
    return [{k: v for k, v in p.items() if k != "wall_seconds"}
            for p in payloads]


def tiny_space():
    return jacobi_sweep_space(
        "sweep_smoke",
        workers=(1, 2, 3, 4),
        cache_sizes_kb=(4,),
        policies=("wb",),
        params=JacobiParams(n=8, iterations=2, warmup=0),
    )


def _run_and_die(cache_dir: str) -> None:
    """Child body: run inline, SIGKILL this process after KILL_AFTER points."""

    def killer(done: int, total: int) -> None:
        if done >= KILL_AFTER:
            os.kill(os.getpid(), signal.SIGKILL)

    run_space(tiny_space(), backend="inline", cache_dir=cache_dir,
              progress=killer)


def main() -> int:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "sweep-smoke.json"
    space = tiny_space()
    n_points = space.n_points
    report: dict = {"n_points": n_points, "kill_after": KILL_AFTER}

    with tempfile.TemporaryDirectory() as pool_dir:
        # -- 1. the pool path: a fresh sweep through the process backend --
        pooled = run_space(space, backend="process", jobs=2,
                           cache_dir=pool_dir)
        report["pool"] = {"computed": pooled.n_computed,
                          "cached": pooled.n_cached}
        assert pooled.n_computed == n_points, "fresh pool run must compute all"

        # -- 2. and the warm rerun serves everything from cache ----------
        warm = run_space(space, backend="process", jobs=2,
                         cache_dir=pool_dir)
        report["warm"] = {"computed": warm.n_computed,
                          "cached": warm.n_cached}
        assert warm.n_cached == n_points, "warm rerun must be all cache hits"
        assert deterministic(warm.payloads()) == deterministic(
            pooled.payloads()), "cache changed payloads"

    with tempfile.TemporaryDirectory() as crash_dir:
        # -- 3. kill a sweep mid-run, then resume -------------------------
        child = multiprocessing.Process(target=_run_and_die,
                                        args=(crash_dir,))
        child.start()
        child.join(timeout=300)
        assert child.exitcode == -signal.SIGKILL, (
            f"child should die by SIGKILL, exited {child.exitcode}"
        )
        resumed = run_space(space, backend="process", jobs=2,
                            cache_dir=crash_dir)
        report["resume"] = {"computed": resumed.n_computed,
                            "cached": resumed.n_cached}
        assert resumed.n_cached == KILL_AFTER, (
            f"resume served {resumed.n_cached} cached points, "
            f"expected {KILL_AFTER}"
        )
        assert resumed.n_computed == n_points - KILL_AFTER
        assert deterministic(resumed.payloads()) == deterministic(
            pooled.payloads()), (
            "resumed sweep diverged from the uninterrupted run"
        )

    report["ok"] = True
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
