"""Reduction-strategy benchmark on the dot-product workload.

Extension beyond the paper's Jacobi-only evaluation (its future work
section asks for more parallel benchmarks): quantifies how the reduction
cost scales with core count for the message-passing and shared-memory
strategies.
"""

from __future__ import annotations

from repro.apps.dotproduct import DotProductParams, run_dotproduct
from repro.dse.report import format_table
from repro.system.config import SystemConfig


def test_reduction_scaling(benchmark):
    def run():
        rows = []
        for n_workers in (2, 4, 8):
            config = SystemConfig(n_workers=n_workers, cache_size_kb=8)
            empi = run_dotproduct(config, DotProductParams(160, "empi"))
            pure = run_dotproduct(config, DotProductParams(160, "pure_sm"))
            assert empi.validated and pure.validated
            rows.append([
                n_workers, empi.reduction_cycles, pure.reduction_cycles,
                f"{pure.reduction_cycles / empi.reduction_cycles:.1f}x",
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_table(
        ["workers", "empi_cycles", "sm_cycles", "penalty"], rows,
        title="reduction strategies",
    ))
    # The SM penalty grows with core count (MPMMU serialization).
    penalties = [float(row[3][:-1]) for row in rows]
    assert penalties[-1] >= penalties[0]
    assert penalties[-1] > 1.5
