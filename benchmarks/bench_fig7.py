"""Figure 7: optimal speedup vs chip area (60x60), Pareto + kill rule."""

from __future__ import annotations

from repro.dse.experiments import experiment_fig7

from conftest import save_and_echo


def test_fig7_regeneration(benchmark, results_dir):
    report = benchmark.pedantic(
        lambda: experiment_fig7(cache_dir=results_dir),
        rounds=1, iterations=1,
    )
    save_and_echo(report, results_dir)
    front = report.series["pareto"]
    optimal = report.series["kill-rule"]
    assert optimal  # the staircase exists
    assert set(optimal) <= set(front)
    # The front is monotone: more area on the front means more speedup.
    areas = [a for a, __ in front]
    speedups = [s for __, s in front]
    assert areas == sorted(areas)
    assert speedups == sorted(speedups)
    # The kill rule prunes at least as hard as Pareto dominance.
    assert len(optimal) <= len(front)
