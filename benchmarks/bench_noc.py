"""NoC characterization: deflection-routing latency, outliers, livelock.

Covers the Section II-A claims (minimal-storage hot-potato switches,
sporadic high-latency flits, no livelock) with the synthetic-traffic
harness, plus raw fabric throughput as a microbenchmark.
"""

from __future__ import annotations

from repro.apps.synthetic import run_synthetic_traffic
from repro.dse.experiments import experiment_noc

from conftest import save_and_echo


def test_noc_characterization(benchmark, results_dir):
    report = benchmark.pedantic(lambda: experiment_noc(), rounds=1,
                                iterations=1)
    save_and_echo(report, results_dir)
    # Livelock freedom: every run delivered everything.
    assert all(row[-1] == "yes" for row in report.rows)
    # Outliers exist but stay sporadic: p99 well under the max.
    for row in report.rows:
        rate = float(row[1])
        if rate >= 0.4:
            mean_latency = float(row[2])
            max_latency = int(row[3])
            assert max_latency > 2 * mean_latency


def test_fabric_saturation_throughput(benchmark):
    """Raw switch fabric speed: saturating uniform load on a 4x4 torus."""
    def run():
        return run_synthetic_traffic(rate=0.45, cycles=1000, seed=9)

    stats = benchmark(run)
    assert stats.all_delivered
    assert stats.throughput > 0.1  # flits/node/cycle under saturation
