"""Figure 9: optimal speedup vs chip area for the 30x30 run."""

from __future__ import annotations

from repro.dse.experiments import experiment_fig9

from conftest import save_and_echo


def test_fig9_regeneration(benchmark, results_dir):
    report = benchmark.pedantic(
        lambda: experiment_fig9(cache_dir=results_dir),
        rounds=1, iterations=1,
    )
    save_and_echo(report, results_dir)
    optimal = report.series["kill-rule"]
    assert optimal
    # Paper: the 30x30 lower knee occurs at ~4x smaller caches than the
    # 60x60 case; at reduced scale we at least require a rising staircase.
    speedups = [s for __, s in optimal]
    assert speedups == sorted(speedups)
    assert speedups[-1] > 1.0
