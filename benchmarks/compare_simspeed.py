"""Diff two ``BENCH_simspeed.json`` snapshots: is the simulator faster?

``record_simspeed.py`` rolls measured throughput into the committed
snapshot; this tool makes the trajectory *checkable* instead of
eyeballed.  It compares the ``after_cycles_per_sec`` of each workload
present in both files, prints the per-workload speedup (new/old) and the
geometric mean, and exits nonzero when any workload regressed past the
threshold — so a perf PR can assert its claim in CI and a refactor PR
can prove it didn't pay for cleanliness with throughput.

Usage::

    python benchmarks/compare_simspeed.py OLD.json NEW.json
    python benchmarks/compare_simspeed.py OLD.json NEW.json --threshold 0.9

Cycle counts are compared too: a *golden drift* (different
``total_cycles`` for a shared workload) is reported and fails the
comparison regardless of throughput, because it means the two snapshots
measured different architectures and the speedups are not comparable.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_workloads(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)["workloads"]


def compare(
    old: dict, new: dict, threshold: float = 0.95
) -> tuple[list[dict], list[str]]:
    """Per-workload speedup rows plus the failure reasons (empty = pass).

    ``threshold`` is the minimum acceptable new/old throughput ratio:
    0.95 tolerates 5% host noise; 1.0 demands strict improvement.
    """
    rows = []
    failures = []
    shared = sorted(set(old) & set(new))
    if not shared:
        failures.append("no workloads in common between the two snapshots")
    for name in shared:
        old_entry, new_entry = old[name], new[name]
        if old_entry.get("total_cycles") != new_entry.get("total_cycles"):
            failures.append(
                f"{name}: golden cycle drift "
                f"({old_entry.get('total_cycles')} -> "
                f"{new_entry.get('total_cycles')}) — snapshots measured "
                f"different architectures, speedups not comparable"
            )
        old_rate = old_entry.get("after_cycles_per_sec", 0)
        new_rate = new_entry.get("after_cycles_per_sec", 0)
        if not old_rate or not new_rate:
            failures.append(f"{name}: missing after_cycles_per_sec")
            continue
        ratio = new_rate / old_rate
        rows.append({
            "workload": name,
            "old": old_rate,
            "new": new_rate,
            "speedup": ratio,
        })
        if ratio < threshold:
            failures.append(
                f"{name}: regressed to {ratio:.2f}x "
                f"({old_rate:,} -> {new_rate:,} cycles/sec; "
                f"threshold {threshold:.2f}x)"
            )
    return rows, failures


def geomean(ratios: list[float]) -> float:
    if not ratios:
        return 0.0
    product = 1.0
    for ratio in ratios:
        product *= ratio
    return product ** (1.0 / len(ratios))


def render(rows: list[dict]) -> str:
    width = max((len(row["workload"]) for row in rows), default=8)
    lines = [
        f"  {'workload':<{width}}  {'old c/s':>12}  {'new c/s':>12}  speedup"
    ]
    for row in rows:
        lines.append(
            f"  {row['workload']:<{width}}  {row['old']:>12,}"
            f"  {row['new']:>12,}  {row['speedup']:>6.2f}x"
        )
    lines.append(
        f"  geometric mean speedup: "
        f"{geomean([row['speedup'] for row in rows]):.2f}x"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="diff two BENCH_simspeed.json snapshots; nonzero exit "
                    "on regression",
    )
    parser.add_argument("old", help="baseline BENCH_simspeed.json")
    parser.add_argument("new", help="candidate BENCH_simspeed.json")
    parser.add_argument(
        "--threshold", type=float, default=0.95,
        help="minimum acceptable new/old throughput ratio "
             "(default 0.95: 5%% host-noise tolerance)",
    )
    args = parser.parse_args(argv)
    try:
        old = load_workloads(args.old)
        new = load_workloads(args.new)
    except (OSError, json.JSONDecodeError, KeyError) as error:
        print(f"cannot load snapshot: {error}", file=sys.stderr)
        return 2
    rows, failures = compare(old, new, threshold=args.threshold)
    if rows:
        print(f"simspeed comparison ({args.old} -> {args.new}):")
        print(render(rows))
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
