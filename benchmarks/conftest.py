"""Shared benchmark fixtures.

Benchmarks regenerate the paper's artifacts at reduced scale by default
(minutes, not hours); set ``MEDEA_FULL=1`` to run the paper's full axes.
Sweep points are cached under ``benchmarks/out/`` so derived figures reuse
earlier sweeps, and every regenerated report is saved there as text.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUT_DIR


def save_and_echo(report, results_dir: Path) -> None:
    """Persist a report and echo it so `pytest -s` shows the figures."""
    path = report.save(results_dir)
    print(f"\n{report.text}\n[saved to {path}]")
