"""Writing a new experiment on the sweep service, end to end.

Everything a new study needs is three small pieces:

1. an *app driver* — a module-level ``(config, params) -> dict`` callable
   (module-level so every executor backend can pickle it by reference);
2. a ``build_space(full)`` hook returning a declarative
   :class:`~repro.dse.space.SweepSpace` — named axes over the
   architecture config and/or the app's params dataclass;
3. a ``summarize(run)`` hook that fetches payloads *by coordinates* and
   renders the report.

Registering the pair yields a CLI-shaped experiment that inherits the
whole service for free: process-pool execution, resumable schema-hashed
caching (kill it mid-sweep, rerun, only pending points recompute),
bounded retries, and progress reporting.

Run with::

    python examples/custom_experiment.py
"""

from __future__ import annotations

import tempfile

from repro.apps.collective_bench import CollectiveBenchParams, run_collective_bench
from repro.dse.registry import ExperimentReport, ExperimentRun, register_experiment
from repro.dse.report import format_table
from repro.dse.space import Axis, SweepSpace
from repro.system.config import SystemConfig


# -- 1. the app driver: module-level, returns a JSON-serializable dict ------


def barrier_cost_app(config: SystemConfig,
                     params: CollectiveBenchParams) -> dict:
    result = run_collective_bench(config, params)
    return {"cycles_per_op": result.cycles_per_op,
            "validated": result.validated}


# -- 2. the design space: named axes, declarative ---------------------------


def build_space(full: bool) -> SweepSpace:
    workers = (2, 4, 8, 15) if full else (2, 4, 8)
    return SweepSpace(
        name="barrier_cost",
        app=barrier_cost_app,
        app_id="barrier_cost",
        axes=(
            Axis("workers", workers, field="n_workers"),
            Axis("model", ("empi", "pure_sm"), target="params"),
        ),
        base_params=CollectiveBenchParams(collective="bcast", n_values=4,
                                          repeats=2),
    )


# -- 3. the summary: fetch by coordinates, render in *report* order ---------


def summarize(run: ExperimentRun) -> ExperimentReport:
    results = run.result()
    rows = []
    for workers in (axis for axis in run.spaces[0].axes
                    if axis.name == "workers"):
        for w in workers.values:
            empi = results.get(workers=w, model="empi")["cycles_per_op"]
            sm = results.get(workers=w, model="pure_sm")["cycles_per_op"]
            rows.append([w, f"{empi:.0f}", f"{sm:.0f}", f"{sm / empi:.2f}x"])
    text = (
        "barrier_cost: 4-double broadcast, message path vs MPMMU path\n"
        + format_table(["workers", "empi", "pure_sm", "sm/empi"], rows)
    )
    return ExperimentReport(experiment="barrier_cost",
                            full_scale=run.full, text=text, rows=rows)


experiment = register_experiment(
    "barrier_cost",
    "Example: broadcast cost over mesh size, both programming models",
    build_space, summarize,
)


def main() -> None:
    with tempfile.TemporaryDirectory() as cache_dir:
        # First run computes every point (process pool, auto-sized)...
        report = experiment(full=False, cache_dir=cache_dir, progress=True)
        print(report.text)
        print(f"[first run: {report.wall_seconds:.1f}s]")
        # ...the rerun is served entirely from the warm cache.
        report = experiment(full=False, cache_dir=cache_dir)
        print(f"[cached rerun: {report.wall_seconds:.1f}s]")


if __name__ == "__main__":
    main()
