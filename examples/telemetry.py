"""The observability stack: timelines, heatmaps and sampled metrics.

Every layer of the machine keeps counters; this walkthrough turns on
``SystemConfig.telemetry`` (a :class:`~repro.telemetry.TelemetryConfig`)
and shows the three views the telemetry subsystem builds from them:

1. **A Chrome trace-event timeline** — eMPI request lifecycles,
   collective phases, overlap regions, DMA descriptor lifecycles,
   injected faults and the sampled metric series, exported as
   ``trace.json`` and openable in ``ui.perfetto.dev`` with one tile per
   process track.
2. **NoC spatial heatmaps** — per-link transit counts and per-switch
   deflection/stall matrices rendered as ASCII shade maps, so congestion
   has coordinates instead of being one global number.
3. **A sampled metric timeline** — the ``MetricRegistry`` snapshots
   counter *deltas* on a fixed cadence; summing two of those series
   reproduces the CG overlap efficiency the apps compute from their own
   counters, which is the cross-check that the sampler sees the truth.

Telemetry is opt-in and bookkeeping-only: with it off (the default) the
hot paths pay a single attribute check and every committed golden stays
bit-identical; with it on, cycle counts do not move.

Run with::

    PYTHONPATH=src python examples/telemetry.py
"""

from __future__ import annotations

from repro.telemetry.chrome_trace import chrome_trace_events, write_chrome_trace
from repro.telemetry.heatmap import render_noc_report
from repro.telemetry.registry import sampled_overlap_efficiency
from repro.telemetry.workloads import run_trace_workload

OUT = "telemetry_trace.json"


def record_and_export():
    print("recording the full-stack CG workload (8 workers, ring "
          "allreduce,\nDMA engine, seeded faults, telemetry on) ...")
    system, result = run_trace_workload("cg")
    summary = result.stats["telemetry"]
    print(f"  ran {result.total_cycles} cycles, validated={result.validated}")
    print(f"  sampler: {summary['samples']} snapshots every "
          f"{summary['sample_interval']} cycles")
    print(f"  tracer: {summary['trace_events']} events buffered "
          f"({summary['trace_dropped']} dropped by the ring)")

    count = write_chrome_trace(system, OUT)
    tracks = {(e["pid"], e["tid"]) for e in chrome_trace_events(system)
              if e["ph"] != "M"}
    print(f"\nwrote {count} trace events on {len(tracks)} tracks to {OUT}")
    print("open it in ui.perfetto.dev: one process per tile, with request/")
    print("collective/overlap/DMA span tracks, fault instants and counter "
          "series.\n")
    return system, result


def spatial_view(system) -> None:
    print("NoC spatial view (the same matrices the DSE noc report embeds):")
    print(render_noc_report(system.fabric.spatial_dict()))
    print()


def sampled_metrics_cross_check(system, result) -> None:
    registry = system.telemetry.registry
    sampled = sampled_overlap_efficiency(registry)
    print("sampled-timeline cross-check:")
    print(f"  overlap efficiency from the app's own counters: "
          f"{result.overlap_efficiency:.4f}")
    print(f"  recomputed from sampled registry deltas alone:  {sampled:.4f}")
    assert abs(sampled - result.overlap_efficiency) < 1e-9
    print("  identical — the sampler's delta series carry the full signal.\n")

    print("busiest sampled series (total over the run):")
    totals = sorted(registry.totals().items(), key=lambda kv: -kv[1])[:6]
    width = max(len(name) for name, __ in totals)
    for name, total in totals:
        print(f"  {name:<{width}}  {total:>12,}")


def main() -> None:
    system, result = record_and_export()
    spatial_view(system)
    sampled_metrics_cross_check(system, result)


if __name__ == "__main__":
    main()
