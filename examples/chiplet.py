"""Chiplet-scale packages: hierarchical topologies beyond one mesh.

Every earlier walkthrough ran on a single small grid.  This one builds
an AMD-Zen3-style *package* instead — N compute chiplets (each a small
2-D mesh) around a central IO chiplet that carries the MPMMU, with
configurable latency/serialization on the off-die links — and shows
what the topology refactor bought:

1. **One config knob** — ``topology_kind="chiplet"`` plus chiplet
   count/size/link parameters; routing tables, deflection, multicast
   replication, DMA credit windows and fault rerouting all derive from
   the generic topology graph (nothing in the router knows chiplets
   exist).
2. **Topology-aware collectives** — the flat tree/ring schedules keep
   working unchanged, the hardware engine multicasts across the hub,
   and the ``hier`` schedule (intra-chiplet ring + inter-chiplet tree
   among gateway leaders) exploits the hierarchy explicitly.  Every
   algorithm stays bit-identical to its pure-python combine-order
   reference.
3. **Hierarchy-aware observability** — spatial telemetry renders one
   panel per chiplet with the inter-chiplet links listed busiest-first,
   and stall attribution labels tiles ``c1:1,0`` instead of raw node
   numbers.

The full chiplet-count x chiplet-size x algorithm map is the
``chiplet_sweep`` experiment (``PYTHONPATH=src python -m repro
chiplet_sweep``).

Run with::

    PYTHONPATH=src python examples/chiplet.py
"""

from __future__ import annotations

from repro.apps.collective_bench import (
    CollectiveBenchParams,
    run_collective_bench,
)
from repro.dse.report import format_table
from repro.noc.topology import build_topology
from repro.system.config import SystemConfig
from repro.telemetry.config import TelemetryConfig
from repro.telemetry.heatmap import render_noc_report


def package_config(algorithm: str, **overrides) -> SystemConfig:
    """A 4-chiplet package of 2x2 meshes: 16 workers + the IO hub."""
    return SystemConfig(
        n_workers=16, cache_size_kb=16, topology_kind="chiplet",
        chiplets=4, chiplet_grid=(2, 2),
        chiplet_link_latency=4, chiplet_link_width=2,
        dma_tx_queue_depth=4 if algorithm == "hw" else 0,
        **overrides,
    )


def tour_the_package() -> None:
    config = package_config("tree")
    topology = build_topology(
        "chiplet", config.n_nodes, chiplets=config.chiplets,
        chiplet_grid=config.chiplet_grid,
        chiplet_link_latency=config.chiplet_link_latency,
        chiplet_link_width=config.chiplet_link_width,
    )
    print(f"the package: {topology.n_nodes} nodes = 1 IO hub + "
          f"{topology.n_chiplets} chiplets of "
          f"{topology.chiplet_width}x{topology.chiplet_height}")
    print(f"  node 0 is {topology.label_of(0)!r} (MPMMU lives there); "
          f"hub port c <-> chiplet c's gateway")
    for chiplet, members in enumerate(topology.chiplet_groups()):
        labels = ", ".join(topology.label_of(node) for node in members)
        print(f"  chiplet {chiplet}: nodes {members[0]}..{members[-1]} "
              f"({labels}), gateway {topology.gateway_of(chiplet)}")
    print(f"  inter-chiplet links: {topology.inter_link_latency} cycles "
          f"flight, {topology.inter_link_serialization} cycles/flit "
          f"serialization\n")


def algorithms_head_to_head() -> None:
    print("allreduce of 16 doubles, 16 workers on the 4x(2x2) package")
    print("(cycles per op; every row bit-identical to the combine-order "
          "reference)\n")
    rows = []
    for algorithm in ("tree", "ring", "hier", "hw"):
        result = run_collective_bench(
            package_config(algorithm),
            CollectiveBenchParams(
                collective="allreduce", model="empi", algorithm=algorithm,
                n_values=16, repeats=2,
            ),
        )
        assert result.validated, f"{algorithm} drifted from the reference"
        note = {
            "tree": "flat binomial tree, blind to the package",
            "ring": "flat ring; consecutive ranks share a chiplet already",
            "hier": "intra-chiplet ring + gateway-leader tree",
            "hw": "DMA engine + fabric multicast across the hub",
        }[algorithm]
        rows.append([algorithm, f"{result.cycles_per_op:.0f}", note])
    print(format_table(["algorithm", "cyc/op", "how"], rows))
    print("\nthe crossover moves with vector length and package size —")
    print("`python -m repro chiplet_sweep` maps it.\n")


def per_chiplet_heatmaps() -> None:
    print("spatial telemetry on the hierarchical run: one panel per "
          "chiplet,\ninter-chiplet links listed busiest-first")
    captured = {}
    result = run_collective_bench(
        package_config("hier", telemetry=TelemetryConfig()),
        CollectiveBenchParams(
            collective="allreduce", model="empi", algorithm="hier",
            n_values=16, repeats=2,
        ),
        observer=lambda system: captured.setdefault("system", system),
    )
    assert result.validated
    print(render_noc_report(captured["system"].fabric.spatial_dict()))


def main() -> None:
    tour_the_package()
    algorithms_head_to_head()
    per_chiplet_heatmaps()


if __name__ == "__main__":
    main()
