"""eMPI ping-pong: message latency and bandwidth between two cores.

The classic MPI microbenchmark on the TIE message-passing path: rank 0
sends a message of N doubles to rank 1, which bounces it straight back;
half the round trip is the one-way latency.  Also measures the barrier
primitives, and contrasts them with a shared-memory barrier through the
MPMMU — the per-operation version of the paper's headline claim.

Run with::

    python examples/empi_pingpong.py
"""

from __future__ import annotations

from repro import SystemConfig
from repro.dse.report import format_table
from repro.empi.smsync import SharedMemoryBarrier
from repro.system.medea import MedeaSystem

ROUNDS = 8


def pingpong_cycles(n_doubles: int) -> float:
    """Average round-trip cycles for a message of ``n_doubles``."""
    marks: list[int] = []

    def ping(ctx):
        payload = [float(i) for i in range(n_doubles)]
        yield from ctx.empi.barrier()
        for __ in range(ROUNDS):
            yield ctx.note("rt")
            yield from ctx.empi.send_doubles(1, payload)
            __ = yield from ctx.empi.recv_doubles(1, n_doubles)
        yield ctx.note("rt")

    def pong(ctx):
        yield from ctx.empi.barrier()
        for __ in range(ROUNDS):
            payload = yield from ctx.empi.recv_doubles(0, n_doubles)
            yield from ctx.empi.send_doubles(0, payload)

    system = MedeaSystem(SystemConfig(n_workers=2, cache_size_kb=8))
    system.load_programs([ping, pong])
    system.run()
    marks = [cycle for cycle, rank, label in system.notes if label == "rt"]
    spans = [b - a for a, b in zip(marks, marks[1:])]
    return sum(spans) / len(spans)


def barrier_cycles(kind: str, n_workers: int = 4) -> float:
    """Average cycles per barrier episode."""
    def program(ctx):
        if kind == "sm":
            barrier = SharedMemoryBarrier(ctx, ctx.shared_base)
            wait = barrier.wait
        else:
            wait = ctx.empi.barrier
        yield from wait()  # align everyone first
        if ctx.rank == 0:
            yield ctx.note("b")
        for __ in range(ROUNDS):
            yield from wait()
            if ctx.rank == 0:
                yield ctx.note("b")

    config = SystemConfig(n_workers=n_workers, cache_size_kb=8,
                          empi_barrier="central" if kind == "central"
                          else "dissemination" if kind == "dissemination"
                          else "central")
    system = MedeaSystem(config)
    system.load_programs([program] * n_workers)
    system.run()
    marks = [cycle for cycle, rank, label in system.notes if label == "b"]
    spans = [b - a for a, b in zip(marks, marks[1:])]
    return sum(spans) / len(spans)


def main() -> None:
    rows = []
    for n_doubles in (1, 4, 16, 64, 256):
        round_trip = pingpong_cycles(n_doubles)
        flits = 2 * n_doubles  # two 32-bit flits per double
        rows.append([
            n_doubles, f"{round_trip:.0f}", f"{round_trip / 2:.0f}",
            f"{flits / (round_trip / 2):.2f}",
        ])
    print(format_table(
        ["doubles", "round trip (cyc)", "one way (cyc)", "flits/cycle"],
        rows,
        title="eMPI ping-pong between adjacent cores",
    ))

    rows = [
        ["eMPI central", f"{barrier_cycles('central'):.0f}"],
        ["eMPI dissemination", f"{barrier_cycles('dissemination'):.0f}"],
        ["shared-memory lock+spin", f"{barrier_cycles('sm'):.0f}"],
    ]
    print(format_table(
        ["barrier", "cycles/episode"], rows,
        title="barrier cost, 4 workers",
    ))
    print("the SM barrier's cost is the synchronization overhead the")
    print("hybrid architecture exists to remove (paper Sec. I and III).")


if __name__ == "__main__":
    main()
