"""Reductions on MEDEA: message passing vs the shared-memory accumulator.

A distributed dot product ends with a global sum.  On MEDEA that
reduction can ride the TIE message path (eMPI gather + broadcast) or hit
a lock-protected accumulator in shared memory.  This example measures
both across core counts — the per-primitive version of the paper's
Section III comparison.

Run with::

    python examples/reduction_strategies.py
"""

from __future__ import annotations

from repro import SystemConfig
from repro.apps.dotproduct import DotProductParams, run_dotproduct
from repro.dse.report import format_table


def main() -> None:
    rows = []
    for n_workers in (2, 4, 8, 12):
        config = SystemConfig(n_workers=n_workers, cache_size_kb=8)
        empi = run_dotproduct(config, DotProductParams(240, "empi"))
        pure = run_dotproduct(config, DotProductParams(240, "pure_sm"))
        assert empi.validated and pure.validated
        rows.append([
            n_workers,
            f"{empi.reduction_cycles}",
            f"{pure.reduction_cycles}",
            f"{pure.reduction_cycles / empi.reduction_cycles:.1f}x",
        ])
    print(format_table(
        ["workers", "eMPI reduce (cyc)", "SM reduce (cyc)", "SM penalty"],
        rows,
        title="global-sum reduction: 240-element dot product",
    ))
    print("both strategies produce bit-identical sums (same accumulation")
    print("order); only the synchronization mechanism differs.")


if __name__ == "__main__":
    main()
