"""Cycle attribution: account for where every simulated cycle goes.

Every core already logs each state change; the attribution layer turns
those always-on counters into an exact *cycle ledger* — compute, message
wait, memory stall, credit stall, barrier/lock spinning, idle — that
sums to the elapsed cycles bit-for-bit on every tile (a conservation
check enforces it).  Arming ``TelemetryConfig.attribution`` additionally
brackets each collective with zero-cycle ``cp`` notes, from which the
analyzer threads the causal send->recv chain through the op and names
the hop that actually bounded it, with per-edge slack.

This walkthrough runs the full-stack 8w CG workload (ring allreduce on
the DMA engine, overlap, seeded faults) and shows:

1. the where-did-cycles-go ledger, per tile and machine-wide;
2. the top stall sources with their DMA-credit/fault context;
3. the critical path of the ring allreduce — which hop of the
   reduce-scatter/allgather schedule bounds it and how much slack the
   runner-up had.

The same report is one command away for any registered workload::

    PYTHONPATH=src python -m repro analyze cg --out report.json

Run with::

    PYTHONPATH=src python examples/attribution.py
"""

from __future__ import annotations

from repro.telemetry.attribution import (
    LEDGER_CLASSES,
    build_report,
    check_conservation,
)
from repro.telemetry.workloads import run_trace_workload


def record() -> dict:
    print("recording the full-stack CG workload (8 workers, ring "
          "allreduce,\nDMA engine, overlap, seeded faults, attribution "
          "armed) ...")
    system, result = run_trace_workload("cg")
    print(f"  ran {result.total_cycles} cycles, "
          f"validated={result.validated}")
    tiles = check_conservation(system)
    print(f"  conservation: {len(tiles)} tile ledgers each sum to "
          f"{system.sim.cycle} cycles exactly\n")
    return build_report(system, workload="cg")


def ledger_view(report: dict) -> None:
    cycles = report["cycles"]
    aggregate = report["ledger"]["aggregate"]
    print("where the cycles went (machine-wide):")
    for cls in LEDGER_CLASSES:
        share = 100.0 * aggregate[cls] / aggregate["total"]
        bar = "#" * int(share / 2)
        print(f"  {cls:<13} {aggregate[cls]:>10} cyc  {share:5.1f}%  {bar}")
    mpmmu = report["ledger"]["mpmmu"]
    print(f"  (mpmmu busy {mpmmu['busy']} of {cycles} cycles serving "
          f"{mpmmu['requests']} requests)\n")

    print("top stall sources:")
    for row in report["stalls"][:5]:
        context = f"  [{row['context']}]" if row["context"] else ""
        print(f"  rank {row['rank']} {row['class']:<13} "
              f"{row['cycles']:>8} cyc ({100 * row['share']:.1f}%){context}")
    print()


def ring_critical_path(report: dict) -> None:
    rings = [path for path in report["critical_paths"]
             if path["op"].startswith(("allreduce[ring]",
                                       "iallreduce[ring]"))]
    if not rings:
        print("no ring-allreduce ops were attributed")
        return
    worst = max(rings, key=lambda path: path["latency"])
    bound = worst["bound_hop"]
    print(f"critical path of the slowest ring allreduce "
          f"({len(rings)} attributed):")
    print(f"  {worst['op']}: {worst['latency']} cycles across "
          f"{worst['ranks']} ranks,")
    print(f"  bound by rank {bound['from_rank']} -> rank "
          f"{bound['to_rank']} {bound['event']} (+{bound['cycles']} cyc)")
    for edge in worst["edges"]:
        print(f"    {edge['kind']:<5} rank {edge['from_rank']} "
              f"{edge['from_event']:<8} @{edge['from_cycle']:>7} -> "
              f"rank {edge['to_rank']} {edge['to_event']:<8} "
              f"@{edge['to_cycle']:>7}  +{edge['cycles']:>5} cyc "
              f"(slack {edge['slack']})")
    telescoped = sum(edge["cycles"] for edge in worst["edges"])
    assert telescoped == worst["latency"]
    print(f"  per-edge cycles telescope to the op latency exactly "
          f"({telescoped} = {worst['latency']}).")


def main() -> None:
    report = record()
    ledger_view(report)
    ring_critical_path(report)


if __name__ == "__main__":
    main()
