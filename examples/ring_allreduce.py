"""Ring allreduce + in-fabric reduction assist: closing the allreduce gap.

PR 4's engine offloaded only the *broadcast* leg of an allreduce, so
bcast gained 2.46x while allreduce gained a mere 1.11x — the reduce leg
still serialized through recv copies and emulated FP adds on the core.
This walkthrough shows the two features that close that gap:

1. **The reduction assist** (``dma_reduce_assist``) — a parent posts an
   accumulate-on-receive descriptor (``qreduce``) and the engine combines
   the child's stream into the accumulator *as the flits arrive*, one
   element per cycle, in exactly the binomial tree's combine order, so
   results stay bit-identical to the software tree.
2. **The ring schedule** (``CollectiveAlgorithm.RING``) — reduce-scatter
   then allgather around the rank ring: every rank moves 2(P-1)/P of the
   vector instead of log2(P) whole-vector hops, the classic long-vector
   win.  It runs over plain TIE send/recv, over the engine (neighbour
   multicast descriptors + qreduce), and over the pure-SM slot arena,
   delivering the reference ring bits in all three.

Run with::

    PYTHONPATH=src python examples/ring_allreduce.py
"""

from __future__ import annotations

from repro.apps.collective_bench import (
    CollectiveBenchParams,
    run_collective_bench,
)
from repro.dse.report import format_table
from repro.empi.collectives import reference_allreduce, ring_segments
from repro.system.config import SystemConfig


def run_point(algorithm: str, n_values: int, **overrides) -> float:
    config = SystemConfig(n_workers=8, cache_size_kb=16, **overrides)
    result = run_collective_bench(
        config,
        CollectiveBenchParams(
            collective="allreduce", model="empi", algorithm=algorithm,
            n_values=n_values, repeats=2,
        ),
    )
    assert result.validated, "delivered vectors must match the references"
    return result.cycles_per_op


def long_vector_crossover() -> None:
    print("allreduce on the reference 8-worker mesh, cycles per operation")
    print("(every point validates bit-for-bit against its combine-order "
          "reference)\n")
    rows = []
    for n_values in (16, 64, 256):
        tree = run_point("tree", n_values)
        ring = run_point("ring", n_values)
        pr4_hw = run_point("hw", n_values, dma_tx_queue_depth=4,
                           dma_reduce_assist=False)
        hw = run_point("hw", n_values, dma_tx_queue_depth=4)
        ring_hw = run_point("ring", n_values, dma_tx_queue_depth=4)
        rows.append([
            n_values, f"{tree:.0f}", f"{ring:.0f}", f"{pr4_hw:.0f}",
            f"{hw:.0f}", f"{ring_hw:.0f}", f"{tree / ring_hw:.1f}x",
        ])
    print(format_table(
        ["doubles", "sw tree", "sw ring", "hw PR-4", "hw + assist",
         "ring + hw", "tree/(ring+hw)"],
        rows,
    ))
    print(
        "\n'hw PR-4' offloads only the broadcast leg (assist off); "
        "'hw + assist'\ncombines at the engine on arrival; 'ring + hw' "
        "adds the reduce-scatter\nschedule on top — the long-vector "
        "regime the 16-double benchmarks never\nexercised."
    )


def ring_order_is_its_own_reference() -> None:
    """The ring's combine order is fixed and replicated exactly."""
    contribs = [
        [[1e16, 1.0, -1e16, 1.0, 3.0][r] + 0.5 * i for i in range(7)]
        for r in range(5)
    ]
    ring = reference_allreduce(contribs, "sum", "ring")
    tree = reference_allreduce(contribs, "sum", "tree")
    index = next(i for i, (a, b) in enumerate(zip(ring, tree)) if a != b)
    print("\nring vs tree on an order-sensitive input (5 ranks, 7 doubles):")
    print(f"  segments: {ring_segments(7, 5)}  (lengths not divisible by P "
          f"are fine)")
    print(f"  ring[{index}] = {ring[index]!r}")
    print(f"  tree[{index}] = {tree[index]!r}")
    print(
        "  -> different associations, different bits; that is why each\n"
        "     algorithm carries its own pure-python reference and the\n"
        "     machine replicates it exactly."
    )


if __name__ == "__main__":
    long_vector_crossover()
    ring_order_is_its_own_reference()
