"""Miniature design-space exploration with Pareto + kill-rule pruning.

The paper's headline workflow (Figs. 7/9) in a few minutes: sweep core
count x cache size on a small Jacobi problem, attach the 65 nm area model,
prune to the Pareto front, apply the kill rule, and plot speedup vs area
with labelled optimal configurations.

Run with::

    python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro.apps.jacobi.driver import JacobiParams
from repro.dse.area import AreaModel
from repro.dse.pareto import FrontPoint, kill_rule_prune, pareto_front
from repro.dse.report import ascii_plot, format_table
from repro.dse.runner import run_sweep
from repro.dse.space import jacobi_sweep_space
from repro.system.config import SystemConfig


def main() -> None:
    space = jacobi_sweep_space(
        "example_dse",
        workers=(1, 2, 4, 6, 8),
        cache_sizes_kb=(2, 8, 32),
        policies=("wb",),
        params=JacobiParams(n=20, iterations=3, warmup=1),
    )
    print(f"running {space.n_points} architecture points "
          f"(Jacobi 20x20, write-back)...")
    results = run_sweep(space, progress=True)
    assert all(result.validated for result in results)

    area_model = AreaModel()
    candidates = []
    for result in results:
        config = SystemConfig(n_workers=result.n_workers,
                              cache_size_kb=result.cache_kb)
        candidates.append((result, area_model.chip_area(config)))
    baseline, __ = min(candidates, key=lambda item: item[1])
    points = [
        FrontPoint(
            area_mm2=area,
            speedup=baseline.cycles_per_iteration / result.cycles_per_iteration,
            label=f"{result.n_workers}P_{result.cache_kb}k$",
        )
        for result, area in candidates
    ]

    front = pareto_front(points)
    optimal = kill_rule_prune(front)
    rows = [
        [f"{p.area_mm2:.2f}", f"{p.speedup:.2f}", p.label,
         "optimal" if p in optimal else "dominated step"]
        for p in front
    ]
    print()
    print(format_table(["area mm^2", "speedup", "config", "kill rule"], rows,
                       title="Pareto front (speedup vs chip area)"))
    print(ascii_plot(
        {
            "all points": [(p.area_mm2, p.speedup) for p in points],
            "kill-rule optimal": [(p.area_mm2, p.speedup) for p in optimal],
        },
        x_label="chip area (mm^2)",
        y_label="speedup",
        title="design space (compare paper Fig. 7/9)",
    ))
    best = optimal[-1]
    print(f"largest worthwhile design: {best.label} at {best.area_mm2:.1f} "
          f"mm^2, speedup {best.speedup:.1f} over {baseline.label}")


if __name__ == "__main__":
    main()
