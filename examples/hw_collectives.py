"""The hardware collective engine: DMA TX queue + NoC multicast.

PRs 1-3 built collectives in *software*: every broadcast costs the root
one TIE tx-turn per destination (linear) or per subtree (tree).  This
walkthrough turns on the per-tile DMA/collective engine
(``dma_tx_queue_depth``) and shows the three things it changes:

1. **One injection instead of P-1** — a hardware broadcast posts a
   single multicast descriptor; the deflection switches replicate the
   flits toward their destination bitmask along a deterministic tree.
2. **The core keeps computing** — descriptors are queued, not awaited;
   the engine streams autonomously (shown via the queue-depth status).
3. **Bits are identical** — ``hw`` collectives combine in the binomial
   tree's order, so results match the software tree exactly, and the
   unicast-fallback mode (``noc_multicast=False``) delivers the same
   words again, just slower.

Run with::

    PYTHONPATH=src python examples/hw_collectives.py
"""

from __future__ import annotations

from repro.apps.collective_bench import (
    CollectiveBenchParams,
    run_collective_bench,
)
from repro.dse.report import format_table
from repro.system.config import SystemConfig


def run_point(collective: str, algorithm: str, **overrides) -> float:
    config = SystemConfig(n_workers=8, cache_size_kb=16, **overrides)
    result = run_collective_bench(
        config,
        CollectiveBenchParams(
            collective=collective, model="empi", algorithm=algorithm,
            n_values=16, repeats=4,
        ),
    )
    assert result.validated, "delivered vectors must match the references"
    return result.cycles_per_op


def hardware_vs_software() -> None:
    print("bcast/allreduce of 16 doubles on the reference 8-worker mesh")
    print("(cycles per operation, identical delivered bits everywhere)\n")
    rows = []
    for collective in ("bcast", "allreduce"):
        sw_linear = run_point(collective, "linear")
        sw_tree = run_point(collective, "tree")
        hw = run_point(collective, "hw", dma_tx_queue_depth=4)
        hw_uc = run_point(collective, "hw", dma_tx_queue_depth=4,
                          noc_multicast=False)
        rows.append([
            collective, f"{sw_linear:.0f}", f"{sw_tree:.0f}", f"{hw:.0f}",
            f"{hw_uc:.0f}", f"{sw_tree / hw:.2f}x",
        ])
    print(format_table(
        ["collective", "sw linear", "sw tree", "hw multicast",
         "hw unicast-fallback", "tree/hw"],
        rows,
    ))
    print(
        "\nThe hw column wins because the root injects each payload word "
        "once\nand the fabric replicates; the fallback column shows the "
        "same engine\nwithout replication — equivalent results, P-1 "
        "streams again."
    )


def queue_keeps_the_core_running() -> None:
    """Post one descriptor per peer back-to-back, then compute."""
    from repro.system.medea import MedeaSystem

    n_workers = 4
    observed = {}

    def producer(ctx):
        free = []
        for dst in range(1, n_workers):
            accepted = yield ("qsend", ctx.node_of(dst), [dst] * 8)
            assert accepted
            free.append((yield ("qstat",)))
        observed["free_slots_after_posts"] = free
        yield ("compute", 300)  # the engine streams underneath

    def consumer(rank):
        def program(ctx):
            observed[rank] = yield ("recv", ctx.node_of(0), 8)
        return program

    system = MedeaSystem(
        SystemConfig(n_workers=n_workers, dma_tx_queue_depth=4)
    )
    system.load_programs(
        [producer] + [consumer(r) for r in range(1, n_workers)]
    )
    cycles = system.run()
    print(f"\n3 sends posted in a handful of cycles, total run {cycles} "
          f"cycles;")
    print(f"queue free-slot readings after each post: "
          f"{observed['free_slots_after_posts']}")
    for rank in range(1, n_workers):
        assert observed[rank] == [rank] * 8
    print("every peer received its payload while rank 0 was computing")


if __name__ == "__main__":
    hardware_vs_software()
    queue_keeps_the_core_running()
