"""Quickstart: build a MEDEA system, run Jacobi, inspect the results.

Run with::

    python examples/quickstart.py

This is the 30-second tour: one architecture point (4 worker cores + the
MPMMU on a folded torus, 16 kB write-back L1s), the paper's Jacobi
workload in the full hybrid model, cycle measurements, bit-exact
validation against numpy, and a peek at the NoC statistics.
"""

from __future__ import annotations

from repro import SystemConfig
from repro.apps.jacobi import JacobiParams, run_jacobi


def main() -> None:
    config = SystemConfig(
        n_workers=4,          # plus the MPMMU -> 5 NoC nodes
        cache_size_kb=16,
        cache_policy="wb",
    )
    params = JacobiParams(
        n=16,                 # 16x16 grid of doubles
        iterations=4,
        warmup=1,
        model="hybrid_full",  # data + synchronization via message passing
    )

    print(f"architecture : {config.label()} on a folded torus")
    print(f"workload     : Jacobi {params.n}x{params.n}, "
          f"{params.iterations} iterations ({params.warmup} warm-up)")

    result = run_jacobi(config, params)

    print(f"\ncycles/iteration (steady state): {result.cycles_per_iteration:.0f}")
    print(f"per-iteration breakdown        : {result.iteration_cycles}")
    print(f"total cycles                   : {result.total_cycles}")
    print(f"validated vs numpy             : {result.validated} "
          f"(max abs error {result.max_abs_error:g})")

    noc = result.stats["noc"]
    print("\nNoC statistics:")
    print(f"  flits delivered   : {noc['flits_ejected']}")
    print(f"  deflections       : {noc.get('deflections', 0)}")
    print(f"  mean flit latency : {noc['latency']['mean']:.1f} cycles "
          f"(max {noc['latency']['max']})")

    worker0 = result.stats["workers"][0]
    cache = worker0["cache"]
    hits = cache.get("read_hits", 0) + cache.get("write_hits", 0)
    misses = cache.get("read_misses", 0) + cache.get("write_misses", 0)
    print("\nrank 0 L1:")
    print(f"  hits {hits}, misses {misses} "
          f"(hit rate {hits / max(hits + misses, 1):.1%})")


if __name__ == "__main__":
    main()
