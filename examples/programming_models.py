"""The paper's core experiment in miniature: three programming models.

Runs the same Jacobi problem under

* ``hybrid_full``  — data and synchronization over the message-passing TIE
  path (the "Medea" way);
* ``hybrid_sync``  — data through shared memory with software
  flush/invalidate, synchronization via eMPI barriers;
* ``pure_sm``      — everything through the MPMMU: lock-protected shared
  writes and a lock+spin barrier,

and prints the slowdown of each relative to the hybrid, along with where
the cycles went (MPMMU occupancy, message counts).  Compare with Section
III of the paper: the pure-SM penalty grows with core count, and most of
the hybrid's win comes from synchronization.

Run with::

    python examples/programming_models.py [n_workers]
"""

from __future__ import annotations

import sys

from repro import SystemConfig
from repro.apps.jacobi import JacobiParams, run_jacobi
from repro.dse.report import format_table


def main(n_workers: int = 6) -> None:
    config = SystemConfig(n_workers=n_workers, cache_size_kb=16)
    rows = []
    baseline = None
    for model in ("hybrid_full", "hybrid_sync", "pure_sm"):
        params = JacobiParams(n=30, iterations=3, warmup=1, model=model)
        result = run_jacobi(config, params)
        assert result.validated, f"{model} failed numerical validation"
        if baseline is None:
            baseline = result.cycles_per_iteration
        mpmmu_busy = result.stats["mpmmu"].get("busy_cycles", 0)
        messages = sum(
            worker["tie"].get("data_flits_sent", 0)
            + worker["tie"].get("requests_sent", 0)
            for worker in result.stats["workers"]
        )
        locks = result.stats["mpmmu"].get("served_lock", 0)
        rows.append([
            model,
            f"{result.cycles_per_iteration:.0f}",
            f"{result.cycles_per_iteration / baseline:.2f}x",
            f"{mpmmu_busy}",
            messages,
            locks,
        ])

    print(format_table(
        ["model", "cycles/iter", "vs hybrid", "mpmmu busy", "msg flits",
         "lock reqs"],
        rows,
        title=f"Jacobi 30x30 on {n_workers} workers, 16 kB WB caches",
    ))
    print("Paper context (Sec. III, 60x60): pure SM is ~2x slower at 6")
    print("cores growing past 5x; sync-only recovers 2x-2.8x of that.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 6)
