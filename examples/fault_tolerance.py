"""Fault injection and end-to-end reliable delivery.

Everything so far assumed a perfect fabric.  This walkthrough turns on
the fault layer (``SystemConfig.faults`` — a seeded, declarative
:class:`~repro.faults.FaultPlan`) and shows the recovery protocols
earning their keep:

1. **Transient loss is invisible in the results** — flits dropped or
   corrupted on links are detected (per-stream sequence gaps, an
   end-to-end CRC at ejection) and repaired (NACK + retransmit from a
   bounded buffer); the delivered allreduce vectors stay bit-identical
   to the fault-free reference, only cycles are lost.
2. **A dead link degrades, it does not break** — a link killed mid-run
   reroutes through the recomputed productive table of the deflection
   router.
3. **A hopeless machine reports instead of hanging** — with 100% loss
   the retry budgets exhaust and the no-progress watchdog raises a
   structured deadlock report naming every blocked component.

Run with::

    PYTHONPATH=src python examples/fault_tolerance.py
"""

from __future__ import annotations

from repro.apps.collective_bench import (
    CollectiveBenchParams,
    run_collective_bench,
)
from repro.dse.report import format_table
from repro.empi.collectives import make_comm
from repro.errors import DeadlockError
from repro.faults import FaultPlan
from repro.system.config import SystemConfig
from repro.system.medea import MedeaSystem


def run_point(faults: FaultPlan | None, algorithm: str = "tree"):
    config = SystemConfig(
        n_workers=8, topology_kind="mesh", faults=faults,
        dma_tx_queue_depth=4 if algorithm == "hw" else 0,
    )
    result = run_collective_bench(
        config,
        CollectiveBenchParams(
            collective="allreduce", model="empi", algorithm=algorithm,
            n_values=16, repeats=4,
        ),
    )
    assert result.validated, "recovery must deliver bit-identical vectors"
    return result


def surviving_transient_faults() -> None:
    print("allreduce of 16 doubles, 8-worker mesh: seeded transient faults")
    print("(validated = delivered bits identical to the fault-free "
          "reference)\n")
    rows = []
    for algorithm in ("tree", "ring", "hw"):
        clean = run_point(None, algorithm)
        for label, plan in [
            ("none", None),
            ("drop 1%", FaultPlan(seed=3, drop_rate=0.01)),
            ("drop 5%", FaultPlan(seed=3, drop_rate=0.05)),
            ("corrupt 1%", FaultPlan(seed=3, corrupt_rate=0.01)),
        ]:
            result = run_point(plan, algorithm)
            faults = result.stats.get("faults", {})
            rows.append([
                algorithm, label, result.total_cycles,
                f"{result.total_cycles / clean.total_cycles:.2f}x",
                faults.get("dropped", 0) + faults.get("crc_dropped", 0),
                faults.get("nacks_issued", 0),
                "yes",
            ])
    print(format_table(
        ["algorithm", "faults", "cycles", "overhead", "flits lost",
         "NACKs", "validated"],
        rows,
    ))
    print("Every lost or corrupted flit was re-fetched by the CRC + "
          "NACK/retransmit layer;\nthe recovery shows up only as cycles.\n")


def surviving_a_dead_link() -> None:
    print("permanent link death: link 1->E killed at cycle 200")
    clean = run_point(None)
    dead = run_point(FaultPlan(seed=3, dead_links=[(1, 1, 200)]))
    print(f"  fault-free: {clean.total_cycles} cycles")
    print(f"  dead link:  {dead.total_cycles} cycles "
          f"({dead.total_cycles / clean.total_cycles:.2f}x) — the router's "
          "productive table is recomputed\n  over the surviving links, so "
          "every value still arrives.\n")


def reporting_a_hopeless_machine() -> None:
    print("liveness: 100% loss, retry budgets exhausted")

    def make_program(rank):
        def program(ctx):
            comm = make_comm(ctx, "empi", "tree", max_values=4)
            yield from comm.allreduce([float(rank)] * 4)
        return program

    plan = FaultPlan(seed=1, drop_rate=1.0, max_retries=2, nack_timeout=64)
    config = SystemConfig(n_workers=4, faults=plan, watchdog_cycles=20_000)
    system = MedeaSystem(config)
    system.load_programs([make_program(rank) for rank in range(4)])
    try:
        system.run(max_cycles=2_000_000)
    except DeadlockError as err:
        first_lines = "\n".join(str(err).splitlines()[:4])
        print("  the watchdog fired (no silent spin to max_cycles):")
        print("    " + first_lines.replace("\n", "\n    "))
        print()


def main() -> None:
    surviving_transient_faults()
    surviving_a_dead_link()
    reporting_a_hopeless_machine()


if __name__ == "__main__":
    main()
