"""Deflection-routing characterization under synthetic traffic.

Reproduces the style of the authors' earlier NoC study (their ref [15]):
load/latency curves on the 4x4 folded torus, deflection rates, and the
"sporadic high-latency flits, no livelock" behaviour called out in
Section II-A — plus a torus-vs-mesh comparison showing why the paper
picked a torus.

Run with::

    python examples/noc_traffic.py
"""

from __future__ import annotations

from repro.apps.synthetic import run_synthetic_traffic
from repro.dse.report import ascii_plot, format_table


def main() -> None:
    rates = (0.02, 0.05, 0.10, 0.20, 0.30, 0.45)

    rows = []
    curves: dict[str, list[tuple[float, float]]] = {}
    for pattern in ("uniform", "hotspot"):
        for rate in rates:
            stats = run_synthetic_traffic(
                rate=rate, cycles=3000, pattern=pattern, seed=7
            )
            assert stats.all_delivered, "deflection routing must not livelock"
            rows.append([
                pattern, f"{rate:.2f}", f"{stats.mean_latency:.1f}",
                stats.max_latency, f"{stats.deflections_per_flit:.2f}",
                f"{stats.throughput:.3f}",
            ])
            curves.setdefault(pattern, []).append((rate, stats.mean_latency))

    print(format_table(
        ["pattern", "rate", "mean lat", "max lat", "defl/flit", "throughput"],
        rows,
        title="4x4 folded torus, single-flit packets, 3000 cycles",
    ))
    print(ascii_plot(curves, x_label="offered rate (flits/node/cycle)",
                     y_label="mean latency (cycles)",
                     title="load-latency curves"))

    # Torus vs mesh at moderate load: wraparound halves average distance.
    torus = run_synthetic_traffic(rate=0.2, cycles=3000, seed=9)
    mesh = run_synthetic_traffic(rate=0.2, cycles=3000, seed=9,
                                 topology_kind="mesh")
    print(format_table(
        ["topology", "mean lat", "max lat", "defl/flit"],
        [
            ["folded torus", f"{torus.mean_latency:.1f}", torus.max_latency,
             f"{torus.deflections_per_flit:.2f}"],
            ["mesh", f"{mesh.mean_latency:.1f}", mesh.max_latency,
             f"{mesh.deflections_per_flit:.2f}"],
        ],
        title="torus vs mesh at rate 0.20",
    ))
    print("note the latency tail (max >> mean): those are the paper's")
    print("'sporadic cases of single flits delivered with high latency'.")


if __name__ == "__main__":
    main()
