"""Compute-communication overlap: the CG solver with and without it.

The non-blocking eMPI layer splits every operation into post + complete,
so a program can keep computing while the TIE hardware streams flits.
This walkthrough runs the distributed conjugate-gradient solver both
ways on the reference 8-worker mesh: the blocking run serializes halo
exchanges and dot-product allreduces against the compute phases, the
overlapped run hides them behind interior SpMV rows and the x update —
and converges to the *same bits*, because the floating-point operation
order never changes.

Run with::

    python examples/cg.py
"""

from __future__ import annotations

from repro.apps.cg import CgParams, run_cg
from repro.dse.report import format_table
from repro.system.presets import cg_reference_config


def overlap_on_vs_off() -> None:
    config = cg_reference_config()
    rows = []
    outcomes = {}
    for model in ("empi", "pure_sm"):
        for overlap in (False, True):
            result = run_cg(
                config,
                CgParams(n=64, iterations=10, model=model,
                         algorithm="tree", overlap=overlap),
            )
            assert result.validated and result.converged
            outcomes[(model, overlap)] = result
            rows.append([
                model,
                "overlap" if overlap else "blocking",
                result.total_cycles,
                f"{result.overlap_efficiency:.2f}",
                f"{result.rr_history[-1]:.2e}",
            ])
    print(format_table(
        ["model", "mode", "total cycles", "overlap eff", "final |r|^2"],
        rows,
        title="CG, 64-row SPD system, 10 iterations, 8 workers",
    ))
    empi_blocking = outcomes[("empi", False)]
    empi_overlap = outcomes[("empi", True)]
    saved = empi_blocking.total_cycles - empi_overlap.total_cycles
    print(f"hybrid model: overlap saves {saved} cycles "
          f"({empi_blocking.total_cycles / empi_overlap.total_cycles:.4f}x) "
          f"with {empi_overlap.overlap_efficiency:.0%} of in-flight")
    print("communication hidden behind compute — the TIE streams while the")
    print("core works.  The pure-SM rows show the contrast: the core must")
    print("move every word itself, so there is little hardware to overlap")
    print("with.\n")


def bit_identity() -> None:
    config = cg_reference_config()
    results = {}
    for overlap in (False, True):
        results[overlap] = run_cg(
            config,
            CgParams(n=64, iterations=10, model="empi",
                     algorithm="tree", overlap=overlap),
        )
    assert results[False].x == results[True].x
    assert results[False].rr_history == results[True].rr_history
    print("blocking and overlapped runs produced bit-identical solutions")
    print("and residual histories: overlap changes the schedule, never the")
    print("arithmetic.")


def main() -> None:
    overlap_on_vs_off()
    bit_identity()


if __name__ == "__main__":
    main()
