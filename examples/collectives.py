"""Collectives on MEDEA: one operation, two programming models.

The paper measures barriers (Table 1); this walkthrough generalizes that
comparison to full collectives.  It runs an allreduce three ways —
message-passing linear, message-passing binomial tree, and the pure
shared-memory MPMMU path — then shows the collective-heavy workloads
(tiled matmul, stream pipeline) built on top of them.

Run with::

    python examples/collectives.py
"""

from __future__ import annotations

from repro import SystemConfig
from repro.apps.collective_bench import CollectiveBenchParams, run_collective_bench
from repro.apps.matmul import MatmulParams, run_matmul
from repro.apps.stream import StreamParams, run_stream
from repro.dse.report import format_table


def collective_comparison() -> None:
    rows = []
    for n_workers in (4, 8):
        config = SystemConfig(n_workers=n_workers, cache_size_kb=8)
        cycles = {}
        for label, model, algorithm in (
            ("empi/linear", "empi", "linear"),
            ("empi/tree", "empi", "tree"),
            ("pure_sm", "pure_sm", "linear"),
        ):
            result = run_collective_bench(
                config,
                CollectiveBenchParams(
                    collective="allreduce", model=model,
                    algorithm=algorithm, n_values=8, repeats=4,
                ),
            )
            assert result.validated
            cycles[label] = result.cycles_per_op
        rows.append([
            n_workers,
            f"{cycles['empi/linear']:.0f}",
            f"{cycles['empi/tree']:.0f}",
            f"{cycles['pure_sm']:.0f}",
            f"{cycles['pure_sm'] / cycles['empi/tree']:.1f}x",
        ])
    print(format_table(
        ["workers", "eMPI linear", "eMPI tree", "pure SM", "SM penalty"],
        rows,
        title="allreduce of 8 doubles: cycles per operation",
    ))
    print("every SM word is a serialized MPMMU round trip; the eMPI")
    print("columns never touch the memory controller at all.\n")


def workload_comparison() -> None:
    config = SystemConfig(n_workers=4, cache_size_kb=8)
    rows = []
    for model in ("empi", "pure_sm"):
        matmul = run_matmul(
            config, MatmulParams(n=6, tile=2, model=model, algorithm="tree")
        )
        stream = run_stream(
            config, StreamParams(n_blocks=6, block_values=8, model=model)
        )
        assert matmul.validated and stream.validated
        rows.append([
            model, matmul.total_cycles, matmul.reduce_cycles,
            f"{stream.cycles_per_block:.0f}",
        ])
    print(format_table(
        ["model", "matmul cycles", "matmul reduce", "stream cyc/block"],
        rows,
        title="collective-heavy workloads, 4 workers",
    ))
    print("identical bits either way (same combine order); only the")
    print("communication architecture differs.")


def main() -> None:
    collective_comparison()
    workload_comparison()


if __name__ == "__main__":
    main()
