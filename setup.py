"""Setuptools shim.

The offline environment has no ``wheel`` package, so PEP 660 editable
installs (``pip install -e .``) cannot build; ``python setup.py develop``
installs the same editable egg-link without needing wheels.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
