"""Lock table semantics."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.mpmmu.lock_table import LockTable


def test_acquire_free_lock():
    table = LockTable()
    assert table.acquire(0x40, owner=1)
    assert table.holder_of(0x40) == 1


def test_contended_lock_denied():
    table = LockTable()
    table.acquire(0x40, owner=1)
    assert not table.acquire(0x40, owner=2)
    assert table.stats["contended_requests"] == 1


def test_release_frees_lock():
    table = LockTable()
    table.acquire(0x40, owner=1)
    table.release(0x40, owner=1)
    assert table.holder_of(0x40) is None
    assert table.acquire(0x40, owner=2)


def test_release_by_non_holder_rejected():
    table = LockTable()
    table.acquire(0x40, owner=1)
    with pytest.raises(ProtocolError):
        table.release(0x40, owner=2)


def test_release_of_free_lock_rejected():
    table = LockTable()
    with pytest.raises(ProtocolError):
        table.release(0x40, owner=1)


def test_recursive_lock_rejected():
    table = LockTable()
    table.acquire(0x40, owner=1)
    with pytest.raises(ProtocolError):
        table.acquire(0x40, owner=1)


def test_independent_addresses():
    table = LockTable()
    assert table.acquire(0x40, owner=1)
    assert table.acquire(0x80, owner=2)
    assert table.held_count == 2


def test_capacity_limit():
    table = LockTable(capacity=1)
    assert table.acquire(0x40, owner=1)
    assert not table.acquire(0x80, owner=2)
    assert table.stats["table_full_rejections"] == 1


def test_statistics():
    table = LockTable()
    table.acquire(0x40, owner=1)
    table.release(0x40, owner=1)
    assert table.stats["acquisitions"] == 1
    assert table.stats["releases"] == 1
