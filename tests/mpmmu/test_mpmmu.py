"""MPMMU behaviour through full-system runs with tiny programs."""

from __future__ import annotations

import pytest

from repro.errors import DeadlockError
from repro.mem.values import float_to_words, words_to_float
from repro.system.config import SystemConfig
from repro.system.medea import MedeaSystem
from tests.conftest import run_programs


def one_worker(**overrides) -> SystemConfig:
    return SystemConfig(n_workers=1, cache_size_kb=2, **overrides)


def test_single_read_write_round_trip(tiny_config):
    seen = {}

    def writer(ctx):
        yield ("ustore", ctx.shared_base + 8, 1234)

    def reader(ctx):
        yield from ctx.empi.barrier()
        value = yield ("uload", ctx.shared_base + 8)
        seen["value"] = value

    def writer_with_barrier(ctx):
        yield ("ustore", ctx.shared_base + 8, 1234)
        yield ("fence",)
        yield from ctx.empi.barrier()

    system = run_programs(tiny_config, writer_with_barrier, reader)
    assert seen["value"] == 1234
    assert system.mpmmu.stats["served_single_write"] == 1
    assert system.mpmmu.stats["served_single_read"] == 1
    __ = writer


def test_block_transactions_via_cache_miss():
    def program(ctx):
        base = ctx.private_base
        # Write a full line (write-allocate -> block read), then force a
        # conflicting refill to evict it dirty (block write), then read
        # it back (another block read).
        yield ctx.store(base, 11)
        cache_bytes = 2 * 1024
        conflicting = base + 2 * cache_bytes
        yield ctx.store(conflicting, 22)  # same set, different tag
        yield ctx.store(conflicting + cache_bytes, 33)  # evicts one of them
        value = yield ctx.load(base)
        assert value == 11

    system = run_programs(one_worker(cache_assoc=2), program)
    assert system.mpmmu.stats["served_block_read"] >= 3
    assert system.mpmmu.stats["served_block_write"] >= 1
    assert system.ddr.store.read_word(system.map.private_base(0)) in (0, 11)


def test_mpmmu_cache_accelerates_repeat_reads():
    def program(ctx):
        for __ in range(4):
            yield ("uload", ctx.shared_base)

    system = run_programs(one_worker(), program)
    cache_stats = system.mpmmu.cache.stats
    assert cache_stats["read_misses"] == 1
    assert cache_stats["read_hits"] == 3


def test_lock_grant_and_contention(tiny_config):
    order = []

    def contender(ctx):
        lock_addr = ctx.shared_base + 16
        yield from ctx.empi.barrier()
        yield ("lock", lock_addr)
        order.append(("acquired", ctx.rank))
        yield ("compute", 200)
        yield ("unlock", lock_addr)
        order.append(("released", ctx.rank))

    system = run_programs(tiny_config, contender, contender)
    kinds = [kind for kind, __ in order]
    assert kinds == ["acquired", "released", "acquired", "released"]
    assert system.mpmmu.locks.stats["acquisitions"] == 2
    # The loser retried at least once.
    retries = sum(node.stats["lock_retries"] for node in system.nodes)
    assert retries >= 1


def test_unlock_by_wrong_owner_detected(tiny_config):
    def locker(ctx):
        yield ("lock", ctx.shared_base)
        yield from ctx.empi.barrier()
        yield from ctx.empi.barrier()

    def bad_unlocker(ctx):
        yield from ctx.empi.barrier()
        yield ("unlock", ctx.shared_base)
        yield from ctx.empi.barrier()

    with pytest.raises(Exception):  # surfaces as a ProtocolError
        run_programs(tiny_config, locker, bad_unlocker)


def test_write_protocol_commits_all_words():
    value = 3.14159

    def program(ctx):
        base = ctx.private_base
        low, high = float_to_words(value)
        yield ctx.store(base, low)
        yield ctx.store(base + 4, high)
        yield ("flush", base)
        yield ("fence",)

    system = run_programs(one_worker(), program)
    base = system.map.private_base(0)
    low = system.ddr.store.read_word(base)
    high = system.ddr.store.read_word(base + 4)
    assert words_to_float(low, high) == value


def test_mpmmu_is_slave_only():
    """The MPMMU never initiates traffic: without requests it stays idle."""
    def program(ctx):
        yield ("compute", 100)

    system = run_programs(one_worker(), program)
    assert system.mpmmu.stats.get("requests_received", 0) == 0
    assert system.mpmmu.idle


def test_request_fifo_depth_is_worker_count():
    system = MedeaSystem(SystemConfig(n_workers=5))
    assert system.mpmmu.req_fifo.capacity == 5


def test_busy_cycles_accumulate():
    def program(ctx):
        yield ("uload", ctx.shared_base)

    system = run_programs(one_worker(), program)
    assert system.mpmmu.stats["busy_cycles"] > 0


def test_deadlock_reported_not_hung():
    """A program that waits for a message nobody sends must raise."""
    def waiter(ctx):
        yield ctx.recv_words(0, 4)  # self-recv: nobody sends

    config = SystemConfig(n_workers=2, cache_size_kb=2)

    def sender_that_never_sends(ctx):
        yield ("compute", 10)

    with pytest.raises(DeadlockError) as exc:
        run_programs(config, sender_that_never_sends, waiter)
    assert "wait_msg" in str(exc.value)
