"""Write-assembly protocol checks inside the MPMMU."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.mpmmu.mpmmu import _WriteAssembly
from repro.noc.flit import Flit
from repro.noc.packet import PacketType, SubType


def data_flit(src: int, seq: int, word: int) -> Flit:
    return Flit(dst=0, src=src, ptype=PacketType.BLOCK_WRITE,
                subtype=int(SubType.DATA), seq=seq, data=word)


def test_assembles_in_any_order():
    assembly = _WriteAssembly(src=3, addr=0x40, kind=PacketType.BLOCK_WRITE,
                              expected=4)
    done = False
    for seq, word in [(2, 22), (0, 20), (3, 23), (1, 21)]:
        done = assembly.insert(data_flit(3, seq, word))
    assert done
    assert assembly.words() == [20, 21, 22, 23]


def test_rejects_data_from_wrong_source():
    """Data from a node that was never granted the write is a protocol bug."""
    assembly = _WriteAssembly(src=3, addr=0x40, kind=PacketType.BLOCK_WRITE,
                              expected=4)
    with pytest.raises(ProtocolError):
        assembly.insert(data_flit(5, 0, 1))


def test_rejects_duplicate_sequence():
    assembly = _WriteAssembly(src=3, addr=0x40, kind=PacketType.BLOCK_WRITE,
                              expected=4)
    assembly.insert(data_flit(3, 1, 10))
    with pytest.raises(ProtocolError):
        assembly.insert(data_flit(3, 1, 11))


def test_rejects_out_of_range_sequence():
    assembly = _WriteAssembly(src=3, addr=0x40, kind=PacketType.SINGLE_WRITE,
                              expected=1)
    with pytest.raises(ProtocolError):
        assembly.insert(data_flit(3, 1, 10))


def test_single_word_write():
    assembly = _WriteAssembly(src=2, addr=0x10, kind=PacketType.SINGLE_WRITE,
                              expected=1)
    assert assembly.insert(data_flit(2, 0, 99))
    assert assembly.words() == [99]
