"""Chiplet-scale acceptance battery: collectives on hierarchical packages.

The tentpole claim of the topology refactor, as executable checks:

* a 4-chiplet, 64-tile package (4x4 compute meshes around the IO hub)
  runs tree, ring, hardware-offloaded and hierarchical allreduce with
  results bit-identical to the exact pure-python combine-order
  reference (``validated``);
* the hardware multicast engine works across chiplet boundaries — the
  regression guard for the two-port-hub replication livelock;
* at 64 tiles the hierarchical schedule beats the flat ring (the
  locality win the ``chiplet_sweep`` experiment maps in full);
* runs are deterministic: the same config reproduces the same cycles.
"""

from __future__ import annotations

import pytest

from repro.apps.collective_bench import (
    CollectiveBenchParams,
    run_collective_bench,
)
from repro.system.config import SystemConfig

ALGORITHMS = ("tree", "ring", "hier", "hw")


def run_64_tile(algorithm: str, n_values: int = 8):
    config = SystemConfig(
        n_workers=64, topology_kind="chiplet", chiplets=4,
        chiplet_grid=(4, 4), chiplet_link_latency=8, chiplet_link_width=2,
        dma_tx_queue_depth=4 if algorithm == "hw" else 0,
    )
    params = CollectiveBenchParams(
        collective="allreduce", model="empi", algorithm=algorithm,
        n_values=n_values, repeats=1,
    )
    return run_collective_bench(config, params, max_cycles=500_000)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_64_tile_allreduce_matches_the_reference(algorithm):
    result = run_64_tile(algorithm)
    assert result.validated, (
        f"{algorithm} allreduce drifted from the combine-order reference "
        f"on the 4x(4x4) package"
    )
    assert result.total_cycles > 0


def test_64_tile_hierarchical_beats_the_flat_ring():
    # 48 of every rank's 63 peers live on other chiplets: the flat ring
    # crosses the serialized uplinks ~once per hop, the hierarchical
    # schedule exactly twice per chiplet.  This is the regime the
    # chiplet_sweep experiment maps; pin the headline point here.
    hier = run_64_tile("hier")
    ring = run_64_tile("ring")
    assert hier.validated and ring.validated
    assert hier.total_cycles < ring.total_cycles


def test_64_tile_runs_are_deterministic():
    first = run_64_tile("hier")
    second = run_64_tile("hier")
    assert first.total_cycles == second.total_cycles
    assert first.op_cycles == second.op_cycles


def test_hw_multicast_crosses_serialized_uplinks():
    """Regression: fabric multicast used to livelock the moment a
    group spanned chiplets (the hub could never split the remote
    branch); the narrow serialized uplink is the hard variant."""
    config = SystemConfig(
        n_workers=8, topology_kind="chiplet", chiplets=2,
        chiplet_grid=(2, 2), chiplet_link_latency=8, chiplet_link_width=2,
        dma_tx_queue_depth=4,
    )
    params = CollectiveBenchParams(
        collective="allreduce", model="empi", algorithm="hw",
        n_values=8, repeats=2,
    )
    result = run_collective_bench(config, params, max_cycles=200_000)
    assert result.validated
