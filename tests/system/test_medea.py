"""MedeaSystem assembly and inspection."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, MemoryAccessError
from repro.mem.values import float_to_words
from repro.system.config import SystemConfig
from repro.system.medea import MPMMU_NODE, MedeaSystem
from tests.conftest import run_programs


def test_component_count_and_placement():
    system = MedeaSystem(SystemConfig(n_workers=3))
    # fabric + mpmmu + 3 workers
    assert len(system.sim.components) == 5
    assert system.mpmmu.ports.node == MPMMU_NODE
    assert [node.node_id for node in system.nodes] == [1, 2, 3]


def test_grid_autosizing():
    system = MedeaSystem(SystemConfig(n_workers=15))
    assert system.topology.width * system.topology.height >= 16


def test_load_programs_count_checked():
    system = MedeaSystem(SystemConfig(n_workers=2))
    with pytest.raises(ConfigError):
        system.load_programs([lambda ctx: iter(())])


def test_context_rank_binding():
    system = MedeaSystem(SystemConfig(n_workers=3))
    ctx = system.context_for(2)
    assert ctx.rank == 2
    assert ctx.node_id == 3
    assert ctx.empi is not None


def test_debug_read_private_prefers_cache():
    def program(ctx):
        yield ctx.store(ctx.private_base, 123)  # dirty, never flushed

    system = run_programs(SystemConfig(n_workers=1, cache_size_kb=4), program)
    assert system.ddr.store.read_word(system.map.private_base(0)) == 0
    assert system.debug_read_word(system.map.private_base(0)) == 123


def test_debug_read_shared_prefers_unique_dirty_copy():
    def writer(ctx):
        yield ctx.store(ctx.shared_base + 64, 55)  # dirty in L1 only

    def idle(ctx):
        yield ("compute", 5)

    system = run_programs(SystemConfig(n_workers=2, cache_size_kb=4),
                          writer, idle)
    assert system.debug_read_word(system.map.shared.base + 64) == 55


def test_debug_read_detects_protocol_violation():
    """Two dirty copies of one shared word = broken software coherence."""
    def writer_a(ctx):
        yield ctx.store(ctx.shared_base + 64, 1)
        yield from ctx.empi.barrier()

    def writer_b(ctx):
        yield from ctx.empi.barrier()
        yield ctx.store(ctx.shared_base + 64, 2)

    system = run_programs(SystemConfig(n_workers=2, cache_size_kb=4),
                          writer_a, writer_b)
    with pytest.raises(MemoryAccessError):
        system.debug_read_word(system.map.shared.base + 64)


def test_debug_read_double():
    value = 9.75

    def program(ctx):
        low, high = float_to_words(value)
        yield ctx.store(ctx.private_base, low)
        yield ctx.store(ctx.private_base + 4, high)

    system = run_programs(SystemConfig(n_workers=1, cache_size_kb=4), program)
    assert system.debug_read_double(system.map.private_base(0)) == value


def test_collect_stats_shape():
    def program(ctx):
        yield ctx.store(ctx.private_base, 1)

    system = run_programs(SystemConfig(n_workers=1, cache_size_kb=4), program)
    stats = system.collect_stats()
    assert "noc" in stats and "mpmmu" in stats
    assert len(stats["workers"]) == 1
    assert "cache" in stats["workers"][0]


def test_finished_requires_drained_everything():
    system = MedeaSystem(SystemConfig(n_workers=1))
    system.load_programs([lambda ctx: iter(())])
    assert not system.finished() or system.run() == 0
    system.run(max_cycles=100)
    assert system.finished()


def test_determinism_across_runs():
    """Identical configs + programs give identical cycle counts."""
    def build_and_run():
        def worker(ctx):
            yield ctx.store(ctx.private_base, 1)
            yield from ctx.empi.send_doubles((ctx.rank + 1) % 2, [1.0])
            __ = yield from ctx.empi.recv_doubles((ctx.rank + 1) % 2, 1)
            yield from ctx.empi.barrier()

        system = run_programs(SystemConfig(n_workers=2, cache_size_kb=4),
                              worker, worker)
        return system.cycle

    assert build_and_run() == build_and_run()


def test_trace_enabled_collects_ejections():
    def program(ctx):
        yield ("uload", ctx.shared_base)

    system = run_programs(SystemConfig(n_workers=1, trace=True), program)
    assert len(system.tracer.of_kind("eject")) > 0
