"""End-to-end fault recovery: collectives under seeded faults.

The acceptance battery of the fault-injection subsystem:

* transient drops and corruptions are fully masked — every algorithm
  delivers vectors bit-identical to the fault-free combine-order
  reference, at a measurable cycle cost;
* a permanently killed (non-critical) link still delivers, at degraded
  cycles, through the recomputed productive table;
* eaten credit tokens are repaired by idempotent probes;
* a deliberately stuck collective raises a *typed* error naming rank,
  op and blocked components — never a silent spin to ``max_cycles``;
* the watchdog and the fault layer are timing-neutral when idle.
"""

from __future__ import annotations

import pytest

from repro.apps.collective_bench import (
    CollectiveBenchParams,
    run_collective_bench,
)
from repro.empi.collectives import make_comm
from repro.errors import DeadlockError, EmpiTimeoutError, WatchdogError
from repro.faults import FaultPlan
from repro.system.config import SystemConfig
from repro.system.medea import MedeaSystem

ALGORITHMS = ("tree", "ring", "hw")


def bench(algorithm: str, faults: FaultPlan | None, n_values: int = 16,
          **overrides):
    config = SystemConfig(
        n_workers=8, topology_kind="mesh", faults=faults,
        dma_tx_queue_depth=4 if algorithm == "hw" else 0,
        **overrides,
    )
    params = CollectiveBenchParams(
        collective="allreduce", model="empi", algorithm=algorithm,
        n_values=n_values, repeats=2,
    )
    return run_collective_bench(config, params)


# -- transient faults: bit-identical recovery -------------------------------


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_allreduce_recovers_bit_identically_from_drops(algorithm):
    clean = bench(algorithm, None)
    lossy = bench(algorithm, FaultPlan(seed=3, drop_rate=0.02))
    assert clean.validated and lossy.validated
    faults = lossy.stats["faults"]
    assert faults["dropped"] > 0            # faults actually fired
    assert lossy.total_cycles > clean.total_cycles  # recovery costs cycles
    tie_stats = [w["tie"] for w in lossy.stats["workers"]]
    assert sum(t.get("retx_sent", 0) for t in tie_stats) > 0 or (
        sum(d.get("retx_sent", 0)
            for d in (w["dma"] for w in lossy.stats["workers"]) if d) > 0
    )


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_allreduce_recovers_from_corruption(algorithm):
    result = bench(algorithm, FaultPlan(seed=9, corrupt_rate=0.01))
    assert result.validated
    faults = result.stats["faults"]
    assert faults["corrupted"] > 0
    # Corruption degenerates to loss at the ejection checksum...
    assert faults["crc_dropped"] > 0
    # ...and loss is repaired by NACK/retransmit, not silently absorbed.
    assert faults["nacks_issued"] > 0


def test_recovery_overhead_grows_with_fault_rate():
    cycles = [
        bench("tree", FaultPlan(seed=3, drop_rate=rate)).total_cycles
        for rate in (0.0, 0.01, 0.05)
    ]
    assert cycles[0] < cycles[1] < cycles[2]


# -- permanent link death ---------------------------------------------------


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_killed_noncritical_link_still_delivers(algorithm):
    # Link 1->E dies mid-run; the mesh stays connected, so the rerouted
    # productive table must deliver every value (degraded, not broken).
    clean = bench(algorithm, None)
    dead = bench(algorithm, FaultPlan(seed=3, dead_links=[(1, 1, 200)]))
    assert dead.validated
    assert dead.stats["faults"]["link_killed"] == 1
    assert dead.total_cycles >= clean.total_cycles


def test_drop_dead_link_and_stall_combine():
    result = bench("tree", FaultPlan(
        seed=5, drop_rate=0.02, dead_links=[(1, 1, 200)],
        stalls=[(4, 300, 200)],
    ))
    assert result.validated
    faults = result.stats["faults"]
    assert faults["dropped"] > 0
    assert faults["link_killed"] == 1
    assert faults["stall_on"] == 1 and faults["stall_off"] == 1


# -- credit-path faults -----------------------------------------------------


def test_eaten_credit_is_repaired_by_probe():
    # Rank 1 (node 2) streams its contribution to rank 0 (node 1).
    # Credit tokens carry absolute slots, so a single eaten credit heals
    # itself when the next window's token arrives; swallowing *every*
    # windowed credit from node 1 leaves the sender hard-stalled — only
    # the agent's probe (re-fetching the peer's credit value) can unjam
    # it.
    result = bench("tree", FaultPlan(seed=3, drop_credits=[(2, 1, 4)]),
                   n_values=16)
    assert result.validated
    faults = result.stats["faults"]
    assert faults["credits_eaten"] >= 1
    assert faults["probes_issued"] > 0


# -- typed liveness errors --------------------------------------------------


def _waiter(ctx):
    comm = make_comm(ctx, "empi", max_values=4)
    request = yield from comm.irecv(1, 1)
    yield from comm.wait(request)


def _silent(ctx):
    make_comm(ctx, "empi", max_values=4)
    for _ in range(200):
        yield ("compute", 1)


def test_stuck_wait_raises_typed_timeout_naming_rank_and_op():
    config = SystemConfig(n_workers=2, empi_timeout_cycles=2000)
    system = MedeaSystem(config)
    system.load_programs([_waiter, _silent])
    with pytest.raises(EmpiTimeoutError) as exc:
        system.run(max_cycles=2_000_000)
    message = str(exc.value)
    assert "rank 0" in message
    assert "wait on irecv<-1" in message
    assert "outstanding requests: irecv<-1" in message
    assert "exponential-backoff" in message


def test_timeout_error_carries_fault_context_when_faults_active():
    config = SystemConfig(
        n_workers=2, empi_timeout_cycles=2000, empi_timeout_retries=1,
        faults=FaultPlan(seed=13),
    )
    system = MedeaSystem(config)
    system.load_programs([_waiter, _silent])
    with pytest.raises(EmpiTimeoutError) as exc:
        system.run(max_cycles=2_000_000)
    assert "fault context [seed=13]" in str(exc.value)


def test_total_loss_fires_the_watchdog_with_a_structured_report():
    # 100% drop with a small retry budget: recovery gives up, every core
    # parks in a wait state, and the no-progress watchdog must turn the
    # silence into a report naming the blocked components and the fault
    # history — never a silent run to max_cycles.
    def make_program(rank):
        def program(ctx):
            comm = make_comm(ctx, "empi", "tree", max_values=4)
            yield from comm.allreduce([float(rank)] * 4)
        return program

    plan = FaultPlan(seed=1, drop_rate=1.0, max_retries=2, nack_timeout=64)
    config = SystemConfig(n_workers=4, faults=plan, watchdog_cycles=20_000)
    system = MedeaSystem(config)
    system.load_programs([make_program(rank) for rank in range(4)])
    with pytest.raises(WatchdogError) as exc:
        system.run(max_cycles=2_000_000)
    message = str(exc.value)
    assert "no progress" in message
    assert "wait_msg" in message            # the blocked components
    assert "fault context [seed=1]" in message
    assert isinstance(exc.value, DeadlockError)  # catchable as the base


# -- timing neutrality ------------------------------------------------------


def test_watchdog_is_timing_neutral():
    armed = bench("tree", None, watchdog_cycles=5_000)
    unarmed = bench("tree", None)
    assert armed.validated and unarmed.validated
    assert armed.total_cycles == unarmed.total_cycles


def test_zero_rate_plan_loses_and_retransmits_nothing():
    # The reliable wire format (wide flits, CRC, absolute credits) is
    # opt-in; with a plan attached but nothing injected the collective
    # still validates, nothing is lost, and nothing is retransmitted.
    # (Demand-only starvation NACKs may still fire while a rank simply
    # waits on a slow peer — they are ignored at the sender by design.)
    result = bench("tree", FaultPlan(seed=3))
    assert result.validated
    faults = result.stats["faults"]
    assert faults.get("dropped", 0) == 0
    assert faults.get("crc_dropped", 0) == 0
    assert sum(
        worker["tie"].get("retx_sent", 0)
        for worker in result.stats["workers"]
    ) == 0


# -- faults x chiplet topology ----------------------------------------------


def chiplet_bench(algorithm: str, faults: FaultPlan | None, **overrides):
    config = SystemConfig(
        n_workers=8, topology_kind="chiplet", chiplets=2,
        chiplet_grid=(2, 2), chiplet_link_latency=2, chiplet_link_width=1,
        faults=faults,
        dma_tx_queue_depth=4 if algorithm == "hw" else 0,
        **overrides,
    )
    params = CollectiveBenchParams(
        collective="allreduce", model="empi", algorithm=algorithm,
        n_values=16, repeats=2,
    )
    return run_collective_bench(config, params, max_cycles=500_000)


def test_killed_intra_chiplet_link_reroutes_within_the_chiplet():
    # Node 2 is c0:1,0; killing its SOUTH link leaves the 2x2 chiplet
    # mesh connected, so the rerouted productive table must deliver
    # every value through the remaining intra-chiplet path.
    clean = chiplet_bench("tree", None)
    dead = chiplet_bench("tree", FaultPlan(seed=3, dead_links=[(2, 2, 200)]))
    assert clean.validated and dead.validated
    assert dead.stats["faults"]["link_killed"] == 1
    assert dead.total_cycles >= clean.total_cycles


def test_dead_uplink_reports_an_honest_partition():
    # A chiplet has exactly one uplink; killing hub port 1 severs
    # chiplet 1 entirely.  No reroute exists, so the no-progress
    # watchdog must turn the stall into a structured report rather
    # than spinning to max_cycles.
    with pytest.raises(WatchdogError) as exc:
        chiplet_bench(
            "tree", FaultPlan(seed=3, dead_links=[(0, 1, 200)]),
            watchdog_cycles=20_000,
        )
    message = str(exc.value)
    assert "no progress" in message
    assert "wait_msg" in message


@pytest.mark.parametrize("algorithm", ("tree", "ring", "hier"))
def test_lossy_interchiplet_links_recover_bit_identically(algorithm):
    # Transient drops on a 4-chiplet package (some inevitably on the
    # serialized inter-chiplet wires): the reliable wire format must
    # mask every loss, for the flat algorithms and the hierarchical
    # schedule alike.
    config = SystemConfig(
        n_workers=16, topology_kind="chiplet", chiplets=4,
        chiplet_grid=(2, 2), chiplet_link_latency=4, chiplet_link_width=2,
        faults=FaultPlan(seed=3, drop_rate=0.02),
    )
    params = CollectiveBenchParams(
        collective="allreduce", model="empi", algorithm=algorithm,
        n_values=16, repeats=2,
    )
    result = run_collective_bench(config, params, max_cycles=500_000)
    assert result.validated
    assert result.stats["faults"]["dropped"] > 0
