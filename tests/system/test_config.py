"""SystemConfig validation and derivation."""

from __future__ import annotations

import pytest

from repro.cache.l1 import WritePolicy
from repro.errors import ConfigError
from repro.system.config import VALID_CACHE_SIZES_KB, SystemConfig
from repro.system.presets import paper_sweep_configs, reference_config


def test_defaults_validate():
    SystemConfig().validate()


def test_n_nodes_includes_mpmmu():
    assert SystemConfig(n_workers=5).n_nodes == 6


def test_cache_size_conversion():
    assert SystemConfig(cache_size_kb=8).cache_size_bytes == 8192


def test_policy_property():
    assert SystemConfig(cache_policy="wt").policy is WritePolicy.WRITE_THROUGH


def test_label_format():
    config = SystemConfig(n_workers=8, cache_size_kb=16, cache_policy="wb")
    assert config.label() == "8P_16k$_WB"


def test_with_changes_copies():
    base = SystemConfig()
    changed = base.with_changes(n_workers=9)
    assert changed.n_workers == 9
    assert base.n_workers != 9


@pytest.mark.parametrize(
    "field,value",
    [
        ("n_workers", 0),
        ("cache_size_kb", 3),
        ("cache_policy", "weird"),
        ("arbiter_mode", "bogus"),
        ("topology_kind", "ring"),
        ("eject_width", 0),
        ("write_buffer_depth", 0),
        ("cache_line_bytes", 32),
        ("ddr_read_latency", 0),
        ("grid", (2, 2)),  # too small for 5 nodes (default 4 workers)
    ],
)
def test_invalid_settings_rejected(field, value):
    with pytest.raises(ConfigError):
        SystemConfig(**{field: value}).validate()


def test_explicit_grid_accepted_when_large_enough():
    SystemConfig(n_workers=4, grid=(3, 2)).validate()


def test_reference_config_overrides():
    config = reference_config(n_workers=7)
    assert config.n_workers == 7
    config.validate()


def test_paper_sweep_is_168_points():
    configs = list(paper_sweep_configs())
    assert len(configs) == 168  # 14 worker counts x 6 caches x 2 policies
    labels = {config.label() for config in configs}
    assert len(labels) == 168


def test_paper_sweep_axes():
    configs = list(paper_sweep_configs())
    assert {c.n_workers for c in configs} == set(range(2, 16))
    assert {c.cache_size_kb for c in configs} == set(VALID_CACHE_SIZES_KB)


def test_paper_sweep_respects_base():
    base = SystemConfig(mpmmu_service_overhead=99)
    configs = list(paper_sweep_configs(workers=(2,), cache_sizes_kb=(8,),
                                       policies=("wb",), base=base))
    assert len(configs) == 1
    assert configs[0].mpmmu_service_overhead == 99
