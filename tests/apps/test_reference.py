"""Numpy Jacobi reference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.jacobi.reference import (
    initial_grid,
    jacobi_reference,
    step_reference,
    stencil,
)


def test_initial_grid_boundaries():
    grid = initial_grid(8)
    assert grid.shape == (8, 8)
    assert np.all(grid[0, 1:-1] == 1.0)
    assert np.all(grid[-1, 1:-1] == -0.5)
    assert grid[3, 0] == 0.75
    assert grid[3, -1] == 0.25
    assert np.all(grid[1:-1, 1:-1] == 0.0)


def test_initial_grid_too_small():
    with pytest.raises(ValueError):
        initial_grid(2)


def test_step_preserves_boundary():
    grid = initial_grid(6)
    new = step_reference(grid)
    assert np.array_equal(new[0, :], grid[0, :])
    assert np.array_equal(new[-1, :], grid[-1, :])
    assert np.array_equal(new[:, 0], grid[:, 0])
    assert np.array_equal(new[:, -1], grid[:, -1])


def test_step_does_not_mutate_input():
    grid = initial_grid(6)
    copy = grid.copy()
    step_reference(grid)
    assert np.array_equal(grid, copy)


def test_single_point_update_value():
    grid = initial_grid(3)
    new = step_reference(grid)
    expected = stencil(grid[0, 1], grid[2, 1], grid[1, 0], grid[1, 2])
    assert new[1, 1] == expected


def test_scalar_stencil_matches_vectorized():
    grid = initial_grid(7)
    new = step_reference(grid)
    for i in range(1, 6):
        for j in range(1, 6):
            assert new[i, j] == stencil(
                grid[i - 1, j], grid[i + 1, j], grid[i, j - 1], grid[i, j + 1]
            )


def test_jacobi_reference_iterates():
    grid = initial_grid(6)
    twice = jacobi_reference(grid, 2)
    assert np.array_equal(twice, step_reference(step_reference(grid)))


def test_convergence_toward_harmonic_solution():
    """Long Jacobi runs approach the fixed point (residual shrinks)."""
    grid = initial_grid(10)
    early = jacobi_reference(grid, 5)
    late = jacobi_reference(grid, 200)
    def residual(g):
        interior = 0.25 * (g[:-2, 1:-1] + g[2:, 1:-1] + g[1:-1, :-2] + g[1:-1, 2:])
        return np.max(np.abs(interior - g[1:-1, 1:-1]))
    assert residual(late) < residual(early) / 10
