"""Tiled matrix multiply: bit-exact under every backend and algorithm."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.matmul import (
    MatmulParams,
    a_value,
    b_value,
    reference_matmul,
    run_matmul,
)
from repro.errors import ConfigError
from repro.system.config import SystemConfig


def config_for(n_workers: int) -> SystemConfig:
    return SystemConfig(n_workers=n_workers, cache_size_kb=4)


@pytest.mark.parametrize("model", ["empi", "pure_sm"])
@pytest.mark.parametrize("algorithm", ["linear", "tree"])
def test_matmul_validates_bit_for_bit(model, algorithm):
    result = run_matmul(
        config_for(3),
        MatmulParams(n=6, tile=2, model=model, algorithm=algorithm),
    )
    assert result.validated
    assert result.value == result.expected


def test_reference_agrees_with_numpy():
    n, workers = 6, 3
    a = np.array([[a_value(i, k) for k in range(n)] for i in range(n)])
    b = np.array([[b_value(k, j) for j in range(n)] for k in range(n)])
    expected = a @ b
    reference = np.array(reference_matmul(n, workers, tile=2))
    np.testing.assert_allclose(reference, expected, rtol=1e-12)


def test_more_workers_than_k_dimension():
    """Ranks with empty k-slices still join every collective."""
    result = run_matmul(config_for(5), MatmulParams(n=4, tile=4))
    assert result.validated


def test_tile_not_dividing_n():
    result = run_matmul(config_for(2), MatmulParams(n=5, tile=2))
    assert result.validated


def test_single_worker():
    result = run_matmul(config_for(1), MatmulParams(n=4, tile=2))
    assert result.validated


def test_phase_cycles_partition_the_run():
    result = run_matmul(config_for(2), MatmulParams(n=4, tile=2))
    assert result.stage_cycles > 0
    assert result.compute_cycles > 0
    assert result.reduce_cycles > 0
    assert (result.stage_cycles + result.compute_cycles
            + result.reduce_cycles) <= result.total_cycles


def test_hybrid_beats_pure_sm_on_collectives():
    """The paper's claim, on this workload: message passing wins."""
    empi = run_matmul(config_for(4), MatmulParams(n=6, tile=2, model="empi"))
    sm = run_matmul(config_for(4), MatmulParams(n=6, tile=2, model="pure_sm"))
    assert empi.validated and sm.validated
    assert empi.value == sm.value  # same bits either way
    assert empi.reduce_cycles < sm.reduce_cycles


def test_params_validation():
    with pytest.raises(ConfigError):
        MatmulParams(n=0)
    with pytest.raises(ConfigError):
        MatmulParams(n=4, tile=5)
    with pytest.raises(ConfigError):
        MatmulParams(n=4, tile=0)
    with pytest.raises(ConfigError):
        MatmulParams(model="mpi")
