"""Synthetic traffic harness."""

from __future__ import annotations

import pytest

from repro.apps.synthetic import (
    PATTERNS,
    latency_throughput_sweep,
    run_synthetic_traffic,
)
from repro.errors import ConfigError


def test_uniform_traffic_delivers_everything():
    stats = run_synthetic_traffic(rate=0.1, cycles=800, seed=3)
    assert stats.all_delivered
    assert stats.injected > 0
    assert stats.mean_latency >= 2.0


def test_zero_rate_injects_nothing():
    stats = run_synthetic_traffic(rate=0.0, cycles=200)
    assert stats.injected == 0
    assert stats.ejected == 0


@pytest.mark.parametrize("pattern", PATTERNS)
def test_all_patterns_run_and_deliver(pattern):
    stats = run_synthetic_traffic(rate=0.05, cycles=500, pattern=pattern,
                                  seed=11)
    assert stats.all_delivered


def test_hotspot_concentrates_traffic():
    stats = run_synthetic_traffic(rate=0.1, cycles=1500, pattern="hotspot",
                                  seed=5)
    # Node 0 receives ~half of all traffic; its ejection port saturates,
    # so hotspot latency exceeds uniform latency at equal offered load.
    uniform = run_synthetic_traffic(rate=0.1, cycles=1500, pattern="uniform",
                                    seed=5)
    assert stats.mean_latency > uniform.mean_latency


def test_latency_grows_with_load():
    sweep = latency_throughput_sweep(rates=(0.02, 0.4), cycles=1500, seed=7)
    light, heavy = sweep
    assert heavy.mean_latency > light.mean_latency
    assert heavy.deflections_per_flit > light.deflections_per_flit


def test_outliers_exist_under_heavy_load():
    """The paper's 'sporadic high-latency flits' observation."""
    stats = run_synthetic_traffic(rate=0.4, cycles=2000, seed=13)
    assert stats.all_delivered          # ... but no livelock
    assert stats.max_latency > 3 * stats.mean_latency


def test_mesh_topology_supported():
    stats = run_synthetic_traffic(rate=0.05, cycles=500,
                                  topology_kind="mesh", seed=2)
    assert stats.all_delivered


def test_invalid_arguments_rejected():
    with pytest.raises(ConfigError):
        run_synthetic_traffic(rate=1.5)
    with pytest.raises(ConfigError):
        run_synthetic_traffic(pattern="tornado")


def test_deterministic_given_seed():
    first = run_synthetic_traffic(rate=0.1, cycles=600, seed=42)
    second = run_synthetic_traffic(rate=0.1, cycles=600, seed=42)
    assert first.injected == second.injected
    assert first.mean_latency == second.mean_latency
    assert first.deflections == second.deflections
