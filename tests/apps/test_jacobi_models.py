"""End-to-end Jacobi: every model validates bit-exactly and measures sanely."""

from __future__ import annotations

import pytest

from repro.apps.jacobi.driver import JacobiParams, run_jacobi
from repro.apps.jacobi.models import (
    JacobiModel,
    row_stride,
    shared_grid_bases,
    strip_grid_bases,
)
from repro.errors import ConfigError
from repro.system.config import SystemConfig

MODELS = ["hybrid_full", "hybrid_sync", "pure_sm"]


def test_row_stride_pads_to_lines():
    assert row_stride(16) == 128   # exact multiple already
    assert row_stride(15) == 128   # 120 -> padded
    assert row_stride(30) == 240


def test_layout_bases_disjoint():
    base_a, base_b = shared_grid_bases(16, 0)
    assert base_a == 64
    assert base_b - base_a == 16 * row_stride(16)
    strip_a, strip_b = strip_grid_bases(16, 4, 0x1000)
    assert strip_b - strip_a == 6 * row_stride(16)


def test_model_parse():
    assert JacobiModel.parse("pure_sm") is JacobiModel.PURE_SM
    assert JacobiModel.parse(JacobiModel.HYBRID_FULL) is JacobiModel.HYBRID_FULL
    with pytest.raises(ConfigError):
        JacobiModel.parse("magic")


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("n_workers", [1, 2, 3])
def test_models_validate_bit_exactly(model, n_workers):
    config = SystemConfig(n_workers=n_workers, cache_size_kb=4)
    result = run_jacobi(config, JacobiParams(n=10, iterations=3, model=model))
    assert result.validated
    assert result.max_abs_error == 0.0


@pytest.mark.parametrize("model", MODELS)
def test_models_validate_under_write_through(model):
    config = SystemConfig(n_workers=2, cache_size_kb=4, cache_policy="wt")
    result = run_jacobi(config, JacobiParams(n=10, iterations=2, warmup=0,
                                             model=model))
    assert result.validated


@pytest.mark.parametrize("model", MODELS)
def test_models_validate_with_tiny_thrashing_cache(model):
    """2 kB cache on a 16x16 problem: eviction paths get exercised."""
    config = SystemConfig(n_workers=2, cache_size_kb=2)
    result = run_jacobi(config, JacobiParams(n=16, iterations=2, warmup=0,
                                             model=model))
    assert result.validated


def test_more_workers_than_rows_still_validates():
    config = SystemConfig(n_workers=6, cache_size_kb=4)
    result = run_jacobi(config, JacobiParams(n=6, iterations=3))
    assert result.validated


def test_even_iteration_count_final_grid_is_a():
    config = SystemConfig(n_workers=2, cache_size_kb=4)
    result = run_jacobi(config, JacobiParams(n=8, iterations=4, warmup=1))
    assert result.validated


def test_iteration_cycles_measured_per_iteration():
    config = SystemConfig(n_workers=2, cache_size_kb=8)
    params = JacobiParams(n=10, iterations=4, warmup=1)
    result = run_jacobi(config, params)
    assert len(result.iteration_cycles) == 4
    assert len(result.measured_iterations) == 3
    assert result.cycles_per_iteration == pytest.approx(
        sum(result.measured_iterations) / 3
    )
    # Warm-up iteration (cold caches) must not be faster than steady state.
    assert result.iteration_cycles[0] >= min(result.measured_iterations)


def test_hybrid_beats_pure_sm_under_contention():
    config = SystemConfig(n_workers=4, cache_size_kb=8)
    params = dict(n=16, iterations=3, warmup=1)
    hybrid = run_jacobi(config, JacobiParams(model="hybrid_full", **params))
    pure = run_jacobi(config, JacobiParams(model="pure_sm", **params))
    assert hybrid.validated and pure.validated
    assert hybrid.cycles_per_iteration < pure.cycles_per_iteration


def test_write_through_slower_than_write_back():
    params = JacobiParams(n=16, iterations=3, warmup=1)
    wb = run_jacobi(SystemConfig(n_workers=4, cache_size_kb=8), params)
    wt = run_jacobi(
        SystemConfig(n_workers=4, cache_size_kb=8, cache_policy="wt"), params
    )
    assert wt.cycles_per_iteration > wb.cycles_per_iteration


def test_bigger_cache_never_slower_when_thrashing():
    params = JacobiParams(n=16, iterations=3, warmup=1)
    small = run_jacobi(SystemConfig(n_workers=1, cache_size_kb=2), params)
    large = run_jacobi(SystemConfig(n_workers=1, cache_size_kb=16), params)
    assert large.cycles_per_iteration <= small.cycles_per_iteration


def test_lock_writes_ablation_slows_hybrid_sync():
    params = dict(n=12, iterations=2, warmup=0)
    plain = run_jacobi(
        SystemConfig(n_workers=2, cache_size_kb=8),
        JacobiParams(model="hybrid_sync", **params),
    )
    locked = run_jacobi(
        SystemConfig(n_workers=2, cache_size_kb=8),
        JacobiParams(model="hybrid_sync", lock_writes=True, **params),
    )
    assert locked.validated
    assert locked.cycles_per_iteration > plain.cycles_per_iteration


def test_memory_requirement_checked():
    config = SystemConfig(n_workers=1, cache_size_kb=2, shared_size=1024)
    with pytest.raises(ConfigError):
        run_jacobi(config, JacobiParams(n=30, model="pure_sm"))


def test_private_requirement_checked():
    config = SystemConfig(n_workers=1, cache_size_kb=2, private_size=1024)
    with pytest.raises(ConfigError):
        run_jacobi(config, JacobiParams(n=30, model="hybrid_full"))


def test_params_validation():
    with pytest.raises(ConfigError):
        JacobiParams(n=2)
    with pytest.raises(ConfigError):
        JacobiParams(iterations=0)
    with pytest.raises(ConfigError):
        JacobiParams(iterations=2, warmup=2)


def test_no_message_traffic_in_pure_sm():
    config = SystemConfig(n_workers=3, cache_size_kb=4)
    result = run_jacobi(
        config, JacobiParams(n=10, iterations=2, warmup=0, model="pure_sm")
    )
    for worker in result.stats["workers"]:
        assert worker["tie"].get("data_flits_sent", 0) == 0
        assert worker["tie"].get("requests_sent", 0) == 0


def test_no_lock_traffic_in_hybrid_full():
    config = SystemConfig(n_workers=3, cache_size_kb=4)
    result = run_jacobi(
        config, JacobiParams(n=10, iterations=2, warmup=0, model="hybrid_full")
    )
    assert result.stats["mpmmu"].get("served_lock", 0) == 0
    assert result.stats["mpmmu"].get("served_unlock", 0) == 0


def test_dissemination_barrier_config_works():
    config = SystemConfig(n_workers=4, cache_size_kb=4,
                          empi_barrier="dissemination")
    result = run_jacobi(config, JacobiParams(n=10, iterations=2, warmup=0))
    assert result.validated


def test_mesh_topology_also_validates():
    config = SystemConfig(n_workers=3, cache_size_kb=4, topology_kind="mesh")
    result = run_jacobi(config, JacobiParams(n=10, iterations=2, warmup=0))
    assert result.validated


@pytest.mark.parametrize("mode", ["mux", "single_fifo", "dual_fifo"])
def test_all_arbiter_modes_validate(mode):
    config = SystemConfig(n_workers=2, cache_size_kb=4, arbiter_mode=mode)
    result = run_jacobi(config, JacobiParams(n=10, iterations=2, warmup=0))
    assert result.validated
