"""The distributed CG solver: convergence, bit-identity, overlap win."""

from __future__ import annotations

import pytest

from repro.apps.cg import CgParams, reference_cg, run_cg
from repro.errors import ConfigError
from repro.system.config import SystemConfig
from repro.system.presets import cg_reference_config


def test_reference_cg_converges():
    x, history = reference_cg(n=32, n_workers=4, iterations=12)
    assert len(x) == 32
    assert len(history) == 13
    # SPD system, exact arithmetic apart: the residual norm collapses.
    assert history[-1] < history[0] * 1e-3


def test_reference_algorithms_agree_on_convergence():
    # Different combine orders give different bits but the same physics.
    __, linear = reference_cg(32, 4, 8, "linear")
    __, tree = reference_cg(32, 4, 8, "tree")
    assert linear[-1] == pytest.approx(tree[-1], rel=1e-9)


@pytest.mark.parametrize("model", ["empi", "pure_sm"])
@pytest.mark.parametrize("overlap", [False, True])
def test_cg_validates_bit_for_bit(model, overlap):
    config = SystemConfig(n_workers=2, cache_size_kb=8)
    result = run_cg(
        config,
        CgParams(n=12, iterations=4, model=model, algorithm="tree",
                 overlap=overlap),
    )
    assert result.validated
    assert result.converged


def test_cg_blocking_and_overlap_agree_across_models():
    """All four (model, overlap) variants deliver the same bits."""
    config = SystemConfig(n_workers=2, cache_size_kb=8)
    outcomes = {}
    for model in ("empi", "pure_sm"):
        for overlap in (False, True):
            result = run_cg(
                config,
                CgParams(n=12, iterations=4, model=model, overlap=overlap),
            )
            assert result.validated
            outcomes[(model, overlap)] = (result.x, result.rr_history)
    baseline = outcomes[("empi", False)]
    for key, outcome in outcomes.items():
        assert outcome == baseline, f"{key} diverged from blocking empi"


def test_overlap_strictly_faster_on_reference_mesh():
    """The acceptance point: 8-worker reference machine, hybrid model —
    overlap must win outright, with measured overlap efficiency."""
    config = cg_reference_config()
    params = dict(n=64, iterations=10, model="empi", algorithm="tree")
    blocking = run_cg(config, CgParams(overlap=False, **params))
    overlapped = run_cg(config, CgParams(overlap=True, **params))
    assert blocking.validated and overlapped.validated
    assert overlapped.x == blocking.x
    assert overlapped.rr_history == blocking.rr_history
    assert overlapped.total_cycles < blocking.total_cycles
    assert overlapped.overlap_efficiency > 0.5
    assert blocking.overlap_efficiency == 0.0


def test_overlap_instrumentation_present_only_when_overlapping():
    config = SystemConfig(n_workers=2)
    result = run_cg(
        config, CgParams(n=8, iterations=2, model="empi", overlap=True)
    )
    assert any(s.inflight_cycles > 0 for s in result.overlap_per_rank.values())
    assert any(s.coexist_cycles > 0 for s in result.overlap_per_rank.values())


def test_cg_double_run_is_bit_identical():
    config = SystemConfig(n_workers=4)
    params = CgParams(n=16, iterations=3, model="empi", overlap=True)
    first = run_cg(config, params)
    second = run_cg(config, params)
    assert first.total_cycles == second.total_cycles
    assert first.solve_cycles == second.solve_cycles
    assert first.x == second.x
    assert first.stats["workers"] == second.stats["workers"]
    assert first.stats["noc"] == second.stats["noc"]


def test_cg_rejects_more_workers_than_rows():
    with pytest.raises(ConfigError):
        run_cg(SystemConfig(n_workers=4), CgParams(n=3, iterations=1))


def test_cg_params_validation():
    with pytest.raises(ConfigError):
        CgParams(n=0)
    with pytest.raises(ConfigError):
        CgParams(iterations=0)
    with pytest.raises(ConfigError):
        CgParams(poll_interval=0)
