"""Pipelined stream kernel: exact results, real pipelining, both models."""

from __future__ import annotations

import pytest

from repro.apps.stream import StreamParams, reference_stream, run_stream
from repro.errors import ConfigError
from repro.system.config import SystemConfig


def config_for(n_workers: int) -> SystemConfig:
    return SystemConfig(n_workers=n_workers, cache_size_kb=4)


@pytest.mark.parametrize("model", ["empi", "pure_sm"])
@pytest.mark.parametrize("algorithm", ["linear", "tree"])
def test_stream_validates_bit_for_bit(model, algorithm):
    result = run_stream(
        config_for(3),
        StreamParams(n_blocks=4, block_values=4, model=model,
                     algorithm=algorithm),
    )
    assert result.validated
    assert result.total == result.expected_total
    assert result.checksum == result.expected_checksum


def test_single_worker_degenerates_cleanly():
    result = run_stream(config_for(1), StreamParams(n_blocks=3, block_values=4))
    assert result.validated
    # One stage: the consumer checksum is the only stage sum.
    total, checksum = reference_stream(result.params, 1)
    assert result.total == total == checksum


def test_deeper_pipeline_still_validates():
    result = run_stream(config_for(5), StreamParams(n_blocks=4, block_values=4))
    assert result.validated


def test_pipeline_actually_overlaps():
    """Doubling the block count must cost much less than double the
    fill+drain latency: stages work concurrently."""
    short = run_stream(config_for(3), StreamParams(n_blocks=2, block_values=8))
    long = run_stream(config_for(3), StreamParams(n_blocks=8, block_values=8))
    assert short.validated and long.validated
    # 4x the blocks; a non-pipelined implementation would take ~4x the
    # cycles. Allow generous slack while still proving overlap.
    assert long.pipeline_cycles < 3.0 * short.pipeline_cycles


def test_hybrid_beats_pure_sm_streaming():
    empi = run_stream(config_for(3), StreamParams(model="empi"))
    sm = run_stream(config_for(3), StreamParams(model="pure_sm"))
    assert empi.validated and sm.validated
    assert empi.pipeline_cycles < sm.pipeline_cycles


def test_params_validation():
    with pytest.raises(ConfigError):
        StreamParams(n_blocks=0)
    with pytest.raises(ConfigError):
        StreamParams(block_values=0)
    with pytest.raises(ConfigError):
        StreamParams(model="tcp")
