"""Row partitioning across workers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apps.jacobi.partition import (
    next_owner,
    partition_interior,
    prev_owner,
)
from repro.errors import ConfigError


def test_even_split():
    strips = partition_interior(10, 4)  # 8 interior rows over 4 workers
    assert [s.n_rows for s in strips] == [2, 2, 2, 2]
    assert strips[0].first_row == 1
    assert strips[3].last_row == 8


def test_uneven_split_extras_to_low_ranks():
    strips = partition_interior(9, 3)  # 7 interior rows
    assert [s.n_rows for s in strips] == [3, 2, 2]


def test_more_workers_than_rows():
    strips = partition_interior(5, 6)  # 3 interior rows, 6 workers
    assert [s.n_rows for s in strips] == [1, 1, 1, 0, 0, 0]
    assert strips[3].empty


def test_single_worker_owns_everything():
    strips = partition_interior(8, 1)
    assert strips[0].first_row == 1
    assert strips[0].n_rows == 6


def test_neighbors_simple():
    strips = partition_interior(10, 4)
    assert prev_owner(strips, 0) is None
    assert next_owner(strips, 0) == 1
    assert prev_owner(strips, 2) == 1
    assert next_owner(strips, 3) is None


def test_neighbors_with_empty_strips():
    strips = partition_interior(5, 5)  # 3 rows, ranks 3-4 empty
    assert next_owner(strips, 2) is None
    assert prev_owner(strips, 3) is None  # empty strip has no neighbors
    assert next_owner(strips, 4) is None


def test_invalid_inputs():
    with pytest.raises(ConfigError):
        partition_interior(2, 1)
    with pytest.raises(ConfigError):
        partition_interior(8, 0)


@given(n=st.integers(3, 70), workers=st.integers(1, 16))
def test_partition_covers_interior_exactly(n, workers):
    strips = partition_interior(n, workers)
    rows = []
    for strip in strips:
        rows.extend(range(strip.first_row, strip.first_row + strip.n_rows))
    assert rows == list(range(1, n - 1))


@given(n=st.integers(4, 70), workers=st.integers(1, 16))
def test_neighbor_relations_are_consistent(n, workers):
    strips = partition_interior(n, workers)
    for strip in strips:
        if strip.empty:
            continue
        up = prev_owner(strips, strip.rank)
        if up is not None:
            assert strips[up].last_row == strip.first_row - 1
            assert next_owner(strips, up) == strip.rank
        down = next_owner(strips, strip.rank)
        if down is not None:
            assert strips[down].first_row == strip.last_row + 1
            assert prev_owner(strips, down) == strip.rank


@given(n=st.integers(3, 70), workers=st.integers(2, 16))
def test_balance_within_one_row(n, workers):
    strips = partition_interior(n, workers)
    sizes = [s.n_rows for s in strips]
    assert max(sizes) - min(sizes) <= 1
