"""Collective microbenchmark driver."""

from __future__ import annotations

import pytest

from repro.apps.collective_bench import (
    COLLECTIVES,
    CollectiveBenchParams,
    run_collective_bench,
)
from repro.errors import ConfigError
from repro.system.config import SystemConfig


def config_for(n_workers: int) -> SystemConfig:
    return SystemConfig(n_workers=n_workers, cache_size_kb=2)


@pytest.mark.parametrize("collective", COLLECTIVES)
def test_every_collective_benchmarks_and_validates(collective):
    for model in ("empi", "pure_sm"):
        result = run_collective_bench(
            config_for(3),
            CollectiveBenchParams(collective=collective, model=model,
                                  n_values=4, repeats=2),
        )
        assert result.validated, f"{collective}/{model}"
        assert result.op_cycles > 0
        assert result.cycles_per_op == result.op_cycles / 2


def test_sm_costs_more_than_empi():
    """The headline comparison the microbenchmark exists to make."""
    cycles = {}
    for model in ("empi", "pure_sm"):
        result = run_collective_bench(
            config_for(4),
            CollectiveBenchParams(collective="allreduce", model=model),
        )
        assert result.validated
        cycles[model] = result.cycles_per_op
    assert cycles["pure_sm"] > cycles["empi"]


def test_tree_beats_linear_at_scale_for_bcast():
    """log-depth forwarding must beat the root's serial sends."""
    cycles = {}
    for algorithm in ("linear", "tree"):
        result = run_collective_bench(
            config_for(8),
            CollectiveBenchParams(collective="bcast", model="empi",
                                  algorithm=algorithm, n_values=16),
        )
        assert result.validated
        cycles[algorithm] = result.cycles_per_op
    assert cycles["tree"] < cycles["linear"]


def test_params_validation():
    with pytest.raises(ConfigError):
        CollectiveBenchParams(collective="alltoall")
    with pytest.raises(ConfigError):
        CollectiveBenchParams(n_values=0)
    with pytest.raises(ConfigError):
        CollectiveBenchParams(repeats=0)
