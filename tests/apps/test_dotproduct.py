"""Distributed dot product: both reduction strategies."""

from __future__ import annotations

import pytest

from repro.apps.dotproduct import (
    DotProductParams,
    ReductionModel,
    chunks_for,
    reference_dot,
    run_dotproduct,
)
from repro.errors import ConfigError
from repro.system.config import SystemConfig


def test_chunks_cover_everything():
    chunks = chunks_for(10, 3)
    assert [c.n_rows for c in chunks] == [4, 3, 3]
    covered = []
    for chunk in chunks:
        covered.extend(range(chunk.first_row, chunk.first_row + chunk.n_rows))
    assert covered == list(range(10))


def test_reference_depends_on_worker_grouping():
    # FP addition is not associative: different groupings, different bits.
    assert reference_dot(64, 1) == pytest.approx(reference_dot(64, 4))


def test_model_parse():
    assert ReductionModel.parse("empi") is ReductionModel.EMPI
    with pytest.raises(ConfigError):
        ReductionModel.parse("tree")


def test_params_validation():
    with pytest.raises(ConfigError):
        DotProductParams(n_elements=0)


@pytest.mark.parametrize("model", ["empi", "pure_sm"])
@pytest.mark.parametrize("n_workers", [1, 2, 4])
def test_dotproduct_bit_exact(model, n_workers):
    config = SystemConfig(n_workers=n_workers, cache_size_kb=4)
    result = run_dotproduct(config, DotProductParams(64, model))
    assert result.validated
    assert result.value == result.expected


def test_empi_reduction_beats_sm_reduction():
    config = SystemConfig(n_workers=6, cache_size_kb=4)
    empi = run_dotproduct(config, DotProductParams(120, "empi"))
    pure = run_dotproduct(config, DotProductParams(120, "pure_sm"))
    assert empi.validated and pure.validated
    assert empi.reduction_cycles < pure.reduction_cycles


def test_sm_reduction_uses_locks_empi_does_not():
    config = SystemConfig(n_workers=3, cache_size_kb=4)
    empi = run_dotproduct(config, DotProductParams(48, "empi"))
    pure = run_dotproduct(config, DotProductParams(48, "pure_sm"))
    assert empi.stats["mpmmu"].get("served_lock", 0) == 0
    assert pure.stats["mpmmu"].get("served_lock", 0) >= 3


def test_uneven_elements_validate():
    config = SystemConfig(n_workers=3, cache_size_kb=4)
    result = run_dotproduct(config, DotProductParams(50, "empi"))
    assert result.validated


def test_more_workers_than_elements():
    config = SystemConfig(n_workers=6, cache_size_kb=4)
    result = run_dotproduct(config, DotProductParams(4, "empi"))
    assert result.validated


def test_determinism():
    config = SystemConfig(n_workers=4, cache_size_kb=4)
    first = run_dotproduct(config, DotProductParams(64, "pure_sm"))
    second = run_dotproduct(config, DotProductParams(64, "pure_sm"))
    assert first.total_cycles == second.total_cycles
    assert first.value == second.value
