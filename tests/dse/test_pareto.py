"""Pareto front and the kill rule."""

from __future__ import annotations

from repro.dse.pareto import FrontPoint, kill_rule_prune, pareto_front


def fp(area: float, speedup: float, label: str = "") -> FrontPoint:
    return FrontPoint(area, speedup, label or f"{area}/{speedup}")


def test_dominated_points_removed():
    points = [fp(1, 10), fp(2, 5), fp(3, 20)]
    front = pareto_front(points)
    assert [(p.area_mm2, p.speedup) for p in front] == [(1, 10), (3, 20)]


def test_front_sorted_by_area():
    points = [fp(5, 50), fp(1, 10), fp(3, 30)]
    front = pareto_front(points)
    assert [p.area_mm2 for p in front] == [1, 3, 5]


def test_equal_area_keeps_fastest():
    points = [fp(2, 10, "slow"), fp(2, 20, "fast")]
    front = pareto_front(points)
    assert len(front) == 1
    assert front[0].label == "fast"


def test_empty_front():
    assert pareto_front([]) == []
    assert kill_rule_prune([]) == []


def test_kill_rule_keeps_linear_or_better():
    # +100% area for +200% speedup: keep.
    front = [fp(1, 10), fp(2, 30)]
    kept = kill_rule_prune(front)
    assert len(kept) == 2


def test_kill_rule_drops_sublinear():
    # +100% area for +10% speedup: kill.
    front = [fp(1, 10), fp(2, 11)]
    kept = kill_rule_prune(front)
    assert len(kept) == 1


def test_kill_rule_exactly_linear_is_kept():
    front = [fp(1, 10), fp(2, 20)]  # +100% area, +100% speedup
    kept = kill_rule_prune(front)
    assert len(kept) == 2


def test_kill_rule_cumulative_steps():
    """Individually sublinear points can be bridged by a later jump."""
    front = [fp(1, 10), fp(1.1, 10.1), fp(2.0, 25)]
    kept = kill_rule_prune(front)
    labels = [p.area_mm2 for p in kept]
    assert 1 in labels
    assert 2.0 in labels  # reached by the cumulative comparison from 1.0


def test_kill_rule_threshold_parameter():
    front = [fp(1, 10), fp(2, 15)]  # +100% area, +50% speedup
    assert len(kill_rule_prune(front, threshold=1.0)) == 1
    assert len(kill_rule_prune(front, threshold=0.4)) == 2


def test_kill_rule_starts_from_smallest_area():
    front = [fp(3, 30), fp(1, 10)]
    kept = kill_rule_prune(front)
    assert kept[0].area_mm2 == 1


def test_paper_shaped_staircase():
    """A knee followed by diminishing returns: the tail gets killed."""
    cloud = [
        fp(2.5, 1.0, "2P_2k$"),
        fp(3.0, 1.2, "3P_2k$"),
        fp(7.0, 4.0, "8P_16k$"),    # the knee: caches start fitting
        fp(9.0, 9.0, "10P_16k$"),
        fp(12.0, 10.0, "13P_16k$"),
        fp(20.0, 10.5, "15P_64k$"),  # sublinear tail
    ]
    front = pareto_front(cloud)
    kept = kill_rule_prune(front)
    labels = [p.label for p in kept]
    assert "10P_16k$" in labels
    assert "15P_64k$" not in labels
