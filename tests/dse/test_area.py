"""Area model sanity."""

from __future__ import annotations

from repro.dse.area import AreaModel
from repro.system.config import SystemConfig


def test_area_monotonic_in_workers():
    model = AreaModel()
    small = model.chip_area(SystemConfig(n_workers=2, cache_size_kb=8))
    large = model.chip_area(SystemConfig(n_workers=8, cache_size_kb=8))
    assert large > small


def test_area_monotonic_in_cache():
    model = AreaModel()
    small = model.chip_area(SystemConfig(n_workers=4, cache_size_kb=2))
    large = model.chip_area(SystemConfig(n_workers=4, cache_size_kb=64))
    assert large > small


def test_policy_does_not_change_area():
    model = AreaModel()
    wb = model.chip_area(SystemConfig(n_workers=4, cache_policy="wb"))
    wt = model.chip_area(SystemConfig(n_workers=4, cache_policy="wt"))
    assert wb == wt


def test_calibration_anchors_paper_range():
    """Fig. 7's largest configs sit near 20-22 mm^2, smallest near 2-4."""
    model = AreaModel()
    largest = model.chip_area(SystemConfig(n_workers=15, cache_size_kb=32))
    smallest = model.chip_area(SystemConfig(n_workers=2, cache_size_kb=2))
    assert 18.0 <= largest <= 24.0
    assert 2.0 <= smallest <= 5.0


def test_noc_overhead_is_100_percent_of_core_logic():
    model = AreaModel()
    assert model.core_area(0) == 2 * model.core_logic_mm2


def test_mpmmu_larger_than_core():
    model = AreaModel()
    assert model.mpmmu_area(16) > model.core_area(16)
