"""Declarative sweep spaces: axes, variants, zip groups, schema hashing."""

from __future__ import annotations

import dataclasses

import pytest

from repro.apps.collective_bench import CollectiveBenchParams
from repro.apps.jacobi.driver import JacobiParams
from repro.apps.synthetic import SyntheticParams
from repro.dse.space import (
    Axis,
    SweepSpace,
    Variant,
    jacobi_sweep_space,
    seed_axis,
)
from repro.errors import ConfigError
from repro.system.config import SystemConfig


def tiny_space(name: str = "t", **kwargs) -> SweepSpace:
    defaults = dict(
        workers=(2, 3), cache_sizes_kb=(4, 8), policies=("wb",),
        params=JacobiParams(n=6, iterations=2, warmup=0),
    )
    defaults.update(kwargs)
    return jacobi_sweep_space(name, **defaults)


def test_points_cross_product():
    space = tiny_space()
    points = space.points()
    assert len(points) == 4 == space.n_points
    labels = {p.config.label() for p in points}
    assert labels == {"2P_4k$_WB", "2P_8k$_WB", "3P_4k$_WB", "3P_8k$_WB"}


def test_points_follow_axis_declaration_order():
    coords = [p.coords_dict for p in tiny_space().points()]
    assert coords[0] == {"workers": 2, "cache_kb": 4, "policy": "wb"}
    # The last axis spins fastest, like nested for-loops.
    assert [c["cache_kb"] for c in coords] == [4, 8, 4, 8]
    assert [c["workers"] for c in coords] == [2, 2, 3, 3]


def test_empty_axis_rejected():
    with pytest.raises(ConfigError):
        Axis("workers", ())


def test_bad_axis_target_rejected():
    with pytest.raises(ConfigError):
        Axis("workers", (1,), target="nowhere")


def test_duplicate_axis_names_rejected():
    with pytest.raises(ConfigError):
        SweepSpace(
            name="dup", app=print,
            axes=(Axis("a", (1,)), Axis("a", (2,))),
        )


def test_key_stability_and_sensitivity():
    space = tiny_space()
    assert space.points()[0].key == space.points()[0].key
    keys = {p.key for p in space.points()}
    assert len(keys) == 4  # every point distinct


def test_key_sensitive_to_workload():
    small = tiny_space(params=JacobiParams(n=8)).points()[0]
    large = tiny_space(params=JacobiParams(n=16)).points()[0]
    assert small.key != large.key


def test_key_sensitive_to_model():
    full = tiny_space(params=JacobiParams(n=8, model="hybrid_full"))
    pure = tiny_space(params=JacobiParams(n=8, model="pure_sm"))
    assert full.points()[0].key != pure.points()[0].key


def test_base_config_propagates():
    base = SystemConfig(ddr_read_latency=99)
    space = tiny_space(base_config=base)
    assert space.points()[0].config.ddr_read_latency == 99


def test_schema_hash_ignores_value_lists():
    # Same shape, different values: shared keys let a subset sweep reuse
    # a superset's warm cache (fig7 quick reuses fig6 quick's points).
    wide = tiny_space(policies=("wb", "wt"))
    narrow = tiny_space(policies=("wb",))
    assert wide.schema_hash() == narrow.schema_hash()
    wide_keys = {p.key for p in wide.points()}
    assert {p.key for p in narrow.points()} <= wide_keys


def test_schema_hash_sensitive_to_axis_shape():
    base = tiny_space()
    renamed = SweepSpace(
        name=base.name, app=base.app, app_id=base.app_id,
        axes=(Axis("cores", (2, 3), field="n_workers"),) + base.axes[1:],
        base_config=base.base_config, base_params=base.base_params,
    )
    assert renamed.schema_hash() != base.schema_hash()


def test_schema_hash_sensitive_to_app():
    base = tiny_space()
    other = dataclasses.replace(base, app_id="other_app")
    assert other.schema_hash() != base.schema_hash()


def test_variant_axis_applies_bundled_overrides():
    space = SweepSpace(
        name="v", app=print, app_id="x",
        axes=(
            Axis("variant", (
                Variant("sw", params={"model": "pure_sm"}),
                Variant("hw(q4)", config={"dma_tx_queue_depth": 4},
                        params={"model": "hybrid_full"}),
            )),
        ),
        base_params=JacobiParams(n=6),
    )
    points = space.points()
    assert [p.coords_dict["variant"] for p in points] == ["sw", "hw(q4)"]
    assert points[1].config.dma_tx_queue_depth == 4
    assert str(points[1].params.model) != str(points[0].params.model)
    assert points[0].key != points[1].key


def test_prune_drops_combinations():
    space = SweepSpace(
        name="p", app=print, app_id="x",
        axes=(
            Axis("collective", ("scatter", "bcast"), target="params"),
            Axis("algorithm", ("linear", "tree"), target="params"),
        ),
        base_params=CollectiveBenchParams(),
        prune=lambda c: c["collective"] == "scatter"
        and c["algorithm"] == "tree",
    )
    coords = [p.coords_dict for p in space.points()]
    assert {"collective": "scatter", "algorithm": "tree"} not in coords
    assert len(coords) == 3


def test_zip_groups_advance_together():
    space = SweepSpace(
        name="z", app=print, app_id="x",
        axes=(
            Axis("workers", (2, 4), field="n_workers"),
            Axis("cache_kb", (4, 8), field="cache_size_kb"),
        ),
        zip_groups=(("workers", "cache_kb"),),
    )
    coords = [p.coords_dict for p in space.points()]
    assert coords == [
        {"workers": 2, "cache_kb": 4},
        {"workers": 4, "cache_kb": 8},
    ]


def test_zip_groups_unequal_lengths_rejected():
    space = SweepSpace(
        name="z", app=print, app_id="x",
        axes=(
            Axis("workers", (2, 4, 8), field="n_workers"),
            Axis("cache_kb", (4, 8), field="cache_size_kb"),
        ),
        zip_groups=(("workers", "cache_kb"),),
    )
    with pytest.raises(ConfigError):
        space.points()


def test_zip_group_unknown_axis_rejected():
    with pytest.raises(ConfigError):
        SweepSpace(
            name="z", app=print, app_id="x",
            axes=(Axis("workers", (2,), field="n_workers"),),
            zip_groups=(("workers", "ghost"),),
        )


def test_seed_axis_from_count_and_tuple():
    assert seed_axis(3).values == (0, 1, 2)
    assert seed_axis((7, 11)).values == (7, 11)
    space = SweepSpace(
        name="s", app=print, app_id="x",
        axes=(Axis("rate", (0.1,), target="params"), seed_axis(2)),
        base_params=SyntheticParams(),
    )
    seeds = [p.params.seed for p in space.points()]
    assert seeds == [0, 1]
    assert len({p.key for p in space.points()}) == 2
