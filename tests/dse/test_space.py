"""Sweep space definitions."""

from __future__ import annotations

import pytest

from repro.apps.jacobi.driver import JacobiParams
from repro.dse.space import SweepPoint, SweepSpec
from repro.errors import ConfigError
from repro.system.config import SystemConfig


def test_points_cross_product():
    spec = SweepSpec(
        name="t", workers=(2, 3), cache_sizes_kb=(4, 8), policies=("wb",),
    )
    points = spec.points()
    assert len(points) == 4 == spec.n_points
    labels = {p.config.label() for p in points}
    assert labels == {"2P_4k$_WB", "2P_8k$_WB", "3P_4k$_WB", "3P_8k$_WB"}


def test_empty_axis_rejected():
    with pytest.raises(ConfigError):
        SweepSpec(name="t", workers=())


def test_key_stability_and_sensitivity():
    spec = SweepSpec(name="t", workers=(2,), cache_sizes_kb=(4,),
                     policies=("wb",))
    point = spec.points()[0]
    assert point.key() == spec.points()[0].key()
    other = SweepPoint(point.config.with_changes(cache_size_kb=8),
                       point.params)
    assert other.key() != point.key()


def test_key_sensitive_to_workload():
    config = SystemConfig(n_workers=2)
    small = SweepPoint(config, JacobiParams(n=8))
    large = SweepPoint(config, JacobiParams(n=16))
    assert small.key() != large.key()


def test_key_sensitive_to_model():
    config = SystemConfig(n_workers=2)
    full = SweepPoint(config, JacobiParams(n=8, model="hybrid_full"))
    pure = SweepPoint(config, JacobiParams(n=8, model="pure_sm"))
    assert full.key() != pure.key()


def test_base_config_propagates():
    base = SystemConfig(ddr_read_latency=99)
    spec = SweepSpec(name="t", workers=(2,), cache_sizes_kb=(4,),
                     policies=("wb",), base_config=base)
    assert spec.points()[0].config.ddr_read_latency == 99
