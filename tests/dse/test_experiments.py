"""Experiment orchestration, run at miniature scale."""

from __future__ import annotations

import pytest

from repro.apps.jacobi.driver import JacobiParams
from repro.dse.experiments import (
    ALL_EXPERIMENTS,
    execution_time_experiment,
    experiment_collectives,
    experiment_matmul,
    experiment_noc,
    experiment_simspeed,
    experiment_stream,
    full_scale_requested,
    speedup_area_experiment,
)
from repro.dse.registry import Experiment
from repro.dse.runner import run_sweep
from repro.dse.space import jacobi_sweep_space


def test_registry_covers_every_artifact():
    assert set(ALL_EXPERIMENTS) == {
        "fig6", "fig7", "fig8", "fig9", "compare", "noc", "simspeed",
        "collectives", "hw_collectives", "chiplet_sweep", "matmul",
        "stream", "cg", "fault_sweep",
    }


def test_every_experiment_shares_the_cli_signature():
    """The CLI calls every runner as f(full, jobs, cache_dir)."""
    import inspect

    for name, runner in ALL_EXPERIMENTS.items():
        parameters = inspect.signature(runner).parameters
        for arg in ("full", "jobs", "cache_dir"):
            assert arg in parameters, f"{name} lacks {arg}"


def test_full_scale_env(monkeypatch):
    monkeypatch.delenv("MEDEA_FULL", raising=False)
    assert not full_scale_requested()
    monkeypatch.setenv("MEDEA_FULL", "1")
    assert full_scale_requested()
    monkeypatch.setenv("MEDEA_FULL", "0")
    assert not full_scale_requested()


def test_execution_time_experiment_miniature(tmp_path):
    report = execution_time_experiment(
        "mini6",
        paper_size=60,
        policies=("wb",),
        paper_caches=(2,),
        full=False,
        jobs=1,
        cache_dir=tmp_path,
        quick_size=8,
        quick_caches=(2, 4),
        quick_workers=(1, 2),
    )
    assert "mini6" in report.text
    assert "2kB$WB" in report.text
    assert len(report.series) == 2
    saved = report.save(tmp_path)
    assert saved.exists()


def test_speedup_area_experiment_miniature(tmp_path):
    report = speedup_area_experiment(
        "mini7", "mini6", 60, (2,),
        full=False, jobs=1, cache_dir=tmp_path,
        quick_size=8, quick_caches=(2, 4),
    )
    assert "speedup" in report.text
    assert "pareto" in report.series
    assert report.series["kill-rule"]
    # Speedup is relative to the smallest-area config: its point is 1.0.
    assert min(s for __, s in report.series["pareto"]) == pytest.approx(1.0)


def test_noc_experiment_quick():
    report = experiment_noc(full=False)
    assert "all delivered" in report.text
    assert all(row[-1] == "yes" for row in report.rows)


def test_simspeed_reports_throughput():
    report = experiment_simspeed(full=False)
    assert "cycles/sec" in report.text
    assert report.rows[0][2] > 0


def test_collectives_experiment_quick():
    report = experiment_collectives(full=False)
    assert "sm/empi" in report.text
    # Every collective appears, and every SM point costs more than eMPI
    # (the paper's headline claim, per collective).
    names = {row[0] for row in report.rows}
    assert names == {"bcast", "reduce", "allreduce", "scatter", "gather"}
    assert all(float(row[-1][:-1]) > 1.0 for row in report.rows)


def test_collectives_experiment_hits_the_result_cache(tmp_path, monkeypatch):
    """Second run with the same cache dir must not simulate anything."""
    first = experiment_collectives(full=False, cache_dir=tmp_path)
    assert (tmp_path / "collectives.json").exists()

    import repro.dse.experiments as experiments

    def boom(*args, **kwargs):  # pragma: no cover - must never run
        raise AssertionError("cache miss: collective point re-simulated")

    monkeypatch.setattr(experiments, "run_collective_bench", boom)
    second = experiment_collectives(full=False, cache_dir=tmp_path)
    assert second.rows == first.rows


def test_matmul_experiment_quick():
    report = experiment_matmul(full=False)
    assert "reduce sm/empi" in report.text
    assert {row[1] for row in report.rows} == {"linear", "tree"}


def test_stream_experiment_quick():
    report = experiment_stream(full=False)
    assert "cyc/blk" in report.text
    assert len(report.series["empi"]) == len(report.series["pure_sm"]) == 2


def test_validation_failure_aborts(tmp_path):
    """A sweep whose results failed validation must raise, not report."""
    space = jacobi_sweep_space(
        "check", workers=(1,), cache_sizes_kb=(4,), policies=("wb",),
        params=JacobiParams(n=6, iterations=2, warmup=0),
    )
    results = run_sweep(space, jobs=1, cache_dir=tmp_path)
    results[0].validated = False
    from repro.dse.experiments import _check_validated

    with pytest.raises(AssertionError):
        _check_validated(results)


def test_registry_entries_are_experiments():
    """Every registry value is a registered Experiment with a help line."""
    for name, experiment in ALL_EXPERIMENTS.items():
        assert isinstance(experiment, Experiment)
        assert experiment.name == name
        assert experiment.help
