"""The sweep service: backends, retries, progress, resumable caching."""

from __future__ import annotations

import json
import multiprocessing
import os
import signal

import pytest

from repro.apps.jacobi.driver import JacobiParams
from repro.dse.executor import (
    EXECUTOR_BACKENDS,
    auto_jobs,
    get_executor,
    resolve_backend,
    run_space,
)
from repro.dse.runner import ResultCache
from repro.dse.space import Axis, SweepSpace
from repro.errors import ConfigError, SweepError

# -- module-level toy apps: picklable by reference on every backend ----------


def toy_app(config, params) -> dict:
    return {"workers": config.n_workers, "n": params.n,
            "value": config.n_workers * params.n}


def failing_app(config, params) -> dict:
    if params.n == 8:
        raise ValueError("point 8 is cursed")
    return {"n": params.n}


#: Attempt counter for the flaky app; inline backend shares this process.
FLAKY_CALLS: dict[int, int] = {}


def flaky_app(config, params) -> dict:
    FLAKY_CALLS[params.n] = FLAKY_CALLS.get(params.n, 0) + 1
    if FLAKY_CALLS[params.n] == 1:
        raise RuntimeError("transient")
    return {"n": params.n}


def toy_space(name: str = "toy", n_values=(6, 8, 10, 12), app=toy_app,
              workers=(2,)) -> SweepSpace:
    return SweepSpace(
        name=name, app=app, app_id="toy",
        axes=(
            Axis("workers", tuple(workers), field="n_workers"),
            Axis("n", tuple(n_values), target="params"),
        ),
        base_params=JacobiParams(iterations=1, warmup=0),
    )


# -- backend plumbing --------------------------------------------------------


def test_unknown_backend_rejected():
    with pytest.raises(ConfigError):
        get_executor("quantum", 2)


def test_resolve_backend_explicit_wins():
    assert resolve_backend("threaded", 1) == "threaded"
    assert resolve_backend(None, 1) == "inline"
    assert resolve_backend(None, 4) == "process"


def test_auto_jobs_caps_at_pending():
    assert auto_jobs(2, None) <= 2
    assert auto_jobs(100, 3) == 3
    assert auto_jobs(0, None) == 1


@pytest.mark.parametrize("backend", sorted(EXECUTOR_BACKENDS))
def test_every_backend_returns_points_in_order(backend):
    results = run_space(toy_space(), backend=backend, jobs=2)
    assert [o.payload["n"] for o in results.outcomes] == [6, 8, 10, 12]
    assert results.n_computed == 4
    assert results.n_cached == 0


def test_inline_reproduces_pool_results(tmp_path):
    inline = run_space(toy_space(), backend="inline", jobs=1)
    pooled = run_space(toy_space(), backend="process", jobs=2)
    assert inline.payloads() == pooled.payloads()


def test_results_addressable_by_coords():
    results = run_space(toy_space(workers=(2, 4)), jobs=1)
    assert results.get(workers=4, n=10) == {"workers": 4, "n": 10,
                                            "value": 40}
    with pytest.raises(KeyError, match="toy"):
        results.get(workers=3, n=10)


def test_progress_callback_sees_every_completion():
    calls: list[tuple[int, int]] = []
    run_space(toy_space(), backend="inline",
              progress=lambda done, total: calls.append((done, total)))
    assert calls == [(1, 4), (2, 4), (3, 4), (4, 4)]


def test_wall_time_captured_per_point():
    results = run_space(toy_space(), backend="inline")
    assert all(o.wall_seconds >= 0 for o in results.outcomes)
    assert all(o.attempts == 1 for o in results.outcomes)


# -- failure capture and bounded retry ---------------------------------------


def test_failed_points_raise_sweep_error_naming_keys():
    with pytest.raises(SweepError) as excinfo:
        run_space(toy_space(app=failing_app), backend="inline")
    assert "point 8 is cursed" in str(excinfo.value)
    assert len(excinfo.value.failures) == 1


def test_completed_points_persist_even_when_sweep_fails(tmp_path):
    with pytest.raises(SweepError):
        run_space(toy_space(app=failing_app), backend="inline",
                  cache_dir=tmp_path)
    # The three good points were journaled before the failure surfaced.
    cache = ResultCache(tmp_path, "toy")
    good = toy_space(app=failing_app)
    cached = [cache.get_raw(p.key) for p in good.points()]
    assert sum(1 for c in cached if c is not None) == 3


def test_bounded_retry_recovers_transient_failures():
    FLAKY_CALLS.clear()
    results = run_space(toy_space(app=flaky_app), backend="inline",
                        retries=1)
    assert [o.payload["n"] for o in results.outcomes] == [6, 8, 10, 12]
    assert results.n_retried == 4
    assert all(o.attempts == 2 for o in results.outcomes)


def test_retry_exhaustion_still_raises():
    with pytest.raises(SweepError):
        run_space(toy_space(app=failing_app), backend="inline", retries=2)


# -- resumable caching -------------------------------------------------------


def test_cache_round_trip_and_hit_accounting(tmp_path):
    first = run_space(toy_space(), jobs=1, cache_dir=tmp_path)
    assert (first.n_computed, first.n_cached) == (4, 0)
    second = run_space(toy_space(), jobs=1, cache_dir=tmp_path)
    assert (second.n_computed, second.n_cached) == (0, 4)
    assert second.payloads() == first.payloads()


def test_fresh_recomputes_but_still_persists(tmp_path):
    run_space(toy_space(), jobs=1, cache_dir=tmp_path)
    fresh = run_space(toy_space(), jobs=1, cache_dir=tmp_path, resume=False)
    assert fresh.n_computed == 4
    again = run_space(toy_space(), jobs=1, cache_dir=tmp_path)
    assert again.n_cached == 4


def test_uncacheable_space_always_recomputes(tmp_path):
    space = toy_space()
    space.cacheable = False
    run_space(space, jobs=1, cache_dir=tmp_path)
    second = run_space(space, jobs=1, cache_dir=tmp_path)
    assert second.n_computed == 4
    assert not (tmp_path / "toy.json").exists()


def test_resume_after_partial_journal(tmp_path):
    space = toy_space()
    points = space.points()
    # Simulate an interrupted sweep: two points journaled, no compact save.
    cache = ResultCache(tmp_path, space.name)
    cache.append(points[0].key, {"workers": 2, "n": 6, "value": 12})
    cache.append(points[1].key, {"workers": 2, "n": 8, "value": 16})
    results = run_space(space, jobs=1, cache_dir=tmp_path)
    assert results.n_cached == 2
    assert results.n_computed == 2
    assert [o.payload["n"] for o in results.outcomes] == [6, 8, 10, 12]


def test_schema_change_discards_cached_points(tmp_path):
    run_space(toy_space(), jobs=1, cache_dir=tmp_path)
    renamed = SweepSpace(
        name="toy", app=toy_app, app_id="toy",
        axes=(
            Axis("cores", (2,), field="n_workers"),  # renamed axis
            Axis("n", (6, 8, 10, 12), target="params"),
        ),
        base_params=JacobiParams(iterations=1, warmup=0),
    )
    results = run_space(renamed, jobs=1, cache_dir=tmp_path)
    assert results.n_cached == 0
    assert results.n_computed == 4


def test_cache_version_bump_discards_points(tmp_path, monkeypatch):
    run_space(toy_space(), jobs=1, cache_dir=tmp_path)
    monkeypatch.setattr("repro.dse.runner.CACHE_VERSION", "999:future")
    results = run_space(toy_space(), jobs=1, cache_dir=tmp_path)
    assert results.n_cached == 0
    assert results.n_computed == 4


# -- kill-and-resume: the acceptance scenario --------------------------------


def _run_and_die_after(cache_dir: str, kill_after: int) -> None:
    """Child-process body: run the sweep inline, SIGKILL after k points."""

    def killer(done: int, total: int) -> None:
        if done >= kill_after:
            os.kill(os.getpid(), signal.SIGKILL)

    run_space(toy_space(), backend="inline", cache_dir=cache_dir,
              progress=killer)


def test_killed_sweep_resumes_where_it_died(tmp_path):
    kill_after = 2
    child = multiprocessing.Process(
        target=_run_and_die_after, args=(str(tmp_path), kill_after)
    )
    child.start()
    child.join(timeout=120)
    assert child.exitcode == -signal.SIGKILL

    # The journal holds exactly the points completed before the kill.
    journal = tmp_path / "toy.journal.jsonl"
    assert journal.exists()
    lines = [line for line in journal.read_text().splitlines() if line]
    assert len(lines) == kill_after
    for line in lines:
        json.loads(line)  # every persisted line is complete, not torn

    # Resume: only the remaining points are recomputed.
    results = run_space(toy_space(), jobs=1, cache_dir=tmp_path)
    assert results.n_cached == kill_after
    assert results.n_computed == 4 - kill_after
    assert [o.payload["n"] for o in results.outcomes] == [6, 8, 10, 12]
    # And the resumed run compacted the journal into the store.
    assert not journal.exists()
    assert (tmp_path / "toy.json").exists()
