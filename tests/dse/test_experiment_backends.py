"""Every migrated experiment, through both backends, bit for bit.

The acceptance sweep of the executor migration: all registered
experiments run once through the inline backend (``--backend inline
--jobs 1``, the deterministic baseline) and once through the process
pool, each pass sharing one warm cache directory the way the CLI's
figure pipeline does (fig7/fig9 reuse fig6/fig8 sweep points).  Reports
must agree row for row and series for series — simulated cycle counts
cannot depend on the execution backend or on scheduling order.

``simspeed`` is the one exception: it *measures* wall-clock throughput,
so only its shape is compared.
"""

from __future__ import annotations

import pytest

from repro.dse.experiments import ALL_EXPERIMENTS

#: Experiments whose rows contain inherent wall-clock measurements.
WALL_CLOCK_EXPERIMENTS = {"simspeed"}


@pytest.fixture(scope="module")
def inline_cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("inline_cache")


@pytest.fixture(scope="module")
def inline_reports(inline_cache_dir):
    return {
        name: experiment(full=False, jobs=1, backend="inline",
                         cache_dir=inline_cache_dir)
        for name, experiment in ALL_EXPERIMENTS.items()
    }


@pytest.fixture(scope="module")
def process_reports(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("process_cache")
    return {
        name: experiment(full=False, jobs=2, backend="process",
                         cache_dir=cache_dir)
        for name, experiment in ALL_EXPERIMENTS.items()
    }


@pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
def test_inline_and_process_backends_agree(name, inline_reports,
                                           process_reports):
    inline, pooled = inline_reports[name], process_reports[name]
    if name in WALL_CLOCK_EXPERIMENTS:
        assert len(inline.rows) == len(pooled.rows)
        return
    assert inline.rows == pooled.rows
    assert inline.series == pooled.series
    # Strip the wall-time footer noise: the report text itself has none.
    assert inline.text == pooled.text


@pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
def test_second_run_is_deterministic_and_cache_served(name, inline_reports,
                                                      inline_cache_dir):
    """Double-run determinism: a rerun over the warm cache is identical."""
    if name in WALL_CLOCK_EXPERIMENTS:
        pytest.skip("wall-clock measurement: rerun values differ by design")
    rerun = ALL_EXPERIMENTS[name](full=False, jobs=1, backend="inline",
                                  cache_dir=inline_cache_dir)
    assert rerun.rows == inline_reports[name].rows
    assert rerun.text == inline_reports[name].text
