"""The journaled result store and the classic Jacobi sweep entry point."""

from __future__ import annotations

import json

from repro.apps.jacobi.driver import JacobiParams
from repro.dse.runner import (
    CACHE_VERSION,
    ResultCache,
    SweepResult,
    jacobi_app,
    run_sweep,
)
from repro.dse.space import SweepSpace, jacobi_sweep_space


def tiny_space(name: str = "tiny", **kwargs) -> SweepSpace:
    defaults = dict(
        workers=(1, 2), cache_sizes_kb=(4,), policies=("wb",),
        params=JacobiParams(n=6, iterations=2, warmup=0),
    )
    defaults.update(kwargs)
    return jacobi_sweep_space(name, **defaults)


def test_jacobi_app_validates():
    point = tiny_space().points()[0]
    result = SweepResult.from_json(jacobi_app(point.config, point.params))
    assert result.validated
    assert result.cycles_per_iteration > 0
    assert result.n_workers == 1


def test_run_sweep_inline_order_matches_points():
    results = run_sweep(tiny_space(), jobs=1)
    assert [r.n_workers for r in results] == [1, 2]


def test_run_sweep_parallel_pool():
    results = run_sweep(tiny_space(), jobs=2)
    assert len(results) == 2
    assert all(r.validated for r in results)


def test_cache_reuse(tmp_path):
    space = tiny_space("cached")
    first = run_sweep(space, jobs=1, cache_dir=tmp_path)
    assert (tmp_path / "cached.json").exists()
    second = run_sweep(space, jobs=1, cache_dir=tmp_path)
    assert [r.cycles_per_iteration for r in first] == [
        r.cycles_per_iteration for r in second
    ]


def test_cache_does_not_leak_across_different_points(tmp_path):
    run_sweep(tiny_space("shared_name"), jobs=1, cache_dir=tmp_path)
    space_b = tiny_space(
        "shared_name", workers=(1,), cache_sizes_kb=(8,),
    )
    results = run_sweep(space_b, jobs=1, cache_dir=tmp_path)
    assert results[0].cache_kb == 8


def test_result_round_trips_through_json(tmp_path):
    cache = ResultCache(tmp_path, "roundtrip")
    result = SweepResult(
        label="2P_4k$_WB", n_workers=2, cache_kb=4, policy="wb",
        model="hybrid_full", n=6, cycles_per_iteration=100.0,
        iteration_cycles=[120, 100], total_cycles=400, validated=True,
        wall_seconds=0.5,
    )
    cache.put("key", result)
    cache.save()
    reloaded = ResultCache(tmp_path, "roundtrip").get("key")
    assert reloaded is not None
    assert reloaded.label == result.label
    assert reloaded.iteration_cycles == [120, 100]


def test_raw_layer_round_trips(tmp_path):
    # Non-Jacobi experiments store plain JSON dicts through the same
    # versioned store.
    cache = ResultCache(tmp_path, "raw")
    cache.put_raw("k", {"cycles_per_op": 42.5, "validated": True})
    cache.save()
    reloaded = ResultCache(tmp_path, "raw")
    assert reloaded.get_raw("k") == {"cycles_per_op": 42.5, "validated": True}
    assert reloaded.get_raw("missing") is None


def test_cache_discards_versionless_seed_layout(tmp_path):
    # The pre-versioning layout (a flat key->result dict) must be treated
    # as stale: hot-path changes that alter cycle counts would otherwise
    # be served from the old cache.
    space = tiny_space("versioned")
    first = run_sweep(space, jobs=1, cache_dir=tmp_path)
    path = tmp_path / "versioned.json"
    payload = json.loads(path.read_text())
    assert payload["__cache_version__"] == CACHE_VERSION

    # Rewrite the file in the legacy flat layout; the cache must discard it.
    path.write_text(json.dumps(payload["points"]))
    cache = ResultCache(tmp_path, "versioned")
    assert cache.discarded_stale
    assert cache.get(space.points()[0].key) is None

    # A sweep over the discarded cache recomputes and re-versions the file.
    second = run_sweep(space, jobs=1, cache_dir=tmp_path)
    assert [r.total_cycles for r in first] == [r.total_cycles for r in second]
    assert "__cache_version__" in json.loads(path.read_text())


def test_cache_discards_mismatched_version(tmp_path):
    space = tiny_space("stale")
    run_sweep(space, jobs=1, cache_dir=tmp_path)
    path = tmp_path / "stale.json"
    payload = json.loads(path.read_text())
    payload["__cache_version__"] = "0:ancient"
    path.write_text(json.dumps(payload))
    cache = ResultCache(tmp_path, "stale")
    assert cache.discarded_stale
    assert cache.get(space.points()[0].key) is None


def test_cache_matching_version_is_reused(tmp_path):
    space = tiny_space("fresh")
    run_sweep(space, jobs=1, cache_dir=tmp_path)
    cache = ResultCache(tmp_path, "fresh")
    assert not cache.discarded_stale
    assert cache.get(space.points()[0].key) is not None


# -- the journal: incremental per-point persistence --------------------------


def test_append_persists_each_point_immediately(tmp_path):
    cache = ResultCache(tmp_path, "journal")
    cache.append("a", {"x": 1})
    cache.append("b", {"x": 2})
    # No save(): a brand-new cache instance must still see both points.
    reloaded = ResultCache(tmp_path, "journal")
    assert reloaded.get_raw("a") == {"x": 1}
    assert reloaded.get_raw("b") == {"x": 2}
    assert reloaded.journal_points == 2
    assert cache.journal_path.exists()


def test_save_compacts_journal_into_store(tmp_path):
    cache = ResultCache(tmp_path, "compact")
    cache.append("a", {"x": 1})
    cache.save()
    assert not cache.journal_path.exists()
    reloaded = ResultCache(tmp_path, "compact")
    assert reloaded.get_raw("a") == {"x": 1}
    assert reloaded.journal_points == 0


def test_torn_journal_tail_is_ignored(tmp_path):
    cache = ResultCache(tmp_path, "torn")
    cache.append("a", {"x": 1})
    cache.append("b", {"x": 2})
    # Simulate a crash mid-write: truncate the last line.
    text = cache.journal_path.read_text()
    cache.journal_path.write_text(text[: text.rindex("{")])
    reloaded = ResultCache(tmp_path, "torn")
    assert reloaded.get_raw("a") == {"x": 1}
    assert reloaded.get_raw("b") is None


def test_stale_journal_lines_are_skipped(tmp_path):
    cache = ResultCache(tmp_path, "stale_journal")
    entry = {"v": "0:ancient", "key": "a", "payload": {"x": 1}}
    cache.journal_path.parent.mkdir(parents=True, exist_ok=True)
    cache.journal_path.write_text(json.dumps(entry) + "\n")
    reloaded = ResultCache(tmp_path, "stale_journal")
    assert reloaded.get_raw("a") is None
    assert reloaded.journal_points == 0
