"""Sweep runner and its result cache."""

from __future__ import annotations

import json

from repro.apps.jacobi.driver import JacobiParams
from repro.dse.runner import ResultCache, SweepResult, evaluate_point, run_sweep
from repro.dse.space import SweepSpec


def tiny_spec(name: str = "tiny") -> SweepSpec:
    return SweepSpec(
        name=name,
        workers=(1, 2),
        cache_sizes_kb=(4,),
        policies=("wb",),
        params=JacobiParams(n=6, iterations=2, warmup=0),
    )


def test_evaluate_point_validates():
    point = tiny_spec().points()[0]
    result = evaluate_point(point)
    assert result.validated
    assert result.cycles_per_iteration > 0
    assert result.n_workers == 1


def test_run_sweep_inline_order_matches_points():
    spec = tiny_spec()
    results = run_sweep(spec, jobs=1)
    assert [r.n_workers for r in results] == [1, 2]


def test_run_sweep_parallel_pool():
    spec = tiny_spec()
    results = run_sweep(spec, jobs=2)
    assert len(results) == 2
    assert all(r.validated for r in results)


def test_cache_reuse(tmp_path):
    spec = tiny_spec("cached")
    first = run_sweep(spec, jobs=1, cache_dir=tmp_path)
    assert (tmp_path / "cached.json").exists()
    second = run_sweep(spec, jobs=1, cache_dir=tmp_path)
    assert [r.cycles_per_iteration for r in first] == [
        r.cycles_per_iteration for r in second
    ]


def test_cache_does_not_leak_across_different_points(tmp_path):
    spec_a = tiny_spec("shared_name")
    run_sweep(spec_a, jobs=1, cache_dir=tmp_path)
    spec_b = SweepSpec(
        name="shared_name",
        workers=(1,),
        cache_sizes_kb=(8,),  # different cache size: a different key
        policies=("wb",),
        params=JacobiParams(n=6, iterations=2, warmup=0),
    )
    results = run_sweep(spec_b, jobs=1, cache_dir=tmp_path)
    assert results[0].cache_kb == 8


def test_result_round_trips_through_json(tmp_path):
    cache = ResultCache(tmp_path, "roundtrip")
    result = SweepResult(
        label="2P_4k$_WB", n_workers=2, cache_kb=4, policy="wb",
        model="hybrid_full", n=6, cycles_per_iteration=100.0,
        iteration_cycles=[120, 100], total_cycles=400, validated=True,
        wall_seconds=0.5,
    )
    cache.put("key", result)
    cache.save()
    reloaded = ResultCache(tmp_path, "roundtrip").get("key")
    assert reloaded is not None
    assert reloaded.label == result.label
    assert reloaded.iteration_cycles == [120, 100]


def test_cache_discards_versionless_seed_layout(tmp_path):
    # The pre-versioning layout (a flat key->result dict) must be treated
    # as stale: hot-path changes that alter cycle counts would otherwise
    # be served from the old cache.
    from repro.dse.runner import CACHE_VERSION

    spec = tiny_spec("versioned")
    first = run_sweep(spec, jobs=1, cache_dir=tmp_path)
    path = tmp_path / "versioned.json"
    payload = json.loads(path.read_text())
    assert payload["__cache_version__"] == CACHE_VERSION

    # Rewrite the file in the legacy flat layout; the cache must discard it.
    path.write_text(json.dumps(payload["points"]))
    cache = ResultCache(tmp_path, "versioned")
    assert cache.discarded_stale
    assert cache.get(spec.points()[0].key()) is None

    # A sweep over the discarded cache recomputes and re-versions the file.
    second = run_sweep(spec, jobs=1, cache_dir=tmp_path)
    assert [r.total_cycles for r in first] == [r.total_cycles for r in second]
    assert "__cache_version__" in json.loads(path.read_text())


def test_cache_discards_mismatched_version(tmp_path):
    spec = tiny_spec("stale")
    run_sweep(spec, jobs=1, cache_dir=tmp_path)
    path = tmp_path / "stale.json"
    payload = json.loads(path.read_text())
    payload["__cache_version__"] = "0:ancient"
    path.write_text(json.dumps(payload))
    cache = ResultCache(tmp_path, "stale")
    assert cache.discarded_stale
    assert cache.get(spec.points()[0].key()) is None


def test_cache_matching_version_is_reused(tmp_path):
    spec = tiny_spec("fresh")
    run_sweep(spec, jobs=1, cache_dir=tmp_path)
    cache = ResultCache(tmp_path, "fresh")
    assert not cache.discarded_stale
    assert cache.get(spec.points()[0].key()) is not None
