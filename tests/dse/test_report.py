"""Report rendering."""

from __future__ import annotations

from repro.dse.report import ascii_plot, format_table, write_csv


def test_format_table_aligns_columns():
    text = format_table(["a", "long_header"], [[1, 2], [333, 4]])
    lines = text.splitlines()
    assert "long_header" in lines[0]
    assert lines[1].startswith("-")
    assert "333" in lines[3]
    assert "2" in lines[2]


def test_format_table_title():
    text = format_table(["x"], [[1]], title="My Table")
    assert text.startswith("My Table\n")


def test_write_csv(tmp_path):
    path = tmp_path / "sub" / "out.csv"
    write_csv(path, ["a", "b"], [[1, 2], [3, 4]])
    content = path.read_text()
    assert content == "a,b\n1,2\n3,4\n"


def test_ascii_plot_contains_series_marks():
    series = {"one": [(0.0, 0.0), (1.0, 1.0)], "two": [(0.5, 0.5)]}
    text = ascii_plot(series, width=20, height=10)
    assert "o" in text and "x" in text
    assert "legend" in text
    assert "0 .. 1" in text


def test_ascii_plot_empty():
    assert ascii_plot({}) == "(no data)\n"


def test_ascii_plot_single_point():
    text = ascii_plot({"s": [(5.0, 7.0)]}, width=10, height=5)
    assert "o" in text


def test_ascii_plot_extremes_at_edges():
    series = {"s": [(0.0, 0.0), (10.0, 10.0)]}
    text = ascii_plot(series, width=11, height=5, title="T")
    lines = [row for row in text.splitlines() if row.startswith("|")]
    assert lines[0].rstrip().endswith("o")   # max lands top-right
    assert lines[-1][1] == "o"               # min lands bottom-left
