"""Cross-module integration: protocol sequences, mixed traffic, determinism."""

from __future__ import annotations

import pytest

from repro.apps.jacobi.driver import JacobiParams, run_jacobi
from repro.noc.packet import PacketType
from repro.system.config import SystemConfig
from tests.conftest import run_programs


def test_write_protocol_sequence_matches_fig4a():
    """Trace a single write: Req -> Ack -> Data -> Ack (paper Fig. 4a)."""
    def program(ctx):
        yield ("ustore", ctx.shared_base, 7)
        yield ("fence",)

    system = run_programs(SystemConfig(n_workers=1, trace=True), program)
    ejections = [
        event for event in system.tracer.of_kind("eject")
        if event.fields["ptype"] == PacketType.SINGLE_WRITE.name
    ]
    # Four single-write flits cross the network: the request and the data
    # word toward the MPMMU, the grant and the final ack back.
    nodes = [event.fields["node"] for event in ejections]
    assert len(ejections) == 4
    assert nodes == [0, 1, 0, 1]  # MPMMU, core, MPMMU, core


def test_read_protocol_sequence_matches_fig4b():
    """A read is Req -> Data with no grant round trip (paper Fig. 4b)."""
    def program(ctx):
        yield ("uload", ctx.shared_base)

    system = run_programs(SystemConfig(n_workers=1, trace=True), program)
    ejections = [
        event for event in system.tracer.of_kind("eject")
        if event.fields["ptype"] == PacketType.SINGLE_READ.name
    ]
    assert len(ejections) == 2
    assert [e.fields["node"] for e in ejections] == [0, 1]


def test_cache_miss_issues_block_read_of_four_words():
    def program(ctx):
        yield ctx.load(ctx.private_base)

    system = run_programs(SystemConfig(n_workers=1, trace=True), program)
    data_flits = [
        event for event in system.tracer.of_kind("eject")
        if event.fields["ptype"] == PacketType.BLOCK_READ.name
        and event.fields["node"] != 0
    ]
    assert len(data_flits) == 4  # one cache line = four words


def test_shared_memory_and_messages_coexist():
    """Both traffic classes in flight at once, everything stays coherent."""
    outcome = {}

    def chatty_writer(ctx):
        for index in range(8):
            yield ctx.store(ctx.shared_base + 64 + 4 * index, index + 1)
        yield from ctx.flush_range(ctx.shared_base + 64, 32)
        yield from ctx.empi.send_doubles(1, [1.0, 2.0])
        yield from ctx.empi.barrier()

    def chatty_reader(ctx):
        values = yield from ctx.empi.recv_doubles(0, 2)
        yield from ctx.empi.barrier()
        words = []
        for index in range(8):
            word = yield ("uload", ctx.shared_base + 64 + 4 * index)
            words.append(word)
        outcome["doubles"] = values
        outcome["words"] = words

    run_programs(SystemConfig(n_workers=2, cache_size_kb=4),
                 chatty_writer, chatty_reader)
    assert outcome["doubles"] == [1.0, 2.0]
    assert outcome["words"] == list(range(1, 9))


def test_jacobi_determinism_across_processes():
    """The simulator is deterministic: same config -> same cycle count."""
    config = SystemConfig(n_workers=3, cache_size_kb=4)
    params = JacobiParams(n=12, iterations=2, warmup=0)
    first = run_jacobi(config, params)
    second = run_jacobi(config, params)
    assert first.total_cycles == second.total_cycles
    assert first.iteration_cycles == second.iteration_cycles


def test_jacobi_cycles_differ_between_policies_not_results():
    config_wb = SystemConfig(n_workers=2, cache_size_kb=4)
    config_wt = SystemConfig(n_workers=2, cache_size_kb=4, cache_policy="wt")
    params = JacobiParams(n=10, iterations=2, warmup=0)
    wb = run_jacobi(config_wb, params)
    wt = run_jacobi(config_wt, params)
    assert wb.validated and wt.validated  # identical numerics...
    assert wb.total_cycles != wt.total_cycles  # ...different timing


def test_arbiter_priority_changes_message_latency():
    """Under bridge/TIE contention, the HP class observably wins.

    Rank 0 dirties four cache lines, flushes them (16 block-write data
    flits through the memory path) and immediately streams a 64-word
    message.  With messages high-priority the receiver gets the payload
    earlier than with memory high-priority.
    """
    def run_with_priority(priority: str) -> int:
        arrival = {}

        def pusher(ctx):
            for line in range(4):
                yield ctx.store(ctx.shared_base + 64 + 16 * line, line)
            for line in range(4):
                yield ("flush", ctx.shared_base + 64 + 16 * line)
            yield ctx.send_words(1, list(range(64)))
            yield from ctx.empi.barrier()

        def puller(ctx):
            words = yield ctx.recv_words(0, 64)
            assert words == list(range(64))
            yield ctx.note("got_message")
            yield from ctx.empi.barrier()

        config = SystemConfig(
            n_workers=2, cache_size_kb=4,
            arbiter_mode="dual_fifo", arbiter_high_priority=priority,
        )
        system = run_programs(config, pusher, puller)
        for cycle, __, label in system.notes:
            arrival[label] = cycle
        return arrival["got_message"]

    assert run_with_priority("message") < run_with_priority("memory")


def test_larger_system_scales_down_iteration_time():
    params = JacobiParams(n=24, iterations=3, warmup=1)
    two = run_jacobi(SystemConfig(n_workers=2, cache_size_kb=16), params)
    eight = run_jacobi(SystemConfig(n_workers=8, cache_size_kb=16), params)
    assert eight.cycles_per_iteration < two.cycles_per_iteration


def test_noc_stats_account_for_all_traffic():
    config = SystemConfig(n_workers=2, cache_size_kb=2)
    result = run_jacobi(config, JacobiParams(n=8, iterations=2, warmup=0))
    noc = result.stats["noc"]
    assert noc["flits_injected"] == noc["flits_ejected"]


@pytest.mark.parametrize("n_workers", [13, 15])
def test_large_configurations_run(n_workers):
    """The paper's largest systems (up to 15 workers + MPMMU) work."""
    config = SystemConfig(n_workers=n_workers, cache_size_kb=8)
    result = run_jacobi(config, JacobiParams(n=16, iterations=2, warmup=0))
    assert result.validated
