"""Bit-accurate flit codec (Fig. 5)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PacketFormatError
from repro.noc.packet import FlitCodec, PacketType, SubType


def test_packet_types_fit_three_bits():
    assert all(0 <= int(t) < 8 for t in PacketType)
    # The seven types of Section II-D plus MULTICAST (the previously
    # reserved eighth 3-bit code, claimed by the hardware collectives).
    assert len(PacketType) == 8
    assert int(PacketType.MULTICAST) == 7
    assert not PacketType.MULTICAST.is_shared_memory


def test_subtypes_fit_two_bits():
    assert all(0 <= int(s) < 4 for s in SubType)


def test_message_subtype_aliases():
    # The 2-bit field is overloaded per TYPE, like the paper.
    assert SubType.MSG_DATA == SubType.DATA
    assert SubType.MSG_REQUEST == SubType.ADDR


def test_layout_widths_for_4x4():
    codec = FlitCodec(4, 4)
    fields = codec.fields
    assert fields["valid"].width == 1
    assert fields["x"].width == 2
    assert fields["y"].width == 2
    assert fields["type"].width == 3
    assert fields["subtype"].width == 2
    assert fields["seq"].width == 4
    assert fields["burst"].width == 2
    assert fields["src"].width == 4
    assert fields["data"].width == 32
    assert codec.header_bits == 20


def test_valid_bit_is_msb_side():
    codec = FlitCodec(4, 4, flit_width=64)
    word = codec.encode(0, 0, 0, 0, 0, 0, 0, 0)
    assert word == 1 << 63  # only the valid bit set


def test_fields_do_not_overlap():
    codec = FlitCodec(4, 4)
    seen = 0
    for spec in codec.fields.values():
        mask = spec.mask << spec.offset
        assert seen & mask == 0
        seen |= mask


def test_encode_round_trip():
    codec = FlitCodec(4, 4)
    word = codec.encode(
        dst_x=2, dst_y=3, ptype=int(PacketType.BLOCK_READ),
        subtype=int(SubType.DATA), seq=9, burst=3, src=7,
        data=0xDEADBEEF,
    )
    decoded = codec.decode(word)
    assert decoded["valid"] == 1
    assert decoded["x"] == 2
    assert decoded["y"] == 3
    assert decoded["type"] == int(PacketType.BLOCK_READ)
    assert decoded["subtype"] == int(SubType.DATA)
    assert decoded["seq"] == 9
    assert decoded["burst"] == 3
    assert decoded["src"] == 7
    assert decoded["data"] == 0xDEADBEEF


@given(
    x=st.integers(0, 3),
    y=st.integers(0, 3),
    ptype=st.integers(0, 6),
    subtype=st.integers(0, 3),
    seq=st.integers(0, 15),
    burst=st.integers(0, 3),
    src=st.integers(0, 15),
    data=st.integers(0, 0xFFFF_FFFF),
)
def test_round_trip_property(x, y, ptype, subtype, seq, burst, src, data):
    codec = FlitCodec(4, 4)
    word = codec.encode(x, y, ptype, subtype, seq, burst, src, data)
    decoded = codec.decode(word)
    assert (decoded["x"], decoded["y"]) == (x, y)
    assert decoded["type"] == ptype
    assert decoded["subtype"] == subtype
    assert decoded["seq"] == seq
    assert decoded["burst"] == burst
    assert decoded["src"] == src
    assert decoded["data"] == data


def test_field_overflow_rejected():
    codec = FlitCodec(4, 4)
    with pytest.raises(PacketFormatError):
        codec.encode(4, 0, 0, 0, 0, 0, 0, 0)  # x needs 3 bits
    with pytest.raises(PacketFormatError):
        codec.encode(0, 0, 0, 0, 16, 0, 0, 0)  # seq is 4 bits
    with pytest.raises(PacketFormatError):
        codec.encode(0, 0, 0, 0, 0, 0, 0, 1 << 32)  # data is 32 bits


def test_decode_rejects_oversized_word():
    codec = FlitCodec(4, 4)
    with pytest.raises(PacketFormatError):
        codec.decode(1 << 64)


def test_scaled_grid_widens_coordinates():
    codec = FlitCodec(8, 8, src_bits=6)
    assert codec.fields["x"].width == 3
    assert codec.fields["y"].width == 3


def test_min_mask_bits_widens_the_header_by_whole_bytes():
    # 4x4 base layout leaves 12 spare bits; 16 nodes need 16 mask bits,
    # so the header grows to the next byte boundary (the two-flit-header
    # extension, modelled as one widened wire word).
    base = FlitCodec(4, 4)
    assert base.flit_width == 64
    assert base.mask_bits == 12
    wide = FlitCodec(4, 4, min_mask_bits=16)
    assert wide.flit_width == 72
    assert wide.mask_bits >= 16
    # A 16-node all-but-source mask round-trips losslessly.
    mask = 0xFFFE
    word = wide.encode(
        0, 0, int(PacketType.MULTICAST), int(SubType.MSG_DATA),
        seq=5, burst=1, src=0, data=0xCAFEBABE, mask=mask,
    )
    decoded = wide.decode(word)
    assert decoded["mask"] == mask
    assert decoded["data"] == 0xCAFEBABE
    assert decoded["seq"] == 5
    # The base format still refuses what it cannot carry.
    with pytest.raises(PacketFormatError):
        base.encode(
            0, 0, int(PacketType.MULTICAST), int(SubType.MSG_DATA),
            seq=0, burst=1, src=0, data=0, mask=mask,
        )


def test_min_mask_bits_is_a_no_op_when_spare_bits_suffice():
    codec = FlitCodec(3, 3, min_mask_bits=9)  # 9 nodes fit the 12 spare
    assert codec.flit_width == 64
    assert codec.mask_bits == 12


def test_src_field_must_name_all_nodes():
    with pytest.raises(PacketFormatError):
        FlitCodec(8, 8)  # 64 nodes need more than 4 src bits


def test_layout_must_fit_flit_width():
    with pytest.raises(PacketFormatError):
        FlitCodec(4, 4, flit_width=32)  # 52 bits cannot fit


def test_header_plus_payload_spans_layout():
    codec = FlitCodec(4, 4)
    assert codec.header_bits + codec.payload_bits == 52
    assert codec.max_seq == 15
    assert codec.max_burst == 3
