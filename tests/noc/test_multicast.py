"""Multicast replication in the deflection switch and fabric.

Three layers:

* ``route_node`` units — tree splitting, branch merging under
  contention, local ejection (including capacity deferral) and the
  port-reservation guard that keeps the deflection invariant;
* fabric end-to-end — an injected MULTICAST flit reaches every mask
  member exactly once and the running flit count returns to zero;
* the unicast-fallback representation (a MULTICAST flit with an
  ordinary ``dst``) rides the plain unicast path untouched.

The golden-equivalence harness (``test_switch_golden.py``) separately
guarantees that unicast routing is flit-for-flit unchanged.
"""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.noc.flit import MULTICAST_DST, Flit
from repro.noc.network import NocFabric
from repro.noc.packet import PacketType
from repro.noc.switch import route_node
from repro.noc.topology import FoldedTorusTopology


def mcast_flit(src, mask, uid, injected_at=0, data=0):
    return Flit(
        dst=MULTICAST_DST, src=src, ptype=PacketType.MULTICAST,
        data=data, dst_mask=mask, uid=uid, injected_at=injected_at,
    )


def unicast_flit(dst, src, uid, injected_at=0):
    return Flit(dst=dst, src=src, ptype=PacketType.MESSAGE, uid=uid,
                injected_at=injected_at)


@pytest.fixture
def topo():
    return FoldedTorusTopology(3, 3)


def out_masks(outcome):
    """dst_mask per output direction (None for idle ports)."""
    return [f.dst_mask if f is not None else None for f in outcome.outputs]


def test_multicast_splits_toward_distinct_branches(topo):
    # Node 4 (center): destinations 3 (west) and 5 (east) prefer
    # different ports, so the flit replicates into two copies.
    flit = mcast_flit(src=0, mask=(1 << 3) | (1 << 5), uid=1)
    outcome = route_node(4, [flit, None, None, None], None, topo)
    masks = [m for m in out_masks(outcome) if m is not None]
    assert sorted(masks) == [1 << 3, 1 << 5]
    assert outcome.flit_copies == 1  # one extra copy created
    assert not outcome.ejected


def test_multicast_merges_branch_when_port_taken(topo):
    # An older unicast flit holds the east port; the east branch merges
    # into the placed copy and will re-split later.
    east_dst = topo.neighbor(4, 1)  # whatever lies east of node 4
    blocker = unicast_flit(dst=east_dst, src=0, uid=1, injected_at=0)
    flit = mcast_flit(src=0, mask=(1 << 3) | (1 << east_dst), uid=2,
                      injected_at=5)
    outcome = route_node(4, [blocker, flit, None, None], None, topo)
    masks = [m for m in out_masks(outcome) if m is not None]
    # One copy carries the full remaining mask (merged), plus the blocker.
    assert (1 << 3) | (1 << east_dst) in masks
    assert outcome.flit_copies == 0


def test_multicast_local_delivery_and_forwarding(topo):
    # Mask includes the local node and one remote: a copy ejects here,
    # the flit forwards with the remote bit only.
    flit = mcast_flit(src=0, mask=(1 << 4) | (1 << 5), uid=1)
    outcome = route_node(4, [flit, None, None, None], None, topo)
    assert len(outcome.ejected) == 1
    assert outcome.ejected[0].dst == 4
    masks = [m for m in out_masks(outcome) if m is not None]
    assert masks == [1 << 5]
    assert outcome.flit_copies == 1


def test_multicast_last_destination_consumes_flit(topo):
    flit = mcast_flit(src=0, mask=1 << 4, uid=1)
    outcome = route_node(4, [flit, None, None, None], None, topo)
    assert outcome.ejected == [flit]
    assert flit.dst == 4 and flit.dst_mask == 0
    assert outcome.flit_copies == 0
    assert all(f is None for f in outcome.outputs)


def test_multicast_local_delivery_defers_when_eject_saturated(topo):
    # An older unicast arrival takes the single eject slot; the
    # multicast keeps its local bit and recirculates.
    arrival = unicast_flit(dst=4, src=0, uid=1, injected_at=0)
    flit = mcast_flit(src=0, mask=1 << 4, uid=2, injected_at=5)
    outcome = route_node(4, [arrival, flit, None, None], None, topo,
                         eject_capacity=1)
    assert outcome.ejected == [arrival]
    assert outcome.eject_overflow == 1
    masks = [m for m in out_masks(outcome) if m is not None]
    assert masks == [1 << 4]  # still owed to this node


def test_multicast_split_never_starves_a_younger_multicast(topo):
    # Two multicast flits, the older one could split 4 ways; it must
    # leave at least one port for the younger one.
    all_others = sum(1 << nd for nd in range(topo.n_nodes) if nd != 4) \
        & ~(1 << 0)
    older = mcast_flit(src=0, mask=all_others, uid=1, injected_at=0)
    younger = mcast_flit(src=0, mask=1 << 6, uid=2, injected_at=3)
    outcome = route_node(4, [older, younger, None, None], None, topo)
    placed = [f for f in outcome.outputs if f is not None]
    assert younger in placed
    # The older flit's copies still cover all of its destinations once.
    covered = 0
    for f in placed:
        if f is younger:
            continue
        assert covered & f.dst_mask == 0
        covered |= f.dst_mask
    assert covered == all_others


def test_multicast_injection_stalls_without_free_port(topo):
    inputs = [unicast_flit(dst=5, src=0, uid=i) for i in range(4)]
    inject = mcast_flit(src=4, mask=1 << 5, uid=9)
    outcome = route_node(4, inputs, inject, topo)
    assert not outcome.injected


def fabric_with_listener(n_nodes_mask):
    topo = FoldedTorusTopology(3, 3)
    fabric = NocFabric(topo)
    return topo, fabric


def test_fabric_delivers_multicast_to_every_member_once():
    topo = FoldedTorusTopology(3, 3)
    fabric = NocFabric(topo)
    members = (1, 2, 5, 7, 8)
    mask = sum(1 << m for m in members)
    flit = mcast_flit(src=0, mask=mask, uid=1000, data=0xABC)
    assert fabric.ports_of(0).inject.try_inject(flit)
    for cycle in range(40):
        fabric.step(cycle)
    received = {
        node: list(fabric.ports_of(node).eject.queue)
        for node in range(topo.n_nodes)
    }
    for node, flits in received.items():
        if node in members:
            assert len(flits) == 1, f"node {node} got {flits}"
            assert flits[0].data == 0xABC
            assert flits[0].ptype == PacketType.MULTICAST
        else:
            assert flits == []
    assert fabric.flits_in_network == 0


def test_fabric_flit_count_balances_under_mixed_traffic():
    topo = FoldedTorusTopology(3, 3)
    fabric = NocFabric(topo)
    mask = (1 << 4) | (1 << 8) | (1 << 2)
    assert fabric.ports_of(0).inject.try_inject(
        mcast_flit(src=0, mask=mask, uid=2000)
    )
    assert fabric.ports_of(5).inject.try_inject(
        unicast_flit(dst=1, src=5, uid=2001)
    )
    for cycle in range(60):
        fabric.step(cycle)
    assert fabric.flits_in_network == 0
    total_ejected = sum(
        len(fabric.ports_of(node).eject.queue)
        for node in range(topo.n_nodes)
    )
    assert total_ejected == 4  # 3 multicast members + 1 unicast


def test_injection_replicas_carry_the_injection_cycle():
    """Copies split off at the injecting switch must inherit the stamp
    the fabric gives the original (age priority + latency baseline)."""
    topo = FoldedTorusTopology(3, 3)
    fabric = NocFabric(topo)
    # Node 4's neighbors split immediately into distinct branches.
    mask = sum(1 << topo.neighbor(4, d) for d in range(4))
    assert fabric.ports_of(4).inject.try_inject(
        mcast_flit(src=4, mask=mask, uid=3000)
    )
    for cycle in range(5, 30):  # injection happens at cycle 5
        fabric.step(cycle)
    assert fabric.flits_in_network == 0
    ejected = [
        flit
        for node in range(topo.n_nodes)
        for flit in fabric.ports_of(node).eject.queue
    ]
    assert len(ejected) == 4
    assert all(flit.injected_at == 5 for flit in ejected)
    # Latency bookkeeping stays sane: these are 1-2 hop deliveries (a
    # merged branch re-splits one hop out), not wall-clock cycle counts.
    assert fabric.latency.max <= 4


def test_singleton_dst_multicast_rides_the_unicast_path():
    # The fallback representation: ordinary dst, MULTICAST ptype.
    topo = FoldedTorusTopology(3, 3)
    fabric = NocFabric(topo)
    flit = Flit(dst=5, src=0, ptype=PacketType.MULTICAST, data=7,
                dst_mask=1 << 5)
    assert fabric.ports_of(0).inject.try_inject(flit)
    for cycle in range(20):
        fabric.step(cycle)
    queue = list(fabric.ports_of(5).eject.queue)
    assert len(queue) == 1 and queue[0] is flit
    assert fabric.flits_in_network == 0


def test_validate_rejects_bad_multicast_masks():
    topo = FoldedTorusTopology(3, 3)
    fabric = NocFabric(topo)
    with pytest.raises(ProtocolError):
        fabric.validate_flit(mcast_flit(src=0, mask=0, uid=1))
    with pytest.raises(ProtocolError):
        fabric.validate_flit(mcast_flit(src=0, mask=1 << 9, uid=2))
    with pytest.raises(ProtocolError):
        # Mask includes the source itself.
        fabric.validate_flit(mcast_flit(src=3, mask=1 << 3, uid=3))
    with pytest.raises(ProtocolError):
        # Negative dst on a non-multicast flit.
        fabric.validate_flit(
            Flit(dst=-1, src=0, ptype=PacketType.MESSAGE)
        )


def test_strict_encoding_accepts_mask_beyond_spare_bits():
    """Regression: a 16-node mask exceeds the 64-bit flit's 12 spare
    bits and used to raise ProtocolError under strict encoding (the
    unicast fallback was the only way); the widened-header codec now
    carries it losslessly."""
    topo = FoldedTorusTopology(4, 4)
    fabric = NocFabric(topo, strict_encoding=True)
    mask = ((1 << 16) - 1) & ~1  # every node but the source: 15 bits set
    flit = mcast_flit(src=0, mask=mask, uid=1)
    fabric.validate_flit(flit)  # previously: ProtocolError
    assert fabric.codec.mask_bits >= 16
    decoded = fabric.codec.decode(
        fabric.codec.encode(0, 0, int(PacketType.MULTICAST), 1, 0, 1, 0, 0,
                            mask=mask)
    )
    assert decoded["mask"] == mask


def test_strict_encoding_accepts_mask_in_spare_bits():
    topo = FoldedTorusTopology(3, 3)
    fabric = NocFabric(topo, strict_encoding=True)
    flit = mcast_flit(src=0, mask=(1 << 5) | (1 << 8), uid=1)
    fabric.validate_flit(flit)  # 9-node mask fits the 12 spare bits
    decoded = fabric.codec.decode(
        fabric.codec.encode(0, 0, int(PacketType.MULTICAST), 1, 0, 1, 0, 0,
                            mask=flit.dst_mask)
    )
    assert decoded["mask"] == flit.dst_mask


# -- the chiplet hub: exact split bound --------------------------------------


def test_multicast_splits_at_a_two_port_chiplet_hub():
    """Regression for the hierarchical-topology livelock: a multicast
    flit entering the two-port IO hub with destinations in *both*
    chiplets must split a copy toward each uplink in one pass.  Under
    the grids' spare-port slack the second branch could never satisfy
    ``free_count > reserve + 1`` at a degree-2 node, so the merged flit
    bounced back to the source chiplet forever."""
    from repro.noc.topology import ChipletTopology

    topo = ChipletTopology(2, 2, 2)  # hub node 0: ports 0 and 1 only
    # Destinations span chiplet 0 (nodes 2, 4) and chiplet 1 (nodes 5-8).
    mask = (1 << 2) | (1 << 4) | (1 << 5) | (1 << 8)
    flit = mcast_flit(src=1, mask=mask, uid=1)
    inputs = [None] * topo.max_ports
    inputs[0] = flit
    outcome = route_node(0, inputs, None, topo)
    masks = [m for m in out_masks(outcome) if m is not None]
    assert sorted(masks) == [(1 << 2) | (1 << 4), (1 << 5) | (1 << 8)]
    assert outcome.flit_copies == 1
    assert not outcome.ejected


def test_multicast_hub_split_still_reserves_younger_flits():
    """With a younger multicast flit also present at the hub, the older
    one must *not* split — both ports are needed to place both flits —
    and every destination bit survives on some output."""
    from repro.noc.topology import ChipletTopology

    topo = ChipletTopology(2, 2, 2)
    old = mcast_flit(src=1, mask=(1 << 2) | (1 << 6), uid=1, injected_at=0)
    young = mcast_flit(src=2, mask=(1 << 7), uid=2, injected_at=5)
    inputs = [None] * topo.max_ports
    inputs[0] = old
    inputs[1] = young
    outcome = route_node(0, inputs, None, topo)
    masks = [m for m in out_masks(outcome) if m is not None]
    assert len(masks) == 2  # one port each, no starvation
    combined = 0
    for m in masks:
        combined |= m
    assert combined == (1 << 2) | (1 << 6) | (1 << 7)
    assert outcome.flit_copies == 0
