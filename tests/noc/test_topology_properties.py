"""Topology invariants as property sweeps across shapes.

The routing-layer refactor replaced the grids' closed-form X-Y tables
with generic BFS construction; these properties pin the contract every
:class:`Topology` must satisfy — and, on the grids, that the generic
builder reproduces the historical closed-form tables bit-exactly:

* hop-table symmetry (``hops(a, b) == hops(b, a)`` on symmetric links);
* neighbor/ports consistency (link symmetry through ``reverse_port``,
  ``ports_table``/``port_mask_table`` agreeing with ``neighbor_table``);
* BFS-vs-closed-form equality for hop distances *and* productive-port
  preference order on mesh and folded torus across widths 2..6;
* productive progress: every preferred hop strictly reduces the BFS
  hop distance to the destination, on every topology kind including
  the hierarchical chiplet package.
"""

from __future__ import annotations

import pytest

from repro.noc.topology import (
    GATEWAY_PORT,
    ChipletTopology,
    FoldedTorusTopology,
    MeshTopology,
)

GRID_SHAPES = [
    (width, height)
    for width in range(2, 7)
    for height in range(2, 7)
]

CHIPLET_SHAPES = [
    (1, 2, 2),
    (2, 2, 2),
    (4, 2, 2),
    (2, 3, 2),
    (4, 4, 4),
]


def grid_topologies(width, height):
    return [MeshTopology(width, height), FoldedTorusTopology(width, height)]


def all_topologies():
    cases = []
    for width, height in [(2, 2), (3, 3), (4, 3), (6, 6)]:
        cases.extend(grid_topologies(width, height))
    for chiplets, width, height in CHIPLET_SHAPES:
        cases.append(ChipletTopology(chiplets, width, height))
    return cases


@pytest.fixture(params=all_topologies(), ids=lambda t: f"{t.kind}{t.n_nodes}")
def topo(request):
    return request.param


# -- generic graph contract --------------------------------------------------


def test_hop_table_is_symmetric(topo):
    n = topo.n_nodes
    for src in range(n):
        for dst in range(n):
            assert topo.hop_table[src * n + dst] == topo.hop_table[
                dst * n + src
            ], f"hops({src},{dst}) asymmetric on {topo.kind}"


def test_links_are_symmetric_through_reverse_ports(topo):
    for node in range(topo.n_nodes):
        for port in range(topo.max_ports):
            neighbor = topo.neighbor_table[node][port]
            if neighbor < 0:
                continue
            reverse = topo.reverse_port_table[node][port]
            assert topo.neighbor_table[neighbor][reverse] == node
            assert topo.reverse_port_table[neighbor][reverse] == port


def test_ports_tables_agree_with_neighbors(topo):
    for node in range(topo.n_nodes):
        attached = tuple(
            port for port in range(topo.max_ports)
            if topo.neighbor_table[node][port] >= 0
        )
        assert topo.ports_table[node] == attached
        assert topo.port_mask_table[node] == sum(
            1 << port for port in attached
        )


def test_every_pair_is_reachable(topo):
    n = topo.n_nodes
    for src in range(n):
        for dst in range(n):
            hops = topo.hop_table[src * n + dst]
            assert (hops == 0) == (src == dst)
            assert hops >= 0, f"{topo.kind}: {src}->{dst} unreachable"


def test_productive_ports_strictly_reduce_hop_distance(topo):
    n = topo.n_nodes
    for src in range(n):
        for dst in range(n):
            if src == dst:
                assert topo.productive_table[src * n + dst] == ()
                continue
            here = topo.hop_table[src * n + dst]
            ports = topo.productive_table[src * n + dst]
            assert ports, f"{topo.kind}: no productive port {src}->{dst}"
            for port in ports:
                neighbor = topo.neighbor_table[src][port]
                assert neighbor >= 0
                assert topo.hop_table[neighbor * n + dst] == here - 1, (
                    f"{topo.kind}: port {port} of {src} does not make "
                    f"progress toward {dst}"
                )


def test_neighbors_are_one_hop_apart(topo):
    n = topo.n_nodes
    for node in range(n):
        for port in topo.ports_table[node]:
            neighbor = topo.neighbor_table[node][port]
            assert topo.hop_table[node * n + neighbor] == 1


# -- BFS vs the historical closed-form grid tables ---------------------------


@pytest.mark.parametrize("width,height", GRID_SHAPES)
@pytest.mark.parametrize("kind", ["mesh", "folded_torus"])
def test_bfs_tables_match_closed_form_on_grids(kind, width, height):
    cls = MeshTopology if kind == "mesh" else FoldedTorusTopology
    topo = cls(width, height)
    n = topo.n_nodes
    for src in range(n):
        for dst in range(n):
            assert topo.hop_table[src * n + dst] == topo.closed_form_hops(
                src, dst
            ), f"{kind} {width}x{height}: hops({src},{dst})"
            assert topo.productive_table[
                src * n + dst
            ] == topo.closed_form_productive(src, dst), (
                f"{kind} {width}x{height}: preference order ({src},{dst})"
            )


# -- the chiplet package's structure -----------------------------------------


def test_chiplet_hub_port_c_reaches_gateway_c():
    topo = ChipletTopology(4, 2, 2)
    for chiplet in range(4):
        gateway = topo.gateway_of(chiplet)
        assert topo.neighbor_table[topo.hub_node][chiplet] == gateway
        assert topo.neighbor_table[gateway][GATEWAY_PORT] == topo.hub_node


def test_chiplet_hop_distance_decomposes_through_the_hub():
    # Cross-chiplet distance = to-gateway + uplink + downlink + from-gateway.
    topo = ChipletTopology(3, 3, 2)
    n = topo.n_nodes
    for src in topo.chiplet_members(0):
        for dst in topo.chiplet_members(2):
            via_hub = (
                topo.hop_table[src * n + topo.gateway_of(0)]
                + 2
                + topo.hop_table[topo.gateway_of(2) * n + dst]
            )
            assert topo.hop_table[src * n + dst] == via_hub


def test_chiplet_labels_and_groups_are_consistent():
    topo = ChipletTopology(2, 3, 2)
    assert topo.label_of(topo.hub_node) == "io"
    seen = set()
    for chiplet, members in enumerate(topo.chiplet_groups()):
        assert members == topo.chiplet_members(chiplet)
        for node in members:
            x, y = topo.local_coords_of(node)
            assert topo.label_of(node) == f"c{chiplet}:{x},{y}"
            assert topo.chiplet_node(chiplet, x, y) == node
            seen.add(node)
    assert seen == set(range(1, topo.n_nodes))


def test_chiplet_split_slack_is_exact():
    # The grids keep one spare port before splitting an extra multicast
    # branch; on the chiplet package the two-port hub makes any slack a
    # livelock (the remote branch could never split off), so replication
    # must use the exact younger-flit reserve.
    assert MeshTopology(4, 4).mcast_split_slack == 1
    assert FoldedTorusTopology(4, 4).mcast_split_slack == 1
    assert ChipletTopology(2, 2, 2).mcast_split_slack == 0
