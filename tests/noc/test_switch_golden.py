"""Golden-equivalence property test for the optimized deflection router.

``_reference_route_node`` below is a deliberately straightforward
transcription of the original (pre-optimization) switch: free ports as a
set, unconditional sorting, productive directions through the topology
method.  The optimized ``route_node`` (bitmasks, skipped sorts, scratch
reuse) must produce identical outcomes flit-for-flit over randomized
configurations on both torus and mesh topologies — including the mutation
of per-flit deflection counters.
"""

from __future__ import annotations

import random

from repro.noc.flit import Flit
from repro.noc.packet import PacketType
from repro.noc.switch import RoutingOutcome, route_node
from repro.noc.topology import FoldedTorusTopology, MeshTopology


def _reference_route_node(node, inputs, inject, topology, eject_capacity=1):
    """The seed implementation of route_node, kept verbatim-simple."""
    ports = topology.ports_of(node)

    arrived = [flit for flit in inputs if flit.dst == node]
    transit = [flit for flit in inputs if flit.dst != node]

    arrived.sort(key=Flit.age_key)
    ejected = arrived[:eject_capacity]
    recirculating = arrived[eject_capacity:]
    eject_overflow = len(recirculating)

    outputs = [None, None, None, None]
    deflections = 0
    free = set(ports)

    contenders = sorted(transit + recirculating, key=Flit.age_key)
    for flit in contenders:
        placed = False
        for direction in topology.productive_directions(node, flit.dst):
            if direction in free:
                outputs[direction] = flit
                free.discard(direction)
                placed = True
                break
        if not placed:
            for direction in ports:
                if direction in free:
                    outputs[direction] = flit
                    free.discard(direction)
                    placed = True
                    flit.deflections += 1
                    deflections += 1
                    break
        assert placed
    injected = False
    if inject is not None and free:
        for direction in topology.productive_directions(node, inject.dst):
            if direction in free:
                outputs[direction] = inject
                free.discard(direction)
                injected = True
                break
        if not injected:
            direction = min(free)
            outputs[direction] = inject
            free.discard(direction)
            injected = True
    return RoutingOutcome(ejected, outputs, injected, deflections,
                          eject_overflow)


def _random_flit(rng, n_nodes, uid):
    return Flit(
        dst=rng.randrange(n_nodes),
        src=rng.randrange(n_nodes),
        ptype=PacketType.MESSAGE,
        uid=uid,
        injected_at=rng.randrange(0, 50),
        deflections=rng.randrange(0, 3),
    )


def _clone(flit):
    return Flit(
        dst=flit.dst, src=flit.src, ptype=flit.ptype, subtype=flit.subtype,
        seq=flit.seq, burst=flit.burst, data=flit.data, uid=flit.uid,
        injected_at=flit.injected_at, hops=flit.hops,
        deflections=flit.deflections,
    )


def _assert_same_outcome(case, got, expected, flits, ref_flits):
    got_ej = [f.uid for f in got.ejected]
    exp_ej = [f.uid for f in expected.ejected]
    assert got_ej == exp_ej, f"{case}: ejected differ {got_ej} != {exp_ej}"
    got_out = [f.uid if f is not None else None for f in got.outputs]
    exp_out = [f.uid if f is not None else None for f in expected.outputs]
    assert got_out == exp_out, f"{case}: outputs differ {got_out} != {exp_out}"
    assert got.injected == expected.injected, f"{case}: injected differs"
    assert got.deflections == expected.deflections, f"{case}: deflections"
    assert got.eject_overflow == expected.eject_overflow, f"{case}: overflow"
    # The per-flit deflection counters must mutate identically.
    for mine, ref in zip(flits, ref_flits):
        assert mine.deflections == ref.deflections, (
            f"{case}: flit #{mine.uid} deflection counter diverged"
        )


def _run_equivalence(topology, rng, rounds, reuse_scratch):
    n_nodes = topology.n_nodes
    scratch = RoutingOutcome() if reuse_scratch else None
    uid = 0
    for case in range(rounds):
        node = rng.randrange(n_nodes)
        ports = topology.ports_of(node)
        n_inputs = rng.randrange(0, len(ports) + 1)
        flits = []
        for _ in range(n_inputs):
            flits.append(_random_flit(rng, n_nodes, uid))
            uid += 1
        inject = None
        if rng.random() < 0.7:
            inject = _random_flit(rng, n_nodes, uid)
            # The fabric strips self-addressed injections before routing.
            if inject.dst == node:
                inject.dst = (node + 1) % n_nodes
            uid += 1
        eject_capacity = rng.choice((1, 2))

        ref_flits = [_clone(f) for f in flits]
        ref_inject = _clone(inject) if inject is not None else None
        expected = _reference_route_node(
            node, ref_flits, ref_inject, topology, eject_capacity
        )
        got = route_node(node, flits, inject, topology, eject_capacity,
                         out=scratch)
        _assert_same_outcome(
            f"case {case} node {node}", got, expected,
            flits + ([inject] if inject else []),
            ref_flits + ([ref_inject] if ref_inject else []),
        )


def test_optimized_router_matches_reference_on_torus():
    rng = random.Random(0xC0FFEE)
    _run_equivalence(FoldedTorusTopology(4, 4), rng, rounds=2000,
                     reuse_scratch=False)


def test_optimized_router_matches_reference_on_torus_with_scratch_reuse():
    rng = random.Random(0xBEEF)
    _run_equivalence(FoldedTorusTopology(3, 3), rng, rounds=2000,
                     reuse_scratch=True)


def test_optimized_router_matches_reference_on_mesh():
    # Mesh corners/edges have fewer ports, exercising partial port masks.
    rng = random.Random(42)
    _run_equivalence(MeshTopology(4, 3), rng, rounds=2000,
                     reuse_scratch=True)


def test_scratch_reuse_is_equivalent_to_fresh_outcomes():
    topo = FoldedTorusTopology(4, 4)
    rng = random.Random(7)
    scratch = RoutingOutcome()
    uid = 0
    for _ in range(500):
        node = rng.randrange(topo.n_nodes)
        flits, clones = [], []
        for _ in range(rng.randrange(0, 5)):
            flit = _random_flit(rng, topo.n_nodes, uid)
            uid += 1
            flits.append(flit)
            clones.append(_clone(flit))
        fresh = route_node(node, clones, None, topo)
        reused = route_node(node, flits, None, topo, out=scratch)
        assert [f.uid for f in reused.ejected] == [f.uid for f in fresh.ejected]
        assert (
            [f.uid if f else None for f in reused.outputs]
            == [f.uid if f else None for f in fresh.outputs]
        )
        assert reused.deflections == fresh.deflections
        assert reused.eject_overflow == fresh.eject_overflow
