"""Direction constants and ring arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.noc.coords import (
    ALL_DIRECTIONS,
    DELTA_X,
    DELTA_Y,
    EAST,
    NORTH,
    OPPOSITE,
    SOUTH,
    WEST,
    signed_wrap_delta,
)


def test_direction_constants_are_distinct():
    assert len({NORTH, EAST, SOUTH, WEST}) == 4
    assert ALL_DIRECTIONS == (NORTH, EAST, SOUTH, WEST)


def test_opposite_is_involution():
    for direction in ALL_DIRECTIONS:
        assert OPPOSITE[OPPOSITE[direction]] == direction


def test_deltas_cancel_for_opposites():
    for direction in ALL_DIRECTIONS:
        opposite = OPPOSITE[direction]
        assert DELTA_X[direction] + DELTA_X[opposite] == 0
        assert DELTA_Y[direction] + DELTA_Y[opposite] == 0


@pytest.mark.parametrize(
    "src,dst,size,expected",
    [
        (0, 1, 4, 1),
        (1, 0, 4, -1),
        (0, 3, 4, -1),   # wrap is shorter
        (3, 0, 4, 1),
        (0, 2, 4, 2),    # tie resolves positive
        (2, 0, 4, 2),
        (0, 0, 4, 0),
        (0, 2, 5, 2),
        (0, 3, 5, -2),
    ],
)
def test_signed_wrap_delta_cases(src, dst, size, expected):
    assert signed_wrap_delta(src, dst, size) == expected


@given(st.integers(2, 16), st.data())
def test_signed_wrap_delta_reaches_destination(size, data):
    src = data.draw(st.integers(0, size - 1))
    dst = data.draw(st.integers(0, size - 1))
    delta = signed_wrap_delta(src, dst, size)
    assert (src + delta) % size == dst
    assert abs(delta) <= size // 2
