"""Deflection-routing switch behaviour (pure routing function)."""

from __future__ import annotations

from repro.noc.coords import EAST
from repro.noc.flit import Flit
from repro.noc.packet import PacketType
from repro.noc.switch import route_node
from repro.noc.topology import FoldedTorusTopology

TOPO = FoldedTorusTopology(4, 4)


def make_flit(dst: int, src: int = 0, injected_at: int = 0) -> Flit:
    flit = Flit(dst=dst, src=src, ptype=PacketType.MESSAGE)
    flit.injected_at = injected_at
    return flit


def test_arrival_is_ejected():
    flit = make_flit(dst=5)
    outcome = route_node(5, [flit], None, TOPO)
    assert outcome.ejected == [flit]
    assert all(slot is None for slot in outcome.outputs)


def test_transit_takes_productive_port():
    node = TOPO.node_at(0, 0)
    dst = TOPO.node_at(2, 0)  # two hops east
    flit = make_flit(dst)
    outcome = route_node(node, [flit], None, TOPO)
    assert outcome.outputs[EAST] is flit
    assert outcome.deflections == 0


def test_contention_deflects_younger_flit():
    node = TOPO.node_at(0, 0)
    dst = TOPO.node_at(2, 0)
    old = make_flit(dst, injected_at=0)
    young = make_flit(dst, injected_at=5)
    outcome = route_node(node, [old, young], None, TOPO)
    assert outcome.outputs[EAST] is old
    assert outcome.deflections == 1
    assert young.deflections == 1
    assert young in outcome.outputs


def test_all_transit_flits_always_placed():
    node = TOPO.node_at(1, 1)
    dst = TOPO.node_at(3, 1)
    flits = [make_flit(dst, injected_at=i) for i in range(4)]
    outcome = route_node(node, flits, None, TOPO)
    placed = [f for f in outcome.outputs if f is not None]
    assert sorted(f.uid for f in placed) == sorted(f.uid for f in flits)


def test_ejection_capacity_recirculates_excess():
    node = 5
    first = make_flit(dst=node, injected_at=0)
    second = make_flit(dst=node, injected_at=1)
    outcome = route_node(node, [first, second], None, TOPO, eject_capacity=1)
    assert outcome.ejected == [first]  # oldest wins the ejection port
    assert outcome.eject_overflow == 1
    assert second in outcome.outputs  # hot-potato: it goes back out


def test_ejection_capacity_two_ejects_both():
    node = 5
    flits = [make_flit(dst=node, injected_at=i) for i in range(2)]
    outcome = route_node(node, flits, None, TOPO, eject_capacity=2)
    assert outcome.ejected == flits
    assert outcome.eject_overflow == 0


def test_injection_accepted_when_port_free():
    node = TOPO.node_at(0, 0)
    inject = make_flit(TOPO.node_at(1, 0))
    outcome = route_node(node, [], inject, TOPO)
    assert outcome.injected
    assert outcome.outputs[EAST] is inject


def test_injection_blocked_when_all_ports_taken():
    node = TOPO.node_at(1, 1)
    dst = TOPO.node_at(3, 3)
    transit = [make_flit(dst, injected_at=i) for i in range(4)]
    inject = make_flit(TOPO.node_at(2, 1), injected_at=9)
    outcome = route_node(node, transit, inject, TOPO)
    assert not outcome.injected
    assert inject not in outcome.outputs


def test_injection_deflected_to_free_port_if_needed():
    node = TOPO.node_at(1, 1)
    # Three transit flits all wanting to go east-ish occupy ports; the
    # injected flit wants EAST but must take whatever remains.
    dst_east = TOPO.node_at(3, 1)
    transit = [make_flit(dst_east, injected_at=i) for i in range(3)]
    inject = make_flit(dst_east, injected_at=9)
    outcome = route_node(node, transit, inject, TOPO)
    assert outcome.injected
    taken = [d for d, f in enumerate(outcome.outputs) if f is inject]
    assert len(taken) == 1


def test_recirculating_arrival_counts_as_deflection():
    node = 5
    keep = make_flit(dst=node, injected_at=0)
    excess = make_flit(dst=node, injected_at=1)
    outcome = route_node(node, [keep, excess], None, TOPO)
    # The recirculated flit had no productive port (it is *at* its
    # destination) so its placement is recorded as a deflection.
    assert outcome.deflections == 1


def test_oldest_first_priority_uses_uid_tiebreak():
    node = TOPO.node_at(0, 0)
    dst = TOPO.node_at(2, 0)
    a = make_flit(dst, injected_at=3)
    b = make_flit(dst, injected_at=3)
    outcome = route_node(node, [b, a], None, TOPO)
    winner = outcome.outputs[EAST]
    assert winner is (a if a.uid < b.uid else b)


def test_deterministic_given_same_inputs():
    node = TOPO.node_at(2, 2)
    def build():
        flits = [
            Flit(dst=TOPO.node_at(0, 2), src=1, ptype=PacketType.MESSAGE,
                 uid=100 + i)
            for i in range(3)
        ]
        for index, flit in enumerate(flits):
            flit.injected_at = index
        return flits

    first = route_node(node, build(), None, TOPO)
    second = route_node(node, build(), None, TOPO)
    first_map = [f.uid if f else None for f in first.outputs]
    second_map = [f.uid if f else None for f in second.outputs]
    assert first_map == second_map


def test_hops_not_modified_by_switch():
    # hop counting belongs to the fabric, not the routing function
    node = TOPO.node_at(0, 0)
    flit = make_flit(TOPO.node_at(1, 0))
    route_node(node, [flit], None, TOPO)
    assert flit.hops == 0
