"""Unit coverage for the fault-injection layer (:mod:`repro.faults`).

The injector is the single hook behind every fault-layer branch: seeded
transient drop/corrupt on links, the end-to-end checksum, permanent link
kills with mask + productive-table recomputation, switch stalls, and
credit eating.  These tests drive it directly — end-to-end recovery is
covered in ``tests/system/test_fault_recovery.py``.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.faults import FaultInjector, FaultPlan, link_name
from repro.noc.flit import Flit
from repro.noc.packet import PacketType, SubType
from repro.noc.topology import MeshTopology


def make_injector(**plan_kwargs) -> FaultInjector:
    return FaultInjector(FaultPlan(**plan_kwargs), MeshTopology(3, 3))


def data_flit(src=0, dst=4, seq=0, data=0x1234) -> Flit:
    return Flit(dst=dst, src=src, ptype=PacketType.MESSAGE,
                subtype=int(SubType.MSG_DATA), seq=seq, burst=1, data=data)


# -- plan validation --------------------------------------------------------


@pytest.mark.parametrize("kwargs", [
    dict(drop_rate=1.5),
    dict(corrupt_rate=-0.1),
    dict(drop_rate=0.6, corrupt_rate=0.6),
    dict(nack_timeout=0),
    dict(nack_backoff=0),
    dict(max_retries=0),
    dict(retx_slots=0),
    dict(retx_slots=17),
    dict(stalls=[(3, 100, 0)]),
    dict(fault_window=(200, 100)),
])
def test_plan_validation_rejects_bad_knobs(kwargs):
    with pytest.raises(ConfigError):
        FaultPlan(**kwargs).validate()


def test_plan_rejects_nonexistent_link():
    # Node 0 of a 3x3 mesh has no north or west neighbour.
    with pytest.raises(ConfigError, match="does not exist"):
        make_injector(dead_links=[(0, 0, 10)])


def test_plan_coerces_lists_and_stays_asdict_stable():
    plan = FaultPlan(dead_links=[[1, 1, 200]], stalls=[[4, 300, 50]])
    assert plan.dead_links == ((1, 1, 200),)
    assert plan.stalls == ((4, 300, 50),)
    # The DSE cache key uses dataclasses.asdict; it must not raise and
    # must be order-stable.
    assert dataclasses.asdict(plan) == dataclasses.asdict(
        FaultPlan(dead_links=((1, 1, 200),), stalls=((4, 300, 50),))
    )


# -- seeded transient faults ------------------------------------------------


def test_same_seed_same_drop_decisions():
    def decisions(seed):
        injector = make_injector(seed=seed, drop_rate=0.3)
        return [
            injector.on_link(0, 1, data_flit(seq=i), cycle=i)
            for i in range(64)
        ]

    first = decisions(42)
    assert first == decisions(42)
    assert False in first and True in first  # both outcomes exercised
    assert first != decisions(43)


def test_only_stream_data_flits_are_dropped():
    injector = make_injector(drop_rate=1.0)
    request = Flit(dst=4, src=0, ptype=PacketType.MESSAGE,
                   subtype=int(SubType.MSG_REQUEST), data=0x7F00_0000)
    assert injector.on_link(0, 1, request, cycle=5)  # control: untouched
    assert not injector.on_link(0, 1, data_flit(), cycle=5)
    retx = data_flit()
    retx.subtype = int(SubType.MSG_RETX)
    assert not injector.on_link(0, 1, retx, cycle=6)  # retransmits too


def test_fault_window_and_links_restrict_transients():
    injector = make_injector(
        drop_rate=1.0, fault_window=(100, 200), fault_links=[(0, 1)]
    )
    assert injector.on_link(0, 1, data_flit(), cycle=99)    # before window
    assert injector.on_link(0, 1, data_flit(), cycle=200)   # after window
    assert injector.on_link(2, 2, data_flit(), cycle=150)   # other link
    assert not injector.on_link(0, 1, data_flit(), cycle=150)
    assert injector.counts.as_dict()["dropped"] == 1


def test_corruption_is_caught_at_ejection():
    injector = make_injector(seed=9, corrupt_rate=1.0)
    flit = data_flit(data=0xCAFE)
    injector.stamp(flit)
    assert injector.check_eject(flit, node=4, cycle=10)  # clean round trip
    injector.on_link(0, 1, flit, cycle=11)  # flips one payload bit
    assert flit.data != 0xCAFE
    assert not injector.check_eject(flit, node=4, cycle=12)
    counters = injector.counts.as_dict()
    assert counters["corrupted"] == 1
    assert counters["crc_dropped"] == 1


def test_trace_replays_and_counts():
    injector = make_injector(seed=1, drop_rate=0.5)
    for i in range(32):
        injector.on_link(1, 2, data_flit(seq=i), cycle=i)
    counters = injector.counts.as_dict()
    dropped = [entry for entry in injector.trace if entry[1] == "dropped"]
    assert counters["dropped"] == len(dropped) > 0


# -- permanent kills and the rerouted productive table ----------------------


def test_kill_link_masks_both_directions():
    injector = make_injector(dead_links=[(1, 1, 50)])
    full_1 = injector.out_mask(1)
    injector.advance(50)
    assert injector.masks_active
    assert not injector.out_mask(1) & (1 << 1)  # 1->E dead
    assert not injector.out_mask(2) & (1 << 3)  # 2->W dead (symmetric)
    assert injector.out_mask(1) != full_1
    assert ("link_killed" in [e[1] for e in injector.trace])


def test_kill_recomputes_productive_directions():
    # Killing 1->E leaves node 2 reachable only through node 5 (south):
    # the rerouted table must steer 5's traffic for node 1 away from the
    # node-2 cul-de-sac, and node 2's only productive direction anywhere
    # is S.  Without this, X-Y preference livelocks the fabric (the
    # oldest flit ping-pongs 5<->2 and starves everyone else).
    injector = make_injector(dead_links=[(1, 1, 0)])
    injector.advance(0)
    table = injector.productive_override
    assert table is not None
    n = 9
    south = 2
    assert table[5 * n + 1] == (3,)       # node 5 -> node 1: west only
    for dst in range(n):
        if dst != 2:
            assert table[2 * n + dst] == (south,)
    # Every pair is still connected on this mesh — no empty entries.
    assert all(table[s * n + d] for s in range(n) for d in range(n) if s != d)


def test_stall_masks_neighbours_and_restores():
    injector = make_injector(stalls=[(4, 100, 20)])
    injector.advance(99)
    assert not injector.masks_active
    injector.advance(100)
    assert injector.stalled(4)
    # Every neighbour of the centre node stops feeding it.
    assert not injector.out_mask(1) & (1 << 2)  # 1->S
    assert not injector.out_mask(7) & (1 << 0)  # 7->N
    injector.advance(120)
    assert not injector.stalled(4)
    assert injector.out_mask(1) & (1 << 2)
    assert not injector.masks_active
    # Stalls never touch the productive table (transient by design).
    assert injector.productive_override is None


# -- credit eating ----------------------------------------------------------


def test_credit_eating_is_bounded():
    injector = make_injector(drop_credits=[(3, 1, 2)],
                             drop_mcast_credits=[(3, 1, 1)])
    assert injector.eat_credit(3, 1)
    assert injector.eat_credit(3, 1)
    assert not injector.eat_credit(3, 1)   # budget exhausted
    assert not injector.eat_credit(5, 1)   # other node untouched
    assert injector.eat_mcast_credit(3, 1)
    assert not injector.eat_mcast_credit(3, 1)
    counters = injector.counts.as_dict()
    assert counters["credits_eaten"] == 2
    assert counters["mcast_credits_eaten"] == 1


def test_describe_names_seed_and_gave_up():
    injector = make_injector(seed=77, drop_rate=1.0)
    injector.on_link(0, 1, data_flit(), cycle=3)
    injector.gave_up.append("pe[2] gave up on nack to node 1")
    text = injector.describe()
    assert "seed=77" in text
    assert "dropped=1" in text
    assert "gave up" in text
    assert link_name(0, 1) == "0->E"
