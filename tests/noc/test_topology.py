"""Folded torus and mesh topology properties."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.noc.coords import ALL_DIRECTIONS, EAST, NORTH, OPPOSITE, SOUTH, WEST
from repro.noc.topology import (
    FoldedTorusTopology,
    MeshTopology,
    grid_for_nodes,
)


def test_node_index_round_trip():
    topo = FoldedTorusTopology(4, 3)
    for node in range(topo.n_nodes):
        x, y = topo.coords_of(node)
        assert topo.node_at(x, y) == node


def test_node_at_out_of_range_rejected():
    topo = FoldedTorusTopology(4, 4)
    with pytest.raises(ConfigError):
        topo.node_at(4, 0)


def test_torus_wraparound_neighbors():
    topo = FoldedTorusTopology(4, 4)
    # Node 0 is the top-left corner; the torus wraps on every edge.
    assert topo.neighbor(0, WEST) == 3
    assert topo.neighbor(0, NORTH) == 12
    assert topo.neighbor(0, EAST) == 1
    assert topo.neighbor(0, SOUTH) == 4


def test_torus_neighbor_relation_is_symmetric():
    topo = FoldedTorusTopology(4, 4)
    for node in range(topo.n_nodes):
        for direction in ALL_DIRECTIONS:
            neighbor = topo.neighbor(node, direction)
            assert topo.neighbor(neighbor, OPPOSITE[direction]) == node


def test_mesh_has_no_wraparound():
    topo = MeshTopology(3, 3)
    assert topo.neighbor(0, NORTH) == -1
    assert topo.neighbor(0, WEST) == -1
    assert topo.neighbor(8, SOUTH) == -1
    assert topo.neighbor(8, EAST) == -1
    assert topo.neighbor(4, NORTH) == 1


def test_mesh_ports_of_corner_and_center():
    topo = MeshTopology(3, 3)
    assert len(topo.ports_of(0)) == 2
    assert len(topo.ports_of(4)) == 4


def test_torus_all_nodes_have_four_ports():
    topo = FoldedTorusTopology(4, 4)
    for node in range(topo.n_nodes):
        assert len(topo.ports_of(node)) == 4


def test_productive_directions_empty_at_destination():
    topo = FoldedTorusTopology(4, 4)
    for node in range(topo.n_nodes):
        assert topo.productive_directions(node, node) == ()


def test_productive_directions_reduce_distance():
    topo = FoldedTorusTopology(4, 4)
    for src in range(topo.n_nodes):
        for dst in range(topo.n_nodes):
            if src == dst:
                continue
            distance = topo.hop_distance(src, dst)
            for direction in topo.productive_directions(src, dst):
                next_node = topo.neighbor(src, direction)
                assert topo.hop_distance(next_node, dst) == distance - 1


def test_productive_prefers_longest_dimension_first():
    topo = FoldedTorusTopology(8, 8)
    src = topo.node_at(0, 0)
    dst = topo.node_at(3, 1)  # dx=3, dy=1 -> EAST before SOUTH
    assert topo.productive_directions(src, dst)[0] == EAST


def test_hop_distance_uses_wraparound():
    topo = FoldedTorusTopology(4, 4)
    assert topo.hop_distance(topo.node_at(0, 0), topo.node_at(3, 0)) == 1
    assert topo.hop_distance(topo.node_at(0, 0), topo.node_at(2, 2)) == 4


def test_mesh_hop_distance_is_manhattan():
    topo = MeshTopology(4, 4)
    assert topo.hop_distance(topo.node_at(0, 0), topo.node_at(3, 3)) == 6


def test_mesh_productive_directions_reduce_distance():
    topo = MeshTopology(4, 3)
    for src in range(topo.n_nodes):
        for dst in range(topo.n_nodes):
            if src == dst:
                continue
            distance = topo.hop_distance(src, dst)
            for direction in topo.productive_directions(src, dst):
                next_node = topo.neighbor(src, direction)
                assert next_node >= 0
                assert topo.hop_distance(next_node, dst) == distance - 1


@given(st.integers(2, 40))
def test_grid_for_nodes_fits_and_is_compact(n_nodes):
    width, height = grid_for_nodes(n_nodes)
    assert width * height >= n_nodes
    # Never more than one spare row's worth of waste.
    assert width * height - n_nodes < width


def test_grid_for_nodes_prefers_square_for_16():
    assert grid_for_nodes(16) == (4, 4)


def test_grid_for_nodes_rejects_tiny():
    with pytest.raises(ConfigError):
        grid_for_nodes(1)


def test_degenerate_single_row_torus():
    topo = FoldedTorusTopology(3, 1)
    # North/south wrap onto the node itself; productive dirs never use them.
    assert topo.neighbor(0, NORTH) == 0
    for src in range(3):
        for dst in range(3):
            for direction in topo.productive_directions(src, dst):
                assert direction in (EAST, WEST)


def test_invalid_dimensions_rejected():
    with pytest.raises(ConfigError):
        FoldedTorusTopology(1, 4)
