"""NoC fabric: end-to-end delivery, conservation, timing."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PacketFormatError, ProtocolError
from repro.kernel.component import Component
from repro.kernel.simulator import Simulator
from repro.noc.flit import Flit
from repro.noc.network import NocFabric
from repro.noc.packet import PacketType
from repro.noc.topology import FoldedTorusTopology


class Collector(Component):
    """Drains an ejection queue, recording (cycle, flit)."""

    def __init__(self, fabric: NocFabric, node: int) -> None:
        super().__init__(f"collector[{node}]")
        self.port = fabric.ports_of(node)
        self.port.eject.owner = self
        self.received: list[tuple[int, Flit]] = []

    def step(self, cycle: int) -> None:
        queue = self.port.eject.queue
        while queue:
            self.received.append((cycle, queue.pop()))
        self.sleep()


def build(width: int = 4, height: int = 4) -> tuple[Simulator, NocFabric]:
    sim = Simulator()
    fabric = NocFabric(FoldedTorusTopology(width, height))
    sim.register(fabric)
    return sim, fabric


def test_single_flit_delivery_and_latency():
    sim, fabric = build()
    collector = Collector(fabric, 5)
    sim.register(collector)
    flit = Flit(dst=5, src=0, ptype=PacketType.MESSAGE, data=42)
    assert fabric.ports_of(0).inject.try_inject(flit)
    sim.run(max_cycles=50)
    assert len(collector.received) == 1
    cycle, received = collector.received[0]
    assert received.data == 42
    hops = fabric.topology.hop_distance(0, 5)
    assert received.hops == hops
    # One cycle per hop plus the injection cycle.
    assert fabric.latency.max == hops + 1


def test_self_addressed_flit_bypasses_network():
    sim, fabric = build()
    collector = Collector(fabric, 3)
    sim.register(collector)
    flit = Flit(dst=3, src=3, ptype=PacketType.MESSAGE, data=7)
    fabric.ports_of(3).inject.try_inject(flit)
    sim.run(max_cycles=10)
    assert len(collector.received) == 1
    assert collector.received[0][1].hops == 0


def test_injection_port_busy_until_accepted():
    __, fabric = build()
    port = fabric.ports_of(0).inject
    assert port.try_inject(Flit(dst=1, src=0, ptype=PacketType.MESSAGE))
    assert port.busy
    assert not port.try_inject(Flit(dst=2, src=0, ptype=PacketType.MESSAGE))


def test_flit_endpoints_validated():
    __, fabric = build()
    with pytest.raises(ProtocolError):
        fabric.ports_of(0).inject.try_inject(
            Flit(dst=99, src=0, ptype=PacketType.MESSAGE)
        )


def test_strict_encoding_validates_wire_fit():
    sim = Simulator()
    fabric = NocFabric(FoldedTorusTopology(4, 4), strict_encoding=True)
    sim.register(fabric)
    good = Flit(dst=1, src=0, ptype=PacketType.MESSAGE, data=0xFFFF_FFFF)
    assert fabric.ports_of(0).inject.try_inject(good)
    with pytest.raises(PacketFormatError):
        # data wider than 32 bits cannot be encoded
        fabric.ports_of(2).inject.try_inject(
            Flit(dst=1, src=2, ptype=PacketType.MESSAGE, data=1 << 33)
        )


def test_fabric_sleeps_when_empty():
    sim, fabric = build()
    collector = Collector(fabric, 1)
    sim.register(collector)
    fabric.ports_of(0).inject.try_inject(
        Flit(dst=1, src=0, ptype=PacketType.MESSAGE)
    )
    sim.run(max_cycles=100)
    assert not fabric.active
    assert fabric.flits_in_network == 0


def test_all_to_one_delivery_conserves_flits():
    sim, fabric = build()
    collector = Collector(fabric, 0)
    sim.register(collector)
    sinks = [Collector(fabric, node) for node in range(1, 16)]
    for sink in sinks:
        sim.register(sink)
    sent = 0
    for node in range(1, 16):
        fabric.ports_of(node).inject.try_inject(
            Flit(dst=0, src=node, ptype=PacketType.MESSAGE, data=node)
        )
        sent += 1
    sim.run(max_cycles=500)
    assert len(collector.received) == sent
    assert fabric.stats["flits_injected"] == sent
    assert fabric.stats["flits_ejected"] == sent
    assert fabric.flits_in_network == 0


def test_eject_width_one_serializes_arrivals():
    sim, fabric = build()
    collector = Collector(fabric, 0)
    sim.register(collector)
    for node in (1, 4, 12, 3):  # all one hop from node 0 on the torus
        fabric.ports_of(node).inject.try_inject(
            Flit(dst=0, src=node, ptype=PacketType.MESSAGE)
        )
    sim.run(max_cycles=100)
    cycles = sorted(cycle for cycle, __ in collector.received)
    assert len(cycles) == 4
    assert len(set(cycles)) == 4  # one ejection per cycle


class Flood(Component):
    """Saturating source: injects every cycle while it can."""

    def __init__(self, fabric: NocFabric, node: int, n_nodes: int,
                 count: int, seed: int) -> None:
        super().__init__(f"flood[{node}]")
        self.fabric = fabric
        self.node = node
        self.port = fabric.ports_of(node)
        self.port.eject.owner = self
        self.rng = random.Random(seed)
        self.remaining = count
        self.n_nodes = n_nodes
        self.received = 0
        self.active = True

    def step(self, cycle: int) -> None:
        queue = self.port.eject.queue
        while queue:
            queue.pop()
            self.received += 1
        if self.remaining <= 0:
            if self.fabric.flits_in_network == 0:
                self.sleep()
            return
        if not self.port.inject.busy:
            dst = self.rng.randrange(self.n_nodes - 1)
            if dst >= self.node:
                dst += 1
            self.port.inject.try_inject(
                Flit(dst=dst, src=self.node, ptype=PacketType.MESSAGE)
            )
            self.remaining -= 1


def test_saturating_load_delivers_everything():
    """Livelock check: oldest-first deflection drains a saturated torus."""
    sim = Simulator()
    fabric = NocFabric(FoldedTorusTopology(4, 4))
    sim.register(fabric)
    sources = [Flood(fabric, node, 16, count=50, seed=node) for node in range(16)]
    for source in sources:
        sim.register(source)
    sim.run(max_cycles=20_000)
    assert fabric.flits_in_network == 0
    assert fabric.stats["flits_injected"] == 16 * 50
    assert fabric.stats["flits_ejected"] == 16 * 50
    assert fabric.stats["deflections"] > 0  # the load actually contended


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 1000),
    width=st.sampled_from([2, 3, 4]),
    height=st.sampled_from([2, 3, 4]),
)
def test_random_traffic_conservation_property(seed, width, height):
    """Every injected flit is ejected exactly once, any grid, any pattern."""
    sim = Simulator()
    fabric = NocFabric(FoldedTorusTopology(width, height))
    sim.register(fabric)
    n = width * height
    sources = [
        Flood(fabric, node, n, count=10, seed=seed * 31 + node)
        for node in range(n)
    ]
    for source in sources:
        sim.register(source)
    sim.run(max_cycles=50_000)
    assert fabric.stats["flits_injected"] == n * 10
    assert fabric.stats["flits_ejected"] == n * 10
    assert fabric.flits_in_network == 0


def test_mean_latency_reasonable_under_light_load():
    sim, fabric = build()
    sinks = [Collector(fabric, node) for node in range(16)]
    for sink in sinks:
        sim.register(sink)
    for node in range(16):
        dst = (node + 1) % 16
        fabric.ports_of(node).inject.try_inject(
            Flit(dst=dst, src=node, ptype=PacketType.MESSAGE)
        )
    sim.run(max_cycles=200)
    # Light load: latency should be close to hop distance + injection.
    assert fabric.latency.mean <= 6.0
