"""The per-tile DMA/TX-queue engine: descriptor queue + multicast stream.

Unit layer drives the engine directly against a bare TieInterface;
machine layer runs programs using the ``qsend``/``qmcast``/``mrecv``
operations on a full :class:`MedeaSystem` — including the equivalence
of multicast mode and the unicast-fallback mode.
"""

from __future__ import annotations

import pytest

from repro.dma.engine import DmaTxEngine, mask_members
from repro.errors import ProgramError, ProtocolError
from repro.noc.flit import MULTICAST_DST
from repro.pe.tie import TieInterface
from repro.system.config import SystemConfig
from repro.system.medea import MedeaSystem


def make_engine(depth=2, multicast=True, node_id=1, n_nodes=9):
    return DmaTxEngine(TieInterface(node_id), n_nodes=n_nodes, depth=depth,
                       multicast=multicast)


def test_mask_members_iterates_ascending():
    assert list(mask_members(0)) == []
    assert list(mask_members(0b101010)) == [1, 3, 5]


def test_queue_depth_bounds_posting():
    engine = make_engine(depth=2)
    assert engine.free_slots == 2
    assert engine.post_unicast(2, [1])
    assert engine.post_unicast(3, [2])
    assert engine.free_slots == 0
    assert not engine.post_unicast(4, [3])  # full: rejected, not raised
    assert engine.stats.as_dict()["queue_full_rejects"] == 1


def test_descriptor_validation():
    engine = make_engine()
    with pytest.raises(ProtocolError):
        engine.post_unicast(1, [1])  # self
    with pytest.raises(ProtocolError):
        engine.post_unicast(9, [1])  # out of range
    with pytest.raises(ProtocolError):
        engine.post_unicast(2, [])  # empty
    with pytest.raises(ProtocolError):
        engine.post_multicast(1 << 1, [1])  # includes this tile
    with pytest.raises(ProtocolError):
        engine.post_multicast(0, [1])
    with pytest.raises(ProtocolError):
        engine.post_multicast(1 << 12, [1])
    with pytest.raises(ProtocolError):
        DmaTxEngine(TieInterface(1), n_nodes=9, depth=0)


def test_multicast_group_reregistration_waits_for_quiescence():
    engine = make_engine(depth=4)
    group_a = (1 << 2) | (1 << 3)
    assert engine.post_multicast(group_a, [1])
    # A queued descriptor for the old group: the register cannot be
    # rewritten yet — refused like a full queue, not raised.
    assert not engine.post_multicast(1 << 2, [2])
    assert engine.stats.as_dict()["group_reregister_stalls"] == 1
    # The registered group stays re-usable meanwhile.
    assert engine.post_multicast(group_a, [2])
    # Drain both descriptors through the engine streamer.
    engine.pump()
    while engine.busy:
        if engine.tx_current() is not None:
            engine.tx_advance()
        engine.pump()
    # Streamed but not yet credited: still not quiescent (2 slots sent,
    # zero credited would allow it only because 2 < CREDIT_WINDOW; force
    # the interesting case with a full window outstanding).
    engine.post_multicast(group_a, list(range(10)))
    engine.pump()
    while engine.busy:
        if engine.tx_current() is not None:
            engine.tx_advance()
        engine.pump()
    assert not engine.post_multicast(1 << 2, [3])  # 12 slots, 0 credited
    engine.tie.mcast_credited[2] = 8
    assert not engine.post_multicast(1 << 2, [3])  # member 3 still behind
    engine.tie.mcast_credited[3] = 8
    # Quiescent now (the <CREDIT_WINDOW tail is software-ordered): the
    # register rewrites, and the shared sequence space continues.
    assert engine.post_multicast(1 << 2, [3])
    assert engine.group_mask == 1 << 2
    assert engine.stats.as_dict()["group_reregisters"] == 1
    # No new member joined (shrinking group): no sync handshake pending,
    # so the descriptor streams immediately.
    engine.pump()
    assert engine.tx_current() is not None
    assert engine.tx_current().seq == 12 % 16


def test_multicast_group_growth_syncs_new_members():
    from repro.pe.tie import MCAST_SYNC_WORD

    engine = make_engine(depth=4)
    assert engine.post_multicast(1 << 2, list(range(5)))
    engine.pump()
    while engine.busy:
        if engine.tx_current() is not None:
            engine.tx_advance()
        engine.pump()
    engine.tie.mcast_credited[2] = 8  # member 2 quiescent
    grown = (1 << 2) | (1 << 5)
    assert engine.post_multicast(grown, [9])
    # The new member got a SYNC token (current slot = 5) on the reverse
    # path and is treated as credited up to the join point.
    assert list(engine.tie.pending_credits._items) == [
        (5, MCAST_SYNC_WORD | 5)
    ]
    assert engine.tie.mcast_credited[5] == 5
    # The descriptor holds until the new member acks the sync.
    engine.pump()
    assert engine.tx_current() is None
    engine.tie.mcast_sync_acks.add(5)
    engine.pump()
    flit = engine.tx_current()
    assert flit is not None and flit.dst_mask == grown and flit.seq == 5


def test_unicast_head_rides_the_tie_streams():
    engine = make_engine()
    assert engine.post_unicast(2, [10, 20])
    engine.pump()
    assert engine.tie.tx is not None  # handed to the TIE streamer
    assert not engine.queue
    assert engine.busy is False  # nothing queued or engine-streamed
    # The TIE's normal advance path drains it.
    assert engine.tie.tx_current() is not None


def test_multicast_head_streams_mask_flits_with_shared_slots():
    engine = make_engine(depth=4)
    mask = (1 << 2) | (1 << 5)
    engine.post_multicast(mask, [7, 8, 9])
    engine.pump()
    assert engine.busy
    seen = []
    while engine.busy:
        flit = engine.tx_current()
        assert flit is not None
        seen.append(flit)
        engine.tx_advance()
    assert [f.data for f in seen] == [7, 8, 9]
    assert all(f.dst == MULTICAST_DST and f.dst_mask == mask for f in seen)
    assert [f.seq for f in seen] == [0, 1, 2]
    # The next descriptor continues the shared slot space.
    engine.post_multicast(mask, [1])
    engine.pump()
    assert engine.tx_current().seq == 3


def test_fallback_expands_member_major_with_identical_slots():
    engine = make_engine(depth=4, multicast=False)
    mask = (1 << 2) | (1 << 5)
    engine.post_multicast(mask, [7, 8])
    engine.pump()
    seen = []
    while engine.busy:
        flit = engine.tx_current()
        seen.append(flit)
        engine.tx_advance()
    assert [(f.dst, f.seq, f.data) for f in seen] == [
        (2, 0, 7), (2, 1, 8), (5, 0, 7), (5, 1, 8),
    ]
    assert all(f.dst_mask == 1 << f.dst for f in seen)


def test_credit_gating_stalls_on_the_slowest_member():
    from repro.pe.tie import CREDIT_LIMIT

    engine = make_engine(depth=1)
    mask = (1 << 2) | (1 << 5)
    engine.post_multicast(mask, list(range(CREDIT_LIMIT + 4)))
    engine.pump()
    for _ in range(CREDIT_LIMIT):
        assert engine.tx_current() is not None
        engine.tx_advance()
    assert engine.tx_current() is None  # slot 16 needs credits
    engine.tie.mcast_credited[2] = 8
    assert engine.tx_current() is None  # member 5 still at zero
    engine.tie.mcast_credited[5] = 8
    assert engine.tx_current() is not None


# ---------------------------------------------------------------------------
# Machine level
# ---------------------------------------------------------------------------


def run_programs(factories, n_workers, **overrides):
    config = SystemConfig(n_workers=n_workers, **overrides)
    system = MedeaSystem(config)
    system.load_programs(factories)
    cycles = system.run(max_cycles=5_000_000)
    return system, cycles


def test_qsend_posts_back_to_back_without_blocking(n_workers=4):
    """The queue retires isend's one-slot serialization: rank 0 posts
    one descriptor per peer in a handful of cycles and computes while
    the engine drains them."""
    progress = {}

    def sender(ctx):
        words = [[100 + dst] for dst in range(1, n_workers)]
        posted_at = []
        for dst in range(1, n_workers):
            accepted = yield ("qsend", ctx.node_of(dst), words[dst - 1])
            assert accepted
            posted_at.append((yield ("qstat",)))
        progress["free_after_each_post"] = posted_at
        yield ("compute", 500)  # engine streams underneath

    def receiver(rank):
        def program(ctx):
            got = yield ("recv", ctx.node_of(0), 1)
            progress[rank] = got
        return program

    run_programs(
        [sender] + [receiver(r) for r in range(1, n_workers)],
        n_workers, dma_tx_queue_depth=4,
    )
    for rank in range(1, n_workers):
        assert progress[rank] == [100 + rank]
    # All three descriptors fit the depth-4 queue: posting never stalled.
    assert len(progress["free_after_each_post"]) == n_workers - 1


def test_qsend_full_queue_reports_false():
    """Long messages keep the TIE busy, so a depth-1 queue fills and
    qsend reports False until the engine drains; retried posts still
    deliver everything in order."""
    observed = {}
    messages = [[base + i for i in range(20)] for base in (100, 200, 300)]

    def sender(ctx):
        rejections = 0
        for words in messages:
            while not (yield ("qsend", ctx.node_of(1), words)):
                rejections += 1
        observed["rejections"] = rejections

    def receiver(ctx):
        got = []
        for words in messages:
            got.append((yield ("recv", ctx.node_of(0), len(words))))
        observed["got"] = got

    run_programs([sender, receiver], 2, dma_tx_queue_depth=1)
    assert observed["rejections"] > 0  # depth-1 queue must have filled
    assert observed["got"] == messages


@pytest.mark.parametrize("noc_multicast", [True, False])
def test_qmcast_delivers_to_every_member(noc_multicast):
    n_workers = 4
    received = {}

    def root(ctx):
        mask = 0
        for rank in range(1, n_workers):
            mask |= 1 << ctx.node_of(rank)
        ok = yield ("qmcast", mask, [11, 22, 33])
        assert ok
        yield ("compute", 10)

    def leaf(rank):
        def program(ctx):
            received[rank] = yield ("mrecv", ctx.node_of(0), 3)
        return program

    run_programs(
        [root] + [leaf(r) for r in range(1, n_workers)],
        n_workers, dma_tx_queue_depth=2, noc_multicast=noc_multicast,
    )
    for rank in range(1, n_workers):
        assert received[rank] == [11, 22, 33]


def test_multicast_and_fallback_deliver_identical_words():
    n_workers = 8
    payload = list(range(1, 41))  # 40 words: spans credit windows

    def run(noc_multicast):
        received = {}

        def root(ctx):
            mask = 0
            for rank in range(1, n_workers):
                mask |= 1 << ctx.node_of(rank)
            while not (yield ("qmcast", mask, payload)):
                pass

        def leaf(rank):
            def program(ctx):
                received[rank] = yield ("mrecv", ctx.node_of(0),
                                        len(payload))
            return program

        __, cycles = run_programs(
            [root] + [leaf(r) for r in range(1, n_workers)],
            n_workers, dma_tx_queue_depth=2, noc_multicast=noc_multicast,
        )
        return received, cycles

    with_mc, cycles_mc = run(True)
    fallback, cycles_uc = run(False)
    assert with_mc == fallback  # bit-identical delivery either mode
    assert cycles_mc < cycles_uc  # replication beats P-1 streams


def test_qsend_coexists_with_blocking_and_nonblocking_sends():
    """A draining DMA descriptor owns the TIE TX port; subsequent
    send/isend ops must backpressure (retry) rather than collide."""
    observed = {}

    def sender(ctx):
        dst = ctx.node_of(1)
        assert (yield ("qsend", dst, list(range(30))))  # long: TX stays busy
        yield ("send", dst, [41, 42])                   # must wait, not raise
        assert (yield ("qsend", dst, [51]))
        yield ("isend", dst, [61, 62])                  # ditto
        while not (yield ("txdone",)):
            pass

    def receiver(ctx):
        first = yield ("recv", ctx.node_of(0), 30)
        observed["blocking"] = yield ("recv", ctx.node_of(0), 2)
        observed["queued"] = yield ("recv", ctx.node_of(0), 1)
        observed["isend"] = yield ("recv", ctx.node_of(0), 2)
        observed["first"] = first

    run_programs([sender, receiver], 2, dma_tx_queue_depth=2)
    assert observed["first"] == list(range(30))
    assert observed["blocking"] == [41, 42]
    assert observed["queued"] == [51]
    assert observed["isend"] == [61, 62]


def test_bcast_to_subgroup_then_bcast_to_all():
    """Group re-registration end to end: the root multicasts to a
    subgroup, waits for consumption acks (the software-ordering rule),
    then rewrites the group register to all workers — new members join
    via the SYNC/SYNC_ACK handshake and receive from the shared
    sequence space mid-stream."""
    n_workers = 6
    received = {}

    def root(ctx):
        sub = (1 << ctx.node_of(1)) | (1 << ctx.node_of(2))
        while not (yield ("qmcast", sub, [1, 2, 3])):
            pass
        for __ in range(2):  # both subgroup members confirmed consumption
            yield ("recvreq",)
        full = 0
        for rank in range(1, n_workers):
            full |= 1 << ctx.node_of(rank)
        while not (yield ("qmcast", full, [7, 8])):
            pass

    def member(rank, in_subgroup):
        def program(ctx):
            got = []
            if in_subgroup:
                got.append((yield ("mrecv", ctx.node_of(0), 3)))
                yield ("sendreq", ctx.node_of(0), 0xAC)
            got.append((yield ("mrecv", ctx.node_of(0), 2)))
            received[rank] = got
        return program

    system, __ = run_programs(
        [root] + [member(r, r in (1, 2)) for r in range(1, n_workers)],
        n_workers, dma_tx_queue_depth=2,
    )
    assert received[1] == [[1, 2, 3], [7, 8]]
    assert received[2] == [[1, 2, 3], [7, 8]]
    for rank in range(3, n_workers):
        assert received[rank] == [[7, 8]]
    assert system.nodes[0].dma.stats.as_dict()["group_reregisters"] == 1


def test_qmcast_on_15w_mesh_under_strict_encoding():
    """Regression: 16 nodes need a 16-bit multicast mask, which the
    64-bit flit's 12 spare bits refused before the two-flit-header
    (widened mask word) extension — this configuration used to raise
    ProtocolError at injection under strict encoding."""
    n_workers = 15
    received = {}

    def root(ctx):
        mask = 0
        for rank in range(1, n_workers):
            mask |= 1 << ctx.node_of(rank)
        assert mask >= (1 << 12)  # genuinely beyond the 12 spare bits
        while not (yield ("qmcast", mask, [5, 6, 7])):
            pass

    def leaf(rank):
        def program(ctx):
            received[rank] = yield ("mrecv", ctx.node_of(0), 3)
        return program

    run_programs(
        [root] + [leaf(r) for r in range(1, n_workers)],
        n_workers, dma_tx_queue_depth=2, strict_encoding=True,
    )
    for rank in range(1, n_workers):
        assert received[rank] == [5, 6, 7]


def test_ops_without_engine_raise_program_error():
    def program(ctx):
        yield ("qstat",)

    with pytest.raises(ProgramError, match="dma_tx_queue_depth"):
        run_programs([program, lambda ctx: iter(())], 2)
