"""Counter and latency statistics."""

from __future__ import annotations

from repro.kernel.stats import CounterSet, LatencyStat


def test_counter_increments():
    counters = CounterSet("c")
    counters.inc("hits")
    counters.inc("hits", 4)
    assert counters["hits"] == 5


def test_counter_missing_key_is_zero():
    counters = CounterSet("c")
    assert counters["nothing"] == 0
    assert counters.get("nothing", 7) == 7


def test_counter_set_max():
    counters = CounterSet("c")
    counters.set_max("depth", 3)
    counters.set_max("depth", 1)
    counters.set_max("depth", 9)
    assert counters["depth"] == 9


def test_counter_merge():
    left = CounterSet("l")
    right = CounterSet("r")
    left.inc("a", 2)
    right.inc("a", 3)
    right.inc("b", 1)
    left.merge(right)
    assert left["a"] == 5
    assert left["b"] == 1


def test_counter_contains_and_dict():
    counters = CounterSet("c")
    counters.inc("x")
    assert "x" in counters
    assert "y" not in counters
    assert counters.as_dict() == {"x": 1}


def test_latency_mean_min_max():
    stat = LatencyStat()
    for value in (2, 4, 12):
        stat.record(value)
    assert stat.count == 3
    assert stat.min == 2
    assert stat.max == 12
    assert stat.mean == 6.0


def test_latency_empty_mean_is_zero():
    stat = LatencyStat()
    assert stat.mean == 0.0
    assert stat.percentile_bound(0.99) is None


def test_latency_percentile_bound_brackets_tail():
    stat = LatencyStat()
    for __ in range(99):
        stat.record(3)
    stat.record(1000)
    p99 = stat.percentile_bound(0.99)
    assert p99 is not None
    assert p99 <= 4  # 99% of samples are tiny
    assert stat.percentile_bound(1.0) >= 1000 or stat.max == 1000


def test_latency_bucket_overflow_goes_to_open_bucket():
    stat = LatencyStat()
    stat.record(10_000_000)
    assert stat.buckets[-1] == 1


def test_latency_as_dict():
    stat = LatencyStat("lat")
    stat.record(5)
    data = stat.as_dict()
    assert data["name"] == "lat"
    assert data["count"] == 1
    assert data["max"] == 5


def test_latency_records_boundary_values():
    stat = LatencyStat()
    for bound in LatencyStat.BOUNDS:
        stat.record(bound)
    assert stat.count == len(LatencyStat.BOUNDS)
    # Each boundary value lands in its own (closed) bucket.
    assert all(bucket == 1 for bucket in stat.buckets[:-1])
