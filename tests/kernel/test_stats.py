"""Counter and latency statistics."""

from __future__ import annotations

from repro.kernel.stats import CounterSet, LatencyStat


def test_counter_increments():
    counters = CounterSet("c")
    counters.inc("hits")
    counters.inc("hits", 4)
    assert counters["hits"] == 5


def test_counter_missing_key_is_zero():
    counters = CounterSet("c")
    assert counters["nothing"] == 0
    assert counters.get("nothing", 7) == 7


def test_counter_set_max():
    counters = CounterSet("c")
    counters.set_max("depth", 3)
    counters.set_max("depth", 1)
    counters.set_max("depth", 9)
    assert counters["depth"] == 9


def test_counter_merge():
    left = CounterSet("l")
    right = CounterSet("r")
    left.inc("a", 2)
    right.inc("a", 3)
    right.inc("b", 1)
    left.merge(right)
    assert left["a"] == 5
    assert left["b"] == 1


def test_counter_contains_and_dict():
    counters = CounterSet("c")
    counters.inc("x")
    assert "x" in counters
    assert "y" not in counters
    assert counters.as_dict() == {"x": 1}


def test_latency_mean_min_max():
    stat = LatencyStat()
    for value in (2, 4, 12):
        stat.record(value)
    assert stat.count == 3
    assert stat.min == 2
    assert stat.max == 12
    assert stat.mean == 6.0


def test_latency_empty_mean_is_zero():
    stat = LatencyStat()
    assert stat.mean == 0.0
    assert stat.percentile_bound(0.99) is None


def test_latency_percentile_bound_brackets_tail():
    stat = LatencyStat()
    for __ in range(99):
        stat.record(3)
    stat.record(1000)
    p99 = stat.percentile_bound(0.99)
    assert p99 is not None
    assert p99 <= 4  # 99% of samples are tiny
    assert stat.percentile_bound(1.0) >= 1000 or stat.max == 1000


def test_counter_merge_is_additive_per_key_and_repeatable():
    left = CounterSet("l")
    right = CounterSet("r")
    left.inc("a", 2)
    right.inc("a", 3)
    left.merge(right)
    left.merge(right)
    assert left["a"] == 8
    # Merging never mutates the source set.
    assert right["a"] == 3


def test_counter_merge_empty_is_identity():
    left = CounterSet("l")
    left.inc("a", 2)
    left.merge(CounterSet("empty"))
    assert left.as_dict() == {"a": 2}


def test_counter_set_max_accepts_zero_only_as_first_value():
    counters = CounterSet("c")
    counters.set_max("depth", 0)
    assert "depth" not in counters  # 0 is the implicit default already
    counters.set_max("depth", 2)
    counters.set_max("depth", 0)
    assert counters["depth"] == 2


def test_latency_percentile_bound_single_sample():
    stat = LatencyStat()
    stat.record(5)
    # One sample: every fraction brackets it (5 lands in the (4, 8] bucket).
    assert stat.percentile_bound(0.01) == 8
    assert stat.percentile_bound(1.0) == 8


def test_latency_percentile_bound_exact_bucket_boundaries():
    stat = LatencyStat()
    stat.record(1)  # first closed bucket
    stat.record(2)  # second closed bucket
    assert stat.percentile_bound(0.5) == 1
    assert stat.percentile_bound(1.0) == 2


def test_latency_percentile_bound_open_bucket_returns_max():
    stat = LatencyStat()
    for __ in range(9):
        stat.record(1)
    stat.record(123_456)  # far past the last bound: open-ended bucket
    assert stat.percentile_bound(1.0) == 123_456
    assert stat.percentile_bound(0.9) == 1


def test_latency_percentile_bound_zero_fraction():
    stat = LatencyStat()
    stat.record(7)
    stat.record(700)
    # fraction 0: the threshold is 0 samples, so the very first bucket
    # (bound 1) satisfies it even though it is empty.
    assert stat.percentile_bound(0.0) == 1


def test_latency_bucket_overflow_goes_to_open_bucket():
    stat = LatencyStat()
    stat.record(10_000_000)
    assert stat.buckets[-1] == 1


def test_latency_as_dict():
    stat = LatencyStat("lat")
    stat.record(5)
    data = stat.as_dict()
    assert data["name"] == "lat"
    assert data["count"] == 1
    assert data["max"] == 5


def test_latency_records_boundary_values():
    stat = LatencyStat()
    for bound in LatencyStat.BOUNDS:
        stat.record(bound)
    assert stat.count == len(LatencyStat.BOUNDS)
    # Each boundary value lands in its own (closed) bucket.
    assert all(bucket == 1 for bucket in stat.buckets[:-1])
