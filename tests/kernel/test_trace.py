"""Tracer behaviour."""

from __future__ import annotations

from repro.kernel.trace import Tracer


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    tracer.emit(1, "a", "kind", x=1)
    assert len(tracer) == 0


def test_enabled_tracer_records_events():
    tracer = Tracer(enabled=True)
    tracer.emit(5, "noc", "eject", node=3)
    assert len(tracer) == 1
    event = tracer.events[0]
    assert event.cycle == 5
    assert event.source == "noc"
    assert event.fields["node"] == 3


def test_limit_drops_excess_events():
    tracer = Tracer(enabled=True, limit=2)
    for cycle in range(5):
        tracer.emit(cycle, "s", "k")
    assert len(tracer) == 2
    assert tracer.dropped == 3


def test_ring_buffer_keeps_the_last_events_in_order():
    # The limit is a ring over the *tail* of the stream: after wrapping,
    # `events` is the last N records in chronological order — what a
    # timeout report wants to show (the hang, not startup noise).
    tracer = Tracer(enabled=True, limit=3)
    for cycle in range(7):
        tracer.emit(cycle, "s", "k", n=cycle)
    assert len(tracer) == 3
    assert tracer.dropped == 4
    assert [e.cycle for e in tracer.events] == [4, 5, 6]


def test_ring_buffer_wraps_repeatedly():
    tracer = Tracer(enabled=True, limit=2)
    for cycle in range(10):
        tracer.emit(cycle, "s", "k")
        assert [e.cycle for e in tracer.events] == (
            list(range(cycle + 1)) if cycle < 2 else [cycle - 1, cycle]
        )
    assert tracer.dropped == 8


def test_ring_buffer_clear_resets_the_wrap_pointer():
    tracer = Tracer(enabled=True, limit=2)
    for cycle in range(5):
        tracer.emit(cycle, "s", "k")
    tracer.clear()
    tracer.emit(9, "s", "k")
    assert [e.cycle for e in tracer.events] == [9]
    assert tracer.dropped == 0


def test_of_kind_filter():
    tracer = Tracer(enabled=True)
    tracer.emit(1, "a", "x")
    tracer.emit(2, "a", "y")
    tracer.emit(3, "b", "x")
    assert [e.cycle for e in tracer.of_kind("x")] == [1, 3]


def test_from_source_filter():
    tracer = Tracer(enabled=True)
    tracer.emit(1, "a", "x")
    tracer.emit(2, "b", "x")
    assert [e.cycle for e in tracer.from_source("b")] == [2]


def test_kinds_enumeration():
    tracer = Tracer(enabled=True)
    tracer.emit(1, "a", "x")
    tracer.emit(2, "a", "y")
    assert set(tracer.kinds()) == {"x", "y"}


def test_clear_resets():
    tracer = Tracer(enabled=True, limit=1)
    tracer.emit(1, "a", "x")
    tracer.emit(2, "a", "x")
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.dropped == 0


def test_event_repr_mentions_fields():
    tracer = Tracer(enabled=True)
    tracer.emit(7, "src", "kind", value=42)
    assert "value=42" in repr(tracer.events[0])
