"""Kernel scheduling semantics: stepping, wakeups, fast-forward, deadlock."""

from __future__ import annotations

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.kernel.component import Component
from repro.kernel.simulator import Simulator


class Recorder(Component):
    """Steps for a fixed number of cycles, recording when it ran."""

    def __init__(self, name: str, run_cycles: int = 1) -> None:
        super().__init__(name)
        self.seen: list[int] = []
        self.remaining = run_cycles
        self.active = True

    def step(self, cycle: int) -> None:
        self.seen.append(cycle)
        self.remaining -= 1
        if self.remaining <= 0:
            self.sleep()


class Sleeper(Component):
    """Sleeps for `gap` cycles between steps, `repeats` times."""

    def __init__(self, name: str, gap: int, repeats: int) -> None:
        super().__init__(name)
        self.gap = gap
        self.repeats = repeats
        self.seen: list[int] = []
        self.active = True

    def step(self, cycle: int) -> None:
        self.seen.append(cycle)
        self.repeats -= 1
        if self.repeats > 0:
            self.sleep(until=cycle + self.gap)
        else:
            self.sleep()


def test_single_component_steps_each_cycle():
    sim = Simulator()
    comp = Recorder("a", run_cycles=5)
    sim.register(comp)
    sim.run(max_cycles=10)
    assert comp.seen == [0, 1, 2, 3, 4]


def test_run_returns_elapsed_cycles():
    sim = Simulator()
    sim.register(Recorder("a", run_cycles=3))
    # Without `until`, run() stops at quiescence even under max_cycles.
    elapsed = sim.run(max_cycles=10)
    assert elapsed == 3
    assert sim.cycle == 3


def test_run_stops_when_idle_without_until():
    sim = Simulator()
    comp = Recorder("a", run_cycles=2)
    sim.register(comp)
    sim.run()  # no max_cycles: stops at quiescence
    assert comp.seen == [0, 1]


def test_fast_forward_jumps_over_idle_cycles():
    sim = Simulator()
    comp = Sleeper("s", gap=1000, repeats=3)
    sim.register(comp)
    sim.run()
    assert comp.seen == [0, 1000, 2000]


def test_fast_forward_equivalent_to_dense_stepping():
    """A sleeping component must observe identical cycles either way."""
    def run(gap: int, busy_partner: bool) -> list[int]:
        sim = Simulator()
        sleeper = Sleeper("s", gap=gap, repeats=4)
        sim.register(sleeper)
        if busy_partner:
            # A partner active every cycle prevents any fast-forward.
            sim.register(Recorder("busy", run_cycles=5 * gap))
        sim.run(max_cycles=10 * gap)
        return sleeper.seen

    assert run(7, busy_partner=False) == run(7, busy_partner=True)


def test_components_step_in_registration_order():
    sim = Simulator()
    order: list[str] = []

    class Ordered(Component):
        def __init__(self, name: str) -> None:
            super().__init__(name)
            self.active = True

        def step(self, cycle: int) -> None:
            order.append(self.name)
            self.sleep()

    for name in ("first", "second", "third"):
        sim.register(Ordered(name))
    sim.run(max_cycles=2)
    assert order == ["first", "second", "third"]


def test_wake_at_same_cycle_wakeups_run_in_schedule_order():
    sim = Simulator()
    comp_a = Sleeper("a", gap=5, repeats=2)
    comp_b = Sleeper("b", gap=5, repeats=2)
    sim.register(comp_a)
    sim.register(comp_b)
    sim.run()
    assert comp_a.seen == comp_b.seen == [0, 5]


def test_deadlock_raises_with_diagnostics():
    sim = Simulator()

    class Stuck(Component):
        def step(self, cycle: int) -> None:  # pragma: no cover
            raise AssertionError("never stepped")

        def describe_state(self) -> str:
            return "waiting for a reply that will never come"

    sim.register(Stuck("stuck"))
    with pytest.raises(DeadlockError) as exc:
        sim.run(until=lambda: False)
    assert "stuck" in str(exc.value)
    assert "never come" in str(exc.value)


def test_until_checked_before_stepping():
    sim = Simulator()
    comp = Recorder("a", run_cycles=100)
    sim.register(comp)
    sim.run(until=lambda: len(comp.seen) >= 3, max_cycles=100)
    assert len(comp.seen) == 3


def test_max_cycles_with_until_raises_when_exceeded():
    sim = Simulator()
    sim.register(Recorder("a", run_cycles=1000))
    with pytest.raises(SimulationError):
        sim.run(max_cycles=5, until=lambda: False)


def test_wakeup_in_past_rejected():
    sim = Simulator()
    comp = Recorder("a", run_cycles=50)
    sim.register(comp)
    sim.run(max_cycles=10)
    with pytest.raises(SimulationError):
        sim.wake_at(comp, 3)


def test_double_registration_rejected():
    sim = Simulator()
    comp = Recorder("a")
    sim.register(comp)
    with pytest.raises(SimulationError):
        sim.register(comp)


def test_run_not_reentrant():
    sim = Simulator()

    class Recursive(Component):
        def __init__(self) -> None:
            super().__init__("recursive")
            self.active = True
            self.error: Exception | None = None

        def step(self, cycle: int) -> None:
            try:
                self.sim.run(max_cycles=1)
            except SimulationError as exc:
                self.error = exc
            self.sleep()

    comp = Recursive()
    sim.register(comp)
    sim.run(max_cycles=2)
    assert isinstance(comp.error, SimulationError)


def test_wake_is_idempotent():
    sim = Simulator()
    comp = Recorder("a", run_cycles=2)
    sim.register(comp)
    comp.wake()
    comp.wake()
    sim.run(max_cycles=5)
    assert comp.seen == [0, 1]


def test_duplicate_wakeups_step_component_once_per_cycle():
    sim = Simulator()
    comp = Sleeper("s", gap=3, repeats=2)
    sim.register(comp)
    sim.wake_at(comp, 3)
    sim.wake_at(comp, 3)
    sim.run()
    assert comp.seen == [0, 3]


def test_component_activated_mid_run_is_stepped():
    sim = Simulator()
    late = Recorder("late", run_cycles=2)
    late.active = False

    class Waker(Component):
        def __init__(self) -> None:
            super().__init__("waker")
            self.active = True

        def step(self, cycle: int) -> None:
            if cycle == 4:
                late.wake()
                self.sleep()

    sim.register(Waker())
    sim.register(late)
    sim.run(max_cycles=20)
    assert late.seen == [4, 5]


def test_empty_simulator_run_is_a_noop():
    sim = Simulator()
    assert sim.run(max_cycles=100) == 0
    assert sim.cycle == 0
