"""Hardware FIFO model semantics."""

from __future__ import annotations

import pytest

from repro.errors import FifoEmptyError, FifoFullError
from repro.kernel.fifo import Fifo


def test_fifo_ordering():
    fifo: Fifo[int] = Fifo(4)
    for value in (1, 2, 3):
        fifo.push(value)
    assert [fifo.pop() for __ in range(3)] == [1, 2, 3]


def test_bounded_capacity_enforced():
    fifo: Fifo[int] = Fifo(2)
    fifo.push(1)
    fifo.push(2)
    assert fifo.full
    with pytest.raises(FifoFullError):
        fifo.push(3)


def test_try_push_reports_rejection():
    fifo: Fifo[int] = Fifo(1)
    assert fifo.try_push(1)
    assert not fifo.try_push(2)
    assert fifo.full_rejections == 1


def test_pop_empty_raises():
    fifo: Fifo[int] = Fifo(2)
    with pytest.raises(FifoEmptyError):
        fifo.pop()


def test_peek_does_not_consume():
    fifo: Fifo[int] = Fifo(2)
    fifo.push(7)
    assert fifo.peek() == 7
    assert len(fifo) == 1
    assert fifo.pop() == 7


def test_peek_empty_raises():
    with pytest.raises(FifoEmptyError):
        Fifo(1).peek()


def test_unbounded_fifo_never_full():
    fifo: Fifo[int] = Fifo(None)
    for value in range(10_000):
        fifo.push(value)
    assert not fifo.full
    assert fifo.free_slots is None


def test_free_slots_tracking():
    fifo: Fifo[int] = Fifo(3)
    assert fifo.free_slots == 3
    fifo.push(1)
    assert fifo.free_slots == 2


def test_occupancy_statistics():
    fifo: Fifo[int] = Fifo(8)
    for value in range(5):
        fifo.push(value)
    for __ in range(3):
        fifo.pop()
    fifo.push(9)
    assert fifo.max_occupancy == 5
    assert fifo.pushes == 6
    assert fifo.pops == 3


def test_bool_and_empty():
    fifo: Fifo[int] = Fifo(2)
    assert not fifo
    assert fifo.empty
    fifo.push(1)
    assert fifo
    assert not fifo.empty


def test_iteration_preserves_order():
    fifo: Fifo[int] = Fifo(None)
    for value in (3, 1, 2):
        fifo.push(value)
    assert list(fifo) == [3, 1, 2]


def test_clear_empties_but_keeps_stats():
    fifo: Fifo[int] = Fifo(4)
    fifo.push(1)
    fifo.push(2)
    fifo.clear()
    assert fifo.empty
    assert fifo.pushes == 2


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        Fifo(0)


def test_stats_dict_contents():
    fifo: Fifo[int] = Fifo(2, name="testq")
    fifo.push(1)
    stats = fifo.stats_dict()
    assert stats["name"] == "testq"
    assert stats["capacity"] == 2
    assert stats["pushes"] == 1
