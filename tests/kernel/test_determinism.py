"""Determinism guard for the active-set kernel refactor.

The kernel's explicit active set (wake/sleep maintained, stepped through a
per-cycle order heap) must not introduce any iteration-order dependence:
two identical runs of the 8-worker Jacobi reference configuration have to
agree on every cycle count and every statistic, bit for bit.  This is the
test that fails first if agenda ordering, worklist sets, or batched
counter flushing ever become nondeterministic.
"""

from __future__ import annotations

from repro.apps.jacobi.driver import JacobiParams, run_jacobi
from repro.apps.matmul import MatmulParams, run_matmul
from repro.apps.stream import StreamParams, run_stream
from repro.system.config import SystemConfig


def _reference_run():
    config = SystemConfig(n_workers=8, cache_size_kb=16)
    params = JacobiParams(n=12, iterations=3, warmup=1)
    return run_jacobi(config, params)


def test_double_run_is_bit_identical():
    first = _reference_run()
    second = _reference_run()

    assert first.validated and second.validated
    assert first.total_cycles == second.total_cycles
    assert first.iteration_cycles == second.iteration_cycles
    assert first.cycles_per_iteration == second.cycles_per_iteration

    # Full stats equality: NoC counters and latency histogram, MPMMU,
    # and every worker's core/cache/bridge/TIE counters.
    assert first.stats["noc"] == second.stats["noc"]
    assert first.stats["mpmmu"] == second.stats["mpmmu"]
    assert first.stats["workers"] == second.stats["workers"]
    assert first.stats["cycles"] == second.stats["cycles"]


def test_wt_policy_double_run_is_bit_identical():
    # The write-through config saturates the MPMMU and exercises the
    # fabric worklist under heavy contention.
    config = SystemConfig(n_workers=8, cache_size_kb=16, cache_policy="wt")
    params = JacobiParams(n=10, iterations=2, warmup=0)
    first = run_jacobi(config, params)
    second = run_jacobi(config, params)
    assert first.total_cycles == second.total_cycles
    assert first.iteration_cycles == second.iteration_cycles
    assert first.stats["noc"] == second.stats["noc"]
    assert first.stats["mpmmu"] == second.stats["mpmmu"]


def test_matmul_double_run_is_bit_identical():
    # The collective-heavy workload: broadcast + reduce traffic through
    # the TIE streams must replay identically, stats and all.
    config = SystemConfig(n_workers=4, cache_size_kb=16)
    params = MatmulParams(n=6, tile=2, model="empi", algorithm="tree")
    first = run_matmul(config, params)
    second = run_matmul(config, params)
    assert first.validated and second.validated
    assert first.value == second.value
    assert first.total_cycles == second.total_cycles
    assert (first.stage_cycles, first.compute_cycles, first.reduce_cycles) == (
        second.stage_cycles, second.compute_cycles, second.reduce_cycles
    )
    assert first.stats["noc"] == second.stats["noc"]
    assert first.stats["mpmmu"] == second.stats["mpmmu"]
    assert first.stats["workers"] == second.stats["workers"]


def test_stream_double_run_is_bit_identical():
    # The pipelined producer/consumer workload: scatter/bcast bookends
    # plus per-block streaming over the TIE message path.
    config = SystemConfig(n_workers=4, cache_size_kb=16)
    params = StreamParams(n_blocks=4, block_values=8, model="empi")
    first = run_stream(config, params)
    second = run_stream(config, params)
    assert first.validated and second.validated
    assert first.total_cycles == second.total_cycles
    assert first.cycles_per_block == second.cycles_per_block
    assert first.stats["noc"] == second.stats["noc"]
    assert first.stats["mpmmu"] == second.stats["mpmmu"]
    assert first.stats["workers"] == second.stats["workers"]


def test_fault_injection_double_run_is_bit_identical():
    # The fault layer's seeded RNG joins the determinism contract: two
    # runs of the same FaultPlan must inject the same faults at the same
    # cycles and recover through the same retransmissions — identical
    # cycle counts, fault counters, event traces and NoC stats.
    from repro.apps.collective_bench import (
        CollectiveBenchParams,
        run_collective_bench,
    )
    from repro.faults import FaultPlan

    plan = FaultPlan(
        seed=11, drop_rate=0.02, corrupt_rate=0.01, stalls=((4, 300, 50),)
    )
    config = SystemConfig(n_workers=8, topology_kind="mesh", faults=plan)
    params = CollectiveBenchParams(
        collective="allreduce", model="empi", algorithm="tree",
        n_values=8, repeats=2,
    )
    first = run_collective_bench(config, params)
    second = run_collective_bench(config, params)
    assert first.validated and second.validated
    assert first.stats["faults"]["dropped"] > 0  # faults actually fired
    assert first.total_cycles == second.total_cycles
    assert first.stats["faults"] == second.stats["faults"]
    assert first.stats["noc"] == second.stats["noc"]
    assert first.stats["workers"] == second.stats["workers"]


def test_fault_injector_trace_replays_identically():
    # Same seed, same machine: the injector's raw event trace (what was
    # dropped/corrupted, where, when) is itself bit-identical.
    from repro.empi.collectives import make_comm
    from repro.faults import FaultPlan
    from repro.system.medea import MedeaSystem

    def make_program(rank):
        def program(ctx):
            comm = make_comm(ctx, "empi", "tree", max_values=4)
            yield from comm.allreduce([float(rank)] * 4)
        return program

    def run_once():
        plan = FaultPlan(seed=7, drop_rate=0.2)
        config = SystemConfig(n_workers=4, faults=plan)
        system = MedeaSystem(config)
        system.load_programs([make_program(r) for r in range(4)])
        cycles = system.run(max_cycles=2_000_000)
        return cycles, list(system.injector.trace)

    first_cycles, first_trace = run_once()
    second_cycles, second_trace = run_once()
    assert first_trace  # faults actually fired
    assert first_cycles == second_cycles
    assert first_trace == second_trace
