"""Shared fixtures and helpers for the MEDEA test suite."""

from __future__ import annotations

from collections.abc import Callable, Generator

import pytest

from repro.system.config import SystemConfig
from repro.system.medea import MedeaSystem


def run_programs(
    config: SystemConfig,
    *programs: Callable[..., Generator],
    max_cycles: int = 2_000_000,
) -> MedeaSystem:
    """Build a system, run one program per worker, return it for inspection."""
    assert len(programs) == config.n_workers
    system = MedeaSystem(config)
    system.load_programs(list(programs))
    system.run(max_cycles=max_cycles)
    return system


@pytest.fixture
def tiny_config() -> SystemConfig:
    """Two workers, small caches — the cheapest interesting machine."""
    return SystemConfig(n_workers=2, cache_size_kb=2)


@pytest.fixture
def quad_config() -> SystemConfig:
    """Four workers with the reference cache setup."""
    return SystemConfig(n_workers=4, cache_size_kb=8)
