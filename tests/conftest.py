"""Shared fixtures and helpers for the MEDEA test suite."""

from __future__ import annotations

from collections.abc import Callable, Generator

import pytest

from repro.system.config import SystemConfig
from repro.system.medea import MedeaSystem


def run_programs(
    config: SystemConfig,
    *programs: Callable[..., Generator],
    max_cycles: int = 2_000_000,
) -> MedeaSystem:
    """Build a system, run one program per worker, return it for inspection.

    A default no-progress watchdog is armed on every run (unless the
    test configured its own): a protocol regression that live-locks the
    machine then fails fast with a structured progress report instead of
    spinning the suite to ``max_cycles``.  The watchdog only reads state,
    so simulated cycle counts are unaffected.
    """
    assert len(programs) == config.n_workers
    if config.watchdog_cycles == 0:
        config = config.with_changes(watchdog_cycles=500_000)
    system = MedeaSystem(config)
    system.load_programs(list(programs))
    system.run(max_cycles=max_cycles)
    return system


@pytest.fixture
def tiny_config() -> SystemConfig:
    """Two workers, small caches — the cheapest interesting machine."""
    return SystemConfig(n_workers=2, cache_size_kb=2)


@pytest.fixture
def quad_config() -> SystemConfig:
    """Four workers with the reference cache setup."""
    return SystemConfig(n_workers=4, cache_size_kb=8)
