"""TIE interface: sequence numbering, reassembly, double-buffer limits."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.noc.flit import Flit
from repro.noc.packet import PacketType, SubType
from repro.pe.tie import MAX_SPAN, SEQ_WINDOW, ReceiveStream, TieInterface


def data_flit(src: int, seq: int, word: int) -> Flit:
    return Flit(dst=0, src=src, ptype=PacketType.MESSAGE,
                subtype=int(SubType.MSG_DATA), seq=seq, data=word)


def request_flit(src: int, word: int) -> Flit:
    return Flit(dst=0, src=src, ptype=PacketType.MESSAGE,
                subtype=int(SubType.MSG_REQUEST), data=word)


# -- ReceiveStream ----------------------------------------------------------


def test_stream_in_order():
    stream = ReceiveStream()
    for index in range(5):
        stream.insert(index, 100 + index)
    assert stream.available(5)
    assert stream.take(5) == [100, 101, 102, 103, 104]


def test_stream_out_of_order_within_window():
    stream = ReceiveStream()
    stream.insert(2, 102)
    stream.insert(0, 100)
    assert not stream.available(2)
    stream.insert(1, 101)
    assert stream.available(3)
    assert stream.take(3) == [100, 101, 102]


def test_stream_sequence_wraps_across_windows():
    stream = ReceiveStream()
    for slot in range(40):  # 2.5 windows
        stream.insert(slot % SEQ_WINDOW, slot)
    assert stream.take(40) == list(range(40))


def test_stream_next_window_same_seq():
    stream = ReceiveStream()
    stream.insert(0, 0)       # slot 0
    stream.insert(1, 1)       # slot 1
    stream.insert(0, 16)      # seq 0 again -> slot 16 (next window)
    assert stream.take(2) == [0, 1]
    # slot 16 waits for 2..15
    assert not stream.available(1)


def test_stream_double_buffer_overrun_detected():
    stream = ReceiveStream()
    # Three seq-0 flits with no progress in between: slots 0 and 16 fill
    # the double buffer; the third would need a *third* window.
    stream.insert(0, 0)
    stream.insert(0, 16)
    with pytest.raises(ProtocolError):
        stream.insert(0, 32)


def test_stream_take_more_than_available_rejected():
    stream = ReceiveStream()
    stream.insert(0, 5)
    with pytest.raises(ProtocolError):
        stream.take(2)


def test_stream_bad_seq_rejected():
    stream = ReceiveStream()
    with pytest.raises(ProtocolError):
        stream.insert(16, 0)


def test_stream_pending_words():
    stream = ReceiveStream()
    stream.insert(0, 1)
    stream.insert(1, 2)
    assert stream.pending_words == 2
    stream.take(1)
    assert stream.pending_words == 1


@settings(max_examples=50, deadline=None)
@given(data=st.data())
def test_stream_reorder_property(data):
    """Any arrival order inside the hardware envelope reassembles correctly.

    The envelope the double buffer guarantees: two flits carrying the same
    sequence number (16 slots apart) can never overtake each other — the
    sender emits one flit per cycle, so a >= 16-cycle displacement through
    the deflection network is outside the design envelope.  Within that
    constraint, any interleaving must reassemble exactly.
    """
    total = data.draw(st.integers(1, 48))
    remaining = set(range(total))
    stream = ReceiveStream()
    while remaining:
        # Two live frames at most: an arrival must stay within two
        # 16-slot frames of the oldest outstanding slot.
        frame_base = (min(remaining) // SEQ_WINDOW) * SEQ_WINDOW
        candidates = sorted(
            slot for slot in remaining
            if slot - SEQ_WINDOW not in remaining
            and slot < frame_base + 2 * SEQ_WINDOW
        )
        slot = data.draw(st.sampled_from(candidates))
        remaining.remove(slot)
        stream.insert(slot % SEQ_WINDOW, 1000 + slot)
    assert stream.take(total) == [1000 + i for i in range(total)]


# -- TieInterface -----------------------------------------------------------


def test_accept_demuxes_request_and_data():
    tie = TieInterface(node_id=0)
    tie.accept(request_flit(src=2, word=0xAB))
    tie.accept(data_flit(src=2, seq=0, word=7))
    assert tie.requests.pop() == (2, 0xAB)
    assert tie.stream_from(2).take(1) == [7]


def test_accept_rejects_non_message():
    tie = TieInterface(node_id=0)
    with pytest.raises(ProtocolError):
        tie.accept(Flit(dst=0, src=1, ptype=PacketType.SINGLE_READ))


def test_streams_keyed_by_source():
    tie = TieInterface(node_id=0)
    tie.accept(data_flit(src=1, seq=0, word=10))
    tie.accept(data_flit(src=2, seq=0, word=20))
    assert tie.stream_from(1).take(1) == [10]
    assert tie.stream_from(2).take(1) == [20]


def grant_credit(tie: TieInterface, src: int) -> None:
    """Simulate a peer's credit token arriving."""
    from repro.pe.tie import CREDIT_WORD

    tie.accept(Flit(dst=tie.node_id, src=src, ptype=PacketType.MESSAGE,
                    subtype=int(SubType.MSG_REQUEST), data=CREDIT_WORD))


def test_begin_send_generates_wrapping_sequence_numbers():
    tie = TieInterface(node_id=0)
    tie.begin_send(3, list(range(20)))
    seqs = []
    while True:
        flit = tie.tx_current()
        if flit is None:
            if tie.tx_busy:  # stalled on flow control: credit the sender
                grant_credit(tie, src=3)
                continue
            break
        seqs.append(flit.seq)
        tie.tx_advance()
    assert seqs == [i % SEQ_WINDOW for i in range(20)]


def test_credit_gate_limits_inflight_slots():
    from repro.pe.tie import CREDIT_LIMIT, CREDIT_WINDOW

    tie = TieInterface(node_id=0)
    tie.begin_send(3, list(range(CREDIT_LIMIT + 4)))
    sent = 0
    while tie.tx_current() is not None:
        tie.tx_advance()
        sent += 1
    assert sent == CREDIT_LIMIT  # stalled exactly at the window limit
    assert tie.tx_busy
    grant_credit(tie, src=3)
    extra = 0
    while tie.tx_current() is not None:
        tie.tx_advance()
        extra += 1
    assert extra == 4  # the message's remaining flits, within the credit
    assert not tie.tx_busy
    assert CREDIT_WINDOW >= 4  # the credit covered them


def test_receiver_emits_credits_per_window():
    from repro.pe.tie import CREDIT_WINDOW, CREDIT_WORD

    tie = TieInterface(node_id=1)
    for slot in range(2 * CREDIT_WINDOW):
        tie.accept(data_flit(src=4, seq=slot % SEQ_WINDOW, word=slot))
    assert len(tie.pending_credits) == 2
    flit = tie.credit_flit()
    assert flit is not None
    assert flit.dst == 4
    assert flit.data == CREDIT_WORD
    tie.credit_sent()
    assert len(tie.pending_credits) == 1


def test_credits_do_not_enter_request_queue():
    tie = TieInterface(node_id=0)
    grant_credit(tie, src=2)
    assert tie.requests.empty
    assert tie.stats["credits_received"] == 1


def test_send_slots_continue_across_messages():
    tie = TieInterface(node_id=0)
    tie.begin_send(3, [1, 2, 3])
    while tie.tx_current() is not None:
        tie.tx_advance()
    tie.begin_send(3, [4, 5])
    assert tie.tx_current().seq == 3  # continues the per-dst slot counter


def test_burst_field_groups_logic_packets():
    tie = TieInterface(node_id=0)
    tie.begin_send(1, list(range(6)))  # packets of 4 + 2
    bursts = []
    while tie.tx_current() is not None:
        bursts.append(tie.tx_current().burst)
        tie.tx_advance()
    assert bursts == [4, 4, 4, 4, 2, 2]


def test_concurrent_send_rejected():
    tie = TieInterface(node_id=0)
    tie.begin_send(1, [1])
    with pytest.raises(ProtocolError):
        tie.begin_send(2, [2])


def test_empty_send_rejected():
    tie = TieInterface(node_id=0)
    with pytest.raises(ProtocolError):
        tie.begin_send(1, [])


def test_tx_advance_completion():
    tie = TieInterface(node_id=0)
    tie.begin_send(1, [1, 2])
    assert not tie.tx_advance()
    assert tie.tx_advance()
    assert not tie.tx_busy


def test_request_flit_shape():
    tie = TieInterface(node_id=5)
    flit = tie.make_request_flit(2, 0x123)
    assert flit.subtype == int(SubType.MSG_REQUEST)
    assert flit.src == 5
    assert flit.dst == 2
    assert flit.data == 0x123


def test_max_span_is_two_windows():
    assert MAX_SPAN == 2 * SEQ_WINDOW


def test_per_flit_counters_batch_until_flush():
    """The hot per-flit counters live in plain ints between flushes and
    fold into the CounterSet exactly (the core/MPMMU batching pattern)."""
    tie = TieInterface(node_id=0)
    tie.begin_send(1, [1, 2, 3])
    tie.tx_advance()
    tie.tx_advance()
    tie.tx_advance()
    for seq in range(4):
        tie.accept(data_flit(src=2, seq=seq, word=seq))
    assert tie.stats.get("data_flits_sent", 0) == 0
    assert tie.stats.get("data_flits_received", 0) == 0
    tie.flush_stats()
    assert tie.stats["data_flits_sent"] == 3
    assert tie.stats["data_flits_received"] == 4
    # A second flush must not double-count.
    tie.flush_stats()
    assert tie.stats["data_flits_sent"] == 3


def test_credit_stall_cycles_batch_until_flush():
    from repro.pe.tie import CREDIT_LIMIT

    tie = TieInterface(node_id=0)
    tie.begin_send(1, list(range(CREDIT_LIMIT + 4)))
    sent = 0
    while tie.tx_current() is not None:
        tie.tx_advance()
        sent += 1
    assert sent == CREDIT_LIMIT  # stalled at the credit gate
    assert tie.tx_current() is None  # one more stalled cycle
    tie.flush_stats()
    assert tie.stats["credit_stall_cycles"] == 2


# -- multicast group sync (re-registration handshake) -----------------------


def test_stream_realign_fast_forwards_idle_stream():
    stream = ReceiveStream()
    stream.realign(4)  # sender's shared slot counter stands at 16k + 4
    assert stream.lowest_missing == 4
    assert stream.consumed == 4
    assert stream.credited_upto == 4
    # Arrivals continue in the shared sequence space at that phase.
    stream.insert(4, 777)
    assert stream.available(1)
    assert stream.take(1) == [777]


def test_stream_realign_moves_forward_to_the_phase():
    stream = ReceiveStream()
    for seq in range(5):
        stream.insert(seq, seq)
    stream.take(5)
    stream.realign(2)  # next slot with phase 2 at or after the front
    assert stream.lowest_missing == 18
    stream.realign(2)  # a no-op when the front already has the phase
    assert stream.lowest_missing == 18


def test_stream_realign_refuses_unconsumed_data_and_bad_phase():
    stream = ReceiveStream()
    stream.insert(0, 1)
    with pytest.raises(ProtocolError):
        stream.realign(8)  # one unconsumed word would be lost
    stream.take(1)
    with pytest.raises(ProtocolError):
        stream.realign(SEQ_WINDOW)  # phase exceeds the 4-bit field
    stream.realign(1)  # fine: forward to the next phase-1 slot


def test_mcast_sync_token_realigns_and_acks():
    from repro.pe.tie import MCAST_SYNC_ACK_WORD, MCAST_SYNC_WORD

    tie = TieInterface(node_id=0)
    sync = Flit(dst=0, src=3, ptype=PacketType.MESSAGE,
                subtype=int(SubType.MSG_REQUEST),
                data=MCAST_SYNC_WORD | 12)
    tie.accept(sync)
    assert tie.requests.empty  # handshake stays out of the program queue
    assert tie.mcast_streams[3].lowest_missing == 12
    # The ack rides the reverse path like a credit.
    assert list(tie.pending_credits._items) == [(3, MCAST_SYNC_ACK_WORD)]
    # Sender side: the ack lands in the acks set, not the credit counts.
    ack = Flit(dst=0, src=5, ptype=PacketType.MESSAGE,
               subtype=int(SubType.MSG_REQUEST), data=MCAST_SYNC_ACK_WORD)
    tie.accept(ack)
    assert tie.mcast_sync_acks == {5}
    assert 5 not in tie.mcast_credited
