"""FP cost model (Tensilica DP emulation figures)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.pe.costmodel import FpCostModel


def test_paper_defaults():
    cost = FpCostModel()
    assert cost.fp_add == 19
    assert cost.fp_mul_mulhigh == 26
    assert cost.fp_mul_basic == 60


def test_mul_high_option_selects_multiplier():
    assert FpCostModel(use_mul_high=True).fp_mul == 26
    assert FpCostModel(use_mul_high=False).fp_mul == 60


def test_jacobi_point_cycles():
    cost = FpCostModel()
    assert cost.jacobi_point_cycles() == 3 * 19 + 26


def test_jacobi_point_cycles_without_mulhigh():
    cost = FpCostModel(use_mul_high=False)
    assert cost.jacobi_point_cycles() == 3 * 19 + 60


def test_invalid_costs_rejected():
    with pytest.raises(ConfigError):
        FpCostModel(fp_add=0)
    with pytest.raises(ConfigError):
        FpCostModel(int_op=-1)


def test_frozen():
    cost = FpCostModel()
    with pytest.raises(AttributeError):
        cost.fp_add = 5  # type: ignore[misc]
