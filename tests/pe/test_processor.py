"""ProcessorNode: operation semantics and timing through tiny programs."""

from __future__ import annotations

import pytest

from repro.cache.l1 import WritePolicy
from repro.errors import ProgramError
from repro.system.config import SystemConfig
from tests.conftest import run_programs


def solo(**overrides) -> SystemConfig:
    defaults = dict(n_workers=1, cache_size_kb=2)
    defaults.update(overrides)
    return SystemConfig(**defaults)


def timestamps(program_body):
    """Run a single-worker program and return its note timestamps."""
    marks = {}

    def program(ctx):
        yield from program_body(ctx)

    system = run_programs(solo(), program)
    for cycle, __, label in system.notes:
        marks[label] = cycle
    return marks


def test_compute_occupies_exact_cycles():
    def body(ctx):
        yield ctx.note("t0")
        yield ("compute", 50)
        yield ctx.note("t1")

    marks = timestamps(body)
    # one cycle to land on the note boundary is acceptable jitter
    assert marks["t1"] - marks["t0"] == 50


def test_cached_load_hit_is_single_cycle():
    def body(ctx):
        yield ctx.store(ctx.private_base, 7)  # allocate the line
        yield ctx.note("t0")
        value = yield ctx.load(ctx.private_base)
        assert value == 7
        yield ctx.note("t1")

    marks = timestamps(body)
    assert marks["t1"] - marks["t0"] == 1


def test_load_miss_costs_a_round_trip():
    def body(ctx):
        yield ctx.note("t0")
        yield ctx.load(ctx.private_base)
        yield ctx.note("t1")

    marks = timestamps(body)
    miss_latency = marks["t1"] - marks["t0"]
    assert miss_latency > 30  # request + MPMMU service + 4 reply flits


def test_store_miss_write_allocates():
    def program(ctx):
        yield ctx.store(ctx.private_base, 5)
        value = yield ctx.load(ctx.private_base)
        assert value == 5

    system = run_programs(solo(), program)
    cache = system.nodes[0].cache.stats
    assert cache["write_misses"] == 1
    assert cache["read_hits"] == 1
    assert system.mpmmu.stats["served_block_read"] == 1


def test_write_through_stores_reach_memory_without_flush():
    def program(ctx):
        yield ctx.store(ctx.private_base + 8, 77)
        yield ("fence",)

    system = run_programs(solo(cache_policy="wt"), program)
    assert system.ddr.store.read_word(system.map.private_base(0) + 8) == 77
    assert system.nodes[0].cache.policy is WritePolicy.WRITE_THROUGH
    # No line was allocated: WT is no-write-allocate.
    assert system.nodes[0].cache.probe(system.map.private_base(0) + 8) is None


def test_write_through_hit_updates_line_clean():
    def program(ctx):
        base = ctx.private_base
        yield ctx.load(base)        # allocate via read miss
        yield ctx.store(base, 42)   # WT hit
        value = yield ctx.load(base)
        assert value == 42
        yield ("fence",)

    system = run_programs(solo(cache_policy="wt"), program)
    line = system.nodes[0].cache.probe(system.map.private_base(0))
    assert line is not None and not line.dirty
    assert system.ddr.store.read_word(system.map.private_base(0)) == 42


def test_write_buffer_stall_when_full():
    def program(ctx):
        for index in range(12):
            yield ("ustore", ctx.shared_base + 4 * index, index)
        yield ("fence",)

    system = run_programs(solo(write_buffer_depth=2), program)
    node = system.nodes[0]
    assert node.write_buffer.stall_cycles > 0
    for index in range(12):
        assert system.ddr.store.read_word(4 * index) == index


def test_flush_clean_line_is_cheap_noop():
    def body(ctx):
        yield ctx.note("t0")
        yield ("flush", ctx.private_base)  # nothing cached
        yield ctx.note("t1")

    marks = timestamps(body)
    assert marks["t1"] - marks["t0"] == 1


def test_flush_dirty_line_writes_back():
    def program(ctx):
        yield ctx.store(ctx.private_base, 9)
        yield ("flush", ctx.private_base)
        yield ("fence",)

    system = run_programs(solo(), program)
    assert system.ddr.store.read_word(system.map.private_base(0)) == 9
    line = system.nodes[0].cache.probe(system.map.private_base(0))
    assert line is not None and not line.dirty  # DHWB keeps the line


def test_invalidate_forces_refetch():
    def program(ctx):
        base = ctx.shared_base
        yield ("ustore", base, 1)
        yield ("fence",)
        value = yield ctx.load(base)    # cache the line (value 1)
        assert value == 1
        yield ("ustore", base, 2)       # memory changes behind the cache
        yield ("fence",)
        stale = yield ctx.load(base)
        assert stale == 1               # still the cached copy
        yield ("inval", base)
        fresh = yield ctx.load(base)
        assert fresh == 2

    system = run_programs(solo(), program)
    assert system.nodes[0].cache.stats["invalidations"] == 1


def test_scratchpad_ops():
    def program(ctx):
        yield ("lmem_write", 0x40, 123)
        value = yield ("lmem_read", 0x40)
        assert value == 123

    run_programs(solo(), program)


def test_unknown_op_raises_program_error():
    def program(ctx):
        yield ("warp_drive", 9)

    with pytest.raises(ProgramError):
        run_programs(solo(), program)


def test_foreign_private_access_rejected():
    def nosy(ctx):
        yield ctx.load(ctx.map.private_base(1))

    def victim(ctx):
        yield ("compute", 10)

    config = SystemConfig(n_workers=2, cache_size_kb=2)
    with pytest.raises(Exception):
        run_programs(config, nosy, victim)


def test_message_round_trip_content():
    received = {}

    def sender(ctx):
        yield ctx.send_words(1, list(range(40)))

    def receiver(ctx):
        words = yield ctx.recv_words(0, 40)
        received["words"] = words

    config = SystemConfig(n_workers=2, cache_size_kb=2)
    run_programs(config, sender, receiver)
    assert received["words"] == list(range(40))


def test_send_throughput_one_flit_per_cycle():
    def sender(ctx):
        yield ctx.note("t0")
        yield ctx.send_words(1, [0] * 32)
        yield ctx.note("t1")

    def receiver(ctx):
        yield ctx.recv_words(0, 32)

    config = SystemConfig(n_workers=2, cache_size_kb=2)
    system = run_programs(config, sender, receiver)
    marks = {label: cycle for cycle, __, label in system.notes}
    duration = marks["t1"] - marks["t0"]
    assert 32 <= duration <= 48  # 1 flit/cycle + pipeline slack


def test_recv_before_send_blocks_then_completes():
    order = []

    def early_receiver(ctx):
        order.append("recv_start")
        words = yield ctx.recv_words(0, 4)
        order.append("recv_done")
        assert words == [9, 9, 9, 9]

    def late_sender(ctx):
        yield ("compute", 300)
        order.append("send")
        yield ctx.send_words(1, [9, 9, 9, 9])

    config = SystemConfig(n_workers=2, cache_size_kb=2)
    run_programs(config, late_sender, early_receiver)
    assert order == ["recv_start", "send", "recv_done"]


def test_request_tokens_bypass_data_path():
    def sender(ctx):
        yield ctx.send_words(1, [5, 6])          # data stream
        yield ("sendreq", ctx.node_of(1), 0xAA)  # control token

    def receiver(ctx):
        src, word = yield ("recvreq",)
        assert word == 0xAA
        words = yield ctx.recv_words(0, 2)
        assert words == [5, 6]

    config = SystemConfig(n_workers=2, cache_size_kb=2)
    run_programs(config, sender, receiver)


def test_long_message_engages_credit_flow_control():
    """A 64-word send spans 8 credit windows: credits must circulate."""
    def sender(ctx):
        yield ctx.send_words(1, list(range(64)))

    def receiver(ctx):
        words = yield ctx.recv_words(0, 64)
        assert words == list(range(64))

    config = SystemConfig(n_workers=2, cache_size_kb=2)
    system = run_programs(config, sender, receiver)
    sender_tie = system.nodes[0].tie
    receiver_tie = system.nodes[1].tie
    assert receiver_tie.stats["credits_sent"] == 8
    assert sender_tie.stats["credits_received"] == 8
    # Conservation: credits are network flits too and all arrived.
    noc = system.fabric.stats
    assert noc["flits_injected"] == noc["flits_ejected"]


def test_done_node_is_drained():
    def program(ctx):
        yield ctx.store(ctx.private_base, 1)
        yield ("flush", ctx.private_base)

    system = run_programs(solo(), program)
    node = system.nodes[0]
    assert node.done
    assert node.drained
    assert system.finished()


def test_describe_state_mentions_progress():
    def program(ctx):
        yield ("compute", 5)

    system = run_programs(solo(), program)
    description = system.nodes[0].describe_state()
    assert "done" in description
