"""Program context helpers."""

from __future__ import annotations

import pytest

from repro.mem.memory_map import MemoryMap
from repro.mem.values import float_to_words
from repro.pe.costmodel import FpCostModel
from repro.pe.program import ProgramContext


def make_ctx(rank: int = 0, n_workers: int = 2) -> ProgramContext:
    return ProgramContext(
        rank=rank,
        n_workers=n_workers,
        node_id=rank + 1,
        memory_map=MemoryMap(n_workers, shared_size=0x1000, private_size=0x1000),
        cost=FpCostModel(),
        rank_to_node={r: r + 1 for r in range(n_workers)},
    )


def drive(gen, responses):
    """Run a helper generator feeding canned responses; return ops + result."""
    ops = []
    result = None
    try:
        op = next(gen)
        while True:
            ops.append(op)
            op = gen.send(responses.pop(0) if responses else None)
    except StopIteration as stop:
        result = stop.value
    return ops, result


def test_address_properties():
    ctx = make_ctx(rank=1)
    assert ctx.shared_base == 0
    assert ctx.private_base == 0x2000
    assert ctx.node_of(0) == 1


def test_op_builders():
    ctx = make_ctx()
    assert ctx.compute(5) == ("compute", 5)
    assert ctx.load(0x10) == ("load", 0x10)
    assert ctx.store(0x10, 3) == ("store", 0x10, 3)
    assert ctx.note("x") == ("note", "x")
    assert ctx.fp_add() == ("compute", 19)
    assert ctx.fp_mul() == ("compute", 26)


def test_load_double_combines_words():
    ctx = make_ctx()
    low, high = float_to_words(2.5)
    ops, value = drive(ctx.load_double(0x100), [low, high])
    assert ops == [("load", 0x100), ("load", 0x104)]
    assert value == 2.5


def test_store_double_emits_two_stores():
    ctx = make_ctx()
    low, high = float_to_words(-1.25)
    ops, __ = drive(ctx.store_double(0x100, -1.25), [None, None])
    assert ops == [("store", 0x100, low), ("store", 0x104, high)]


def test_uncached_double_helpers():
    ctx = make_ctx()
    low, high = float_to_words(7.0)
    ops, value = drive(ctx.uncached_load_double(0x20), [low, high])
    assert ops == [("uload", 0x20), ("uload", 0x24)]
    assert value == 7.0
    ops, __ = drive(ctx.uncached_store_double(0x20, 7.0), [None, None])
    assert ops[0][0] == "ustore"


def test_flush_range_covers_partial_lines():
    ctx = make_ctx()
    ops, __ = drive(ctx.flush_range(0x108, 24), [None] * 4)
    assert ops == [("flush", 0x100), ("flush", 0x110)]


def test_invalidate_range_line_aligned():
    ctx = make_ctx()
    ops, __ = drive(ctx.invalidate_range(0x100, 32), [None] * 4)
    assert ops == [("inval", 0x100), ("inval", 0x110)]


def test_send_recv_words_resolve_rank_to_node():
    ctx = make_ctx(rank=0, n_workers=3)
    assert ctx.send_words(2, [1, 2]) == ("send", 3, [1, 2])
    assert ctx.recv_words(1, 4) == ("recv", 2, 4)


def test_send_doubles_packs_words():
    ctx = make_ctx()
    ops, __ = drive(ctx.send_doubles(1, [1.0]), [None])
    assert len(ops) == 1
    code, node, words = ops[0]
    assert code == "send"
    assert node == 2
    assert len(words) == 2


def test_recv_doubles_unpacks_words():
    ctx = make_ctx()
    low, high = float_to_words(3.5)
    gen = ctx.recv_doubles(1, 1)
    op = next(gen)
    assert op == ("recv", 2, 2)
    with pytest.raises(StopIteration) as stop:
        gen.send([low, high])
    assert stop.value.value == [3.5]


def test_local_alloc_bounds():
    ctx = make_ctx()
    ctx.local_mem_bytes = 16
    assert ctx.local_alloc(8) == 0
    assert ctx.local_alloc(8) == 8
    with pytest.raises(MemoryError):
        ctx.local_alloc(4)
