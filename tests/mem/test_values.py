"""Word/number conversions — must be bit-exact."""

from __future__ import annotations

import math
import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mem.values import (
    float32_to_word,
    float_to_words,
    int_to_word,
    word_to_float32,
    word_to_int,
    words_to_float,
)


def test_double_round_trip_simple():
    low, high = float_to_words(1.5)
    assert words_to_float(low, high) == 1.5


def test_double_little_endian_layout():
    low, high = float_to_words(1.0)
    # 1.0 = 0x3FF0000000000000: all-zero low word, exponent in high word.
    assert low == 0
    assert high == 0x3FF00000


@given(st.floats(allow_nan=False))
def test_double_round_trip_property(value):
    low, high = float_to_words(value)
    assert 0 <= low <= 0xFFFF_FFFF
    assert 0 <= high <= 0xFFFF_FFFF
    result = words_to_float(low, high)
    assert struct.pack("<d", result) == struct.pack("<d", value)


def test_nan_payload_preserved():
    nan_bits = struct.unpack("<d", struct.pack("<Q", 0x7FF8_0000_DEAD_BEEF))[0]
    low, high = float_to_words(nan_bits)
    result = words_to_float(low, high)
    assert math.isnan(result)
    assert struct.pack("<d", result) == struct.pack("<d", nan_bits)


def test_float32_round_trip():
    word = float32_to_word(0.5)
    assert word_to_float32(word) == 0.5


def test_int_round_trip_negative():
    assert word_to_int(int_to_word(-5)) == -5
    assert int_to_word(-1) == 0xFFFF_FFFF


@given(st.integers(-(1 << 31), (1 << 31) - 1))
def test_int_round_trip_property(value):
    assert word_to_int(int_to_word(value)) == value


def test_int_overflow_rejected():
    with pytest.raises(ValueError):
        int_to_word(1 << 31)
    with pytest.raises(ValueError):
        int_to_word(-(1 << 31) - 1)


def test_word_to_int_positive():
    assert word_to_int(5) == 5
    assert word_to_int(0x7FFF_FFFF) == 0x7FFF_FFFF
