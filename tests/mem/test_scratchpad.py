"""Per-PE local memory."""

from __future__ import annotations

import pytest

from repro.mem.scratchpad import Scratchpad


def test_read_write():
    pad = Scratchpad(1024)
    pad.write_word(8, 99)
    assert pad.read_word(8) == 99


def test_block_operations():
    pad = Scratchpad(1024)
    pad.write_block(0, [1, 2, 3])
    assert pad.read_block(0, 3) == [1, 2, 3]


def test_alloc_is_word_aligned_and_monotonic():
    pad = Scratchpad(1024)
    first = pad.alloc(6)   # rounds to 8
    second = pad.alloc(4)
    assert first == 0
    assert second == 8
    assert pad.alloc(1) == 12


def test_alloc_exhaustion():
    pad = Scratchpad(16)
    pad.alloc(16)
    with pytest.raises(MemoryError):
        pad.alloc(4)


def test_access_latency_constant():
    assert Scratchpad.ACCESS_CYCLES == 1
