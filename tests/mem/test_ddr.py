"""DDR timing model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.mem.ddr import DdrModel


def test_read_cost_latency_plus_burst():
    ddr = DdrModel(read_latency=20, words_per_cycle=1)
    assert ddr.read_cost(1) == 21
    assert ddr.read_cost(4) == 24


def test_read_cost_with_wider_interface():
    ddr = DdrModel(read_latency=20, words_per_cycle=2)
    assert ddr.read_cost(4) == 22
    assert ddr.read_cost(3) == 22  # ceil(3/2) = 2


def test_write_cost_posted():
    ddr = DdrModel(posted_write_cost=2)
    assert ddr.write_cost(1) == 2
    assert ddr.write_cost(4) == 8


def test_read_block_returns_data_and_cost():
    ddr = DdrModel(size_bytes=1024, read_latency=10)
    ddr.store.write_block(0, [5, 6, 7, 8])
    words, cost = ddr.read_block(0, 4)
    assert words == [5, 6, 7, 8]
    assert cost == 14
    assert ddr.reads == 1
    assert ddr.busy_cycles == 14


def test_write_block_commits_data():
    ddr = DdrModel(size_bytes=1024)
    cost = ddr.write_block(16, [1, 2])
    assert cost == ddr.write_cost(2)
    assert ddr.store.read_block(16, 2) == [1, 2]
    assert ddr.writes == 1


def test_invalid_parameters_rejected():
    with pytest.raises(ConfigError):
        DdrModel(read_latency=0)
    with pytest.raises(ConfigError):
        DdrModel(words_per_cycle=0)
    with pytest.raises(ConfigError):
        DdrModel(posted_write_cost=0)
