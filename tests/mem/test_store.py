"""Word store semantics."""

from __future__ import annotations

import pytest

from repro.errors import MemoryAccessError
from repro.mem.store import WordStore


def test_unwritten_words_read_zero():
    store = WordStore(1024)
    assert store.read_word(0) == 0
    assert store.read_word(1020) == 0


def test_write_read_round_trip():
    store = WordStore(1024)
    store.write_word(16, 0xCAFEBABE)
    assert store.read_word(16) == 0xCAFEBABE


def test_misaligned_access_rejected():
    store = WordStore(1024)
    with pytest.raises(MemoryAccessError):
        store.read_word(2)
    with pytest.raises(MemoryAccessError):
        store.write_word(5, 1)


def test_out_of_bounds_rejected():
    store = WordStore(64)
    with pytest.raises(MemoryAccessError):
        store.read_word(64)
    with pytest.raises(MemoryAccessError):
        store.write_word(-4, 1)


def test_value_must_fit_32_bits():
    store = WordStore(64)
    with pytest.raises(MemoryAccessError):
        store.write_word(0, 1 << 32)
    with pytest.raises(MemoryAccessError):
        store.write_word(0, -1)


def test_block_read_write():
    store = WordStore(256)
    store.write_block(32, [1, 2, 3, 4])
    assert store.read_block(32, 4) == [1, 2, 3, 4]
    assert store.read_block(48, 2) == [0, 0]


def test_block_write_value_check():
    store = WordStore(256)
    with pytest.raises(MemoryAccessError):
        store.write_block(0, [0, 1 << 33])


def test_unbounded_store():
    store = WordStore(None)
    store.write_word(1 << 30, 5)
    assert store.read_word(1 << 30) == 5


def test_words_written_counts_unique():
    store = WordStore(64)
    store.write_word(0, 1)
    store.write_word(0, 2)
    store.write_word(4, 3)
    assert store.words_written == 2


def test_invalid_size_rejected():
    with pytest.raises(MemoryAccessError):
        WordStore(10)  # not a multiple of 4
    with pytest.raises(MemoryAccessError):
        WordStore(0)
