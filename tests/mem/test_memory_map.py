"""Memory map: shared + private segmentation and ownership."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, MemoryAccessError
from repro.mem.memory_map import MemoryMap


def test_layout_is_contiguous():
    memory_map = MemoryMap(3, shared_size=0x1000, private_size=0x800)
    assert memory_map.shared.base == 0
    assert memory_map.privates[0].base == 0x1000
    assert memory_map.privates[1].base == 0x1800
    assert memory_map.privates[2].base == 0x2000
    assert memory_map.total_size == 0x2800


def test_segment_of_resolves_every_region():
    memory_map = MemoryMap(2, shared_size=0x1000, private_size=0x1000)
    assert memory_map.segment_of(0).name == "shared"
    assert memory_map.segment_of(0xFFF).name == "shared"
    assert memory_map.segment_of(0x1000).owner == 0
    assert memory_map.segment_of(0x2000).owner == 1


def test_segment_of_out_of_range():
    memory_map = MemoryMap(1, shared_size=0x100, private_size=0x100)
    with pytest.raises(MemoryAccessError):
        memory_map.segment_of(0x200)


def test_is_shared():
    memory_map = MemoryMap(1, shared_size=0x100, private_size=0x100)
    assert memory_map.is_shared(0x50)
    assert not memory_map.is_shared(0x150)


def test_private_base_validation():
    memory_map = MemoryMap(2)
    with pytest.raises(MemoryAccessError):
        memory_map.private_base(2)


def test_check_access_allows_owner_and_shared():
    memory_map = MemoryMap(2, shared_size=0x100, private_size=0x100)
    memory_map.check_access(0, 0x10)           # shared: anyone
    memory_map.check_access(1, 0x10)
    memory_map.check_access(0, 0x100)          # rank 0's private
    memory_map.check_access(1, 0x200)          # rank 1's private


def test_check_access_rejects_foreign_private():
    memory_map = MemoryMap(2, shared_size=0x100, private_size=0x100)
    with pytest.raises(MemoryAccessError):
        memory_map.check_access(1, 0x100)  # rank 0's segment


def test_check_access_rejects_segment_straddle():
    memory_map = MemoryMap(2, shared_size=0x100, private_size=0x100)
    with pytest.raises(MemoryAccessError):
        memory_map.check_access(0, 0xFC, n_bytes=8)  # crosses into private


def test_sizes_must_be_line_multiples():
    with pytest.raises(ConfigError):
        MemoryMap(1, shared_size=100)
    with pytest.raises(ConfigError):
        MemoryMap(1, private_size=8)


def test_needs_at_least_one_worker():
    with pytest.raises(ConfigError):
        MemoryMap(0)
