"""Reorder buffer for out-of-order block-read replies."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bridge.reorder import ReorderBuffer
from repro.errors import ProtocolError


def test_in_order_assembly():
    buffer = ReorderBuffer(4)
    buffer.begin(4)
    assert not buffer.insert(0, 10)
    assert not buffer.insert(1, 11)
    assert not buffer.insert(2, 12)
    assert buffer.insert(3, 13)
    assert buffer.take() == [10, 11, 12, 13]


def test_out_of_order_assembly():
    buffer = ReorderBuffer(4)
    buffer.begin(4)
    for seq, word in [(3, 13), (0, 10), (2, 12), (1, 11)]:
        done = buffer.insert(seq, word)
    assert done
    assert buffer.take() == [10, 11, 12, 13]
    assert buffer.max_out_of_order == 3


def test_partial_burst():
    buffer = ReorderBuffer(4)
    buffer.begin(1)
    assert buffer.insert(0, 99)
    assert buffer.take() == [99]


def test_insert_without_begin_rejected():
    with pytest.raises(ProtocolError):
        ReorderBuffer(4).insert(0, 1)


def test_sequence_outside_burst_rejected():
    buffer = ReorderBuffer(4)
    buffer.begin(2)
    with pytest.raises(ProtocolError):
        buffer.insert(2, 5)


def test_duplicate_sequence_rejected():
    buffer = ReorderBuffer(4)
    buffer.begin(4)
    buffer.insert(1, 5)
    with pytest.raises(ProtocolError):
        buffer.insert(1, 6)


def test_take_before_complete_rejected():
    buffer = ReorderBuffer(4)
    buffer.begin(4)
    buffer.insert(0, 1)
    with pytest.raises(ProtocolError):
        buffer.take()


def test_begin_larger_than_depth_rejected():
    buffer = ReorderBuffer(4)
    with pytest.raises(ProtocolError):
        buffer.begin(5)


def test_reusable_after_take():
    buffer = ReorderBuffer(4)
    buffer.begin(2)
    buffer.insert(0, 1)
    buffer.insert(1, 2)
    buffer.take()
    assert not buffer.busy
    buffer.begin(2)
    buffer.insert(1, 4)
    buffer.insert(0, 3)
    assert buffer.take() == [3, 4]


@given(order=st.permutations(list(range(4))))
def test_any_arrival_order_reassembles(order):
    buffer = ReorderBuffer(4)
    buffer.begin(4)
    done = False
    for seq in order:
        done = buffer.insert(seq, 100 + seq)
    assert done
    assert buffer.take() == [100, 101, 102, 103]
