"""PIF transaction descriptors."""

from __future__ import annotations

import pytest

from repro.bridge.pif import BLOCK_WORDS, MemTransaction
from repro.errors import ProtocolError
from repro.noc.packet import PacketType


def test_block_words_matches_line():
    assert BLOCK_WORDS == 4  # 16-byte line / 32-bit words


def test_read_transaction_shape():
    txn = MemTransaction(PacketType.BLOCK_READ, 0x100)
    assert txn.expected_read_words == 4
    assert txn.expected_write_words == 0
    assert not txn.is_write


def test_single_read_expects_one_word():
    txn = MemTransaction(PacketType.SINGLE_READ, 0x100)
    assert txn.expected_read_words == 1


def test_write_transaction_requires_payload():
    with pytest.raises(ProtocolError):
        MemTransaction(PacketType.SINGLE_WRITE, 0x100)
    txn = MemTransaction(PacketType.SINGLE_WRITE, 0x100, write_words=[7])
    assert txn.is_write


def test_block_write_requires_four_words():
    with pytest.raises(ProtocolError):
        MemTransaction(PacketType.BLOCK_WRITE, 0x100, write_words=[1, 2])
    MemTransaction(PacketType.BLOCK_WRITE, 0x100, write_words=[1, 2, 3, 4])


def test_lock_unlock_have_no_payload():
    lock = MemTransaction(PacketType.LOCK, 0x40)
    unlock = MemTransaction(PacketType.UNLOCK, 0x40)
    assert lock.expected_read_words == 0
    assert unlock.expected_write_words == 0


def test_message_type_rejected():
    with pytest.raises(ProtocolError):
        MemTransaction(PacketType.MESSAGE, 0)


def test_latency_requires_completion():
    txn = MemTransaction(PacketType.SINGLE_READ, 0)
    with pytest.raises(ProtocolError):
        __ = txn.latency
    txn.issued_at = 10
    txn.completed_at = 25
    assert txn.latency == 15
