"""pif2NoC bridge FSM, driven with hand-built reply flits."""

from __future__ import annotations

import pytest

from repro.bridge.pif import MemTransaction
from repro.bridge.pif2noc import AddressLut, Pif2NocBridge
from repro.errors import ProtocolError
from repro.noc.flit import Flit
from repro.noc.packet import PacketType, SubType

MPMMU = 0
NODE = 3


def make_bridge() -> Pif2NocBridge:
    return Pif2NocBridge(NODE, AddressLut(MPMMU))


def reply(ptype: PacketType, subtype: SubType, seq: int = 0, data: int = 0) -> Flit:
    return Flit(dst=NODE, src=MPMMU, ptype=ptype, subtype=int(subtype),
                seq=seq, data=data)


def drain_output(bridge: Pif2NocBridge) -> list[Flit]:
    sent = []
    while True:
        flit = bridge.poll_output()
        if flit is None:
            return sent
        sent.append(flit)
        bridge.output_sent()


def test_lut_default_and_ranges():
    lut = AddressLut(default_node=0)
    assert lut.lookup(0x1234) == 0
    lut.add_range(0x1000, 0x1000, 5)
    assert lut.lookup(0x1800) == 5
    assert lut.lookup(0x2000) == 0


def test_block_read_protocol():
    bridge = make_bridge()
    txn = MemTransaction(PacketType.BLOCK_READ, 0x100)
    bridge.start(txn, cycle=10)
    request = drain_output(bridge)
    assert len(request) == 1
    assert request[0].dst == MPMMU
    assert request[0].subtype == int(SubType.ADDR)
    assert request[0].data == 0x100
    # Replies arrive out of order.
    for seq, word in [(2, 30), (0, 10), (3, 40)]:
        assert bridge.on_reply(
            reply(PacketType.BLOCK_READ, SubType.DATA, seq, word), 20 + seq
        ) is None
    done = bridge.on_reply(reply(PacketType.BLOCK_READ, SubType.DATA, 1, 20), 30)
    assert done is txn
    assert txn.read_words == [10, 20, 30, 40]
    assert txn.latency == 20
    assert bridge.idle


def test_single_read_protocol():
    bridge = make_bridge()
    txn = MemTransaction(PacketType.SINGLE_READ, 0x44)
    bridge.start(txn, 0)
    drain_output(bridge)
    done = bridge.on_reply(reply(PacketType.SINGLE_READ, SubType.DATA, 0, 99), 5)
    assert done is txn
    assert txn.read_words == [99]


def test_write_protocol_req_ack_data_ack():
    bridge = make_bridge()
    txn = MemTransaction(PacketType.BLOCK_WRITE, 0x200,
                         write_words=[1, 2, 3, 4])
    bridge.start(txn, 0)
    request = drain_output(bridge)
    assert len(request) == 1  # request only; data awaits the grant
    assert bridge.on_reply(reply(PacketType.BLOCK_WRITE, SubType.ACK), 5) is None
    data_flits = drain_output(bridge)
    assert [f.data for f in data_flits] == [1, 2, 3, 4]
    assert [f.seq for f in data_flits] == [0, 1, 2, 3]
    assert all(f.subtype == int(SubType.DATA) for f in data_flits)
    done = bridge.on_reply(reply(PacketType.BLOCK_WRITE, SubType.ACK), 12)
    assert done is txn
    assert bridge.idle


def test_lock_granted_and_nacked():
    bridge = make_bridge()
    txn = MemTransaction(PacketType.LOCK, 0x40)
    bridge.start(txn, 0)
    drain_output(bridge)
    done = bridge.on_reply(reply(PacketType.LOCK, SubType.ACK), 3)
    assert done is txn and txn.granted is True

    txn2 = MemTransaction(PacketType.LOCK, 0x40)
    bridge.start(txn2, 10)
    drain_output(bridge)
    done = bridge.on_reply(reply(PacketType.LOCK, SubType.NACK), 13)
    assert done is txn2 and txn2.granted is False
    assert bridge.stats["lock_nacks"] == 1


def test_unlock_protocol():
    bridge = make_bridge()
    txn = MemTransaction(PacketType.UNLOCK, 0x40)
    bridge.start(txn, 0)
    drain_output(bridge)
    done = bridge.on_reply(reply(PacketType.UNLOCK, SubType.ACK), 2)
    assert done is txn


def test_start_while_busy_rejected():
    bridge = make_bridge()
    bridge.start(MemTransaction(PacketType.SINGLE_READ, 0), 0)
    with pytest.raises(ProtocolError):
        bridge.start(MemTransaction(PacketType.SINGLE_READ, 4), 1)


def test_reply_with_no_transaction_rejected():
    bridge = make_bridge()
    with pytest.raises(ProtocolError):
        bridge.on_reply(reply(PacketType.SINGLE_READ, SubType.DATA), 0)


def test_mismatched_reply_type_rejected():
    bridge = make_bridge()
    bridge.start(MemTransaction(PacketType.SINGLE_READ, 0), 0)
    drain_output(bridge)
    with pytest.raises(ProtocolError):
        bridge.on_reply(reply(PacketType.SINGLE_WRITE, SubType.ACK), 1)


def test_data_before_request_sent_rejected():
    bridge = make_bridge()
    bridge.start(MemTransaction(PacketType.SINGLE_READ, 0), 0)
    # Request flit not yet accepted by the arbiter: still in SEND_REQ.
    with pytest.raises(ProtocolError):
        bridge.on_reply(reply(PacketType.SINGLE_READ, SubType.DATA), 1)


def test_output_sent_with_nothing_pending_rejected():
    bridge = make_bridge()
    with pytest.raises(ProtocolError):
        bridge.output_sent()


def test_latency_statistics_recorded():
    bridge = make_bridge()
    txn = MemTransaction(PacketType.SINGLE_READ, 0)
    bridge.start(txn, 100)
    drain_output(bridge)
    bridge.on_reply(reply(PacketType.SINGLE_READ, SubType.DATA), 140)
    assert bridge.latency.count == 1
    assert bridge.latency.max == 40
    assert bridge.stats["txn_single_read"] == 1
