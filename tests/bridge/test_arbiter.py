"""The three NoC-access arbiter configurations of Fig. 3."""

from __future__ import annotations

import pytest

from repro.bridge.arbiter import ArbiterMode, NocAccessArbiter
from repro.errors import ConfigError
from repro.kernel.simulator import Simulator
from repro.noc.flit import Flit
from repro.noc.network import NocFabric
from repro.noc.packet import PacketType
from repro.noc.topology import FoldedTorusTopology


def make_arbiter(mode: str, depth: int = 4, hp: str = "message"):
    sim = Simulator()
    fabric = NocFabric(FoldedTorusTopology(2, 2))
    sim.register(fabric)
    port = fabric.ports_of(0).inject
    arbiter = NocAccessArbiter(port, mode=mode, fifo_depth=depth,
                               high_priority=hp)
    return arbiter, port


def flit(data: int = 0) -> Flit:
    return Flit(dst=1, src=0, ptype=PacketType.MESSAGE, data=data)


def test_mode_parse():
    assert ArbiterMode.parse("mux") is ArbiterMode.MUX
    assert ArbiterMode.parse(ArbiterMode.DUAL_FIFO) is ArbiterMode.DUAL_FIFO
    with pytest.raises(ConfigError):
        ArbiterMode.parse("bogus")


def test_mux_accepts_one_per_side():
    arbiter, __ = make_arbiter("mux")
    assert arbiter.offer_message(flit(1))
    assert not arbiter.offer_message(flit(2))  # slot taken
    assert arbiter.offer_memory(flit(3))       # other side independent


def test_mux_round_robin_on_contention():
    arbiter, port = make_arbiter("mux")
    arbiter.offer_message(flit(1))
    arbiter.offer_memory(flit(2))
    arbiter.tick()
    first = port.pending
    port.pending = None  # simulate the fabric consuming it
    arbiter.tick()
    second = port.pending
    assert first is not None and second is not None
    assert {first.data, second.data} == {1, 2}
    # Round robin: the side granted last loses the next contention round.
    arbiter.offer_message(flit(3))
    arbiter.offer_memory(flit(4))
    port.pending = None
    arbiter.tick()
    third = port.pending
    assert third is not None
    second_was_memory = second.data in (2, 4)
    assert third.data == (3 if second_was_memory else 4)


def test_single_fifo_shares_capacity():
    arbiter, __ = make_arbiter("single_fifo", depth=2)
    assert arbiter.offer_message(flit(1))
    assert arbiter.offer_memory(flit(2))
    assert not arbiter.offer_message(flit(3))  # full: shared queue
    assert arbiter.stats["fifo_full_rejects"] == 1


def test_single_fifo_preserves_arrival_order():
    arbiter, port = make_arbiter("single_fifo", depth=4)
    arbiter.offer_memory(flit(1))
    arbiter.offer_message(flit(2))
    arbiter.tick()
    assert port.pending.data == 1
    port.pending = None
    arbiter.tick()
    assert port.pending.data == 2


def test_dual_fifo_high_priority_wins():
    arbiter, port = make_arbiter("dual_fifo", hp="message")
    arbiter.offer_memory(flit(1))
    arbiter.offer_message(flit(2))
    arbiter.tick()
    assert port.pending.data == 2  # message class is HP
    port.pending = None
    arbiter.tick()
    assert port.pending.data == 1
    assert arbiter.stats["be_grants"] == 1


def test_dual_fifo_priority_configurable():
    arbiter, port = make_arbiter("dual_fifo", hp="memory")
    arbiter.offer_memory(flit(1))
    arbiter.offer_message(flit(2))
    arbiter.tick()
    assert port.pending.data == 1


def test_dual_fifo_independent_capacity():
    arbiter, __ = make_arbiter("dual_fifo", depth=1)
    assert arbiter.offer_message(flit(1))
    assert not arbiter.offer_message(flit(2))
    assert arbiter.offer_memory(flit(3))  # separate queue


def test_tick_respects_busy_port():
    arbiter, port = make_arbiter("dual_fifo")
    arbiter.offer_message(flit(1))
    arbiter.tick()
    assert port.busy
    arbiter.offer_message(flit(2))
    arbiter.tick()  # port still holds flit 1
    assert port.pending.data == 1
    assert arbiter.stats["port_busy_cycles"] == 1


def test_has_pending_all_modes():
    for mode in ("mux", "single_fifo", "dual_fifo"):
        arbiter, port = make_arbiter(mode)
        assert not arbiter.has_pending
        arbiter.offer_message(flit(1))
        assert arbiter.has_pending
        arbiter.tick()
        assert not arbiter.has_pending


def test_grant_counts():
    arbiter, port = make_arbiter("dual_fifo")
    arbiter.offer_message(flit(1))
    arbiter.tick()
    assert arbiter.stats["flits_granted"] == 1
