"""Command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_parser_accepts_known_experiments():
    parser = build_parser()
    args = parser.parse_args(["fig6", "--full", "--jobs", "2"])
    assert args.experiment == "fig6"
    assert args.full
    assert args.jobs == 2


def test_parser_rejects_unknown_experiment():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["fig42"])


def test_parser_accepts_executor_flags():
    args = build_parser().parse_args(
        ["fig6", "--backend", "inline", "--fresh", "--retry", "2"]
    )
    assert args.backend == "inline"
    assert args.resume is False
    assert args.retry == 2


def test_parser_defaults_resume_on():
    args = build_parser().parse_args(["fig6"])
    assert args.resume is True
    assert args.backend is None
    assert args.retry == 0


def test_parser_rejects_unknown_backend():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig6", "--backend", "quantum"])


def test_list_prints_registry_help_lines(capsys):
    exit_code = main(["list"])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "available experiments" in out
    from repro.dse.experiments import ALL_EXPERIMENTS

    for name, experiment in ALL_EXPERIMENTS.items():
        assert name in out
        assert experiment.help in out


def test_main_runs_noc_quick(tmp_path, capsys):
    exit_code = main(["noc", "--out", str(tmp_path)])
    assert exit_code == 0
    captured = capsys.readouterr()
    assert "all delivered" in captured.out
    assert (tmp_path / "noc.txt").exists()


def test_main_runs_simspeed(tmp_path, capsys):
    exit_code = main(["simspeed", "--out", str(tmp_path)])
    assert exit_code == 0
    assert "cycles/sec" in capsys.readouterr().out


def test_parser_accepts_profile_flag():
    args = build_parser().parse_args(["simspeed", "--profile"])
    assert args.profile


def test_main_profile_prints_hot_spots(tmp_path, capsys):
    exit_code = main(["simspeed", "--out", str(tmp_path), "--profile"])
    assert exit_code == 0
    out = capsys.readouterr().out
    # Per-point profiles are merged into one table; the banner counts them.
    assert "points merged, top 20 by cumulative time" in out
    assert "cumtime" in out  # the pstats table actually rendered
    assert "cycles/sec" in out  # the experiment itself still ran


def test_main_profile_merges_every_sweep_point(tmp_path, capsys):
    from repro.dse.experiments import _build_simspeed

    n_points = len(_build_simspeed(False).points())
    main(["simspeed", "--out", str(tmp_path), "--profile"])
    out = capsys.readouterr().out
    assert f"profile ({n_points} points merged" in out


def test_trace_command_writes_a_valid_timeline(tmp_path, capsys):
    out_file = tmp_path / "trace.json"
    exit_code = main(["trace", "cg-tiny", "--out", str(out_file)])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "traced cg-tiny" in out
    assert "overlap efficiency" in out
    import json

    events = json.loads(out_file.read_text())["traceEvents"]
    assert events and all("ph" in event for event in events)


def test_trace_command_heatmap_flag(tmp_path, capsys):
    exit_code = main([
        "trace", "cg-tiny", "--out", str(tmp_path / "t.json"), "--heatmap",
    ])
    assert exit_code == 0
    assert "noc spatial map" in capsys.readouterr().out


def test_trace_command_rejects_unknown_workload(tmp_path):
    with pytest.raises(SystemExit):
        main(["trace", "nope", "--out", str(tmp_path / "t.json")])
