"""ASCII heatmap rendering for the NoC spatial view."""

from __future__ import annotations

from repro.telemetry.heatmap import (
    SHADES,
    _shade,
    render_heatmap,
    render_link_map,
    render_noc_report,
)


def test_shade_zero_is_blank_and_activity_is_visible():
    assert _shade(0, 100) == " "
    # A single transit against a huge peak still gets the faintest mark.
    assert _shade(1, 1_000_000) == SHADES[1]
    assert _shade(100, 100) == SHADES[-1]


def test_render_heatmap_shapes_and_legend():
    text = render_heatmap([[0, 5], [10, 0]], title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo (peak=10)"
    assert lines[1] == "  ="  # 0 blank, 5/10 mid-ramp
    assert lines[2] == "@  "
    assert "legend" in lines[3]


def test_render_heatmap_all_zero_matrix():
    text = render_heatmap([[0, 0], [0, 0]])
    assert "@" not in text.splitlines()[0]
    assert "peak" not in text  # no title requested


SPATIAL = {
    "width": 2,
    "height": 2,
    "links": [
        {"src": [0, 0], "dst": [1, 0], "transits": 4},
        {"src": [1, 0], "dst": [0, 0], "transits": 6},
        {"src": [0, 1], "dst": [0, 0], "transits": 2},
        # A wrap link (no adjacent midpoint cell on a 2-wide torus row
        # would be ambiguous; fake a distance-2 hop to exercise the
        # wrap listing).
        {"src": [1, 1], "dst": [1, 3], "transits": 9},
    ],
    "deflections": [[3, 0], [0, 0]],
    "ejects": [[1, 2], [3, 4]],
    "inject_stalls": [[0, 0], [0, 7]],
    "injected": [[1, 1], [1, 1]],
}


def test_render_link_map_merges_both_directions():
    text = render_link_map(SPATIAL)
    lines = text.splitlines()
    assert "nodes=deflections (peak=3)" in lines[0]
    assert "links=transits (peak=10)" in lines[0]  # 4 + 6 merged
    # 2x2 mesh renders on a 3x3 expanded grid.
    grid = lines[1:4]
    assert all(len(row) == 3 for row in grid)
    assert grid[0][0] == "@"  # node (0,0): peak deflections
    assert grid[0][1] == "@"  # the merged 10-transit link between them
    assert "wrap links" in text
    assert "(1,1)->(1,3): 9" in text


def test_render_noc_report_contains_every_section():
    text = render_noc_report(SPATIAL)
    for section in (
        "noc spatial map",
        "switch deflections",
        "injection stalls",
        "ejections",
    ):
        assert section in text


def test_render_noc_report_handles_telemetry_off():
    assert render_noc_report(None) == "noc spatial telemetry: off"
