"""Cycle attribution: conservation, determinism, critical paths, schema.

The conservation tests run every bench_smoke golden workload — both
traffic shapes (Jacobi shared-memory kernels and eMPI collectives),
faults on and off — and assert each tile's cycle partition sums to the
elapsed cycles **bit-exactly**.  The rest covers the extractor on the
isolated 8w allreduce workloads (tree / ring / hw must each name a
bounding hop whose path telescopes to the measured latency), double-run
determinism of the full report, and the schema validator the CI
analyze-smoke job runs.
"""

from __future__ import annotations

import copy
import sys
from pathlib import Path

import pytest

from repro.telemetry.attribution import (
    LEDGER_CLASSES,
    AttributionError,
    aggregate_ledger,
    attribution_summary,
    build_report,
    check_conservation,
    critical_path,
    critical_paths,
    extract_ops,
    render_report,
)
from repro.telemetry.workloads import run_trace_workload

BENCHMARKS = Path(__file__).resolve().parents[2] / "benchmarks"
sys.path.insert(0, str(BENCHMARKS))
from bench_smoke import SMOKE_WORKLOADS  # noqa: E402
from validate_report import validate_report  # noqa: E402


def _run_captured(runner):
    captured = {}
    result = runner(
        observer=lambda system: captured.setdefault("system", system)
    )
    return captured["system"], result


# -- conservation on every golden workload ---------------------------------------


@pytest.mark.parametrize("name", sorted(SMOKE_WORKLOADS))
def test_ledger_conservation_on_golden_workloads(name):
    """On every bench_smoke golden workload — both models, faults on and
    off — per-tile state sums equal total cycles exactly."""
    runner, __ = SMOKE_WORKLOADS[name]
    system, result = _run_captured(runner)
    assert result.validated
    cycles = system.sim.cycle
    tiles = check_conservation(system)  # raises AttributionError if inexact
    assert len(tiles) == len(system.nodes)
    for tile in tiles:
        assert sum(tile[cls] for cls in LEDGER_CLASSES) == cycles
        assert tile["total"] == cycles
    aggregate = aggregate_ledger(tiles)
    assert aggregate["total"] == cycles * len(tiles)


def test_conservation_check_rejects_a_cooked_ledger():
    """The check is real: a ledger that does not sum to the elapsed
    cycles raises instead of silently misattributing."""
    system, __ = run_trace_workload("allreduce-8w-tree")
    node = system.nodes[0]
    original = node.cycle_ledger

    def cooked(end_cycle):
        ledger = original(end_cycle)
        ledger["compute"] += 1
        return ledger

    node.cycle_ledger = cooked
    try:
        with pytest.raises(AttributionError, match="rank 0 ledger sums"):
            check_conservation(system)
    finally:
        node.cycle_ledger = original


# -- critical paths on the isolated 8w allreduces --------------------------------


@pytest.mark.parametrize(
    "workload", ["allreduce-8w-tree", "allreduce-8w-ring", "allreduce-8w-hw"]
)
def test_allreduce_critical_paths_telescope_and_name_a_hop(workload):
    """The ISSUE acceptance point: for tree, ring and hw allreduce at 8w
    the analyzer names the bounding hop and the per-edge cycles sum to
    the measured op latency exactly."""
    system, result = run_trace_workload(workload)
    assert result.validated
    paths = critical_paths(system.notes)
    assert len(paths) == 4  # one per benchmark repeat
    for path in paths:
        assert path["ranks"] == 8
        assert path["latency"] == path["end"] - path["start"]
        assert sum(edge["cycles"] for edge in path["edges"]) == path["latency"]
        bound = path["bound_hop"]
        assert bound is not None and bound["kind"] == "xfer"
        assert any(
            edge["from_rank"] == bound["from_rank"]
            and edge["to_rank"] == bound["to_rank"]
            and edge["cycles"] == bound["cycles"]
            for edge in path["edges"]
        )
        for edge in path["edges"]:
            assert edge["to_cycle"] - edge["from_cycle"] == edge["cycles"]
            assert edge["cycles"] >= 0 and edge["slack"] >= 0


def test_extractor_on_a_synthetic_op():
    """Hand-built notes: rank 1 starts late, receives from rank 0, ends
    last — the binding walk reaches rank 0's start (the global start, so
    no skew edge) through the snd->rcv transfer, telescoping to 60."""
    notes = [
        (100, 0, "cp+ op#1"),
        (110, 1, "cp+ op#1"),
        (120, 0, "cph op#1 snd 1"),
        (150, 1, "cph op#1 rcv 0"),
        (125, 0, "cp- op#1"),
        (160, 1, "cp- op#1"),
    ]
    ops = extract_ops(notes)
    assert set(ops) == {"op#1"}
    path = critical_path("op#1", ops["op#1"])
    assert path["latency"] == 60
    assert path["bound_hop"]["from_rank"] == 0
    assert path["bound_hop"]["to_rank"] == 1
    kinds = [edge["kind"] for edge in path["edges"]]
    assert kinds == ["local", "xfer", "local"]
    assert sum(edge["cycles"] for edge in path["edges"]) == 60


def test_extractor_ignores_incomplete_ops():
    notes = [(10, 0, "cp+ op#1")]  # never exits
    assert critical_paths(notes) == []
    assert critical_path("op#1", extract_ops(notes)["op#1"]) is None


# -- double-run determinism ------------------------------------------------------


def test_attribution_report_is_deterministic():
    """Two runs of the same workload produce byte-identical reports."""
    first_system, __ = run_trace_workload("cg-tiny")
    second_system, __ = run_trace_workload("cg-tiny")
    first = build_report(first_system, workload="cg-tiny")
    second = build_report(second_system, workload="cg-tiny")
    assert first == second
    assert render_report(first) == render_report(second)


# -- the report and its validator ------------------------------------------------


@pytest.fixture(scope="module")
def tree_report():
    system, result = run_trace_workload("allreduce-8w-tree")
    return build_report(system, workload="allreduce-8w-tree"), system


def test_report_passes_the_schema_validator(tree_report):
    report, __ = tree_report
    summary = validate_report(report)
    assert summary["cycles"] == report["cycles"]
    assert summary["tiles"] == 8
    assert summary["critical_paths"] == 4


def test_report_survives_json_round_trip(tree_report):
    import json

    report, __ = tree_report
    round_tripped = json.loads(json.dumps(report))
    validate_report(round_tripped)


def test_validator_rejects_broken_reports(tree_report):
    report, __ = tree_report

    broken = copy.deepcopy(report)
    broken["ledger"]["tiles"][0]["compute"] += 1
    with pytest.raises(ValueError, match="conservation violated"):
        validate_report(broken)

    broken = copy.deepcopy(report)
    broken["critical_paths"][0]["latency"] += 1
    with pytest.raises(ValueError, match="does not telescope"):
        validate_report(broken)

    broken = copy.deepcopy(report)
    broken["schema"] = "medea.attribution/0"
    with pytest.raises(ValueError, match="schema mismatch"):
        validate_report(broken)

    broken = copy.deepcopy(report)
    broken["stalls"].append(
        {"rank": 99, "class": "wait_msg", "cycles": 1, "share": 0.0,
         "context": ""}
    )
    with pytest.raises(ValueError, match="unknown rank"):
        validate_report(broken)


def test_render_report_names_the_ledger_and_paths(tree_report):
    report, __ = tree_report
    text = render_report(report)
    assert "where the cycles went" in text
    assert "critical paths:" in text
    assert "allreduce[tree]#1" in text
    assert "bound by rank" in text


def test_attribution_summary_matches_the_full_report(tree_report):
    report, system = tree_report
    summary = attribution_summary(system)
    assert summary["cycles"] == report["cycles"]
    assert summary["aggregate"] == report["ledger"]["aggregate"]
    assert summary["top_stall"] is not None
    assert summary["top_stall"]["class"] in LEDGER_CLASSES
