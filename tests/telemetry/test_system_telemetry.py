"""End-to-end telemetry: traced workloads, export validity, neutrality.

The ``cg-tiny`` workload (2 workers, ring allreduce on the DMA engine,
overlap, seeded faults + one scheduled stall) exercises every track type
in a couple of seconds; the module-scoped fixture runs it once and every
test inspects the same system.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.errors import ConfigError
from repro.system.config import SystemConfig
from repro.telemetry.chrome_trace import (
    PID_FAULTS,
    PID_METRICS,
    TID_COLLECTIVES,
    TID_DMA,
    TID_OVERLAP,
    TID_REQUESTS,
    chrome_trace_events,
    write_chrome_trace,
)
from repro.telemetry.config import TelemetryConfig
from repro.telemetry.registry import sampled_overlap_efficiency
from repro.telemetry.workloads import TRACE_WORKLOADS, run_trace_workload

sys.path.insert(
    0, str(Path(__file__).resolve().parents[2] / "benchmarks")
)
from validate_trace import validate_trace_events  # noqa: E402


@pytest.fixture(scope="module")
def tiny_run():
    return run_trace_workload("cg-tiny")


def test_telemetry_config_validation():
    with pytest.raises(ConfigError):
        SystemConfig(
            n_workers=2, telemetry=TelemetryConfig(sample_interval=0)
        ).validate()
    with pytest.raises(ConfigError):
        TelemetryConfig(event_limit=0).validate()
    TelemetryConfig().validate()  # defaults are fine


def test_workload_registry_names_are_stable():
    assert set(TRACE_WORKLOADS) == {
        "cg", "cg-reference", "cg-tiny",
        "allreduce-8w-tree", "allreduce-8w-ring", "allreduce-8w-hw",
    }
    with pytest.raises(KeyError, match="unknown trace workload"):
        run_trace_workload("nope")


def test_tiny_run_validates_and_samples(tiny_run):
    system, result = tiny_run
    assert result.validated
    summary = result.stats["telemetry"]
    assert summary["samples"] > 3
    assert summary["trace_events"] > 0
    assert summary["noc_spatial"] is not None


def test_telemetry_is_cycle_neutral(tiny_run):
    """The same workload with telemetry=None runs the same cycles."""
    __, traced = tiny_run
    config, params = TRACE_WORKLOADS["cg-tiny"].build()
    from repro.apps.cg import run_cg

    bare = run_cg(config.with_changes(telemetry=None), params)
    assert bare.validated
    assert bare.total_cycles == traced.total_cycles
    assert bare.solve_cycles == traced.solve_cycles
    assert bare.x == traced.x


def test_export_passes_the_schema_validator(tiny_run):
    system, __ = tiny_run
    events = chrome_trace_events(system)
    summary = validate_trace_events(events)
    assert summary["events"] == len(events)
    # Spans, instants, counters and metadata all present.
    for phase in ("X", "i", "C", "M"):
        assert summary["phases"].get(phase, 0) > 0


def test_export_covers_every_track_type(tiny_run):
    system, __ = tiny_run
    events = chrome_trace_events(system)
    spans_by_tid = {
        event["tid"] for event in events if event["ph"] == "X"
    }
    # The acceptance bar: >= 4 distinct track types.  Requests,
    # collectives, overlap regions and DMA descriptors all carry spans;
    # faults and metrics ride their reserved pids.
    assert {
        TID_REQUESTS, TID_COLLECTIVES, TID_OVERLAP, TID_DMA
    } <= spans_by_tid
    pids = {event["pid"] for event in events}
    assert PID_FAULTS in pids  # the scheduled stall guarantees one
    assert PID_METRICS in pids


def test_export_names_carry_workload_labels(tiny_run):
    system, __ = tiny_run
    names = {
        event["name"] for event in chrome_trace_events(system)
        if event["ph"] == "X"
    }
    assert any("allreduce[ring]" in name for name in names)
    assert "overlap" in names


def test_write_chrome_trace_file_round_trip(tiny_run, tmp_path):
    system, __ = tiny_run
    out = tmp_path / "trace.json"
    count = write_chrome_trace(system, str(out))
    from validate_trace import validate_trace_file

    summary = validate_trace_file(str(out))
    assert summary["events"] == count


def test_sampled_overlap_matches_the_apps_own_number(tiny_run):
    system, result = tiny_run
    sampled = sampled_overlap_efficiency(system.telemetry.registry)
    assert sampled == pytest.approx(result.overlap_efficiency, abs=1e-12)


def test_reference_overlap_efficiency_from_samples_alone():
    """The PR-3 acceptance point, reproduced from the sampled timeline:
    ~0.96 overlap efficiency on the 8w tree CG run, computed from
    ``empi.overlap.*`` counter deltas with no access to the notes."""
    system, result = run_trace_workload("cg-reference")
    sampled = sampled_overlap_efficiency(system.telemetry.registry)
    assert sampled == pytest.approx(result.overlap_efficiency, abs=1e-12)
    assert sampled > 0.9


def test_timeout_reports_attach_the_telemetry_snapshot():
    """An eMPI timeout under telemetry carries the last sample summary."""
    from repro.empi.collectives import make_comm
    from repro.errors import DeadlockError, EmpiTimeoutError
    from repro.faults import FaultPlan
    from repro.system.medea import MedeaSystem

    config = SystemConfig(
        n_workers=2,
        faults=FaultPlan(seed=1, drop_rate=1.0, max_retries=2,
                         nack_timeout=64),
        telemetry=TelemetryConfig(sample_interval=256),
        watchdog_cycles=20_000,
    )

    def make_program(rank):
        def program(ctx):
            comm = make_comm(ctx, "empi", "tree", max_values=4)
            yield from comm.allreduce([float(rank)] * 4)
        return program

    system = MedeaSystem(config)
    system.load_programs([make_program(rank) for rank in range(2)])
    with pytest.raises((EmpiTimeoutError, DeadlockError)) as info:
        system.run(max_cycles=500_000)
    assert "telemetry: last sample at cycle" in str(info.value)
