"""MetricRegistry: delta sampling, timelines, overlap folding."""

from __future__ import annotations

import pytest

from repro.empi.requests import (
    NOTE_OVERLAP_ENTER,
    NOTE_OVERLAP_EXIT,
    NOTE_REQUEST_DONE,
    NOTE_REQUEST_POST,
    mean_overlap_efficiency,
    overlap_stats,
)
from repro.kernel.stats import CounterSet, LatencyStat
from repro.telemetry.registry import (
    MetricRegistry,
    OverlapNoteCounters,
    TelemetrySampler,
    sampled_overlap_efficiency,
)


def test_sample_records_deltas_not_absolutes():
    registry = MetricRegistry()
    counters = CounterSet("c")
    registry.add_counters("tile0", counters)
    counters.inc("hits", 5)
    assert registry.sample(100) == {"tile0.hits": 5}
    counters.inc("hits", 2)
    assert registry.sample(200) == {"tile0.hits": 2}
    assert registry.total("tile0.hits") == 7


def test_sample_row_only_holds_changed_names():
    registry = MetricRegistry()
    counters = CounterSet("c")
    registry.add_counters("x", counters)
    counters.inc("moving")
    counters.inc("frozen")
    registry.sample(10)
    counters.inc("moving")
    row = registry.sample(20)
    assert row == {"x.moving": 1}  # sparse: frozen didn't move


def test_flush_hook_runs_before_the_provider_is_read():
    registry = MetricRegistry()
    counters = CounterSet("c")
    batched = {"pending": 3}

    def flush():
        counters.inc("ops", batched.pop("pending", 0))

    registry.add_counters("core", counters, flush=flush)
    assert registry.sample(50) == {"core.ops": 3}


def test_timeline_and_series_report_per_sample_curves():
    registry = MetricRegistry()
    counters = CounterSet("c")
    registry.add_counters("n", counters)
    counters.inc("a", 1)
    registry.sample(10)
    registry.sample(20)  # nothing moved
    counters.inc("a", 4)
    registry.sample(30)
    assert registry.timeline("n.a") == [(10, 1), (20, 0), (30, 4)]
    assert registry.series() == {"n.a": [(10, 1), (20, 0), (30, 4)]}


def test_add_latency_samples_count_and_total():
    registry = MetricRegistry()
    stat = LatencyStat()
    registry.add_latency("noc.latency", stat)
    stat.record(10)
    stat.record(20)
    row = registry.sample(5)
    assert row == {"noc.latency.count": 2, "noc.latency.total": 30}
    stat.record(4)
    row = registry.sample(6)
    # Per-interval mean latency falls straight out of the two deltas.
    assert row["noc.latency.total"] / row["noc.latency.count"] == 4


def test_describe_names_the_biggest_movers():
    registry = MetricRegistry()
    counters = CounterSet("c")
    registry.add_counters("t", counters)
    assert "no samples" in registry.describe()
    counters.inc("big", 100)
    counters.inc("small", 1)
    registry.sample(42)
    summary = registry.describe(top=1)
    assert "cycle 42" in summary
    assert "t.big" in summary and "t.small" not in summary


def test_as_dict_round_trips_through_json_shapes():
    registry = MetricRegistry(sample_interval=64)
    counters = CounterSet("c")
    registry.add_counters("t", counters)
    counters.inc("k", 2)
    registry.sample(64)
    data = registry.as_dict()
    assert data["sample_interval"] == 64
    assert data["samples"] == [{"cycle": 64, "deltas": {"t.k": 2}}]
    assert data["totals"] == {"t.k": 2}


NOTES = [
    (10, 0, f"{NOTE_REQUEST_POST} halo"),
    (20, 0, NOTE_OVERLAP_ENTER),
    (50, 0, NOTE_OVERLAP_EXIT),
    (60, 0, f"{NOTE_REQUEST_DONE} halo"),
    (15, 1, "solve_start"),  # foreign labels are ignored
]


def test_overlap_note_counters_match_the_batch_reduction():
    """The incremental fold must agree with ``overlap_stats`` exactly."""
    tracker = OverlapNoteCounters(list(NOTES), 2)
    counts = tracker.values()
    batch = overlap_stats(NOTES, 2)
    assert counts["inflight_cycles"] == batch[0].inflight_cycles == 50
    assert counts["overlap_region_cycles"] == 30
    assert counts["coexist_cycles"] == batch[0].coexist_cycles == 30
    assert counts["rank0.inflight_cycles"] == 50
    assert "rank1.inflight_cycles" not in counts


def test_overlap_note_counters_fold_incrementally():
    notes: list = []
    tracker = OverlapNoteCounters(notes, 1)
    assert tracker.values()["inflight_cycles"] == 0
    notes.extend(NOTES[:2])  # post + overlap enter arrive
    assert tracker.values()["inflight_cycles"] == 10
    notes.extend(NOTES[2:4])  # exit + done arrive later
    counts = tracker.values()
    assert counts["inflight_cycles"] == 50
    assert counts["coexist_cycles"] == 30
    # Re-reading without new notes is a no-op.
    assert tracker.values() == counts


def test_sampled_overlap_efficiency_sums_the_delta_series():
    registry = MetricRegistry()
    tracker = OverlapNoteCounters(list(NOTES), 2)
    registry.add_source("empi.overlap", tracker.values)
    registry.sample(100)
    # One rank active out of two: the aggregate cycle ratio equals the
    # batch reduction's mean (idle ranks contribute to neither).
    assert sampled_overlap_efficiency(registry) == pytest.approx(30 / 50)
    assert mean_overlap_efficiency(overlap_stats(NOTES, 2)) == pytest.approx(
        30 / 50
    )


def test_sampled_overlap_efficiency_empty_registry_is_zero():
    assert sampled_overlap_efficiency(MetricRegistry()) == 0.0


def test_sampler_component_snapshots_on_its_cadence():
    from repro.kernel.simulator import Simulator

    registry = MetricRegistry(sample_interval=10)
    counters = CounterSet("c")
    registry.add_counters("t", counters)
    counters.inc("k")
    sim = Simulator()
    sampler = TelemetrySampler(registry)
    sim.register(sampler)
    sampler.wake()
    sim.run(max_cycles=35)
    assert [cycle for cycle, __ in registry.samples] == [0, 10, 20, 30]
