"""Retransmit-protocol edge cases, driven directly at the TIE level.

End-to-end recovery (drops/corruption/dead links healed under real
collectives) lives in ``tests/system/test_fault_recovery.py``; here the
reliable-mode :class:`~repro.pe.tie.TieInterface` is fed hand-built
tokens to pin the awkward corners: stale NACKs for already-retired
slots, corrupted NACKs naming never-sent slots, the retransmit-buffer
backpressure gate, duplicate suppression, and idempotent credit
probes.
"""

from __future__ import annotations

from repro.faults import FaultInjector, FaultPlan
from repro.noc.flit import Flit
from repro.noc.packet import PacketType, SubType
from repro.noc.topology import MeshTopology
from repro.pe.reliability import DEMAND_FACTOR, ReliabilityAgent
from repro.pe.tie import (
    CREDIT_PROBE_WORD,
    CREDIT_WORD,
    NACK_WORD,
    SLOT_MASK,
    TieInterface,
)

PEER = 2


def reliable_tie(retx_slots: int = 16) -> TieInterface:
    tie = TieInterface(node_id=1)
    tie.reliable = True
    tie.retx_slots = retx_slots
    return tie


def token(word: int, src: int = PEER) -> Flit:
    return Flit(dst=1, src=src, ptype=PacketType.MESSAGE,
                subtype=int(SubType.MSG_REQUEST), seq=0, burst=1, data=word)


def drain_tx(tie: TieInterface, n: int) -> list[Flit]:
    """Emit up to ``n`` flits of the current send, as the node would."""
    emitted = []
    for _ in range(n):
        flit = tie.tx_current()
        if flit is None:
            break
        emitted.append(flit)
        tie.tx_advance()
    return emitted


# -- NACK edge cases --------------------------------------------------------


def test_nack_for_already_retired_slot_is_dropped():
    # A stale NACK that crossed the credit repairing it in flight: the
    # slot sits behind the credited floor, so the retransmit buffer no
    # longer holds it — and must not be asked to.
    tie = reliable_tie()
    tie.begin_send(PEER, list(range(100, 108)))
    drain_tx(tie, 8)
    tie.accept(token(CREDIT_WORD | 8))      # peer credits all 8 slots
    assert not tie._retx[PEER]              # buffer fully retired
    tie.accept(token(NACK_WORD | 3))        # stale NACK for slot 3
    assert not tie.pending_retx
    assert tie.stats.as_dict()["nacks_retired"] == 1


def test_corrupted_nack_for_unsent_slot_is_ignored():
    # A corrupted NACK token can name any slot; one beyond everything
    # ever emitted must be ignored (the receiver keeps NACKing with
    # backoff until a well-formed one lands).
    tie = reliable_tie()
    tie.begin_send(PEER, [7, 8, 9])
    drain_tx(tie, 3)
    tie.accept(token(NACK_WORD | 12))       # never sent slot 12
    assert not tie.pending_retx
    assert tie.stats.as_dict()["nacks_ignored"] == 1
    # So is a NACK from a peer we never sent anything to.
    tie.accept(token(NACK_WORD | 0, src=5))
    assert not tie.pending_retx
    assert tie.stats.as_dict()["nacks_ignored"] == 2


def test_valid_nack_queues_one_retransmission():
    tie = reliable_tie()
    words = [50, 51, 52, 53]
    tie.begin_send(PEER, words)
    drain_tx(tie, 4)
    tie.accept(token(NACK_WORD | 2))
    tie.accept(token(NACK_WORD | 2))        # duplicate NACK: no double-queue
    assert len(tie.pending_retx) == 1
    flit = tie.retx_flit()
    assert flit.subtype == int(SubType.MSG_RETX)
    assert flit.seq == 2 and flit.data == 52 and flit.dst == PEER
    tie.retx_sent()
    assert not tie.pending_retx
    assert tie.stats.as_dict()["retx_sent"] == 1
    # Once drained, the same slot may be NACKed (and served) again.
    tie.accept(token(NACK_WORD | 2))
    assert len(tie.pending_retx) == 1


def test_retx_buffer_full_backpressures_the_sender():
    # retx_slots=4 narrows the TX window below the credit limit: the
    # sender stalls with every emitted-but-unretired slot replayable,
    # and resumes exactly as credits retire slots.
    tie = reliable_tie(retx_slots=4)
    tie.begin_send(PEER, list(range(10)))
    assert len(drain_tx(tie, 10)) == 4      # slots 0-3, then the gate
    assert tie.tx_current() is None
    assert len(tie._retx[PEER]) == 4
    tie.flush_stats()
    assert tie.stats.as_dict()["credit_stall_cycles"] >= 1
    tie.accept(token(CREDIT_WORD | 2))      # peer retires slots 0-1
    assert len(drain_tx(tie, 10)) == 2      # window slides by exactly 2
    assert set(tie._retx[PEER]) == {2, 3, 4, 5}


def test_duplicate_retransmission_is_dropped_at_the_stream():
    # A retransmit racing its delayed original: the second copy of the
    # slot is detected by the wide stream and discarded, not aliased.
    tie = reliable_tie()

    def data(seq):
        return Flit(dst=1, src=PEER, ptype=PacketType.MESSAGE,
                    subtype=int(SubType.MSG_DATA), seq=seq, burst=1,
                    data=1000 + seq)

    tie.accept(data(0))
    tie.accept(data(0))
    assert tie.stats.as_dict()["duplicate_flits_dropped"] == 1
    stream = tie.streams[PEER]
    assert stream.take(1) == [1000]


def test_stale_credit_is_idempotent():
    tie = reliable_tie()
    tie.begin_send(PEER, list(range(16)))
    drain_tx(tie, 16)
    tie.accept(token(CREDIT_WORD | 8))
    tie.accept(token(CREDIT_WORD | 4))      # reordered stale token: no-op
    assert tie._peer_credited[PEER] == 8
    tie.accept(token(CREDIT_WORD | 16))
    assert tie._peer_credited[PEER] == 16
    assert not tie._retx[PEER]


def test_credit_probe_reissues_current_value():
    # The receive side answers a probe with its current credited slot —
    # the idempotent repair for a lost credit token.
    tie = reliable_tie()
    for seq in range(8):
        tie.accept(Flit(dst=1, src=PEER, ptype=PacketType.MESSAGE,
                        subtype=int(SubType.MSG_DATA), seq=seq, burst=1,
                        data=seq))
    # One windowed credit (8 contiguous slots) is owed; drop it.
    assert not tie.pending_credits.empty
    tie.pending_credits.pop()
    tie.accept(token(CREDIT_PROBE_WORD))
    dst, word = tie.pending_credits.peek()
    assert dst == PEER
    assert word == (CREDIT_WORD | 8)
    assert tie.stats.as_dict()["credit_probes_received"] == 1


# -- the reliability agent's timers -----------------------------------------


def agent_for(tie: TieInterface, **plan_kwargs) -> ReliabilityAgent:
    injector = FaultInjector(FaultPlan(**plan_kwargs), MeshTopology(3, 3))
    tie.faults = injector
    return ReliabilityAgent(tie, injector)


def test_gap_triggers_nack_after_timeout_with_backoff():
    tie = reliable_tie()
    agent = agent_for(tie, nack_timeout=10, nack_backoff=2, max_retries=3)
    # Slot 1 arrives, slot 0 missing: a gap.
    tie.accept(Flit(dst=1, src=PEER, ptype=PacketType.MESSAGE,
                    subtype=int(SubType.MSG_DATA), seq=1, burst=1, data=5))
    agent.tick(0)           # arms the timer
    assert agent.wants_poll
    agent.tick(9)
    assert tie.pending_credits.empty        # not expired yet
    agent.tick(10)          # first NACK
    dst, word = tie.pending_credits.pop()
    assert dst == PEER and word == (NACK_WORD | 0)
    agent.tick(29)
    assert tie.pending_credits.empty        # backoff doubled the horizon
    agent.tick(30)          # second NACK
    assert tie.pending_credits.pop()[1] == (NACK_WORD | 0)
    assert agent.injector.counts.as_dict()["nacks_issued"] == 2


def test_retries_exhausted_lands_on_gave_up_without_raising():
    tie = reliable_tie()
    agent = agent_for(tie, nack_timeout=4, nack_backoff=1, max_retries=2)
    tie.accept(Flit(dst=1, src=PEER, ptype=PacketType.MESSAGE,
                    subtype=int(SubType.MSG_DATA), seq=1, burst=1, data=5))
    for cycle in range(0, 100, 4):
        agent.tick(cycle)
        while not tie.pending_credits.empty:
            tie.pending_credits.pop()
    assert agent.injector.counts.as_dict()["nacks_issued"] == 2
    assert len(agent.injector.gave_up) == 1
    assert "pe[1]" in agent.injector.gave_up[0]


def test_demand_only_starvation_waits_longer():
    # Tail loss: nothing buffered, but a consumer asked for words.  The
    # NACK must come — at DEMAND_FACTOR times the gap horizon, since an
    # idle sender looks identical.
    tie = reliable_tie()
    agent = agent_for(tie, nack_timeout=10)
    stream = tie.stream_from(PEER)
    assert not stream.available(2)          # records demand
    agent.tick(0)
    assert agent.wants_poll
    agent.tick(10 * DEMAND_FACTOR - 1)
    assert tie.pending_credits.empty
    agent.tick(10 * DEMAND_FACTOR)
    assert tie.pending_credits.pop()[1] == (NACK_WORD | 0)


def test_credit_stall_probes_the_gating_peer():
    tie = reliable_tie()
    agent = agent_for(tie, nack_timeout=10)
    tie.begin_send(PEER, list(range(20)))
    drain_tx(tie, 20)                       # stalls at the credit limit
    assert tie.tx_current() is None
    agent.tick(0)
    agent.tick(10)
    dst, word = tie.pending_credits.pop()
    assert dst == PEER and word == CREDIT_PROBE_WORD
    assert agent.injector.counts.as_dict()["probes_issued"] == 1
    # Progress (a credit advancing the floor) re-arms instead of firing.
    tie.accept(token(CREDIT_WORD | 8))
    agent.tick(11)
    agent.tick(21)
    assert agent.injector.counts.as_dict()["probes_issued"] == 1
