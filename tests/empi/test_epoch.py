"""Token epochs: mod-256 wraparound and out-of-band stashing.

The eMPI runtime stamps every synchronization token with an 8-bit epoch
so back-to-back barriers cannot steal each other's tokens, and stashes
any token that arrives before its matcher is waiting.  These tests pin
both mechanisms down — at the unit level by driving the token-matching
generator directly, and end-to-end by running past the 256-barrier
wraparound point on the full machine.
"""

from __future__ import annotations

import pytest

from repro.empi.runtime import Empi, _decode, _encode, _Token
from repro.system.config import SystemConfig
from tests.conftest import run_programs


class _StubCtx:
    """The minimal context surface Empi needs off the simulator."""

    rank = 0
    n_workers = 2
    empi = None

    @staticmethod
    def node_of(rank: int) -> int:
        return rank + 1


def drive(gen, replies):
    """Run a token-matching generator, feeding queued (src, word) replies.

    Returns (result, recvreq_count): the generator's return value and how
    many tokens it had to pull off the wire.
    """
    replies = list(replies)
    pulls = 0
    try:
        op = next(gen)
        while True:
            assert op == ("recvreq",)
            pulls += 1
            op = gen.send(replies.pop(0))
    except StopIteration as stop:
        return stop.value, pulls


# -- encoding ---------------------------------------------------------------


def test_encode_decode_round_trip():
    word = _encode(_Token.DISSEM, epoch=200, aux=7)
    assert _decode(word) == (int(_Token.DISSEM), 200, 7)


def test_epoch_field_wraps_mod_256():
    assert _decode(_encode(_Token.ARRIVE, 256))[1] == 0
    assert _decode(_encode(_Token.ARRIVE, 257))[1] == 1
    assert _decode(_encode(_Token.ARRIVE, 0x1FF))[1] == 0xFF


# -- unit-level matching ----------------------------------------------------


def test_matching_token_returns_immediately():
    empi = Empi(_StubCtx())
    result, pulls = drive(
        empi._recv_token(_Token.RELEASE, epoch=5, src_node=1),
        [(1, _encode(_Token.RELEASE, 5))],
    )
    assert result == (1, 0)
    assert pulls == 1
    assert empi._stash == []


def test_stranger_tokens_are_stashed_not_dropped():
    """Tokens for other epochs/sources park in the stash untouched."""
    empi = Empi(_StubCtx())
    strangers = [
        (2, _encode(_Token.ARRIVE, 6)),        # future epoch
        (1, _encode(_Token.DISSEM, 5, aux=1)),  # wrong opcode
        (2, _encode(_Token.RELEASE, 5)),        # wrong source
    ]
    result, pulls = drive(
        empi._recv_token(_Token.RELEASE, epoch=5, src_node=1),
        strangers + [(1, _encode(_Token.RELEASE, 5))],
    )
    assert result == (1, 0)
    assert pulls == 4
    assert len(empi._stash) == 3  # every stranger still waiting


def test_stashed_token_matched_without_touching_the_wire():
    """An out-of-band token stashed earlier satisfies a later wait."""
    empi = Empi(_StubCtx())
    # Epoch-6 token arrives while rank waits on epoch 5.
    drive(
        empi._recv_token(_Token.RELEASE, epoch=5, src_node=1),
        [(1, _encode(_Token.RELEASE, 6)), (1, _encode(_Token.RELEASE, 5))],
    )
    assert len(empi._stash) == 1
    # The epoch-6 wait must complete from the stash alone: zero pulls.
    result, pulls = drive(empi._recv_token(_Token.RELEASE, epoch=6), [])
    assert result == (1, 0)
    assert pulls == 0
    assert empi._stash == []


def test_wraparound_epoch_matches_mod_256():
    """Epoch 256 and epoch 0 are the same wire epoch."""
    empi = Empi(_StubCtx())
    result, pulls = drive(
        empi._recv_token(_Token.ARRIVE, epoch=256),
        [(1, _encode(_Token.ARRIVE, 0))],
    )
    assert result == (1, 0)
    assert pulls == 1


def test_aux_filter_matches_dissemination_rounds():
    empi = Empi(_StubCtx())
    result, pulls = drive(
        empi._recv_token(_Token.DISSEM, epoch=9, aux=2),
        [(1, _encode(_Token.DISSEM, 9, aux=0)),
         (1, _encode(_Token.DISSEM, 9, aux=2))],
    )
    assert result == (1, 2)
    assert pulls == 2
    assert empi._stash == [(1, int(_Token.DISSEM), 9, 0)]


# -- full-machine wraparound ------------------------------------------------


@pytest.mark.parametrize("algorithm", ["central", "dissemination"])
def test_300_barriers_cross_the_epoch_wraparound(algorithm):
    """Running past barrier 256 exercises the mod-256 epoch reuse on the
    real machine: stale-epoch tokens would wedge or misrelease ranks."""
    config = SystemConfig(n_workers=2, cache_size_kb=2,
                          empi_barrier=algorithm)
    done = []

    def program(ctx):
        for __ in range(300):
            yield from ctx.empi.barrier()
        done.append(ctx.rank)

    system = run_programs(config, program, program, max_cycles=5_000_000)
    assert sorted(done) == [0, 1]
    empi = system.contexts[0].empi
    assert empi.barriers == 300
    wrapped = (empi._epoch if algorithm == "central"
               else empi._dissem_epoch)
    assert wrapped == 300 % 256
