"""eMPI runtime: point-to-point, barriers, collectives."""

from __future__ import annotations

import pytest

from repro.empi.runtime import BarrierAlgorithm
from repro.system.config import SystemConfig
from tests.conftest import run_programs


def config_for(n_workers: int, barrier: str = "central") -> SystemConfig:
    return SystemConfig(n_workers=n_workers, cache_size_kb=2,
                        empi_barrier=barrier)


def test_send_recv_doubles_round_trip():
    payload = [1.5, -2.25, 3.125]
    received = {}

    def sender(ctx):
        yield from ctx.empi.send_doubles(1, payload)

    def receiver(ctx):
        values = yield from ctx.empi.recv_doubles(0, 3)
        received["values"] = values

    run_programs(config_for(2), sender, receiver)
    assert received["values"] == payload


@pytest.mark.parametrize("algorithm", ["central", "dissemination"])
@pytest.mark.parametrize("n_workers", [2, 3, 5, 8])
def test_barrier_is_a_real_barrier(algorithm, n_workers):
    """No rank may leave barrier k before every rank entered it."""
    events = []

    def make_program(stagger: int):
        def program(ctx):
            for round_index in range(3):
                yield ("compute", 1 + stagger * 37)
                events.append(("enter", round_index, ctx.rank))
                yield from ctx.empi.barrier()
                events.append(("leave", round_index, ctx.rank))
        return program

    run_programs(
        config_for(n_workers, barrier=algorithm),
        *[make_program(rank) for rank in range(n_workers)],
    )
    # For each round: every "enter" must precede every "leave".
    for round_index in range(3):
        enters = [i for i, e in enumerate(events)
                  if e[0] == "enter" and e[1] == round_index]
        leaves = [i for i, e in enumerate(events)
                  if e[0] == "leave" and e[1] == round_index]
        assert len(enters) == len(leaves) == n_workers
        assert max(enters) < min(leaves)


def test_barrier_single_worker_is_trivial():
    def program(ctx):
        yield from ctx.empi.barrier()
        yield ctx.note("done")

    system = run_programs(config_for(1), program)
    assert any(label == "done" for __, __, label in system.notes)


def test_back_to_back_barriers_do_not_cross_epochs():
    """A fast rank re-entering the barrier cannot steal older tokens."""
    def program(ctx):
        for __ in range(6):
            yield from ctx.empi.barrier()
        yield ctx.note(f"done:{ctx.rank}")

    system = run_programs(config_for(3), program, program, program)
    done = [label for __, __, label in system.notes if label.startswith("done")]
    assert len(done) == 3


def test_dissemination_uses_log_rounds():
    def program(ctx):
        yield from ctx.empi.barrier()

    system = run_programs(config_for(8, barrier="dissemination"),
                          *[program] * 8)
    # Dissemination with 8 workers: 3 rounds of one token per rank.
    for node in system.nodes:
        assert node.tie.stats["requests_sent"] == 3


def test_central_token_counts():
    def program(ctx):
        yield from ctx.empi.barrier()

    system = run_programs(config_for(4), *[program] * 4)
    root = system.nodes[0]
    # Root sends n-1 releases; others send one arrival each.
    assert root.tie.stats["requests_sent"] == 3
    for node in system.nodes[1:]:
        assert node.tie.stats["requests_sent"] == 1


def test_broadcast_doubles():
    results = {}

    def program(ctx):
        values = yield from ctx.empi.broadcast_doubles(
            0, [3.5, 4.5] if ctx.rank == 0 else None, 2
        )
        results[ctx.rank] = values

    run_programs(config_for(3), *[program] * 3)
    assert results == {0: [3.5, 4.5], 1: [3.5, 4.5], 2: [3.5, 4.5]}


def test_gather_double():
    results = {}

    def program(ctx):
        gathered = yield from ctx.empi.gather_double(0, float(ctx.rank) + 0.5)
        results[ctx.rank] = gathered

    run_programs(config_for(3), *[program] * 3)
    assert results[0] == [0.5, 1.5, 2.5]
    assert results[1] is None


def test_allreduce_sum():
    results = {}

    def program(ctx):
        total = yield from ctx.empi.allreduce_sum(float(ctx.rank + 1))
        results[ctx.rank] = total

    run_programs(config_for(4), *[program] * 4)
    assert all(total == 10.0 for total in results.values())


def test_barrier_algorithm_enum_parse():
    assert BarrierAlgorithm("central") is BarrierAlgorithm.CENTRAL
    with pytest.raises(ValueError):
        BarrierAlgorithm("tree")


def test_message_and_barrier_interleaving():
    """Data streams and barrier tokens share the NoC without interference."""
    received = {}

    def pusher(ctx):
        for round_index in range(4):
            yield from ctx.empi.send_doubles(1, [float(round_index)])
            yield from ctx.empi.barrier()

    def puller(ctx):
        values = []
        for __ in range(4):
            got = yield from ctx.empi.recv_doubles(0, 1)
            values.extend(got)
            yield from ctx.empi.barrier()
        received["values"] = values

    run_programs(config_for(2), pusher, puller)
    assert received["values"] == [0.0, 1.0, 2.0, 3.0]
