"""Collectives: every op, both backends, both algorithms, exact results.

The acceptance bar for the collective layer: broadcast / reduce /
allreduce / scatter / gather each run over the message-passing path and
the shared-memory MPMMU path, and the delivered vectors match the
pure-python combine-order references bit for bit.
"""

from __future__ import annotations

import math

import pytest

from repro.empi.collectives import (
    CollectiveAlgorithm,
    CommModel,
    ReduceOp,
    combine_values,
    make_comm,
    reference_allreduce,
    reference_reduce,
)
from repro.empi.smsync import SharedMemoryChannel, SharedMemoryCollectives
from repro.errors import ConfigError, ProgramError
from repro.system.config import SystemConfig
from tests.conftest import run_programs

MODELS = ("empi", "pure_sm")
ALGORITHMS = ("linear", "tree")
N_VALUES = 3


def contribution(rank: int, n_values: int = N_VALUES) -> list[float]:
    """Deterministic, sign-varying, bit-portable per-rank vectors."""
    return [
        math.sin(0.31 * rank + 0.17 * i) + 0.125 * rank for i in range(n_values)
    ]


def config_for(n_workers: int) -> SystemConfig:
    return SystemConfig(n_workers=n_workers, cache_size_kb=2)


def run_collective(collective: str, model: str, algorithm: str,
                   n_workers: int, root: int = 0) -> dict[int, object]:
    results: dict[int, object] = {}

    def make_program(rank: int):
        def program(ctx):
            comm = make_comm(ctx, model, algorithm, max_values=N_VALUES)
            mine = contribution(ctx.rank)
            if collective == "bcast":
                payload = mine if ctx.rank == root else None
                result = yield from comm.bcast(root, payload, N_VALUES)
            elif collective == "reduce":
                result = yield from comm.reduce(root, mine)
            elif collective == "allreduce":
                result = yield from comm.allreduce(mine)
            elif collective == "scatter":
                chunks = None
                if ctx.rank == root:
                    chunks = [contribution(r) for r in range(ctx.n_workers)]
                result = yield from comm.scatter(root, chunks, N_VALUES)
            elif collective == "gather":
                result = yield from comm.gather(root, mine)
            else:  # pragma: no cover - test configuration error
                raise AssertionError(collective)
            results[ctx.rank] = result
        return program

    run_programs(config_for(n_workers),
                 *[make_program(rank) for rank in range(n_workers)])
    return results


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("n_workers", [2, 5])
def test_bcast_delivers_root_payload(model, algorithm, n_workers):
    results = run_collective("bcast", model, algorithm, n_workers)
    expected = contribution(0)
    assert all(results[r] == expected for r in range(n_workers))


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("n_workers", [2, 5])
def test_reduce_matches_reference_bit_for_bit(model, algorithm, n_workers):
    results = run_collective("reduce", model, algorithm, n_workers)
    expected = reference_reduce(
        [contribution(r) for r in range(n_workers)], 0,
        ReduceOp.SUM, algorithm,
    )
    assert results[0] == expected
    assert all(results[r] is None for r in range(1, n_workers))


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("n_workers", [2, 5])
def test_allreduce_everywhere(model, algorithm, n_workers):
    results = run_collective("allreduce", model, algorithm, n_workers)
    expected = reference_allreduce(
        [contribution(r) for r in range(n_workers)], ReduceOp.SUM, algorithm
    )
    assert all(results[r] == expected for r in range(n_workers))


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("n_workers", [2, 5])
def test_scatter_distributes_chunks(model, n_workers):
    results = run_collective("scatter", model, "linear", n_workers)
    for rank in range(n_workers):
        assert results[rank] == contribution(rank)


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("n_workers", [2, 5])
def test_gather_collects_in_rank_order(model, n_workers):
    results = run_collective("gather", model, "linear", n_workers)
    assert results[0] == [contribution(r) for r in range(n_workers)]
    assert all(results[r] is None for r in range(1, n_workers))


@pytest.mark.parametrize("collective", ["bcast", "reduce", "gather", "scatter"])
@pytest.mark.parametrize("model", MODELS)
def test_nonzero_root(collective, model):
    """Rooted collectives must work from any root, not just rank 0."""
    n_workers, root = 3, 2
    algorithm = "tree" if collective in ("bcast", "reduce") else "linear"
    results = run_collective(collective, model, algorithm, n_workers, root=root)
    contribs = [contribution(r) for r in range(n_workers)]
    if collective == "bcast":
        assert all(results[r] == contribs[root] for r in range(n_workers))
    elif collective == "reduce":
        assert results[root] == reference_reduce(
            contribs, root, ReduceOp.SUM, "tree"
        )
    elif collective == "gather":
        assert results[root] == contribs
    else:
        for rank in range(n_workers):
            assert results[rank] == contribs[rank]


@pytest.mark.parametrize("model", MODELS)
def test_reduce_max(model):
    results: dict[int, object] = {}

    def make_program(rank: int):
        def program(ctx):
            comm = make_comm(ctx, model, "linear", max_values=N_VALUES)
            result = yield from comm.reduce(
                0, contribution(ctx.rank), op=ReduceOp.MAX
            )
            results[ctx.rank] = result
        return program

    run_programs(config_for(3), *[make_program(r) for r in range(3)])
    expected = reference_reduce(
        [contribution(r) for r in range(3)], 0, ReduceOp.MAX, "linear"
    )
    assert results[0] == expected


@pytest.mark.parametrize("model", MODELS)
def test_single_worker_collectives_are_local(model):
    results: dict[str, object] = {}

    def program(ctx):
        comm = make_comm(ctx, model, "tree", max_values=N_VALUES)
        mine = contribution(0)
        results["bcast"] = yield from comm.bcast(0, mine, N_VALUES)
        results["reduce"] = yield from comm.reduce(0, mine)
        results["allreduce"] = yield from comm.allreduce(mine)
        results["scatter"] = yield from comm.scatter(0, [mine], N_VALUES)
        results["gather"] = yield from comm.gather(0, mine)

    run_programs(config_for(1), program)
    mine = contribution(0)
    assert results["bcast"] == mine
    assert results["reduce"] == mine
    assert results["allreduce"] == mine
    assert results["scatter"] == mine
    assert results["gather"] == [mine]


def test_backends_agree_bit_for_bit():
    """Same algorithm, either backend: the identical result vector."""
    per_model = {
        model: run_collective("allreduce", model, "tree", 5)
        for model in MODELS
    }
    assert per_model["empi"][0] == per_model["pure_sm"][0]


# -- reference functions ------------------------------------------------------


def test_reference_tree_association_differs_from_linear():
    """FP addition is not associative; the references must track order."""
    contribs = [[0.1 * (r + 1) ** 3] for r in range(5)]
    linear = reference_reduce(contribs, 0, "sum", "linear")
    tree = reference_reduce(contribs, 0, "sum", "tree")
    # Same mathematical sum, not necessarily the same bits; the tree
    # association for 5 ranks is ((0+1)+(2+3))+4 vs (((0+1)+2)+3)+4.
    assert linear[0] == pytest.approx(tree[0])


def test_combine_values_rejects_length_mismatch():
    with pytest.raises(ConfigError):
        combine_values([1.0], [1.0, 2.0], "sum")


def test_enum_parsing():
    assert CollectiveAlgorithm.parse("TREE") is CollectiveAlgorithm.TREE
    assert CollectiveAlgorithm.parse("ring") is CollectiveAlgorithm.RING
    assert ReduceOp.parse("max") is ReduceOp.MAX
    assert CommModel.parse("pure_sm") is CommModel.PURE_SM
    with pytest.raises(ConfigError):
        CollectiveAlgorithm.parse("butterfly")
    with pytest.raises(ConfigError):
        ReduceOp.parse("prod")
    with pytest.raises(ConfigError):
        CommModel.parse("openmp")


# -- shared-memory plumbing ---------------------------------------------------


def test_sm_arena_footprint_and_slot_separation():
    captured: dict[str, object] = {}

    def program(ctx):
        comm = SharedMemoryCollectives(ctx, max_values=3)
        captured["footprint"] = comm.footprint
        captured["stride"] = comm.slot_stride
        return
        yield  # pragma: no cover - makes this a generator

    run_programs(config_for(2), program, program)
    # 3 doubles = 24 bytes -> 2 lines; barrier area is 32 bytes.
    assert captured["stride"] == 32
    assert captured["footprint"] == 32 + 2 * 32


def test_sm_arena_rejects_private_base():
    def program(ctx):
        with pytest.raises(ProgramError):
            SharedMemoryCollectives(ctx, base_addr=ctx.private_base)
        return
        yield  # pragma: no cover - makes this a generator

    run_programs(config_for(1), program)


def test_sm_channel_round_trip():
    received: dict[str, object] = {}
    payloads = [[1.5, -2.25], [3.0, 4.0], [-0.5, 0.125]]

    def producer(ctx):
        channel = SharedMemoryChannel(ctx, ctx.shared_base, 2)
        for payload in payloads:
            yield from channel.send(payload)

    def consumer(ctx):
        channel = SharedMemoryChannel(ctx, ctx.shared_base, 2)
        got = []
        for __ in payloads:
            values = yield from channel.recv(2)
            got.append(values)
        received["blocks"] = got

    run_programs(config_for(2), producer, consumer)
    assert received["blocks"] == payloads


def test_sm_channel_rejects_oversized_message():
    def program(ctx):
        channel = SharedMemoryChannel(ctx, ctx.shared_base, 2)
        with pytest.raises(ProgramError):
            yield from channel.send([1.0, 2.0, 3.0])

    run_programs(config_for(1), program)
