"""The non-blocking request layer: engine units and machine-level matrix.

Three layers of guarantees:

* engine mechanics — turn queues, posting order, overlap accounting —
  tested on synthetic fragments with no machine underneath;
* point-to-point isend/irecv on the machine, over both programming
  models, including ordered matching of concurrent receives from one
  peer and the mixing guard against blocking data-path ops;
* non-blocking collectives delivering bit-identical vectors to their
  blocking counterparts and the pure-python combine-order references.
"""

from __future__ import annotations

import pytest

from repro.empi.collectives import make_comm, reference_allreduce
from repro.empi.requests import (
    NOTE_OVERLAP_ENTER,
    NOTE_OVERLAP_EXIT,
    NOTE_REQUEST_DONE,
    NOTE_REQUEST_POST,
    RESCHEDULE,
    ProgressEngine,
    TurnQueue,
    mean_overlap_efficiency,
    overlap_stats,
)
from repro.errors import ProgramError
from repro.system.config import SystemConfig
from repro.system.medea import MedeaSystem


def drive(program, results=None):
    """Run a generator program inline, feeding scripted op results."""
    results = list(results or [])
    ops = []
    value = None
    while True:
        try:
            op = program.send(value)
        except StopIteration as stop:
            return ops, stop.value
        ops.append(op)
        value = results.pop(0) if results else None


# ---------------------------------------------------------------------------
# Engine units (no machine)
# ---------------------------------------------------------------------------


def test_turn_queue_is_fifo():
    queue = TurnQueue()
    a, b = object(), object()
    queue.enter(a)
    queue.enter(b)
    assert queue.holds(a) and not queue.holds(b)
    queue.leave(a)
    assert queue.holds(b)
    with pytest.raises(ProgramError):
        queue.leave(a)


def test_post_gives_an_eager_first_slice():
    engine = ProgressEngine()

    def frag():
        yield ("compute", 1)
        return "done"

    ops, request = drive(engine.post(frag(), "f"))
    # The fragment ran to completion inside post: note, op, note.
    assert request.complete and request.result == "done"
    # Notes carry the request label as payload, so trace exporters can
    # pair post/done spans; the overlap accounting keys on the marker.
    assert ops == [
        ("note", f"{NOTE_REQUEST_POST} f"), ("compute", 1),
        ("note", f"{NOTE_REQUEST_DONE} f"),
    ]
    assert engine.idle


def test_reschedule_parks_fragment_until_next_round():
    engine = ProgressEngine()
    steps = []

    def frag(name):
        steps.append(f"{name}:a")
        yield RESCHEDULE
        steps.append(f"{name}:b")
        return name

    __, first = drive(engine.post(frag("first"), "first"))
    __, second = drive(engine.post(frag("second"), "second"))
    assert not first.complete and not second.complete
    assert steps == ["first:a", "second:a"]
    drive(engine.progress())
    # One round finishes both, in posting order.
    assert steps == ["first:a", "second:a", "first:b", "second:b"]
    assert first.result == "first" and second.result == "second"


def test_wait_spins_progress_until_complete():
    engine = ProgressEngine()
    gate = {"open": False}

    def frag():
        while not gate["open"]:
            yield ("poll",)
            yield RESCHEDULE
        return 42

    __, request = drive(engine.post(frag(), "gated"))

    program = engine.wait(request)
    polls = 0
    value = None
    while True:
        try:
            op = program.send(value)
        except StopIteration as stop:
            assert stop.value == 42
            break
        if op == ("poll",):
            polls += 1
            if polls == 3:
                gate["open"] = True
        value = None
    assert polls == 3


def test_overlap_interleaves_progress_rounds():
    engine = ProgressEngine()
    order = []

    def frag():
        order.append("comm")
        yield RESCHEDULE
        order.append("comm")
        return None

    def compute():
        for __ in range(4):
            order.append("compute")
            yield ("compute", 5)

    drive(engine.post(frag(), "f"))
    ops, __ = drive(engine.overlap(compute(), poll_interval=2))
    assert order == ["comm", "compute", "compute", "comm", "compute",
                     "compute"]
    assert ops[0] == ("note", NOTE_OVERLAP_ENTER)
    assert ops[-1] == ("note", NOTE_OVERLAP_EXIT)


def test_overlap_stats_accounting():
    notes = [
        (10, 0, NOTE_REQUEST_POST),
        (20, 0, NOTE_OVERLAP_ENTER),
        (50, 0, NOTE_OVERLAP_EXIT),
        (60, 0, NOTE_REQUEST_DONE),
        (15, 1, "solve_start"),  # foreign labels are ignored
    ]
    per_rank = overlap_stats(notes, 2)
    assert per_rank[0].inflight_cycles == 50
    assert per_rank[0].overlap_region_cycles == 30
    assert per_rank[0].coexist_cycles == 30
    assert per_rank[0].efficiency == pytest.approx(0.6)
    assert per_rank[1].inflight_cycles == 0
    assert per_rank[1].efficiency == 0.0
    assert mean_overlap_efficiency(per_rank) == pytest.approx(0.6)


def test_waitany_returns_first_complete_in_list_order():
    engine = ProgressEngine()
    gates = {"a": False, "b": False}

    def frag(name):
        while not gates[name]:
            yield ("poll", name)
            yield RESCHEDULE
        return name.upper()

    __, req_a = drive(engine.post(frag("a"), "a"))
    __, req_b = drive(engine.post(frag("b"), "b"))

    program = engine.waitany([req_a, req_b])
    value = None
    polls = 0
    while True:
        try:
            op = program.send(value)
        except StopIteration as stop:
            index, result = stop.value
            break
        if op[0] == "poll":
            polls += 1
            if polls == 3:
                gates["b"] = True  # b completes first
        value = None
    assert (index, result) == (1, "B")
    assert not req_a.complete  # waitany does not wait for the rest


def test_waitany_on_already_complete_request_needs_no_progress():
    engine = ProgressEngine()

    def frag():
        return "done"
        yield  # pragma: no cover - makes this a generator

    __, request = drive(engine.post(frag(), "f"))
    assert request.complete
    ops, (index, result) = drive(engine.waitany([request]))
    assert (index, result) == (0, "done")
    assert ops == []  # completed without a progress round (like wait)


def test_waitany_rejects_empty_list():
    engine = ProgressEngine()
    with pytest.raises(ProgramError):
        drive(engine.waitany([]))


def test_waitsome_returns_all_currently_complete():
    engine = ProgressEngine()
    gates = {"a": False, "b": False, "c": False}

    def frag(name):
        while not gates[name]:
            yield ("poll", name)
            yield RESCHEDULE
        return name.upper()

    requests = [drive(engine.post(frag(n), n))[1] for n in ("a", "b", "c")]

    program = engine.waitsome(requests)
    value = None
    polls = 0
    while True:
        try:
            op = program.send(value)
        except StopIteration as stop:
            completed = stop.value
            break
        if op[0] == "poll":
            polls += 1
            if polls == 3:
                # Both gates open before the next round starts, so two
                # requests complete in one round; both must be reported.
                gates["a"] = True
                gates["c"] = True
        value = None
    assert completed == [(0, "A"), (2, "C")]
    assert not requests[1].complete


def test_waitsome_empty_list_returns_immediately():
    engine = ProgressEngine()
    ops, completed = drive(engine.waitsome([]))
    assert completed == [] and ops == []


@pytest.mark.parametrize("model", ["empi", "pure_sm"])
def test_waitany_waitsome_on_the_machine(model):
    """waitany picks whichever receive lands first; waitsome then
    drains the rest — mirroring waitall's semantics per request."""
    observed = {}

    def listener(ctx):
        comm = make_comm(ctx, model, max_values=1, p2p_values=1)
        yield from comm.barrier()
        slow = yield from comm.irecv(1, 1)
        fast = yield from comm.irecv(2, 1)
        index, result = yield from comm.waitany([slow, fast])
        observed["first"] = (index, result)
        # The fast receive is already complete, so waitsome reports it
        # immediately without blocking on the slow one...
        observed["some"] = yield from comm.waitsome([slow, fast])
        # ...and waitsome over the still-pending one progresses until it
        # lands.
        observed["rest"] = yield from comm.waitsome([slow])
        yield from comm.barrier()

    def fast_peer(ctx):
        comm = make_comm(ctx, model, max_values=1, p2p_values=1)
        yield from comm.barrier()
        request = yield from comm.isend(0, [2.5])
        yield from comm.wait(request)
        yield from comm.barrier()

    def slow_peer(ctx):
        comm = make_comm(ctx, model, max_values=1, p2p_values=1)
        yield from comm.barrier()
        yield ("compute", 800)
        request = yield from comm.isend(0, [1.5])
        yield from comm.wait(request)
        yield from comm.barrier()

    run_system([listener, slow_peer, fast_peer], 3)
    assert observed["first"] == (1, [2.5])  # the fast peer won
    assert observed["some"] == [(1, [2.5])]
    assert observed["rest"] == [(0, [1.5])]


# ---------------------------------------------------------------------------
# Machine-level point-to-point
# ---------------------------------------------------------------------------


def run_system(factories, n_workers, **config_overrides):
    config = SystemConfig(n_workers=n_workers, **config_overrides)
    system = MedeaSystem(config)
    system.load_programs(factories)
    cycles = system.run(max_cycles=5_000_000)
    return system, cycles


@pytest.mark.parametrize("model", ["empi", "pure_sm"])
def test_isend_irecv_ring(model):
    n_workers = 4
    results = {}

    def factory(rank):
        def program(ctx):
            comm = make_comm(ctx, model, max_values=2, p2p_values=2)
            yield from comm.barrier()
            send = yield from comm.isend(
                (rank + 1) % n_workers, [float(rank), rank + 0.5]
            )
            recv = yield from comm.irecv((rank - 1) % n_workers, 2)
            got = yield from comm.wait(recv)
            yield from comm.wait(send)
            results[rank] = got
            yield from comm.barrier()
        return program

    run_system([factory(r) for r in range(n_workers)], n_workers)
    for rank in range(n_workers):
        peer = (rank - 1) % n_workers
        assert results[rank] == [float(peer), peer + 0.5]


@pytest.mark.parametrize("model", ["empi", "pure_sm"])
def test_concurrent_irecvs_match_in_posting_order(model):
    """Two outstanding receives from one peer must not steal each
    other's payload: first posted gets the first message."""
    results = {}

    def sender(ctx):
        comm = make_comm(ctx, model, max_values=2, p2p_values=2)
        yield from comm.barrier()
        first = yield from comm.isend(1, [1.0, 2.0])
        second = yield from comm.isend(1, [3.0, 4.0])
        yield from comm.waitall([first, second])
        yield from comm.barrier()

    def receiver(ctx):
        comm = make_comm(ctx, model, max_values=2, p2p_values=2)
        yield from comm.barrier()
        req_a = yield from comm.irecv(0, 2)
        req_b = yield from comm.irecv(0, 2)
        # Wait in reverse order: completion order must still follow
        # posting order.
        got_b = yield from comm.wait(req_b)
        got_a = yield from comm.wait(req_a)
        results["a"] = got_a
        results["b"] = got_b
        yield from comm.barrier()

    run_system([sender, receiver], 2)
    assert results["a"] == [1.0, 2.0]
    assert results["b"] == [3.0, 4.0]


@pytest.mark.parametrize("model", ["empi", "pure_sm"])
def test_blocking_ops_refused_with_outstanding_requests(model):
    """Both backends must refuse blocking data-path (and, for SM, even
    barrier) calls while requests are in flight, not corrupt streams."""
    failures = {}

    def left(ctx):
        comm = make_comm(ctx, model, max_values=1, p2p_values=1)
        yield from comm.barrier()
        request = yield from comm.irecv(1, 1)
        try:
            yield from comm.send(1, [9.0])
        except ProgramError:
            failures["send_raised"] = True
        if model == "pure_sm":
            try:
                yield from comm.barrier()
            except ProgramError:
                failures["barrier_raised"] = True
        __ = yield from comm.wait(request)
        yield from comm.barrier()

    def right(ctx):
        comm = make_comm(ctx, model, max_values=1, p2p_values=1)
        yield from comm.barrier()
        send = yield from comm.isend(0, [7.0])
        yield from comm.wait(send)
        yield from comm.barrier()

    run_system([left, right], 2)
    assert failures.get("send_raised")
    if model == "pure_sm":
        assert failures.get("barrier_raised")


@pytest.mark.parametrize("model", ["empi", "pure_sm"])
def test_test_polls_without_blocking(model):
    observed = {}

    def early(ctx):
        comm = make_comm(ctx, model, max_values=1, p2p_values=1)
        yield from comm.barrier()
        request = yield from comm.irecv(1, 1)
        # The peer sends only after a long delay: the first test()
        # cannot find data.
        first_test = yield from comm.test(request)
        observed["first"] = first_test
        while not (yield from comm.test(request)):
            yield ("compute", 16)
        observed["value"] = request.result
        yield from comm.barrier()

    def late(ctx):
        comm = make_comm(ctx, model, max_values=1, p2p_values=1)
        yield from comm.barrier()
        yield ("compute", 600)
        send = yield from comm.isend(0, [5.5])
        yield from comm.wait(send)
        yield from comm.barrier()

    run_system([early, late], 2)
    assert observed["first"] is False
    assert observed["value"] == [5.5]


# ---------------------------------------------------------------------------
# Non-blocking collectives: bit-identity across modes and backends
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("model", ["empi", "pure_sm"])
@pytest.mark.parametrize("algorithm", ["linear", "tree"])
def test_iallreduce_matches_blocking_and_reference(model, algorithm):
    n_workers = 4
    n_values = 3
    nonblocking = {}
    blocking = {}

    def factory(rank):
        def program(ctx):
            comm = make_comm(
                ctx, model, algorithm, max_values=n_values, p2p_values=1
            )
            mine = [rank + 0.125 * i for i in range(n_values)]
            yield from comm.barrier()
            request = yield from comm.iallreduce(mine)
            result = yield from comm.wait(request)
            nonblocking[rank] = result
            yield from comm.barrier()
            result = yield from comm.allreduce(mine)
            blocking[rank] = result
            yield from comm.barrier()
        return program

    run_system([factory(r) for r in range(n_workers)], n_workers)
    contributions = [
        [rank + 0.125 * i for i in range(n_values)]
        for rank in range(n_workers)
    ]
    expected = reference_allreduce(contributions, "sum", algorithm)
    for rank in range(n_workers):
        assert nonblocking[rank] == expected
        assert blocking[rank] == expected


@pytest.mark.parametrize("model", ["empi", "pure_sm"])
def test_ibcast_and_ireduce_roots(model):
    n_workers = 3
    root = 1
    bcast_out = {}
    reduce_out = {}

    def factory(rank):
        def program(ctx):
            comm = make_comm(ctx, model, "linear", max_values=2, p2p_values=1)
            yield from comm.barrier()
            payload = [3.5, -1.25] if rank == root else None
            request = yield from comm.ibcast(root, payload, 2)
            bcast_out[rank] = yield from comm.wait(request)
            request = yield from comm.ireduce(root, [float(rank), 1.0])
            reduce_out[rank] = yield from comm.wait(request)
            yield from comm.barrier()
        return program

    run_system([factory(r) for r in range(n_workers)], n_workers)
    for rank in range(n_workers):
        assert bcast_out[rank] == [3.5, -1.25]
    assert reduce_out[root] == [0.0 + 1.0 + 2.0, 3.0]
    for rank in range(n_workers):
        if rank != root:
            assert reduce_out[rank] is None


@pytest.mark.parametrize("model", ["empi", "pure_sm"])
def test_queued_nonblocking_collectives_complete_in_order(model):
    """Two iallreduces posted back to back: the collective turn keeps
    their messages apart and both deliver reference bits."""
    n_workers = 3
    outputs = {}

    def factory(rank):
        def program(ctx):
            comm = make_comm(ctx, model, "tree", max_values=1, p2p_values=1)
            yield from comm.barrier()
            first = yield from comm.iallreduce([float(rank)])
            second = yield from comm.iallreduce([rank * 10.0])
            outputs[rank] = (
                (yield from comm.wait(first)),
                (yield from comm.wait(second)),
            )
            yield from comm.barrier()
        return program

    run_system([factory(r) for r in range(n_workers)], n_workers)
    expected_first = reference_allreduce(
        [[float(r)] for r in range(n_workers)], "sum", "tree"
    )
    expected_second = reference_allreduce(
        [[r * 10.0] for r in range(n_workers)], "sum", "tree"
    )
    for rank in range(n_workers):
        assert outputs[rank] == (expected_first, expected_second)
