"""The ``hw`` collective algorithm: offloaded bcast/allreduce.

Guarantees under test:

* bit-identity — hw collectives deliver exactly the software tree's
  bits (same combine order), on every rank, blocking and non-blocking,
  in multicast mode and in the unicast-fallback mode;
* the acceptance criterion — on the reference 8-worker mesh, hardware
  bcast and allreduce complete in strictly fewer cycles than the
  binomial-tree software collectives at equal payload;
* opt-in-ness — the hw algorithm refuses to run without the engine,
  and the SM backend refuses it outright;
* determinism — double runs of the hw workload are bit-identical,
  stats and all.
"""

from __future__ import annotations

import pytest

from repro.apps.collective_bench import (
    CollectiveBenchParams,
    run_collective_bench,
)
from repro.empi.collectives import (
    CollectiveAlgorithm,
    make_comm,
    reference_allreduce,
)
from repro.errors import ConfigError, ProgramError
from repro.system.config import SystemConfig
from repro.system.medea import MedeaSystem


def run_system(factories, n_workers, **overrides):
    config = SystemConfig(n_workers=n_workers, **overrides)
    system = MedeaSystem(config)
    system.load_programs(factories)
    cycles = system.run(max_cycles=5_000_000)
    return system, cycles


def hw_config(n_workers=8, **overrides):
    return dict(dma_tx_queue_depth=4, **overrides)


def test_combine_order_of_hw_is_tree():
    assert CollectiveAlgorithm.HW.combine_order() is CollectiveAlgorithm.TREE
    assert CollectiveAlgorithm.parse("hw") is CollectiveAlgorithm.HW


@pytest.mark.parametrize("noc_multicast", [True, False])
@pytest.mark.parametrize("root", [0, 2])
def test_hw_bcast_delivers_root_payload(root, noc_multicast):
    n_workers = 4
    payload = [1.5, -2.25, 3.0]
    out = {}

    def factory(rank):
        def program(ctx):
            comm = make_comm(ctx, "empi", "hw", max_values=3)
            yield from comm.barrier()
            values = payload if rank == root else None
            out[rank] = yield from comm.bcast(root, values, len(payload))
            yield from comm.barrier()
        return program

    run_system([factory(r) for r in range(n_workers)], n_workers,
               **hw_config(noc_multicast=noc_multicast))
    for rank in range(n_workers):
        assert out[rank] == payload


@pytest.mark.parametrize("noc_multicast", [True, False])
def test_hw_allreduce_is_bit_identical_to_tree(noc_multicast):
    n_workers = 8
    n_values = 5
    hw_out = {}
    tree_out = {}

    def factory(rank):
        def program(ctx):
            hw = make_comm(ctx, "empi", "hw", max_values=n_values)
            tree = make_comm(ctx, "empi", "tree", max_values=n_values)
            mine = [rank + 0.375 * i for i in range(n_values)]
            yield from hw.barrier()
            hw_out[rank] = yield from hw.allreduce(mine)
            yield from hw.barrier()
            tree_out[rank] = yield from tree.allreduce(mine)
            yield from hw.barrier()
        return program

    run_system([factory(r) for r in range(n_workers)], n_workers,
               **hw_config(noc_multicast=noc_multicast))
    contributions = [
        [rank + 0.375 * i for i in range(n_values)]
        for rank in range(n_workers)
    ]
    expected = reference_allreduce(contributions, "sum", "tree")
    assert reference_allreduce(contributions, "sum", "hw") == expected
    for rank in range(n_workers):
        assert hw_out[rank] == expected
        assert tree_out[rank] == expected


def test_hw_ibcast_matches_blocking():
    n_workers = 4
    n_values = 4
    out = {}

    def factory(rank):
        def program(ctx):
            comm = make_comm(ctx, "empi", "hw", max_values=n_values)
            payload = [7.5 - i for i in range(n_values)] if rank == 0 else None
            yield from comm.barrier()
            request = yield from comm.ibcast(0, payload, n_values)

            def compute_frag():
                for __ in range(4):
                    yield ("compute", 10)

            # Compute while the multicast streams underneath.
            yield from comm.overlap(compute_frag())
            out[rank] = yield from comm.wait(request)
            yield from comm.barrier()
        return program

    run_system([factory(r) for r in range(n_workers)], n_workers,
               **hw_config())
    expected = [7.5 - i for i in range(n_values)]
    for rank in range(n_workers):
        assert out[rank] == expected


def test_hw_iallreduce_matches_reference():
    n_workers = 4
    out = {}

    def factory(rank):
        def program(ctx):
            comm = make_comm(ctx, "empi", "hw", max_values=2)
            yield from comm.barrier()
            request = yield from comm.iallreduce([float(rank), 1.0])
            out[rank] = yield from comm.wait(request)
            yield from comm.barrier()
        return program

    run_system([factory(r) for r in range(n_workers)], n_workers,
               **hw_config())
    expected = reference_allreduce(
        [[float(r), 1.0] for r in range(n_workers)], "sum", "tree"
    )
    for rank in range(n_workers):
        assert out[rank] == expected


def test_hw_refused_without_engine():
    def program(ctx):
        comm = make_comm(ctx, "empi", "hw", max_values=1)
        yield from comm.bcast(0, [1.0], 1)

    with pytest.raises(ProgramError, match="dma_tx_queue_depth"):
        run_system([program, lambda ctx: iter(())], 2)


def test_hw_refused_on_shared_memory_model():
    config = SystemConfig(n_workers=2, dma_tx_queue_depth=4)
    system = MedeaSystem(config)
    ctx = system.context_for(0)
    with pytest.raises(ConfigError, match="empi"):
        make_comm(ctx, "pure_sm", "hw")


def test_guard_names_rank_op_and_outstanding_requests():
    seen = {}

    def left(ctx):
        comm = make_comm(ctx, "empi", max_values=1)
        yield from comm.barrier()
        request = yield from comm.irecv(1, 1)
        try:
            yield from comm.send(1, [9.0])
        except ProgramError as err:
            seen["message"] = str(err)
        __ = yield from comm.wait(request)
        yield from comm.barrier()

    def right(ctx):
        comm = make_comm(ctx, "empi", max_values=1)
        yield from comm.barrier()
        send = yield from comm.isend(0, [7.0])
        yield from comm.wait(send)
        yield from comm.barrier()

    run_system([left, right], 2)
    message = seen["message"]
    assert "rank 0" in message          # the offending rank
    assert "blocking send" in message   # the offending op
    assert "irecv<-1" in message        # the outstanding request's label


def test_hw_allreduce_then_bcast_from_nonzero_root_regroups():
    """Mixed hw collectives change each tile's multicast group: rank 1
    first multicasts its reduce accumulator to its parent (group = one
    node), then roots a broadcast (group = everyone else) — exercising
    group re-registration inside real collectives."""
    n_workers = 4
    n_values = 5
    payload = [9.0, 8.0, 7.0, 6.0, 5.0]
    out = {}

    def factory(rank):
        def program(ctx):
            comm = make_comm(ctx, "empi", "hw", max_values=n_values)
            yield from comm.barrier()
            first = yield from comm.allreduce([float(rank)] * n_values)
            yield from comm.barrier()
            values = payload if rank == 1 else None
            second = yield from comm.bcast(1, values, n_values)
            out[rank] = (first, second)
            yield from comm.barrier()
        return program

    system, __ = run_system([factory(r) for r in range(n_workers)],
                            n_workers, **hw_config(n_workers=4))
    expected = reference_allreduce(
        [[float(r)] * n_values for r in range(n_workers)], "sum", "tree"
    )
    for rank in range(n_workers):
        assert out[rank] == (expected, payload)
    # Rank 1's engine really did rewrite its group register.
    assert system.nodes[1].dma.stats.as_dict()["group_reregisters"] == 1


@pytest.mark.parametrize("algorithm", ["tree", "hw", "ring"])
def test_guard_names_the_algorithm_in_use(algorithm):
    """Mixed-algorithm apps get actionable messages: the outstanding-
    request guard names the algorithm of the blocking collective AND the
    posted request's label carries its own algorithm."""
    seen = {}

    def left(ctx):
        comm = make_comm(ctx, "empi", algorithm, max_values=2)
        yield from comm.barrier()
        request = yield from comm.iallreduce([1.0, float(ctx.rank)])
        try:
            yield from comm.allreduce([2.0, 2.0])
        except ProgramError as err:
            seen["message"] = str(err)
        __ = yield from comm.wait(request)
        yield from comm.barrier()

    def right(ctx):
        comm = make_comm(ctx, "empi", algorithm, max_values=2)
        yield from comm.barrier()
        request = yield from comm.iallreduce([1.0, float(ctx.rank)])
        __ = yield from comm.wait(request)
        yield from comm.barrier()

    run_system([left, right], 2, **hw_config(n_workers=2))
    message = seen["message"]
    assert f"blocking allreduce[{algorithm}]" in message
    assert f"iallreduce[{algorithm}]" in message  # the request's label


@pytest.mark.parametrize("algorithm", ["tree", "ring"])
def test_sm_guard_names_the_algorithm_in_use(algorithm):
    # Backend parity: the shared-memory guard carries the same shape
    # and names the op the caller issued, not an inner leg.
    seen = {}

    def left(ctx):
        comm = make_comm(ctx, "pure_sm", algorithm, max_values=2)
        yield from comm.barrier()
        request = yield from comm.iallreduce([1.0, float(ctx.rank)])
        try:
            yield from comm.allreduce([2.0, 2.0])
        except ProgramError as err:
            seen["message"] = str(err)
        __ = yield from comm.wait(request)
        yield from comm.barrier()

    def right(ctx):
        comm = make_comm(ctx, "pure_sm", algorithm, max_values=2)
        yield from comm.barrier()
        request = yield from comm.iallreduce([1.0, float(ctx.rank)])
        __ = yield from comm.wait(request)
        yield from comm.barrier()

    run_system([left, right], 2)
    message = seen["message"]
    assert f"blocking allreduce[{algorithm}]" in message
    assert f"iallreduce[{algorithm}]" in message


def test_hw_engine_error_names_the_operation():
    def program(ctx):
        comm = make_comm(ctx, "empi", "hw", max_values=1)
        yield from comm.reduce(0, [1.0])

    with pytest.raises(ProgramError, match=r"\(reduce\).*dma_tx_queue_depth"):
        run_system([program, lambda ctx: iter(())], 2)


# ---------------------------------------------------------------------------
# Acceptance: hw strictly beats the software binomial tree at 8 workers
# ---------------------------------------------------------------------------


def bench(collective, algorithm, **overrides):
    config = SystemConfig(n_workers=8, cache_size_kb=16, **overrides)
    result = run_collective_bench(
        config,
        CollectiveBenchParams(
            collective=collective, model="empi", algorithm=algorithm,
            n_values=16, repeats=4,
        ),
    )
    assert result.validated
    return result


@pytest.mark.parametrize("collective", ["bcast", "allreduce"])
def test_hw_strictly_beats_tree_on_reference_mesh(collective):
    tree = bench(collective, "tree")
    hw = bench(collective, "hw", dma_tx_queue_depth=4)
    assert hw.op_cycles < tree.op_cycles, (
        f"{collective}: hw took {hw.op_cycles} cycles vs tree's "
        f"{tree.op_cycles} at equal payload"
    )


def test_hw_workload_double_run_is_bit_identical():
    first = bench("bcast", "hw", dma_tx_queue_depth=4)
    second = bench("bcast", "hw", dma_tx_queue_depth=4)
    assert first.total_cycles == second.total_cycles
    assert first.op_cycles == second.op_cycles
    assert first.stats["noc"] == second.stats["noc"]
    assert first.stats["workers"] == second.stats["workers"]
