"""Ring allreduce + the engine's reduction assist (``qreduce``).

Guarantees under test:

* bit-identity — the ring schedule delivers exactly the bits of
  :func:`reference_allreduce` under the ``ring`` algorithm, on every
  rank, over the empi software path, the engine path (neighbour
  multicast descriptors + accumulate-on-receive) and the pure-SM slot
  arena, blocking and non-blocking — including non-power-of-two meshes
  (3w, 15w), vector lengths not divisible by the rank count, and
  vectors shorter than the ring (empty segments);
* cross-algorithm bit-identity — under MAX (combine-order-insensitive)
  ring, tree and hw agree exactly; under SUM the ring order is its own
  reference, distinct from the tree's;
* the reduction assist — ``hw`` allreduce with ``dma_reduce_assist``
  stays bit-identical to ``tree`` while combining at the engine;
* determinism — double runs of the qreduce-backed workloads are
  bit-identical, stats and all;
* the acceptance criterion — at 8 workers / 256 doubles the new paths
  (software ring, hw with the reduction assist, and hw ring) all beat
  both the software tree and the PR-4 engine (assist off).
"""

from __future__ import annotations

import pytest

from repro.apps.collective_bench import (
    CollectiveBenchParams,
    run_collective_bench,
)
from repro.empi.collectives import (
    make_comm,
    reference_allreduce,
    ring_segments,
)
from repro.errors import ConfigError
from repro.system.config import SystemConfig
from repro.system.medea import MedeaSystem


def run_system(factories, n_workers, **overrides):
    config = SystemConfig(n_workers=n_workers, **overrides)
    system = MedeaSystem(config)
    system.load_programs(factories)
    cycles = system.run(max_cycles=20_000_000)
    return system, cycles


def contributions(n_workers, n_values):
    return [
        [(-1.0) ** r * (r + 1) + 0.375 * i for i in range(n_values)]
        for r in range(n_workers)
    ]


def test_ring_segments_partition():
    assert ring_segments(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]
    assert ring_segments(7, 3) == [(0, 3), (3, 5), (5, 7)]
    assert ring_segments(2, 4) == [(0, 1), (1, 2), (2, 2), (2, 2)]
    assert ring_segments(0, 2) == [(0, 0), (0, 0)]
    with pytest.raises(ConfigError):
        ring_segments(4, 0)


def test_ring_reference_is_its_own_combine_order():
    # Mixed magnitudes make FP addition order-sensitive: the ring and
    # tree orders genuinely differ, so bit-identity below is a real
    # statement about replicating the machine's order, not a tautology.
    magnitudes = [1e16, 1.0, -1e16, 1.0, 3.0]
    contribs = [[m + 0.5 * i for i in range(7)] for m in magnitudes]
    ring = reference_allreduce(contribs, "sum", "ring")
    tree = reference_allreduce(contribs, "sum", "tree")
    assert ring == pytest.approx(tree, rel=1e-6, abs=10.0)
    assert ring != tree


def _run_allreduce(n_workers, n_values, model, algorithm, op="sum",
                   blocking=True, **overrides):
    out = {}
    contribs = contributions(n_workers, n_values)

    def factory(rank):
        def program(ctx):
            comm = make_comm(
                ctx, model, algorithm,
                max_values=max(n_values, 1), p2p_values=0,
            )
            yield from comm.barrier()
            if blocking:
                out[rank] = yield from comm.allreduce(contribs[rank], op)
            else:
                request = yield from comm.iallreduce(contribs[rank], op)
                out[rank] = yield from comm.wait(request)
            yield from comm.barrier()
        return program

    run_system([factory(r) for r in range(n_workers)], n_workers, **overrides)
    return out, contribs


@pytest.mark.parametrize("n_workers,n_values", [
    (3, 8),    # non-power-of-two mesh, length not divisible by P
    (3, 2),    # vector shorter than the ring: empty segments
    (4, 7),    # segment sizes 2/2/2/1
    (8, 16),
])
@pytest.mark.parametrize("model,overrides", [
    ("empi", {}),
    ("empi", {"dma_tx_queue_depth": 4}),
    ("pure_sm", {}),
])
def test_ring_allreduce_matches_reference(n_workers, n_values, model,
                                          overrides):
    out, contribs = _run_allreduce(
        n_workers, n_values, model, "ring", **overrides
    )
    expected = reference_allreduce(contribs, "sum", "ring")
    for rank in range(n_workers):
        assert out[rank] == expected


def test_ring_allreduce_on_15w_mesh_non_divisible_length():
    n_workers, n_values = 15, 37  # 37 = 15*2 + 7: segments of 3 and 2
    out, contribs = _run_allreduce(n_workers, n_values, "empi", "ring")
    expected = reference_allreduce(contribs, "sum", "ring")
    for rank in range(n_workers):
        assert out[rank] == expected


@pytest.mark.parametrize("model,overrides", [
    ("empi", {}),
    ("empi", {"dma_tx_queue_depth": 4}),
    ("pure_sm", {}),
])
def test_nonblocking_ring_matches_blocking(model, overrides):
    n_workers, n_values = 4, 10
    blocking, contribs = _run_allreduce(
        n_workers, n_values, model, "ring", **overrides
    )
    nonblocking, __ = _run_allreduce(
        n_workers, n_values, model, "ring", blocking=False, **overrides
    )
    expected = reference_allreduce(contribs, "sum", "ring")
    for rank in range(n_workers):
        assert blocking[rank] == expected
        assert nonblocking[rank] == expected


def test_ring_equals_tree_and_hw_under_max():
    # MAX is insensitive to the combine order, so all three algorithms
    # must agree bit for bit — the cross-algorithm identity the ISSUE's
    # "vs tree" clause pins without pretending SUM associates.
    n_workers, n_values = 6, 9
    results = {}
    for algorithm, overrides in (
        ("ring", {}),
        ("tree", {}),
        ("hw", {"dma_tx_queue_depth": 4}),
        ("ring", {"dma_tx_queue_depth": 4}),
    ):
        out, contribs = _run_allreduce(
            n_workers, n_values, "empi", algorithm, op="max", **overrides
        )
        results[(algorithm, bool(overrides))] = out
    expected = reference_allreduce(contribs, "max", "tree")
    assert reference_allreduce(contribs, "max", "ring") == expected
    for out in results.values():
        for rank in range(n_workers):
            assert out[rank] == expected


def test_hw_assist_allreduce_is_bit_identical_to_tree():
    n_workers, n_values = 8, 11
    out, contribs = _run_allreduce(
        n_workers, n_values, "empi", "hw", dma_tx_queue_depth=4
    )
    expected = reference_allreduce(contribs, "sum", "tree")
    for rank in range(n_workers):
        assert out[rank] == expected


def test_rooted_collectives_under_ring_run_the_tree():
    # reduce/bcast with the ring algorithm fall back to the binomial
    # tree (ring is an allreduce schedule); the reference does the same.
    n_workers, n_values = 4, 6
    contribs = contributions(n_workers, n_values)
    out = {}

    def factory(rank):
        def program(ctx):
            comm = make_comm(ctx, "empi", "ring", max_values=n_values)
            yield from comm.barrier()
            reduced = yield from comm.reduce(1, contribs[rank])
            payload = contribs[0] if rank == 0 else None
            bcast = yield from comm.bcast(0, payload, n_values)
            out[rank] = (reduced, bcast)
            yield from comm.barrier()
        return program

    run_system([factory(r) for r in range(n_workers)], n_workers)
    from repro.empi.collectives import reference_reduce

    expected = reference_reduce(contribs, 1, "sum", "tree")
    assert reference_reduce(contribs, 1, "sum", "ring") == expected
    for rank in range(n_workers):
        reduced, bcast = out[rank]
        assert reduced == (expected if rank == 1 else None)
        assert bcast == contribs[0]


# ---------------------------------------------------------------------------
# Determinism and acceptance
# ---------------------------------------------------------------------------


def bench(algorithm, n_values, repeats=2, **overrides):
    config = SystemConfig(n_workers=8, cache_size_kb=16, **overrides)
    result = run_collective_bench(
        config,
        CollectiveBenchParams(
            collective="allreduce", model="empi", algorithm=algorithm,
            n_values=n_values, repeats=repeats,
        ),
    )
    assert result.validated
    return result


@pytest.mark.parametrize("algorithm,overrides", [
    ("hw", {"dma_tx_queue_depth": 4}),     # qreduce in the binomial tree
    ("ring", {"dma_tx_queue_depth": 4}),   # qreduce around the ring
])
def test_qreduce_workload_double_run_is_bit_identical(algorithm, overrides):
    first = bench(algorithm, 32, **overrides)
    second = bench(algorithm, 32, **overrides)
    assert first.total_cycles == second.total_cycles
    assert first.op_cycles == second.op_cycles
    assert first.stats["noc"] == second.stats["noc"]
    assert first.stats["workers"] == second.stats["workers"]


def test_long_vector_allreduce_beats_tree_and_pr4_hw():
    """The ISSUE's acceptance pin: at 8w / 256 doubles every new path —
    software ring, hw with the reduction assist, hw ring — strictly
    beats both the software tree and PR 4's engine (assist off)."""
    n_values = 256
    tree = bench("tree", n_values).op_cycles
    pr4_hw = bench(
        "hw", n_values, dma_tx_queue_depth=4, dma_reduce_assist=False
    ).op_cycles
    ring_sw = bench("ring", n_values).op_cycles
    hw_assist = bench("hw", n_values, dma_tx_queue_depth=4).op_cycles
    ring_hw = bench("ring", n_values, dma_tx_queue_depth=4).op_cycles
    baseline = min(tree, pr4_hw)
    for name, cycles in (
        ("ring", ring_sw), ("hw+assist", hw_assist), ("ring+hw", ring_hw),
    ):
        assert cycles < baseline, (
            f"allreduce/{name} took {cycles} cycles vs tree {tree} / "
            f"PR-4 hw {pr4_hw} at 8w x {n_values} doubles"
        )
    # The assist itself (same hw algorithm, same combine order) must be
    # a strict win over the PR-4 engine.
    assert hw_assist < pr4_hw


def test_assist_off_reproduces_pr4_engine_behaviour():
    # With dma_reduce_assist=False the hw algorithm must still validate
    # (tree combine order through processor ops) — the sw-reduce
    # baseline the DSE crossover table carries as 'hw-na'.
    result = bench("hw", 16, dma_tx_queue_depth=4, dma_reduce_assist=False)
    assert result.validated
    stats = result.stats["workers"]
    assert all(w["dma"].get("reduce_descriptors", 0) == 0 for w in stats)


def test_qreduce_engine_stats_are_reported():
    result = bench("hw", 16, dma_tx_queue_depth=4)
    stats = result.stats["workers"]
    # Rank 0 is the reduce root: it combines at least one child stream.
    assert stats[0]["dma"]["reduce_descriptors"] >= 1
    assert stats[0]["dma"]["values_reduced"] >= 16
