"""Shared-memory synchronization (pure-SM toolbox)."""

from __future__ import annotations

import pytest

from repro.empi.smsync import SharedMemoryBarrier, SharedMemoryLock
from repro.errors import ProgramError
from repro.mem.memory_map import MemoryMap
from repro.pe.costmodel import FpCostModel
from repro.pe.program import ProgramContext
from repro.system.config import SystemConfig
from tests.conftest import run_programs


def make_ctx() -> ProgramContext:
    return ProgramContext(
        rank=0, n_workers=2, node_id=1,
        memory_map=MemoryMap(2), cost=FpCostModel(),
        rank_to_node={0: 1, 1: 2},
    )


def test_lock_requires_shared_address():
    ctx = make_ctx()
    with pytest.raises(ProgramError):
        SharedMemoryLock(ctx, ctx.map.private_base(0))


def test_barrier_requires_shared_address():
    ctx = make_ctx()
    with pytest.raises(ProgramError):
        SharedMemoryBarrier(ctx, ctx.map.private_base(0))


def test_sm_lock_mutual_exclusion():
    order = []

    def program(ctx):
        lock = SharedMemoryLock(ctx, ctx.shared_base + 32)
        yield from ctx.empi.barrier()
        yield from lock.acquire()
        order.append(("in", ctx.rank))
        yield ("compute", 100)
        order.append(("out", ctx.rank))
        yield from lock.release()

    run_programs(SystemConfig(n_workers=2, cache_size_kb=2),
                 program, program)
    assert [kind for kind, __ in order] == ["in", "out", "in", "out"]


@pytest.mark.parametrize("n_workers", [2, 4])
def test_sm_barrier_synchronizes(n_workers):
    events = []

    def make_program(stagger):
        def program(ctx):
            barrier = SharedMemoryBarrier(ctx, ctx.shared_base)
            for round_index in range(2):
                yield ("compute", 1 + stagger * 53)
                events.append(("enter", round_index, ctx.rank))
                yield from barrier.wait()
                events.append(("leave", round_index, ctx.rank))
        return program

    run_programs(SystemConfig(n_workers=n_workers, cache_size_kb=2),
                 *[make_program(rank) for rank in range(n_workers)])
    for round_index in range(2):
        enters = [i for i, e in enumerate(events)
                  if e[0] == "enter" and e[1] == round_index]
        leaves = [i for i, e in enumerate(events)
                  if e[0] == "leave" and e[1] == round_index]
        assert max(enters) < min(leaves)


def test_sm_barrier_single_worker():
    def program(ctx):
        barrier = SharedMemoryBarrier(ctx, ctx.shared_base, n_workers=1)
        yield from barrier.wait()
        yield ctx.note("past")

    system = run_programs(SystemConfig(n_workers=1, cache_size_kb=2), program)
    assert any(label == "past" for __, __, label in system.notes)


def test_sm_barrier_generates_mpmmu_traffic():
    """The point of the experiment: SM sync hammers the memory node."""
    def program(ctx):
        barrier = SharedMemoryBarrier(ctx, ctx.shared_base)
        yield from barrier.wait()

    system = run_programs(SystemConfig(n_workers=3, cache_size_kb=2),
                          program, program, program)
    stats = system.mpmmu.stats
    assert stats["served_lock"] >= 3
    assert stats["served_unlock"] == 3
    assert stats["served_single_read"] >= 3  # counter reads + flag polls
    # And zero message traffic anywhere.
    for node in system.nodes:
        assert node.tie.stats.get("data_flits_sent", 0) == 0
        assert node.tie.stats.get("requests_sent", 0) == 0
