"""L1 cache state model: lookup, refill, eviction, DHWB/DII, policies."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.l1 import L1Cache, WritePolicy
from repro.errors import ConfigError, MemoryAccessError


def make_cache(size=1024, assoc=2, policy="wb") -> L1Cache:
    return L1Cache(size, line_bytes=16, assoc=assoc, policy=policy)


def test_geometry():
    cache = make_cache(size=2048, assoc=2)
    assert cache.words_per_line == 4
    assert cache.n_sets == 2048 // 16 // 2


def test_initial_lookup_misses():
    cache = make_cache()
    assert cache.lookup(0x100) is None
    assert cache.stats["read_misses"] == 1


def test_install_then_hit():
    cache = make_cache()
    cache.install(0x100, [1, 2, 3, 4])
    line = cache.lookup(0x100)
    assert line is not None
    assert cache.read_word(0x104) == 2
    assert cache.stats["read_hits"] == 1


def test_line_addr_masks_offset():
    cache = make_cache()
    assert cache.line_addr(0x123) == 0x120


def test_write_word_sets_dirty():
    cache = make_cache()
    cache.install(0x40, [0, 0, 0, 0])
    cache.write_word(0x44, 7)
    line = cache.probe(0x40)
    assert line is not None and line.dirty
    assert cache.read_word(0x44) == 7


def test_write_word_clean_option():
    cache = make_cache()
    cache.install(0x40, [0, 0, 0, 0])
    cache.write_word(0x44, 7, mark_dirty=False)
    line = cache.probe(0x40)
    assert line is not None and not line.dirty


def test_read_write_absent_line_rejected():
    cache = make_cache()
    with pytest.raises(MemoryAccessError):
        cache.read_word(0x40)
    with pytest.raises(MemoryAccessError):
        cache.write_word(0x40, 1)


def test_probe_does_not_touch_stats_or_lru():
    cache = make_cache()
    cache.install(0x40, [1, 2, 3, 4])
    before = dict(cache.stats.as_dict())
    assert cache.probe(0x40) is not None
    assert cache.probe(0x999000) is None
    assert cache.stats.as_dict() == before


def test_lru_victim_selection():
    # Direct-mapped within a set of 2: fill both ways, touch one, evict.
    cache = make_cache(size=64, assoc=2)  # 2 sets of 2 lines
    set_stride = cache.n_sets * 16
    a, b, c = 0x0, set_stride, 2 * set_stride  # all map to set 0
    cache.install(a, [1] * 4)
    cache.install(b, [2] * 4)
    assert cache.lookup(a) is not None  # touch a: b becomes LRU
    needs_wb, victim_addr, __ = cache.victim_for(c)
    assert not needs_wb
    assert victim_addr == b


def test_victim_for_prefers_invalid_way():
    cache = make_cache(size=64, assoc=2)
    cache.install(0x0, [0] * 4)
    needs_wb, __, __ = cache.victim_for(cache.n_sets * 16)
    assert not needs_wb  # an invalid way exists


def test_dirty_eviction_returns_writeback_data():
    cache = make_cache(size=64, assoc=2)
    set_stride = cache.n_sets * 16
    a, b, c = 0x0, set_stride, 2 * set_stride
    cache.install(a, [1] * 4)
    cache.write_word(a, 9)
    cache.install(b, [2] * 4)
    cache.lookup(b)  # make `a` the LRU victim
    needs_wb, victim_addr, words = cache.victim_for(c)
    assert needs_wb
    assert victim_addr == a
    assert words == [9, 1, 1, 1]


def test_install_evicts_consistently_with_victim_for():
    cache = make_cache(size=64, assoc=2)
    set_stride = cache.n_sets * 16
    a, b, c = 0x0, set_stride, 2 * set_stride
    cache.install(a, [1] * 4)
    cache.install(b, [2] * 4)
    cache.lookup(a)
    __, victim_addr, __ = cache.victim_for(c)
    cache.install(c, [3] * 4)
    assert cache.probe(victim_addr) is None
    assert cache.probe(c) is not None


def test_refill_wrong_word_count_rejected():
    cache = make_cache()
    with pytest.raises(MemoryAccessError):
        cache.install(0x0, [1, 2])


def test_dhwb_returns_data_once_and_keeps_line_valid():
    cache = make_cache()
    cache.install(0x80, [1, 2, 3, 4])
    cache.write_word(0x80, 42)
    result = cache.writeback_line(0x84)  # any address in the line
    assert result == (0x80, [42, 2, 3, 4])
    line = cache.probe(0x80)
    assert line is not None and line.valid and not line.dirty
    assert cache.writeback_line(0x80) is None  # already clean


def test_dhwb_on_absent_line_is_noop():
    cache = make_cache()
    assert cache.writeback_line(0x40) is None


def test_dii_invalidates_without_writeback():
    cache = make_cache()
    cache.install(0x80, [1, 2, 3, 4])
    assert cache.invalidate_line(0x80)
    assert cache.probe(0x80) is None
    assert not cache.invalidate_line(0x80)


def test_dii_on_dirty_line_counts_data_loss():
    cache = make_cache()
    cache.install(0x80, [1, 2, 3, 4])
    cache.write_word(0x80, 9)
    cache.invalidate_line(0x80)
    assert cache.stats["dii_dirty_dropped"] == 1


def test_dirty_lines_enumeration():
    cache = make_cache()
    cache.install(0x0, [1] * 4)
    cache.install(0x40, [2] * 4)
    cache.write_word(0x40, 5)
    dirty = cache.dirty_lines()
    assert dirty == [(0x40, [5, 2, 2, 2])]


def test_policy_parse():
    assert WritePolicy.parse("wb") is WritePolicy.WRITE_BACK
    assert WritePolicy.parse("WT") is WritePolicy.WRITE_THROUGH
    assert WritePolicy.parse(WritePolicy.WRITE_BACK) is WritePolicy.WRITE_BACK
    with pytest.raises(ConfigError):
        WritePolicy.parse("writeback")


def test_geometry_validation():
    with pytest.raises(ConfigError):
        L1Cache(1000)  # not a multiple of line size
    with pytest.raises(ConfigError):
        L1Cache(1024, line_bytes=12)
    with pytest.raises(ConfigError):
        L1Cache(1024, assoc=3)  # 64 lines % 3 != 0


def test_hits_misses_aggregate_properties():
    cache = make_cache()
    cache.lookup(0x0)
    cache.install(0x0, [0] * 4)
    cache.lookup(0x0)
    cache.lookup(0x4, is_write=True)
    assert cache.misses == 1
    assert cache.hits == 2


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["read", "write", "flush", "inval"]),
            st.integers(0, 63),      # line index within 1 kB of addresses
            st.integers(0, 3),       # word within line
            st.integers(0, 0xFFFF),  # value
        ),
        max_size=200,
    )
)
def test_cache_matches_flat_memory_model(ops):
    """Miss/refill/evict/flush against a reference flat memory.

    Simulates the owning node's FSM: on a miss, write back the victim and
    refill from memory.  At every step the value read through the cache
    must equal the reference dict's value.
    """
    cache = make_cache(size=256, assoc=2)  # tiny: plenty of evictions
    memory: dict[int, int] = {}
    shadow: dict[int, int] = {}

    def mem_read_line(line_addr: int) -> list[int]:
        return [memory.get(line_addr + 4 * i, 0) for i in range(4)]

    def ensure_line(addr: int) -> None:
        if cache.probe(addr) is None:
            needs_wb, victim_addr, words = cache.victim_for(addr)
            if needs_wb:
                for index, word in enumerate(words):
                    memory[victim_addr + 4 * index] = word
            cache.install(cache.line_addr(addr), mem_read_line(cache.line_addr(addr)))

    for kind, line_index, word_index, value in ops:
        addr = line_index * 16 + word_index * 4
        if kind == "read":
            ensure_line(addr)
            assert cache.read_word(addr) == shadow.get(addr, 0)
        elif kind == "write":
            ensure_line(addr)
            cache.write_word(addr, value)
            shadow[addr] = value
        elif kind == "flush":
            result = cache.writeback_line(addr)
            if result is not None:
                line_addr, words = result
                for index, word in enumerate(words):
                    memory[line_addr + 4 * index] = word
        else:  # inval — only safe on clean lines; flush first
            result = cache.writeback_line(addr)
            if result is not None:
                line_addr, words = result
                for index, word in enumerate(words):
                    memory[line_addr + 4 * index] = word
            cache.invalidate_line(addr)
    # Final check: flush everything and compare the whole memory image.
    for line_addr, words in cache.dirty_lines():
        for index, word in enumerate(words):
            memory[line_addr + 4 * index] = word
    for addr, value in shadow.items():
        line = cache.probe(addr)
        if line is not None:
            assert line.words[(addr % 16) >> 2] == value
        else:
            assert memory.get(addr, 0) == value
