"""Write buffer semantics."""

from __future__ import annotations

from repro.cache.writebuffer import WriteBuffer


def test_post_and_drain_in_order():
    buffer = WriteBuffer(depth=2)
    assert buffer.try_post(0x10, 1)
    assert buffer.try_post(0x14, 2)
    assert buffer.pop() == (0x10, 1)
    assert buffer.pop() == (0x14, 2)


def test_full_buffer_rejects():
    buffer = WriteBuffer(depth=1)
    assert buffer.try_post(0x0, 1)
    assert not buffer.try_post(0x4, 2)


def test_depth_property():
    assert WriteBuffer(depth=4).depth == 4


def test_len_and_empty():
    buffer = WriteBuffer(depth=4)
    assert buffer.empty
    buffer.try_post(0, 0)
    assert len(buffer) == 1
    assert not buffer.empty
