"""Shared-memory interface between a processor and the NoC.

The pif2NoC bridge (paper Section II-B) translates Tensilica PIF bus
transactions — single/block reads and writes, plus lock/unlock — into
sequences of NoC flits addressed to the MPMMU, and reassembles possibly
out-of-order reply flits through a 4-deep reorder buffer.

Access to the single NoC injection port is shared between this bridge and
the TIE message-passing interface by an arbiter; all three arbiter
configurations described in the paper are implemented in
:mod:`repro.bridge.arbiter`.
"""

from repro.bridge.arbiter import ArbiterMode, NocAccessArbiter, TrafficClass
from repro.bridge.pif import MemTransaction
from repro.bridge.pif2noc import Pif2NocBridge
from repro.bridge.reorder import ReorderBuffer

__all__ = [
    "ArbiterMode",
    "MemTransaction",
    "NocAccessArbiter",
    "Pif2NocBridge",
    "ReorderBuffer",
    "TrafficClass",
]
