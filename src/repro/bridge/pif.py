"""PIF bus transaction descriptors.

A :class:`MemTransaction` is what the processor's memory pipeline hands to
the pif2NoC bridge: one shared-memory operation against the MPMMU.  The
bridge turns it into the wire protocol of Fig. 4 and fills in the results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProtocolError
from repro.noc.packet import PacketType

#: Words in a block transaction — one 16-byte cache line.
BLOCK_WORDS = 4


@dataclass
class MemTransaction:
    """One shared-memory operation in flight at the bridge."""

    kind: PacketType
    addr: int
    write_words: list[int] = field(default_factory=list)
    #: False for posted writes: the core does not wait for completion.
    blocking: bool = True
    read_words: list[int] = field(default_factory=list)
    #: For LOCK: True=granted, False=NACKed.  None until resolved.
    granted: bool | None = None
    issued_at: int = -1
    completed_at: int = -1

    def __post_init__(self) -> None:
        if self.kind == PacketType.MESSAGE:
            raise ProtocolError("MESSAGE flits do not travel through the bridge")
        expected = self.expected_write_words
        if len(self.write_words) != expected:
            raise ProtocolError(
                f"{self.kind.name} carries {expected} write words, "
                f"got {len(self.write_words)}"
            )

    @property
    def expected_write_words(self) -> int:
        if self.kind == PacketType.SINGLE_WRITE:
            return 1
        if self.kind == PacketType.BLOCK_WRITE:
            return BLOCK_WORDS
        return 0

    @property
    def expected_read_words(self) -> int:
        if self.kind == PacketType.SINGLE_READ:
            return 1
        if self.kind == PacketType.BLOCK_READ:
            return BLOCK_WORDS
        return 0

    @property
    def is_write(self) -> bool:
        return self.kind in (PacketType.SINGLE_WRITE, PacketType.BLOCK_WRITE)

    @property
    def latency(self) -> int:
        if self.issued_at < 0 or self.completed_at < 0:
            raise ProtocolError("transaction not complete")
        return self.completed_at - self.issued_at

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MemTransaction {self.kind.name} @{self.addr:#x}>"
