"""The pif2NoC bridge FSM.

Translates one :class:`~repro.bridge.pif.MemTransaction` at a time into the
MPMMU wire protocol of Fig. 4:

* reads  — request flit out, data flit(s) straight back (Req/Data);
* writes — request flit out, wait for the grant ACK, stream the data
  flit(s), wait for the final ACK (Req/Ack/Data/Ack);
* lock/unlock — request flit out, ACK (or NACK for a busy lock) back.

Block-read replies may arrive out of order; the 4-deep reorder buffer
re-sequences them.  The bridge's NoC address for a memory address comes
from a small configuration LUT; the reference system has a single MPMMU,
so the LUT has one hardwired entry — exactly the simplification the paper
describes.
"""

from __future__ import annotations

import enum

from repro.bridge.pif import MemTransaction
from repro.bridge.reorder import ReorderBuffer
from repro.errors import ProtocolError
from repro.kernel.stats import CounterSet, LatencyStat
from repro.noc.flit import Flit
from repro.noc.packet import PacketType, SubType


class AddressLut:
    """Maps memory addresses to MPMMU NoC nodes.

    Microprocessor-configurable in general (``add_range``); a single
    default entry reproduces the paper's one-memory-node system.
    """

    def __init__(self, default_node: int) -> None:
        self.default_node = default_node
        self._ranges: list[tuple[int, int, int]] = []

    def add_range(self, base: int, size: int, node: int) -> None:
        self._ranges.append((base, base + size, node))

    def lookup(self, addr: int) -> int:
        for base, end, node in self._ranges:
            if base <= addr < end:
                return node
        return self.default_node


#: Per-transaction counter keys, precomputed so start() builds no strings.
_TXN_KEY = {kind: f"txn_{kind.name.lower()}" for kind in PacketType}


class _BridgeState(enum.Enum):
    IDLE = "idle"
    SEND_REQ = "send_req"
    WAIT_DATA = "wait_data"      # read replies expected
    WAIT_GRANT = "wait_grant"    # write grant / lock / unlock ack expected
    SEND_DATA = "send_data"      # streaming write data flits
    WAIT_FINAL = "wait_final"    # final write ack expected


class Pif2NocBridge:
    """One shared-memory transaction in flight between a PE and the MPMMU."""

    def __init__(
        self,
        node_id: int,
        lut: AddressLut,
        reorder_depth: int = 4,
        name: str = "pif2noc",
    ) -> None:
        self.node_id = node_id
        self.lut = lut
        self.reorder = ReorderBuffer(reorder_depth)
        self.name = name
        self.stats = CounterSet(name)
        self.latency = LatencyStat(f"{name}.latency")
        self._state = _BridgeState.IDLE
        self._txn: MemTransaction | None = None
        self._outgoing: list[Flit] = []

    # -- control ------------------------------------------------------------

    @property
    def idle(self) -> bool:
        return self._state is _BridgeState.IDLE

    def start(self, txn: MemTransaction, cycle: int) -> None:
        if not self.idle:
            raise ProtocolError(f"{self.name}: start while busy")
        self._txn = txn
        txn.issued_at = cycle
        mpmmu = self.lut.lookup(txn.addr)
        self._outgoing = [
            Flit(
                dst=mpmmu,
                src=self.node_id,
                ptype=txn.kind,
                subtype=int(SubType.ADDR),
                seq=0,
                burst=1,
                data=txn.addr,
            )
        ]
        self._state = _BridgeState.SEND_REQ
        self.stats.inc(_TXN_KEY[txn.kind])

    # -- TX side (node offers our flits to the arbiter) -----------------------------

    def poll_output(self) -> Flit | None:
        return self._outgoing[0] if self._outgoing else None

    def output_sent(self) -> None:
        if not self._outgoing:
            raise ProtocolError(f"{self.name}: output_sent with nothing pending")
        self._outgoing.pop(0)
        if self._outgoing:
            return
        txn = self._txn
        assert txn is not None
        if self._state is _BridgeState.SEND_REQ:
            if txn.expected_read_words:
                self.reorder.begin(txn.expected_read_words)
                self._state = _BridgeState.WAIT_DATA
            else:
                self._state = _BridgeState.WAIT_GRANT
        elif self._state is _BridgeState.SEND_DATA:
            self._state = _BridgeState.WAIT_FINAL

    # -- RX side -----------------------------------------------------------------------

    def on_reply(self, flit: Flit, cycle: int) -> MemTransaction | None:
        """Process a reply flit; returns the transaction when it completes."""
        txn = self._txn
        if txn is None:
            raise ProtocolError(f"{self.name}: reply {flit!r} with no transaction")
        if flit.ptype != txn.kind:
            raise ProtocolError(
                f"{self.name}: reply type {flit.ptype.name} does not match "
                f"in-flight {txn.kind.name}"
            )
        state = self._state
        if state is _BridgeState.WAIT_DATA:
            if flit.subtype != int(SubType.DATA):
                raise ProtocolError(f"{self.name}: expected DATA, got {flit!r}")
            if self.reorder.insert(flit.seq, flit.data):
                txn.read_words = self.reorder.take()
                return self._complete(cycle)
            return None
        if state is _BridgeState.WAIT_GRANT:
            if txn.kind is PacketType.LOCK:
                if flit.subtype == int(SubType.ACK):
                    txn.granted = True
                elif flit.subtype == int(SubType.NACK):
                    txn.granted = False
                    self.stats.inc("lock_nacks")
                else:
                    raise ProtocolError(f"{self.name}: bad lock reply {flit!r}")
                return self._complete(cycle)
            if txn.kind is PacketType.UNLOCK:
                if flit.subtype != int(SubType.ACK):
                    raise ProtocolError(f"{self.name}: bad unlock reply {flit!r}")
                return self._complete(cycle)
            # Write grant: start streaming data flits.
            if flit.subtype != int(SubType.ACK):
                raise ProtocolError(f"{self.name}: expected write grant, got {flit!r}")
            mpmmu = self.lut.lookup(txn.addr)
            self._outgoing = [
                Flit(
                    dst=mpmmu,
                    src=self.node_id,
                    ptype=txn.kind,
                    subtype=int(SubType.DATA),
                    seq=index,
                    burst=len(txn.write_words),
                    data=word,
                )
                for index, word in enumerate(txn.write_words)
            ]
            self._state = _BridgeState.SEND_DATA
            return None
        if state is _BridgeState.WAIT_FINAL:
            if flit.subtype != int(SubType.ACK):
                raise ProtocolError(f"{self.name}: expected final ACK, got {flit!r}")
            return self._complete(cycle)
        raise ProtocolError(
            f"{self.name}: reply {flit!r} in state {state.value}"
        )

    def _complete(self, cycle: int) -> MemTransaction:
        txn = self._txn
        assert txn is not None
        txn.completed_at = cycle
        self.latency.record(txn.latency)
        self._txn = None
        self._state = _BridgeState.IDLE
        self._outgoing = []
        return txn

    # -- diagnostics ----------------------------------------------------------------------

    def describe(self) -> str:
        txn = f"{self._txn.kind.name}@{self._txn.addr:#x}" if self._txn else "none"
        return f"{self._state.value}({txn})"
