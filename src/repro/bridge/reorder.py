"""Reorder buffer for out-of-order block-read replies.

Deflection routing may deliver the four data flits of a block read in any
order; the bridge's reorder buffer places each arriving word at its
sequence-number slot and signals completion when all expected words are
present (paper Section II-B: "a reordering buffer which currently has a
depth of four words").
"""

from __future__ import annotations

from repro.errors import ProtocolError


class ReorderBuffer:
    """Fixed-depth, sequence-indexed assembly buffer."""

    def __init__(self, depth: int = 4) -> None:
        if depth < 1:
            raise ProtocolError(f"reorder buffer depth must be >= 1, got {depth}")
        self.depth = depth
        self._slots: list[int | None] = [None] * depth
        self._expected = 0
        self._filled = 0
        self.max_out_of_order = 0

    def begin(self, expected: int) -> None:
        """Arm the buffer for ``expected`` incoming words."""
        if expected < 1 or expected > self.depth:
            raise ProtocolError(
                f"expected {expected} words exceeds reorder depth {self.depth}"
            )
        self._slots = [None] * self.depth
        self._expected = expected
        self._filled = 0

    def insert(self, seq: int, word: int) -> bool:
        """Place a word; returns True when the burst is complete."""
        if self._expected == 0:
            raise ProtocolError("reorder buffer got data with no burst armed")
        if not (0 <= seq < self._expected):
            raise ProtocolError(
                f"sequence number {seq} outside armed burst of {self._expected}"
            )
        if self._slots[seq] is not None:
            raise ProtocolError(f"duplicate sequence number {seq}")
        self._slots[seq] = word
        if seq != self._filled:
            self.max_out_of_order = max(self.max_out_of_order, abs(seq - self._filled))
        self._filled += 1
        return self._filled == self._expected

    def take(self) -> list[int]:
        """Return the completed, in-order words and disarm the buffer."""
        if self._expected == 0 or self._filled != self._expected:
            raise ProtocolError("reorder buffer not complete")
        words = [w for w in self._slots[: self._expected]]
        assert all(w is not None for w in words)
        self._expected = 0
        self._filled = 0
        return words  # type: ignore[return-value]

    @property
    def busy(self) -> bool:
        return self._expected > 0
