"""NoC-access arbiter between the shared-memory and message-passing paths.

Section II-B describes three implementations, all available here:

* ``MUX`` — no buffering: each interface presents one flit; one is granted
  per cycle (round-robin on contention), the other retries;
* ``SINGLE_FIFO`` — both interfaces push into one queue that keeps feeding
  the switch even when it is congested;
* ``DUAL_FIFO`` — a High-Priority queue and a Best-Effort queue; the
  best-effort queue is read only when the high-priority one is empty.

Which traffic class is high priority is configurable; MEDEA's rationale
(low-latency synchronization) maps message-passing traffic to HP by
default.
"""

from __future__ import annotations

import enum

from repro.errors import ConfigError
from repro.kernel.fifo import Fifo
from repro.kernel.stats import CounterSet
from repro.noc.flit import Flit
from repro.noc.network import InjectionPort


class ArbiterMode(enum.Enum):
    MUX = "mux"
    SINGLE_FIFO = "single_fifo"
    DUAL_FIFO = "dual_fifo"

    @classmethod
    def parse(cls, value: "ArbiterMode | str") -> "ArbiterMode":
        if isinstance(value, ArbiterMode):
            return value
        try:
            return cls(value.lower())
        except ValueError:
            raise ConfigError(
                f"unknown arbiter mode {value!r}; "
                f"use 'mux', 'single_fifo' or 'dual_fifo'"
            ) from None


class TrafficClass(enum.Enum):
    MESSAGE = "message"
    MEMORY = "memory"


class NocAccessArbiter:
    """Shares one injection port between the TIE and pif2NoC interfaces."""

    def __init__(
        self,
        inject_port: InjectionPort,
        mode: ArbiterMode | str = ArbiterMode.DUAL_FIFO,
        fifo_depth: int = 4,
        high_priority: TrafficClass | str = TrafficClass.MESSAGE,
        name: str = "arbiter",
    ) -> None:
        self.mode = ArbiterMode.parse(mode)
        if isinstance(high_priority, str):
            high_priority = TrafficClass(high_priority.lower())
        self.high_priority = high_priority
        self.port = inject_port
        self.name = name
        self.stats = CounterSet(name)
        self._last_granted: TrafficClass = TrafficClass.MEMORY
        # _hp_q/_be_q (drain side) and _msg_q/_mem_q (offer side) are
        # bound for the FIFO modes so the per-cycle paths never go through
        # the dict; MUX keeps only the slot pair and leaves these None.
        self._hp_q: Fifo[Flit] | None = None
        self._be_q: Fifo[Flit] | None = None
        self._msg_q: Fifo[Flit] | None = None
        self._mem_q: Fifo[Flit] | None = None
        if self.mode is ArbiterMode.MUX:
            self._queues: dict[TrafficClass, Fifo[Flit]] = {}
            self._slots: dict[TrafficClass, Flit | None] = {
                TrafficClass.MESSAGE: None,
                TrafficClass.MEMORY: None,
            }
        elif self.mode is ArbiterMode.SINGLE_FIFO:
            shared: Fifo[Flit] = Fifo(fifo_depth, name=f"{name}.q")
            self._queues = {
                TrafficClass.MESSAGE: shared,
                TrafficClass.MEMORY: shared,
            }
            self._slots = {}
            self._hp_q = shared
            self._msg_q = shared
            self._mem_q = shared
        else:
            self._queues = {
                TrafficClass.MESSAGE: Fifo(fifo_depth, name=f"{name}.hp"),
                TrafficClass.MEMORY: Fifo(fifo_depth, name=f"{name}.be"),
            }
            self._slots = {}
            self._hp_q = self._queues[self.high_priority]
            self._be_q = self._queues[self._other(self.high_priority)]
            self._msg_q = self._queues[TrafficClass.MESSAGE]
            self._mem_q = self._queues[TrafficClass.MEMORY]

    # -- producer side ---------------------------------------------------------

    def offer(self, traffic_class: TrafficClass, flit: Flit) -> bool:
        """Hand a flit to the arbiter; False means retry next cycle."""
        if self.mode is ArbiterMode.MUX:
            if self._slots[traffic_class] is not None:
                self.stats.inc("mux_busy_rejects")
                return False
            self._slots[traffic_class] = flit
            return True
        return self._offer_queued(self._queues[traffic_class], flit)

    def _offer_queued(self, queue: Fifo[Flit], flit: Flit) -> bool:
        if queue.full:
            self.stats.inc("fifo_full_rejects")
            return False
        queue.push(flit)
        return True

    def offer_message(self, flit: Flit) -> bool:
        queue = self._msg_q
        if queue is None:
            return self.offer(TrafficClass.MESSAGE, flit)
        return self._offer_queued(queue, flit)

    def offer_memory(self, flit: Flit) -> bool:
        queue = self._mem_q
        if queue is None:
            return self.offer(TrafficClass.MEMORY, flit)
        return self._offer_queued(queue, flit)

    # -- clocked drain -------------------------------------------------------------

    def tick(self) -> None:
        """Move at most one flit toward the injection port this cycle."""
        if self.port.pending is not None:
            self.stats.inc("port_busy_cycles")
            return
        flit = self._select()
        if flit is not None:
            accepted = self.port.try_inject(flit)
            assert accepted, "injection port reported free but rejected flit"
            self.stats.inc("flits_granted")

    def _select(self) -> Flit | None:
        hp = self._hp_q
        if hp is not None:
            if hp._items:
                return hp.pop()
            be = self._be_q
            if be is not None and be._items:
                self.stats.inc("be_grants")
                return be.pop()
            return None
        first = self._other(self._last_granted)
        for traffic_class in (first, self._last_granted):
            flit = self._slots[traffic_class]
            if flit is not None:
                self._slots[traffic_class] = None
                self._last_granted = traffic_class
                return flit
        return None

    @staticmethod
    def _other(traffic_class: TrafficClass) -> TrafficClass:
        if traffic_class is TrafficClass.MESSAGE:
            return TrafficClass.MEMORY
        return TrafficClass.MESSAGE

    # -- introspection -----------------------------------------------------------------

    @property
    def has_pending(self) -> bool:
        hp = self._hp_q
        if hp is not None:
            be = self._be_q
            return bool(hp._items) or (be is not None and bool(be._items))
        return any(flit is not None for flit in self._slots.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<NocAccessArbiter {self.name} {self.mode.value}>"
