"""Deterministic, seeded fault injection for the MEDEA fabric.

The fault layer has two halves:

* :class:`FaultPlan` — a frozen, declarative description of what goes
  wrong: seeded transient drop/corrupt rates (optionally restricted to
  chosen links and a cycle window), permanently killed links, temporarily
  stalled switches, swallowed credit tokens, and the knobs of the recovery
  protocol (NACK timeout/backoff/retry budget, retransmit-buffer depth).
  It lives on :class:`~repro.system.config.SystemConfig` (``faults=``,
  default ``None`` — with it unset, no fault code runs and every committed
  golden cycle count is bit-identical).
* :class:`FaultInjector` — the per-system runtime: one seeded
  ``random.Random``, the current per-node output-port masks (kills and
  stalls remove bits symmetrically so the deflection invariant holds), the
  end-to-end checksum stamped at injection and checked at ejection, and
  the counters/event trace that make every fault observable and every run
  bit-reproducible from the same plan.

Fault model scope: transient drop/corrupt targets *stream data* flits
(MESSAGE/MULTICAST with a DATA or RETX subtype) — the traffic covered by
the NACK/retransmit protocol in :mod:`repro.pe.tie` and
:mod:`repro.dma.engine`.  Control tokens (credits, NACKs, barrier/eMPI
request words) and shared-memory transactions are exercised through the
declarative hooks (``drop_credits``/``drop_mcast_credits``, killed links,
stalls) and unit-level injection instead, since they carry no sequence
numbers to retransmit from; giving them an acknowledgement layer of their
own is a ROADMAP item.

Corruption flips one payload bit and leaves the checksum stale, so a
corrupted flit is detected at the ejection port and dropped there —
turning corruption into loss, which the retransmit protocol then repairs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.kernel.stats import CounterSet
from repro.noc.coords import DIRECTION_NAMES
from repro.noc.packet import PacketType, SubType

#: Keep the full event trace up to this many entries (plenty for tests and
#: the determinism harness); beyond it only the counters keep growing.
TRACE_LIMIT = 65536


def link_name(node: int, direction: int) -> str:
    """Human label for the output link of ``node`` through port
    ``direction`` (a compass letter on grids; chiplet uplink ports and
    the IO hub's per-chiplet ports print as ``pN``)."""
    if 0 <= direction < len(DIRECTION_NAMES):
        return f"{node}->{DIRECTION_NAMES[direction]}"
    return f"{node}->p{direction}"


@dataclass(frozen=True)
class FaultPlan:
    """Seeded RNG rates plus a declarative fault schedule.

    Links are named ``(node, direction)`` — the *output* wire of ``node``
    through that port (0=N, 1=E, 2=S, 3=W on grids; a chiplet gateway's
    uplink is port ``GATEWAY_PORT`` and the IO hub's port ``c`` feeds
    chiplet ``c``).  Killed links die in both
    directions (the deflection router needs symmetric masks).  All
    schedule fields are tuples so the plan is hashable and its
    ``dataclasses.asdict`` form (used in DSE cache keys) is stable.
    """

    #: Seed for every random draw the injector makes.
    seed: int = 0
    #: Per-link-traversal probability that a stream-data flit is dropped.
    drop_rate: float = 0.0
    #: Per-link-traversal probability that one payload bit is flipped.
    corrupt_rate: float = 0.0
    #: Restrict transient drop/corrupt to these links (None = every link).
    fault_links: tuple[tuple[int, int], ...] | None = None
    #: Restrict transient drop/corrupt to cycles [start, end) (None = always).
    fault_window: tuple[int, int] | None = None
    #: Permanently killed links: (node, direction, from_cycle).
    dead_links: tuple[tuple[int, int, int], ...] = ()
    #: Stalled switches: (node, from_cycle, n_cycles) — the switch holds
    #: its input registers and accepts nothing for n_cycles.
    stalls: tuple[tuple[int, int, int], ...] = ()
    #: Swallow the first `count` unicast credit tokens arriving at `node`
    #: from `src`: (node, src, count).
    drop_credits: tuple[tuple[int, int, int], ...] = ()
    #: Same for multicast credit tokens (the DMA engine's TX gate).
    drop_mcast_credits: tuple[tuple[int, int, int], ...] = ()

    # -- recovery protocol knobs -------------------------------------------
    #: Cycles a receive stream may sit gapped/starved before a NACK.
    nack_timeout: int = 96
    #: Timeout multiplier per retry (exponential backoff).
    nack_backoff: int = 2
    #: NACK/probe attempts per stall before the agent gives up (the
    #: watchdog then turns the quiet system into a structured report).
    max_retries: int = 8
    #: Retransmit-buffer slots per stream; senders stall rather than
    #: overrun it.  16 (= the credit limit) makes it never the bottleneck.
    retx_slots: int = 16

    def __post_init__(self) -> None:
        # Coerce lists (convenient at call sites) into tuples so the plan
        # stays hashable and its cache-key repr is stable.
        for name in ("fault_links", "dead_links", "stalls",
                     "drop_credits", "drop_mcast_credits"):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(
                    self, name, tuple(tuple(item) for item in value)
                )
        if self.fault_window is not None:
            object.__setattr__(self, "fault_window", tuple(self.fault_window))

    def validate(self) -> None:
        if not (0.0 <= self.drop_rate <= 1.0):
            raise ConfigError(f"drop_rate must be in [0, 1], got {self.drop_rate}")
        if not (0.0 <= self.corrupt_rate <= 1.0):
            raise ConfigError(
                f"corrupt_rate must be in [0, 1], got {self.corrupt_rate}"
            )
        if self.drop_rate + self.corrupt_rate > 1.0:
            raise ConfigError("drop_rate + corrupt_rate must not exceed 1")
        if self.nack_timeout < 1:
            raise ConfigError("nack_timeout must be >= 1")
        if self.nack_backoff < 1:
            raise ConfigError("nack_backoff must be >= 1")
        if self.max_retries < 1:
            raise ConfigError("max_retries must be >= 1")
        if not (1 <= self.retx_slots <= 16):
            raise ConfigError(
                "retx_slots must be in [1, 16] (the stream credit limit)"
            )
        for node, start, n_cycles in self.stalls:
            if n_cycles < 1 or start < 0:
                raise ConfigError(f"bad stall ({node}, {start}, {n_cycles})")
        if self.fault_window is not None:
            start, end = self.fault_window
            if end <= start:
                raise ConfigError(f"empty fault_window {self.fault_window}")


def _crc8(src: int, ptype: int, subtype: int, seq: int, burst: int,
          data: int) -> int:
    """8-bit end-to-end checksum over the protocol + payload fields.

    Deliberately excludes the routing fields (dst/mask): multicast
    replication rewrites those per branch, and the fault model never
    corrupts them.  An FNV-style mix folded to 8 bits — the model of a
    real CRC-8, not its polynomial.
    """
    h = 0x811C9DC5
    for value in (src, ptype, subtype, seq, burst, data):
        h = ((h ^ (value & 0xFFFFFFFF)) * 0x01000193) & 0xFFFFFFFF
    return (h ^ (h >> 8) ^ (h >> 16) ^ (h >> 24)) & 0xFF


def _is_stream_data(flit) -> bool:
    """True for the flits covered by transient faults + retransmission."""
    return (
        flit.ptype >= PacketType.MESSAGE
        and flit.subtype in (SubType.MSG_DATA, SubType.MSG_RETX)
    )


@dataclass
class _StallState:
    """Bookkeeping for one scheduled switch stall."""

    node: int
    end: int = 0
    saved: tuple[tuple[int, int], ...] = field(default_factory=tuple)


class FaultInjector:
    """Runtime fault state for one :class:`~repro.system.medea.MedeaSystem`.

    All mutation happens through the fabric's per-step calls
    (:meth:`advance`, :meth:`on_link`, :meth:`check_eject`) and the
    reliability layer's counters, in deterministic order, so two runs of
    the same plan replay bit-identically (see ``trace``).
    """

    def __init__(self, plan: FaultPlan, topology) -> None:
        plan.validate()
        self.plan = plan
        self.topology = topology
        self.rng = random.Random(plan.seed)
        self.counts = CounterSet("faults")
        #: Delivery/fault event trace: (cycle, kind, *details) tuples with
        #: no run-local ids, so two runs of one plan compare equal.
        self.trace: list[tuple] = []
        self._masks = list(topology.port_mask_table)
        self._killed = [0] * topology.n_nodes
        self._stalled: dict[int, _StallState] = {}
        self.masks_active = False
        self._transient = plan.drop_rate > 0.0 or plan.corrupt_rate > 0.0
        self._links = (
            None if plan.fault_links is None else set(plan.fault_links)
        )
        self._window = plan.fault_window
        self._credit_eat = {
            (node, src): count for node, src, count in plan.drop_credits
        }
        self._mcast_credit_eat = {
            (node, src): count for node, src, count in plan.drop_mcast_credits
        }
        events: list[tuple[int, int, int, int]] = []
        for node, direction, cycle in plan.dead_links:
            self._check_link(node, direction)
            events.append((cycle, 0, node, direction))
        for node, start, n_cycles in plan.stalls:
            if not (0 <= node < topology.n_nodes):
                raise ConfigError(f"stall names unknown node {node}")
            events.append((start, 1, node, n_cycles))
        #: Schedule sorted by (cycle, kind, ...) — deterministic activation.
        self._events = sorted(events)
        self._next_event = 0
        #: Streams whose recovery retries were exhausted (set by the
        #: reliability agents; surfaces in the watchdog report).
        self.gave_up: list[str] = []
        #: Mask-aware productive-direction table (same flat layout as
        #: ``topology.productive_table``), rebuilt on every permanent
        #: link kill; None until the first kill.  Without it, X-Y
        #: preference can steer the oldest flit into a cul-de-sac next
        #: to the dead link and livelock the whole fabric.
        self.productive_override: list[tuple[int, ...]] | None = None

    def _check_link(self, node: int, direction: int) -> None:
        topology = self.topology
        if not (0 <= node < topology.n_nodes) or not (
            0 <= direction < topology.max_ports
        ):
            raise ConfigError(
                f"bad link ({node}, {direction}) for {topology.kind} "
                f"topology with {topology.n_nodes} nodes and "
                f"{topology.max_ports} ports per switch"
            )
        if topology.neighbor_table[node][direction] < 0:
            raise ConfigError(
                f"link {link_name(node, direction)} does not exist on "
                f"{topology.kind} topology"
            )

    # -- event tracing ------------------------------------------------------

    def note(self, cycle: int, kind: str, *details) -> None:
        self.counts.inc(kind)
        if len(self.trace) < TRACE_LIMIT:
            self.trace.append((cycle, kind) + details)
        else:
            self.counts.inc("trace_overflow")

    # -- scheduled events ---------------------------------------------------

    def advance(self, cycle: int) -> None:
        """Activate schedule entries due by ``cycle`` and expire stalls."""
        while (self._next_event < len(self._events)
               and self._events[self._next_event][0] <= cycle):
            due, kind, node, arg = self._events[self._next_event]
            self._next_event += 1
            if kind == 0:
                self._kill_link(cycle, node, arg)
            else:
                self._stall_on(cycle, node, arg)
        if self._stalled:
            for node in [n for n, s in self._stalled.items() if cycle >= s.end]:
                self._stall_off(cycle, node)
        self.masks_active = bool(self._stalled) or any(self._killed)

    def _kill_link(self, cycle: int, node: int, direction: int) -> None:
        neighbor = self.topology.neighbor_table[node][direction]
        back = self.topology.reverse_port_table[node][direction]
        for end, out_dir in ((node, direction), (neighbor, back)):
            bit = 1 << out_dir
            self._killed[end] |= bit
            self._masks[end] &= ~bit
        self._recompute_productive()
        self.note(cycle, "link_killed", node, direction)

    def _recompute_productive(self) -> None:
        """Rebuild productive directions on the surviving (unkilled) graph.

        A real fault-tolerant NoC reprograms its routing tables when a
        link dies; the model's equivalent is
        :meth:`~repro.noc.topology.Topology.productive_override` — the
        same BFS that builds the pristine tables, run over the surviving
        links, so rerouting is topology-derived on every fabric shape
        (a dead inter-chiplet uplink reroutes through the IO hub exactly
        like a dead mesh link reroutes around the hole).  Stalls are
        transient and deliberately excluded — the saved masks restore
        themselves.  An unreachable destination gets an empty tuple:
        such flits deflect until the watchdog reports the partition.
        """
        self.productive_override = self.topology.productive_override(
            self._killed
        )

    def _stall_on(self, cycle: int, node: int, n_cycles: int) -> None:
        state = _StallState(node, end=cycle + n_cycles)
        saved = []
        # Neighbours stop feeding the stalled switch (symmetric masks keep
        # the deflection invariant; the switch itself is simply skipped).
        for direction in self.topology.ports_table[node]:
            neighbor = self.topology.neighbor_table[node][direction]
            back = self.topology.reverse_port_table[node][direction]
            bit = 1 << back
            if self._masks[neighbor] & bit:
                self._masks[neighbor] &= ~bit
                saved.append((neighbor, back))
        state.saved = tuple(saved)
        self._stalled[node] = state
        self.masks_active = True
        self.note(cycle, "stall_on", node, n_cycles)

    def _stall_off(self, cycle: int, node: int) -> None:
        state = self._stalled.pop(node)
        for neighbor, direction in state.saved:
            bit = 1 << direction
            if not self._killed[neighbor] & bit:
                self._masks[neighbor] |= bit
        self.note(cycle, "stall_off", node)

    def stalled(self, node: int) -> bool:
        return node in self._stalled

    def out_mask(self, node: int) -> int:
        return self._masks[node]

    # -- transient link faults ----------------------------------------------

    def on_link(self, node: int, direction: int, flit, cycle: int) -> bool:
        """Filter one link traversal; returns False when the flit is lost.

        May flip a payload bit in place (leaving the checksum stale, so
        the corruption is caught — and the flit dropped — at ejection).
        """
        if not self._transient or not _is_stream_data(flit):
            return True
        if self._window is not None and not (
            self._window[0] <= cycle < self._window[1]
        ):
            return True
        if self._links is not None and (node, direction) not in self._links:
            return True
        plan = self.plan
        draw = self.rng.random()
        if draw < plan.drop_rate:
            self.note(cycle, "dropped", node, direction,
                      flit.src, flit.dst, flit.seq)
            return False
        if draw < plan.drop_rate + plan.corrupt_rate:
            flit.data ^= 1 << self.rng.randrange(32)
            self.note(cycle, "corrupted", node, direction,
                      flit.src, flit.dst, flit.seq)
        return True

    # -- end-to-end checksum -------------------------------------------------

    def stamp(self, flit) -> None:
        flit.crc = _crc8(flit.src, flit.ptype, flit.subtype,
                         flit.seq, flit.burst, flit.data)

    def check_eject(self, flit, node: int, cycle: int) -> bool:
        """Verify the checksum at the ejection port; False = discard."""
        expected = _crc8(flit.src, flit.ptype, flit.subtype,
                         flit.seq, flit.burst, flit.data)
        if flit.crc == expected:
            return True
        self.note(cycle, "crc_dropped", node, flit.src, flit.seq)
        return False

    # -- credit eating (the DMA-engine / TIE credit-path hook) ---------------

    def eat_credit(self, node: int, src: int) -> bool:
        remaining = self._credit_eat.get((node, src), 0)
        if remaining <= 0:
            return False
        self._credit_eat[(node, src)] = remaining - 1
        self.counts.inc("credits_eaten")
        return True

    def eat_mcast_credit(self, node: int, src: int) -> bool:
        remaining = self._mcast_credit_eat.get((node, src), 0)
        if remaining <= 0:
            return False
        self._mcast_credit_eat[(node, src)] = remaining - 1
        self.counts.inc("mcast_credits_eaten")
        return True

    # -- reporting -----------------------------------------------------------

    def as_dict(self) -> dict:
        return self.counts.as_dict()

    def describe(self) -> str:
        """One-line fault context for error messages and reports."""
        counters = self.counts.as_dict()
        summary = ", ".join(
            f"{key}={counters[key]}" for key in sorted(counters)
        ) or "no fault events"
        recent = "; ".join(
            f"cycle {entry[0]}: {entry[1]} {entry[2:]}"
            for entry in self.trace[-3:]
        )
        gave_up = (
            f"; recovery gave up on: {', '.join(self.gave_up)}"
            if self.gave_up else ""
        )
        return (
            f"fault context [seed={self.plan.seed}]: {summary}"
            + (f" (last: {recent})" if recent else "")
            + gave_up
        )
