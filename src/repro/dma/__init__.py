"""Per-tile DMA/collective engine: TX descriptor queue + NoC multicast.

The paper's TIE interface models a single in-flight TX descriptor, so
every software collective costs the core one tx-turn per destination.
This package is the hardware step beyond that (the "hardware TX queue"
follow-on of the ROADMAP): a depth-configurable descriptor queue the core
posts to with the ``qsend``/``qmcast`` operations, drained autonomously
by the engine one flit per cycle, plus MULTICAST descriptors whose flits
the fabric replicates toward their destinations along a deterministic
tree (:mod:`repro.noc.switch`) — a broadcast costs one injection instead
of P-1 and the core keeps computing.

Everything is opt-in: a :class:`~repro.dma.engine.DmaTxEngine` exists
only when ``SystemConfig.dma_tx_queue_depth`` >= 1, and with it absent
every committed golden cycle count is bit-identical to the seed.
"""

from repro.dma.engine import DmaTxEngine, TxDescriptor, mask_members

__all__ = [
    "DmaTxEngine",
    "TxDescriptor",
    "mask_members",
]
