"""The per-tile DMA/collective TX engine.

The engine sits between the core and the TIE/arbiter message path:

* the core *posts* :class:`TxDescriptor` records into a bounded queue
  (``qsend``/``qmcast`` operations, a couple of cycles each) and keeps
  running — the queue retires the one-slot serialization the blocking
  ``send``/``isend`` path imposes;
* every cycle the owning node pumps the engine: the head descriptor is
  activated (unicast descriptors are handed to the TIE's existing
  streaming machinery; multicast descriptors become an engine-owned flit
  stream) and the current flit is offered to the arbiter's message class.

Multicast descriptors carry a destination bitmask.  In **multicast mode**
the engine emits one MULTICAST flit per payload word with ``dst = -1``
and the mask attached; the fabric replicates it along the deterministic
tree, so a P-way broadcast costs one injection per word.  In **unicast
fallback mode** (``noc_multicast=False``, for networks whose flit format
cannot carry the mask, and as the equivalence baseline) the same
descriptor expands into one ordinary-routed MULTICAST flit per (member,
word) pair — identical receive-side behaviour (same streams, same slots,
same credits), P-1 times the injections.

Sequence space: all multicasts from one tile share a single slot counter,
which is only coherent while every one of them targets the same group —
the hardware analogue of a multicast group register.  The first
``post_multicast`` fixes the group.  The register may be **rewritten**
(a descriptor with a different mask) once the queue has drained and
every current member's credits are quiescent; until then the post is
simply refused (``False``, retry like a full queue).  Re-registration
reuses the reverse ack path: each *new* member is sent a SYNC token
carrying the current stream slot's phase (its receive stream
fast-forwards into the shared sequence space) and answers with a
SYNC_ACK; the engine
holds the re-registered descriptor until every new member acked.
Software must ensure all members consumed their prior multicast data
before re-registering (a barrier suffices) — an unconsumed stream
refuses the sync loudly.

Flow control mirrors the unicast credit scheme: every group member
returns one token per CREDIT_WINDOW contiguously completed multicast
slots and the engine gates emission on the *slowest* member
(ack aggregation), bounding the reorder span group-wide.

**Reduction assist** (the RX half): an *accumulate-on-receive*
descriptor, posted with the ``qreduce`` operation, hands the engine a
local accumulator and a source; as that source's multicast stream
arrives, the engine combines each double into the accumulator — one
element per cycle, accumulator-first, the exact
:func:`~repro.empi.collectives.combine_scalar` order — so a reduction's
combine overlaps flit arrival instead of serializing through processor
ops.  The core collects the finished accumulator with a one-cycle
``qrpoll`` status read (the accumulator lives in local data memory,
where the engine combined it in place).
"""

from __future__ import annotations

import typing
from collections import deque
from collections.abc import Iterator

from repro.empi.collectives import ReduceOp, combine_scalar
from repro.errors import ProtocolError
from repro.kernel.stats import CounterSet
from repro.mem.values import words_to_float
from repro.noc.flit import MULTICAST_DST, Flit
from repro.noc.packet import PacketType, SubType
from repro.pe.tie import (
    CREDIT_LIMIT,
    CREDIT_WINDOW,
    MCAST_SYNC_WORD,
    SEQ_WINDOW,
    SLOT_MASK,
)

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pe.tie import TieInterface


def mask_members(mask: int) -> Iterator[int]:
    """Node indices of a destination bitmask, ascending."""
    while mask:
        bit = mask & -mask
        mask ^= bit
        yield bit.bit_length() - 1


class TxDescriptor:
    """One queued transmit descriptor (unicast or multicast)."""

    __slots__ = ("dst", "mask", "words", "uid")

    def __init__(
        self, dst: int, mask: int, words: list[int], uid: int = 0
    ) -> None:
        self.dst = dst      # destination node, or MULTICAST_DST
        self.mask = mask    # destination bitmask (multicast only)
        self.words = words
        self.uid = uid      # telemetry lifecycle id (0 when off)

    @property
    def is_multicast(self) -> bool:
        return self.dst == MULTICAST_DST

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        target = f"mask={self.mask:#x}" if self.is_multicast else str(self.dst)
        return f"<TxDescriptor ->{target} {len(self.words)}w>"


class _RxReduce:
    """State of the accumulate-on-receive descriptor being combined.

    ``acc`` is the caller's accumulator (combined in place, element by
    element, as the source's multicast stream arrives); ``index`` is the
    next element to combine.
    """

    __slots__ = ("src_node", "acc", "op", "index")

    def __init__(self, src_node: int, acc: list[float], op: ReduceOp) -> None:
        self.src_node = src_node
        self.acc = acc
        self.op = op
        self.index = 0

    @property
    def done(self) -> bool:
        return self.index >= len(self.acc)


class _ActiveMulticast:
    """Emission state for the multicast descriptor currently streaming.

    ``entries`` is a flat list of ``(slot, member, flit)`` tuples: in
    multicast mode ``member`` is None (the fabric replicates; credit
    gating is against the whole group), in fallback mode one entry per
    (member, word) with the member's own credit gate.
    """

    __slots__ = ("entries", "members", "index", "uid")

    def __init__(self, entries: list, members: tuple[int, ...]) -> None:
        self.entries = entries
        self.members = members
        self.index = 0
        self.uid = 0  # telemetry lifecycle id (0 when off)

    @property
    def done(self) -> bool:
        return self.index >= len(self.entries)


class DmaTxEngine:
    """Descriptor queue + multicast streamer for one tile."""

    def __init__(
        self,
        tie: "TieInterface",
        n_nodes: int,
        depth: int,
        multicast: bool = True,
    ) -> None:
        if depth < 1:
            raise ProtocolError(f"DMA TX queue depth must be >= 1, got {depth}")
        self.tie = tie
        self.node_id = tie.node_id
        self.n_nodes = n_nodes
        self.depth = depth
        self.multicast = multicast
        self.queue: deque[TxDescriptor] = deque()
        self.group_mask = 0          # the multicast group register
        self._mcast_slot = 0         # next multicast stream slot
        self._active: _ActiveMulticast | None = None
        #: New members whose SYNC_ACK must arrive before the first
        #: descriptor of a re-registered group may stream.
        self._sync_pending: frozenset[int] = frozenset()
        #: The accumulate-on-receive (reduction assist) descriptor:
        #: at most one active, its result held until qrpoll collects it.
        self._rx: _RxReduce | None = None
        self._rx_done = False
        #: Reliable-delivery mode only: multicast retransmit buffer
        #: (slot -> word, filled at emission, pruned below the slowest
        #: member's credit floor) and the NACK-requested retransmissions
        #: awaiting a TX slot.  A multicast retransmit goes *unicast* to
        #: the NACKing member — the rest of the group already has the
        #: word, replaying the tree would duplicate it group-wide.
        self._retx: dict[int, int] = {}
        self.pending_retx: deque[tuple[int, int, int]] = deque()
        self._retx_queued: set[tuple[int, int]] = set()
        self._retx_current = False
        self.stats = CounterSet(f"dma[{tie.node_id}]")
        # Per-flit hot counters, batched like the TIE's and folded into
        # the CounterSet by flush_stats() at node sleep.
        self._n_flits_sent = 0
        self._n_credit_stalls = 0
        self._n_reduced = 0
        #: Optional :class:`~repro.telemetry.hub.TelemetryHub` — when set
        #: descriptor lifecycles become trace spans; None keeps the hot
        #: path at a single attribute check (same pattern as faults).
        self.telemetry = None
        self._desc_uid = 0
        self._rx_uid = 0

    # -- core-facing (descriptor posting) ------------------------------------

    @property
    def free_slots(self) -> int:
        return self.depth - len(self.queue)

    @property
    def busy(self) -> bool:
        """True while any descriptor is queued or streaming, or while a
        retransmission is owed (queued, or still undrained in the TIE's
        multicast-NACK inbox — the owning node must keep pumping until
        it is served)."""
        return (
            bool(self.queue)
            or self._active is not None
            or bool(self.pending_retx)
            or bool(self.tie.mcast_nacks)
        )

    def post_unicast(self, dst_node: int, words: list[int]) -> bool:
        """Queue a unicast descriptor; False when the queue is full."""
        if not (0 <= dst_node < self.n_nodes) or dst_node == self.node_id:
            raise ProtocolError(
                f"dma[{self.node_id}]: bad unicast destination {dst_node}"
            )
        if not words:
            raise ProtocolError("empty DMA descriptor")
        if len(self.queue) >= self.depth:
            self.stats.inc("queue_full_rejects")
            return False
        desc = TxDescriptor(dst_node, 0, list(words))
        if self.telemetry is not None:
            self._post_span(desc, f"unicast->{dst_node} {len(words)}w")
        self.queue.append(desc)
        self.stats.inc("unicast_descriptors")
        return True

    def post_multicast(self, mask: int, words: list[int]) -> bool:
        """Queue a multicast descriptor; False when the queue is full."""
        if not (0 < mask < (1 << self.n_nodes)):
            raise ProtocolError(
                f"dma[{self.node_id}]: multicast mask {mask:#x} out of range "
                f"for {self.n_nodes} nodes"
            )
        if mask & (1 << self.node_id):
            raise ProtocolError(
                f"dma[{self.node_id}]: multicast mask includes this tile"
            )
        if not words:
            raise ProtocolError("empty DMA descriptor")
        if len(self.queue) >= self.depth:
            self.stats.inc("queue_full_rejects")
            return False
        if self.group_mask and mask != self.group_mask:
            # Rewrite the group register.  The shared sequence space only
            # stays coherent if nothing is mid-stream: refuse (retry like
            # a full queue) until the queue is drained and every current
            # member's credits are quiescent, then sync the new members.
            if not self._reregister_group(mask):
                self.stats.inc("group_reregister_stalls")
                return False
        else:
            self.group_mask = mask
        desc = TxDescriptor(MULTICAST_DST, mask, list(words))
        if self.telemetry is not None:
            self._post_span(desc, f"mcast {mask:#x} {len(words)}w")
        self.queue.append(desc)
        self.stats.inc("multicast_descriptors")
        return True

    def _post_span(self, desc: TxDescriptor, name: str) -> None:
        """Open a telemetry lifecycle span for a queued descriptor."""
        self._desc_uid += 1
        desc.uid = self._desc_uid
        self.telemetry.emit(
            f"dma{self.node_id}", "dma_post",
            uid=desc.uid, node=self.node_id, desc=name,
        )

    def _reregister_group(self, mask: int) -> bool:
        """Switch the group register to ``mask`` if quiescent; else False.

        Quiescent = no multicast descriptor queued or streaming, and every
        current member has credited all completed credit windows (the
        at-most-one-partial-window tail is the software's to order with a
        barrier; see the module docstring).  On success the *new* members
        are sent SYNC tokens over the reverse ack path and the engine
        holds streaming until all of them answered.
        """
        if self._active is not None:
            return False
        if any(desc.is_multicast for desc in self.queue):
            return False
        slot = self._mcast_slot
        credited = self.tie.mcast_credited
        for member in mask_members(self.group_mask):
            if credited.get(member, 0) + CREDIT_WINDOW <= slot:
                return False
        new_members = []
        for member in mask_members(mask & ~self.group_mask):
            new_members.append(member)
            # The member's stream fast-forwards to the slot's phase (the
            # SYNC carries slot mod SEQ_WINDOW — only phase alignment
            # matters to the seq-offset scatter and the credit windows);
            # treat all earlier slots as credited on this side so flow
            # control resumes cleanly.
            credited[member] = slot
            self.tie.mcast_sync_acks.discard(member)
            self.tie.pending_credits.push(
                (member, MCAST_SYNC_WORD | (slot & self.tie.sync_slot_mask))
            )
        self._sync_pending = frozenset(new_members)
        self.group_mask = mask
        self.stats.inc("group_reregisters")
        return True

    # -- core-facing (reduction assist / accumulate-on-receive) --------------

    @property
    def rx_busy(self) -> bool:
        """True while a qreduce descriptor is combining or holds a result."""
        return self._rx is not None

    def post_reduce(
        self, src_node: int, values: list[float], op: ReduceOp | str
    ) -> bool:
        """Post an accumulate-on-receive descriptor; False while one is live.

        The engine will combine the next ``2 * len(values)`` words of the
        multicast stream from ``src_node`` into ``values`` (element by
        element, accumulator first) as they arrive.  The previous
        descriptor's result must have been collected with ``qrpoll``
        before a new one is accepted.
        """
        op = ReduceOp.parse(op)
        if not (0 <= src_node < self.n_nodes) or src_node == self.node_id:
            raise ProtocolError(
                f"dma[{self.node_id}]: bad reduce source {src_node}"
            )
        if not values:
            raise ProtocolError("empty reduce descriptor")
        if self._rx is not None:
            self.stats.inc("reduce_busy_rejects")
            return False
        self._rx = _RxReduce(src_node, list(values), op)
        self._rx_done = False
        if self.telemetry is not None:
            self._desc_uid += 1
            self._rx_uid = self._desc_uid
            self.telemetry.emit(
                f"dma{self.node_id}", "dma_post",
                uid=self._rx_uid, node=self.node_id,
                desc=f"qreduce<-{src_node} {len(values)}v",
            )
        self.stats.inc("reduce_descriptors")
        return True

    def rx_pump(self) -> None:
        """Combine at most one arrived double into the accumulator.

        Called once per cycle by the owning node: the assist datapath
        retires one element per cycle, which matches the stream's best
        arrival rate (two 32-bit flits per double), so combining never
        lags arrival in steady state.
        """
        rx = self._rx
        if rx is None or self._rx_done:
            return
        stream = self.tie.mcast_streams.get(rx.src_node)
        if stream is None or not stream.available(2):
            return
        low, high = stream.take(2)
        index = rx.index
        rx.acc[index] = combine_scalar(
            rx.acc[index], words_to_float(low, high), rx.op
        )
        rx.index = index + 1
        self._n_reduced += 1
        if rx.done:
            self._rx_done = True

    def rx_can_progress(self) -> bool:
        """True when a pending qreduce has arrived words to combine."""
        rx = self._rx
        if rx is None or self._rx_done:
            return False
        stream = self.tie.mcast_streams.get(rx.src_node)
        return stream is not None and stream.available(2)

    def rx_result_poll(self) -> list[float] | None:
        """The finished accumulator, or None while still combining.

        Collecting the result clears the descriptor — the accumulator was
        combined in place in local data memory, so this is a one-cycle
        status read, not a copy.
        """
        if self._rx is None or not self._rx_done:
            return None
        result = self._rx.acc
        self._rx = None
        self._rx_done = False
        if self.telemetry is not None and self._rx_uid:
            self.telemetry.emit(
                f"dma{self.node_id}", "dma_retire",
                uid=self._rx_uid, node=self.node_id,
            )
            self._rx_uid = 0
        return result

    # -- node-facing (per-cycle drain) ---------------------------------------

    def pump(self) -> None:
        """Activate the head descriptor when the previous one finished."""
        if self.tie.mcast_nacks:
            self._drain_nacks()
        if len(self._retx) > 2 * CREDIT_LIMIT:
            self._prune_retx()
        if self._active is not None or not self.queue:
            return
        head = self.queue[0]
        if not head.is_multicast:
            # Unicast rides the TIE's existing per-destination streams
            # (same slots, same credits as a core-issued send).
            if self.tie.tx is None:
                self.queue.popleft()
                self.tie.begin_send(head.dst, head.words)
                if self.telemetry is not None and head.uid:
                    # Unicast rides the TIE stream from here on: the
                    # descriptor's engine lifecycle ends at activation.
                    self.telemetry.emit(
                        f"dma{self.node_id}", "dma_retire",
                        uid=head.uid, node=self.node_id,
                    )
            return
        if self._sync_pending:
            # A re-registered group streams only after every new member
            # acknowledged its SYNC (their streams now stand at our slot).
            if not self._sync_pending <= self.tie.mcast_sync_acks:
                self._n_credit_stalls += 1
                return
            self._sync_pending = frozenset()
        self.queue.popleft()
        self._active = self._activate_multicast(head)
        if self.telemetry is not None and head.uid:
            self._active.uid = head.uid
            self.telemetry.emit(
                f"dma{self.node_id}", "dma_activate",
                uid=head.uid, node=self.node_id,
            )

    def _prune_retx(self) -> None:
        """Retire everything the slowest member has credited past."""
        members = tuple(mask_members(self.group_mask))
        if not (self._retx and members):
            return
        credited = self.tie.mcast_credited
        floor = min(credited.get(m, 0) for m in members)
        for slot in [s for s in self._retx if s < floor]:
            del self._retx[slot]

    def _drain_nacks(self) -> None:
        """Turn received multicast NACKs into queued retransmissions."""
        credited = self.tie.mcast_credited
        self._prune_retx()
        nacks = self.tie.mcast_nacks
        while nacks:
            member, slot16 = nacks.popleft()
            self.stats.inc("mcast_nacks_seen")
            floor = credited.get(member, 0)
            delta = (slot16 - floor) & SLOT_MASK
            if delta >= 0x8000:
                self.stats.inc("mcast_nacks_retired")
                continue
            slot = floor + delta
            if slot >= self._mcast_slot or slot not in self._retx:
                # Unsent or already-pruned slot (e.g. a garbled NACK).
                self.stats.inc("mcast_nacks_ignored")
                continue
            if (member, slot) not in self._retx_queued:
                self._retx_queued.add((member, slot))
                self.pending_retx.append((member, slot, self._retx[slot]))

    def _activate_multicast(self, desc: TxDescriptor) -> _ActiveMulticast:
        base = self._mcast_slot
        total = len(desc.words)
        self._mcast_slot = base + total
        members = tuple(mask_members(desc.mask))
        entries = []
        if self.multicast:
            for offset, word in enumerate(desc.words):
                slot = base + offset
                entries.append((slot, None, self._flit(
                    MULTICAST_DST, desc.mask, slot, offset, total, word,
                )))
        else:
            # Unicast fallback: same slots per member, member-major order
            # (mirroring the software linear broadcast's send order).
            for member in members:
                for offset, word in enumerate(desc.words):
                    slot = base + offset
                    entries.append((slot, member, self._flit(
                        member, 1 << member, slot, offset, total, word,
                    )))
        self.stats.inc("messages_started")
        return _ActiveMulticast(entries, members)

    def _flit(self, dst: int, mask: int, slot: int, offset: int, total: int,
              word: int) -> Flit:
        seq_mod = SLOT_MASK + 1 if self.tie.reliable else SEQ_WINDOW
        return Flit(
            dst=dst,
            src=self.node_id,
            ptype=PacketType.MULTICAST,
            subtype=int(SubType.MSG_DATA),
            seq=slot % seq_mod,
            burst=min(4, total - (offset // 4) * 4),
            data=word,
            dst_mask=mask,
        )

    def tx_current(self) -> Flit | None:
        """The credit-gated flit to offer the arbiter this cycle."""
        if self.pending_retx:
            # Retransmissions first: the NACKing member's stream is
            # stalled on this word, and its slot is already credited-gated
            # (it was emitted once), so no new gate applies.
            member, slot, word = self.pending_retx[0]
            self._retx_current = True
            return Flit(
                dst=member,
                src=self.node_id,
                ptype=PacketType.MULTICAST,
                subtype=int(SubType.MSG_RETX),
                seq=slot & SLOT_MASK,
                burst=1,
                data=word,
                dst_mask=1 << member,
            )
        self._retx_current = False
        active = self._active
        if active is None or active.done:
            return None
        slot, member, flit = active.entries[active.index]
        credited = self.tie.mcast_credited
        if member is None:
            # Gate on the slowest group member (ack aggregation), each
            # against its topology-aware credit budget — a member across
            # a slow inter-chiplet link gets the wider window the system
            # builder planned for its round trip.
            for m in active.members:
                if slot >= credited.get(m, 0) + self.tie.initial_credit(m):
                    self._n_credit_stalls += 1
                    return None
        elif slot >= credited.get(member, 0) + self.tie.initial_credit(member):
            self._n_credit_stalls += 1
            return None
        return flit

    def tx_advance(self) -> None:
        """Mark the current flit accepted by the arbiter."""
        if self._retx_current:
            member, slot, _word = self.pending_retx.popleft()
            self._retx_queued.discard((member, slot))
            self._retx_current = False
            self.stats.inc("retx_sent")
            return
        active = self._active
        assert active is not None and not active.done
        if self.tie.reliable:
            slot, _member, flit = active.entries[active.index]
            self._retx[slot] = flit.data
        active.index += 1
        self._n_flits_sent += 1
        if active.done:
            self._active = None
            if self.telemetry is not None and active.uid:
                self.telemetry.emit(
                    f"dma{self.node_id}", "dma_retire",
                    uid=active.uid, node=self.node_id,
                )

    def flush_stats(self) -> None:
        """Fold the batched per-flit counters into the CounterSet."""
        if self._n_flits_sent:
            self.stats.inc("flits_sent", self._n_flits_sent)
            self._n_flits_sent = 0
        if self._n_credit_stalls:
            self.stats.inc("credit_stall_cycles", self._n_credit_stalls)
            self._n_credit_stalls = 0
        if self._n_reduced:
            self.stats.inc("values_reduced", self._n_reduced)
            self._n_reduced = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<DmaTxEngine node {self.node_id} depth={self.depth} "
            f"queued={len(self.queue)} active={self._active is not None}>"
        )
