"""The per-tile DMA/collective TX engine.

The engine sits between the core and the TIE/arbiter message path:

* the core *posts* :class:`TxDescriptor` records into a bounded queue
  (``qsend``/``qmcast`` operations, a couple of cycles each) and keeps
  running — the queue retires the one-slot serialization the blocking
  ``send``/``isend`` path imposes;
* every cycle the owning node pumps the engine: the head descriptor is
  activated (unicast descriptors are handed to the TIE's existing
  streaming machinery; multicast descriptors become an engine-owned flit
  stream) and the current flit is offered to the arbiter's message class.

Multicast descriptors carry a destination bitmask.  In **multicast mode**
the engine emits one MULTICAST flit per payload word with ``dst = -1``
and the mask attached; the fabric replicates it along the deterministic
tree, so a P-way broadcast costs one injection per word.  In **unicast
fallback mode** (``noc_multicast=False``, for networks whose flit format
cannot carry the mask, and as the equivalence baseline) the same
descriptor expands into one ordinary-routed MULTICAST flit per (member,
word) pair — identical receive-side behaviour (same streams, same slots,
same credits), P-1 times the injections.

Sequence space: all multicasts from one tile share a single slot counter,
which is only coherent if every one of them targets the same group —
the hardware analogue of a multicast group register.  The first
``post_multicast`` fixes the group; a later descriptor with a different
mask raises :class:`~repro.errors.ProtocolError`.

Flow control mirrors the unicast credit scheme: every group member
returns one token per CREDIT_WINDOW contiguously completed multicast
slots and the engine gates emission on the *slowest* member
(ack aggregation), bounding the reorder span group-wide.
"""

from __future__ import annotations

import typing
from collections import deque
from collections.abc import Iterator

from repro.errors import ProtocolError
from repro.kernel.stats import CounterSet
from repro.noc.flit import MULTICAST_DST, Flit
from repro.noc.packet import PacketType, SubType
from repro.pe.tie import CREDIT_LIMIT, SEQ_WINDOW

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pe.tie import TieInterface


def mask_members(mask: int) -> Iterator[int]:
    """Node indices of a destination bitmask, ascending."""
    while mask:
        bit = mask & -mask
        mask ^= bit
        yield bit.bit_length() - 1


class TxDescriptor:
    """One queued transmit descriptor (unicast or multicast)."""

    __slots__ = ("dst", "mask", "words")

    def __init__(self, dst: int, mask: int, words: list[int]) -> None:
        self.dst = dst      # destination node, or MULTICAST_DST
        self.mask = mask    # destination bitmask (multicast only)
        self.words = words

    @property
    def is_multicast(self) -> bool:
        return self.dst == MULTICAST_DST

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        target = f"mask={self.mask:#x}" if self.is_multicast else str(self.dst)
        return f"<TxDescriptor ->{target} {len(self.words)}w>"


class _ActiveMulticast:
    """Emission state for the multicast descriptor currently streaming.

    ``entries`` is a flat list of ``(slot, member, flit)`` tuples: in
    multicast mode ``member`` is None (the fabric replicates; credit
    gating is against the whole group), in fallback mode one entry per
    (member, word) with the member's own credit gate.
    """

    __slots__ = ("entries", "members", "index")

    def __init__(self, entries: list, members: tuple[int, ...]) -> None:
        self.entries = entries
        self.members = members
        self.index = 0

    @property
    def done(self) -> bool:
        return self.index >= len(self.entries)


class DmaTxEngine:
    """Descriptor queue + multicast streamer for one tile."""

    def __init__(
        self,
        tie: "TieInterface",
        n_nodes: int,
        depth: int,
        multicast: bool = True,
    ) -> None:
        if depth < 1:
            raise ProtocolError(f"DMA TX queue depth must be >= 1, got {depth}")
        self.tie = tie
        self.node_id = tie.node_id
        self.n_nodes = n_nodes
        self.depth = depth
        self.multicast = multicast
        self.queue: deque[TxDescriptor] = deque()
        self.group_mask = 0          # fixed by the first multicast post
        self._mcast_slot = 0         # next multicast stream slot
        self._active: _ActiveMulticast | None = None
        self.stats = CounterSet(f"dma[{tie.node_id}]")
        # Per-flit hot counters, batched like the TIE's and folded into
        # the CounterSet by flush_stats() at node sleep.
        self._n_flits_sent = 0
        self._n_credit_stalls = 0

    # -- core-facing (descriptor posting) ------------------------------------

    @property
    def free_slots(self) -> int:
        return self.depth - len(self.queue)

    @property
    def busy(self) -> bool:
        """True while any descriptor is queued or streaming."""
        return bool(self.queue) or self._active is not None

    def post_unicast(self, dst_node: int, words: list[int]) -> bool:
        """Queue a unicast descriptor; False when the queue is full."""
        if not (0 <= dst_node < self.n_nodes) or dst_node == self.node_id:
            raise ProtocolError(
                f"dma[{self.node_id}]: bad unicast destination {dst_node}"
            )
        if not words:
            raise ProtocolError("empty DMA descriptor")
        if len(self.queue) >= self.depth:
            self.stats.inc("queue_full_rejects")
            return False
        self.queue.append(TxDescriptor(dst_node, 0, list(words)))
        self.stats.inc("unicast_descriptors")
        return True

    def post_multicast(self, mask: int, words: list[int]) -> bool:
        """Queue a multicast descriptor; False when the queue is full."""
        if not (0 < mask < (1 << self.n_nodes)):
            raise ProtocolError(
                f"dma[{self.node_id}]: multicast mask {mask:#x} out of range "
                f"for {self.n_nodes} nodes"
            )
        if mask & (1 << self.node_id):
            raise ProtocolError(
                f"dma[{self.node_id}]: multicast mask includes this tile"
            )
        if not words:
            raise ProtocolError("empty DMA descriptor")
        if self.group_mask and mask != self.group_mask:
            # One shared sequence space per tile => one group per tile.
            raise ProtocolError(
                f"dma[{self.node_id}]: multicast group is registered as "
                f"{self.group_mask:#x}; cannot switch to {mask:#x} (the "
                f"multicast stream shares one sequence space per tile)"
            )
        if len(self.queue) >= self.depth:
            self.stats.inc("queue_full_rejects")
            return False
        self.group_mask = mask
        self.queue.append(TxDescriptor(MULTICAST_DST, mask, list(words)))
        self.stats.inc("multicast_descriptors")
        return True

    # -- node-facing (per-cycle drain) ---------------------------------------

    def pump(self) -> None:
        """Activate the head descriptor when the previous one finished."""
        if self._active is not None or not self.queue:
            return
        head = self.queue[0]
        if not head.is_multicast:
            # Unicast rides the TIE's existing per-destination streams
            # (same slots, same credits as a core-issued send).
            if self.tie.tx is None:
                self.queue.popleft()
                self.tie.begin_send(head.dst, head.words)
            return
        self.queue.popleft()
        self._active = self._activate_multicast(head)

    def _activate_multicast(self, desc: TxDescriptor) -> _ActiveMulticast:
        base = self._mcast_slot
        total = len(desc.words)
        self._mcast_slot = base + total
        members = tuple(mask_members(desc.mask))
        entries = []
        if self.multicast:
            for offset, word in enumerate(desc.words):
                slot = base + offset
                entries.append((slot, None, self._flit(
                    MULTICAST_DST, desc.mask, slot, offset, total, word,
                )))
        else:
            # Unicast fallback: same slots per member, member-major order
            # (mirroring the software linear broadcast's send order).
            for member in members:
                for offset, word in enumerate(desc.words):
                    slot = base + offset
                    entries.append((slot, member, self._flit(
                        member, 1 << member, slot, offset, total, word,
                    )))
        self.stats.inc("messages_started")
        return _ActiveMulticast(entries, members)

    def _flit(self, dst: int, mask: int, slot: int, offset: int, total: int,
              word: int) -> Flit:
        return Flit(
            dst=dst,
            src=self.node_id,
            ptype=PacketType.MULTICAST,
            subtype=int(SubType.MSG_DATA),
            seq=slot % SEQ_WINDOW,
            burst=min(4, total - (offset // 4) * 4),
            data=word,
            dst_mask=mask,
        )

    def tx_current(self) -> Flit | None:
        """The credit-gated flit to offer the arbiter this cycle."""
        active = self._active
        if active is None or active.done:
            return None
        slot, member, flit = active.entries[active.index]
        credited = self.tie.mcast_credited
        if member is None:
            # Gate on the slowest group member (ack aggregation).
            for m in active.members:
                if slot >= credited.get(m, 0) + CREDIT_LIMIT:
                    self._n_credit_stalls += 1
                    return None
        elif slot >= credited.get(member, 0) + CREDIT_LIMIT:
            self._n_credit_stalls += 1
            return None
        return flit

    def tx_advance(self) -> None:
        """Mark the current flit accepted by the arbiter."""
        active = self._active
        assert active is not None and not active.done
        active.index += 1
        self._n_flits_sent += 1
        if active.done:
            self._active = None

    def flush_stats(self) -> None:
        """Fold the batched per-flit counters into the CounterSet."""
        if self._n_flits_sent:
            self.stats.inc("flits_sent", self._n_flits_sent)
            self._n_flits_sent = 0
        if self._n_credit_stalls:
            self.stats.inc("credit_stall_cycles", self._n_credit_stalls)
            self._n_credit_stalls = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<DmaTxEngine node {self.node_id} depth={self.depth} "
            f"queued={len(self.queue)} active={self._active is not None}>"
        )
