"""Telemetry configuration: the opt-in switch for the observability layer.

Kept free of imports from the system layer so
:class:`~repro.system.config.SystemConfig` can embed it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class TelemetryConfig:
    """What the telemetry subsystem records when enabled.

    Attached to :class:`~repro.system.config.SystemConfig` as
    ``telemetry`` (default ``None`` — with it unset, no telemetry code
    runs and every committed golden cycle count is bit-identical; the
    only hot-path cost anywhere is the existing is-it-None attribute
    check).  With it set, a timing-neutral sampler snapshots every
    registered counter at ``sample_interval``-cycle cadence, span events
    land in a ring-buffered tracer, and the NoC keeps per-link /
    per-switch spatial matrices.
    """

    #: Cycles between metric snapshots (the timeline resolution).
    sample_interval: int = 4096
    #: Record span/lifecycle events (DMA descriptors, NoC ejects) into
    #: the system tracer for Chrome-trace export.
    events: bool = True
    #: Ring-buffer size for recorded events (the *last* N are kept);
    #: None = unbounded.
    event_limit: int | None = 262_144
    #: Keep per-link transit and per-switch deflection/eject matrices in
    #: the NoC fabric (the spatial heatmap view).
    spatial: bool = True
    #: Arm cycle attribution: the eMPI runtime brackets every blocking
    #: collective with zero-cycle ``cp+``/``cph``/``cp-`` notes so the
    #: critical-path extractor (:mod:`repro.telemetry.attribution`) can
    #: thread causal edges through each op.  The per-tile cycle ledgers
    #: themselves ride the always-on state counters and need no flag.
    attribution: bool = False

    def validate(self) -> None:
        if self.sample_interval < 1:
            raise ConfigError(
                f"sample_interval must be >= 1, got {self.sample_interval}"
            )
        if self.event_limit is not None and self.event_limit < 1:
            raise ConfigError(
                f"event_limit must be >= 1 or None, got {self.event_limit}"
            )
