"""Canonical traced workloads for ``medea trace``/``analyze`` and CI.

Each workload builds a telemetry-enabled system, runs it, and hands back
the (system, result) pair the exporters need.  The flagship ``cg``
workload exercises every track type at once: request spans and overlap
regions (non-blocking halos + iallreduce), collective phases, DMA
descriptor lifecycles (ring allreduce on the engine), and injected
faults recovered by the reliability layer.  The ``allreduce-8w-*``
workloads isolate one collective per algorithm (tree / software ring /
hardware multicast+assist) so ``medea analyze`` can name the hop that
bounds each path.

All workloads arm :attr:`TelemetryConfig.attribution` — the zero-cycle
``cp`` notes it adds are timing-neutral by construction (the bench_smoke
guard enforces it), and without them the critical-path section of the
analyze report would be empty.

Lives outside the package root on purpose: it imports the application
layer, which ``repro.telemetry`` itself must stay independent of.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.apps.cg import CgParams, CgResult, run_cg
from repro.apps.collective_bench import (
    CollectiveBenchParams,
    run_collective_bench,
)
from repro.faults import FaultPlan
from repro.system.config import SystemConfig
from repro.system.presets import cg_reference_config
from repro.telemetry.config import TelemetryConfig


@dataclass(frozen=True)
class TraceWorkload:
    """One named traced run: a config/params pair plus its runner.

    ``app`` is any runner with the ``(config, params, observer=...)``
    shape (:func:`run_cg`, :func:`run_collective_bench`, ...); the
    observer hook is how the built system survives the run for the
    exporters.
    """

    name: str
    description: str
    build: Callable[[], tuple[SystemConfig, object]]
    app: Callable = field(default=run_cg)

    def run(self):
        """Execute the workload; returns ``(system, result)``."""
        config, params = self.build()
        captured = {}
        result = self.app(
            config, params,
            observer=lambda system: captured.setdefault("system", system),
        )
        return captured["system"], result


def _cg_full_stack() -> tuple[SystemConfig, CgParams]:
    """8w CG with everything on: DMA ring allreduce, faults, telemetry."""
    config = cg_reference_config(
        dma_tx_queue_depth=4,
        faults=FaultPlan(seed=7, drop_rate=0.002),
        telemetry=TelemetryConfig(sample_interval=2048, attribution=True),
    )
    params = CgParams(
        n=64, iterations=10, model="empi", algorithm="ring", overlap=True,
    )
    return config, params


def _cg_reference() -> tuple[SystemConfig, CgParams]:
    """The PR-3 acceptance point (8w, tree, overlap) with telemetry on.

    No faults or DMA: this is the run whose ~0.96 overlap efficiency the
    sampled timeline must reproduce from counters alone.
    """
    config = cg_reference_config(
        telemetry=TelemetryConfig(sample_interval=2048, attribution=True)
    )
    params = CgParams(
        n=64, iterations=10, model="empi", algorithm="tree", overlap=True,
    )
    return config, params


def _cg_tiny() -> tuple[SystemConfig, CgParams]:
    """2w miniature of the full stack, for fast unit tests and CI."""
    config = SystemConfig(
        n_workers=2, cache_size_kb=8,
        dma_tx_queue_depth=4,
        # A scheduled switch stall guarantees at least one fault event in
        # the trace regardless of how the seeded drop dice land.
        faults=FaultPlan(
            seed=3, drop_rate=0.002, stalls=((1, 2000, 32),),
        ),
        telemetry=TelemetryConfig(sample_interval=512, attribution=True),
    )
    params = CgParams(
        n=12, iterations=3, model="empi", algorithm="ring", overlap=True,
    )
    return config, params


def _allreduce_8w(algorithm: str, **config_kw):
    """One isolated 8w allreduce per algorithm, attribution armed."""
    def build() -> tuple[SystemConfig, CollectiveBenchParams]:
        config = SystemConfig(
            n_workers=8, cache_size_kb=16,
            telemetry=TelemetryConfig(
                sample_interval=1024, attribution=True
            ),
            **config_kw,
        )
        params = CollectiveBenchParams(
            collective="allreduce", model="empi", algorithm=algorithm,
            n_values=16, repeats=4,
        )
        return config, params
    return build


TRACE_WORKLOADS: dict[str, TraceWorkload] = {
    workload.name: workload
    for workload in (
        TraceWorkload(
            "cg",
            "8w CG, ring allreduce on the DMA engine, overlap, faults",
            _cg_full_stack,
        ),
        TraceWorkload(
            "cg-reference",
            "8w CG overlap acceptance point (tree, fault-free)",
            _cg_reference,
        ),
        TraceWorkload(
            "cg-tiny",
            "2w miniature full-stack run (fast; unit tests)",
            _cg_tiny,
        ),
        TraceWorkload(
            "allreduce-8w-tree",
            "8w binomial-tree allreduce microbenchmark",
            _allreduce_8w("tree"),
            app=run_collective_bench,
        ),
        TraceWorkload(
            "allreduce-8w-ring",
            "8w software ring allreduce microbenchmark",
            _allreduce_8w("ring"),
            app=run_collective_bench,
        ),
        TraceWorkload(
            "allreduce-8w-hw",
            "8w hw allreduce (multicast tree + engine reduce assist)",
            _allreduce_8w("hw", dma_tx_queue_depth=4),
            app=run_collective_bench,
        ),
    )
}


def run_trace_workload(name: str):
    """Run a named workload; returns ``(system, result)``."""
    try:
        workload = TRACE_WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(TRACE_WORKLOADS))
        raise KeyError(
            f"unknown trace workload {name!r} (known: {known})"
        ) from None
    return workload.run()


__all__ = [
    "CgResult",
    "TRACE_WORKLOADS",
    "TraceWorkload",
    "run_trace_workload",
]
