"""Chrome trace-event export: the run as a Perfetto-openable timeline.

Renders everything a :class:`~repro.system.medea.MedeaSystem` records —
eMPI request lifecycles and overlap regions (the zero-cycle notes),
collective phases, DMA descriptor lifecycles and NoC ejections (tracer
events), injected faults, and the sampled metric timeline — as standard
trace-event JSON (the ``{"traceEvents": [...]}`` format), one process
per tile, openable in ``ui.perfetto.dev`` or ``chrome://tracing``.

Conventions: 1 simulated cycle = 1 trace microsecond; workers map to
``pid = node id``; NoC/fault/metric tracks get reserved pids above any
real node.  Span pairing happens here at export time: same-label
requests complete in posting order (MPI ordered matching), so a
per-``(rank, label)`` FIFO recovers every span from the flat note
stream; collective phases and overlap regions nest properly, so a stack
suffices.
"""

from __future__ import annotations

import json
from collections import deque

from repro.empi.requests import (
    NOTE_OVERLAP_ENTER,
    NOTE_OVERLAP_EXIT,
    NOTE_PHASE_ENTER,
    NOTE_PHASE_EXIT,
    NOTE_REQUEST_DONE,
    NOTE_REQUEST_POST,
    note_key,
)

#: Reserved pids for non-tile tracks (real node ids stay small).
PID_NOC = 9000
PID_FAULTS = 9001
PID_METRICS = 9002

#: Per-tile thread (track) ids.
TID_REQUESTS = 0
TID_COLLECTIVES = 1
TID_OVERLAP = 2
TID_MARKS = 3
TID_DMA = 4

_TID_NAMES = {
    TID_REQUESTS: "requests",
    TID_COLLECTIVES: "collectives",
    TID_OVERLAP: "overlap",
    TID_MARKS: "marks",
    TID_DMA: "dma",
}


def _payload(label: str, key: str) -> str:
    return label[len(key) + 1:] if len(label) > len(key) else ""


def _note_events(system, end_cycle: int) -> list[dict]:
    """Spans and instants recovered from the zero-cycle note stream."""
    rank_pid = dict(system.rank_to_node)
    events: list[dict] = []
    #: (rank, label) -> posted-at cycles, FIFO (ordered matching).
    open_requests: dict[tuple[int, str], deque] = {}
    #: (rank, tid) -> stack of (name, start cycle) for nesting brackets.
    stacks: dict[tuple[int, int], list[tuple[str, int]]] = {}

    def open_span(rank: int, tid: int, name: str, cycle: int) -> None:
        stacks.setdefault((rank, tid), []).append((name, cycle))

    def close_span(rank: int, tid: int, cycle: int) -> None:
        stack = stacks.get((rank, tid))
        if stack:
            name, start = stack.pop()
            events.append({
                "ph": "X", "pid": rank_pid[rank], "tid": tid,
                "ts": start, "dur": cycle - start, "name": name,
            })

    for cycle, rank, label in system.notes:
        if rank not in rank_pid:
            continue
        key = note_key(label)
        if key == NOTE_REQUEST_POST:
            open_requests.setdefault(
                (rank, label), deque()
            ).append(cycle)
        elif key == NOTE_REQUEST_DONE:
            posts = open_requests.get(
                (rank, f"{NOTE_REQUEST_POST} {_payload(label, key)}")
            )
            if posts:
                start = posts.popleft()
                events.append({
                    "ph": "X", "pid": rank_pid[rank],
                    "tid": TID_REQUESTS, "ts": start,
                    "dur": cycle - start,
                    "name": _payload(label, key) or "request",
                })
        elif key == NOTE_PHASE_ENTER:
            open_span(
                rank, TID_COLLECTIVES,
                _payload(label, key) or "collective", cycle,
            )
        elif key == NOTE_PHASE_EXIT:
            close_span(rank, TID_COLLECTIVES, cycle)
        elif key == NOTE_OVERLAP_ENTER:
            open_span(rank, TID_OVERLAP, "overlap", cycle)
        elif key == NOTE_OVERLAP_EXIT:
            close_span(rank, TID_OVERLAP, cycle)
        else:
            events.append({
                "ph": "i", "pid": rank_pid[rank], "tid": TID_MARKS,
                "ts": cycle, "name": label, "s": "t",
            })
    # Anything still open at the end of the run renders to the last
    # cycle, so a hang is visible as a span running off the edge.
    for (rank, label), posts in open_requests.items():
        for start in posts:
            events.append({
                "ph": "X", "pid": rank_pid[rank], "tid": TID_REQUESTS,
                "ts": start, "dur": end_cycle - start,
                "name": (_payload(label, NOTE_REQUEST_POST) or "request")
                + " (unfinished)",
            })
    for (rank, tid), stack in stacks.items():
        for name, start in stack:
            events.append({
                "ph": "X", "pid": rank_pid[rank], "tid": tid,
                "ts": start, "dur": end_cycle - start,
                "name": f"{name} (unfinished)",
            })
    return events


def _tracer_events(system, end_cycle: int) -> list[dict]:
    """DMA descriptor spans and NoC ejection instants."""
    events: list[dict] = []
    #: (source, uid) -> (name, node, post cycle) for descriptor pairing.
    open_dma: dict[tuple[str, int], tuple[str, int, int]] = {}
    for event in system.tracer.events:
        kind = event.kind
        if kind == "dma_post":
            fields = event.fields
            open_dma[(event.source, fields.get("uid", 0))] = (
                fields.get("desc", "descriptor"),
                fields.get("node", 0),
                event.cycle,
            )
        elif kind in ("dma_retire", "dma_done"):
            fields = event.fields
            entry = open_dma.pop(
                (event.source, fields.get("uid", 0)), None
            )
            if entry is not None:
                name, node, start = entry
                events.append({
                    "ph": "X", "pid": node,
                    "tid": TID_DMA, "ts": start,
                    "dur": event.cycle - start, "name": name,
                })
        elif kind == "dma_activate":
            events.append({
                "ph": "i", "pid": event.fields.get("node", 0),
                "tid": TID_DMA, "ts": event.cycle,
                "name": "activate", "s": "t",
            })
        elif kind == "eject":
            events.append({
                "ph": "i", "pid": PID_NOC,
                "tid": event.fields.get("node", 0),
                "ts": event.cycle,
                "name": f"eject {event.fields.get('ptype', '?')}",
                "s": "t",
            })
    for (source, uid), (name, node, start) in open_dma.items():
        events.append({
            "ph": "X", "pid": node, "tid": TID_DMA, "ts": start,
            "dur": end_cycle - start, "name": f"{name} (unfinished)",
        })
    return events


def _fault_events(system) -> list[dict]:
    injector = getattr(system, "injector", None)
    if injector is None:
        return []
    events = []
    for entry in injector.trace:
        cycle, kind = entry[0], entry[1]
        events.append({
            "ph": "i", "pid": PID_FAULTS, "tid": 0, "ts": cycle,
            "name": kind, "s": "p",
            "args": {"details": [str(item) for item in entry[2:]]},
        })
    return events


def _metric_events(system) -> list[dict]:
    telemetry = getattr(system, "telemetry", None)
    if telemetry is None:
        return []
    events = []
    for cycle, row in telemetry.registry.samples:
        for name, delta in row.items():
            events.append({
                "ph": "C", "pid": PID_METRICS, "tid": 0, "ts": cycle,
                "name": name, "args": {"delta": delta},
            })
    return events


def _metadata(system) -> list[dict]:
    events = []

    def process(pid: int, name: str) -> None:
        events.append({
            "ph": "M", "pid": pid, "tid": 0, "ts": 0,
            "name": "process_name", "args": {"name": name},
        })

    for rank, node in sorted(system.rank_to_node.items()):
        process(node, f"tile{node} rank{rank}")
        for tid, tname in _TID_NAMES.items():
            events.append({
                "ph": "M", "pid": node, "tid": tid, "ts": 0,
                "name": "thread_name", "args": {"name": tname},
            })
    process(PID_NOC, "noc")
    process(PID_FAULTS, "faults")
    process(PID_METRICS, "metrics")
    return events


def chrome_trace_events(system) -> list[dict]:
    """Every track of a finished run, sorted by (pid, tid, ts)."""
    end_cycle = system.sim.cycle
    events = _metadata(system)
    body = (
        _note_events(system, end_cycle)
        + _tracer_events(system, end_cycle)
        + _fault_events(system)
        + _metric_events(system)
    )
    body.sort(key=lambda e: (e["pid"], e["tid"], e["ts"]))
    return events + body


def write_chrome_trace(system, path: str) -> int:
    """Write the trace-event JSON file; returns the event count."""
    events = chrome_trace_events(system)
    with open(path, "w") as handle:
        json.dump(
            {"traceEvents": events, "displayTimeUnit": "ms"},
            handle,
        )
    return len(events)
