"""The observability layer: sampled metrics, trace export, heatmaps.

Opt-in via ``SystemConfig.telemetry`` (a :class:`TelemetryConfig`); with
it unset no telemetry code runs and every committed golden cycle count
is bit-identical.  See ``examples/telemetry.py`` for the full tour.

(Trace workloads live in :mod:`repro.telemetry.workloads`, imported
lazily — they pull in the application layer, which this package root
must not.)
"""

from repro.telemetry.attribution import (
    AttributionError,
    attribution_summary,
    build_report,
    check_conservation,
    critical_paths,
    render_report,
    windowed_link_utilization,
)
from repro.telemetry.chrome_trace import (
    chrome_trace_events,
    write_chrome_trace,
)
from repro.telemetry.config import TelemetryConfig
from repro.telemetry.heatmap import (
    render_heatmap,
    render_link_map,
    render_noc_report,
    render_panel_heatmap,
    render_panel_map,
    render_windowed_utilization,
)
from repro.telemetry.hub import TelemetryHub
from repro.telemetry.registry import (
    MetricRegistry,
    OverlapNoteCounters,
    TelemetrySampler,
    sampled_overlap_efficiency,
)

__all__ = [
    "AttributionError",
    "MetricRegistry",
    "OverlapNoteCounters",
    "TelemetryConfig",
    "TelemetryHub",
    "TelemetrySampler",
    "attribution_summary",
    "build_report",
    "check_conservation",
    "chrome_trace_events",
    "critical_paths",
    "render_heatmap",
    "render_link_map",
    "render_noc_report",
    "render_panel_heatmap",
    "render_panel_map",
    "render_report",
    "render_windowed_utilization",
    "sampled_overlap_efficiency",
    "windowed_link_utilization",
    "write_chrome_trace",
]
