"""ASCII heatmaps for the NoC spatial telemetry view.

Renders the matrices from :meth:`~repro.noc.network.NocFabric.spatial_dict`
— per-link transit counts and per-switch deflection/stall/eject totals —
as terminal-friendly shade grids, for DSE reports and quick triage
without leaving the shell.  The same dict dumps to JSON for external
tooling.  ``medea trace --heatmap``, ``medea analyze`` and the ``noc``
DSE report all render through :func:`render_noc_report`, the one shared
path; :func:`render_windowed_utilization` adds the time axis (per
sample window) that the spatial grids integrate away.
"""

from __future__ import annotations

#: Shade ramp, blank (zero) to full.
SHADES = " .:-=+*#%@"


def _shade(value: float, peak: float) -> str:
    """The ramp character for ``value`` against ``peak``.

    Zero is blank; any activity gets at least the faintest mark so a
    single transit is distinguishable from silence.
    """
    if value <= 0:
        return SHADES[0]
    if peak <= 0:
        return SHADES[-1]
    index = round(value / peak * (len(SHADES) - 1))
    return SHADES[max(1, min(index, len(SHADES) - 1))]


def _peak(rows: list[list[float]]) -> float:
    """The largest cell of a row-major matrix (0 for an empty one)."""
    return max((value for row in rows for value in row), default=0)


def _legend(peak: float) -> str:
    """The shared ramp legend line every grid view ends with."""
    return f"legend: ' '=0 .. '{SHADES[-1]}'={peak:g}"


def render_heatmap(
    rows: list[list[float]], title: str | None = None
) -> str:
    """One shade grid for a row-major ``[y][x]`` matrix, with a legend."""
    peak = _peak(rows)
    lines = []
    if title is not None:
        lines.append(f"{title} (peak={peak:g})")
    for row in rows:
        lines.append(" ".join(_shade(value, peak) for value in row))
    lines.append(_legend(peak))
    return "\n".join(lines)


def render_link_map(
    spatial: dict, node_metric: str = "deflections"
) -> str:
    """Combined node + link view on an expanded ``(2h-1) x (2w-1)`` grid.

    Mesh nodes sit at even positions (shaded by ``node_metric``); the
    character between two adjacent nodes shades the *sum* of transits
    over both directions of that link.  Wrap-around (torus) links have no
    "between" cell and are listed below the grid instead.
    """
    width, height = spatial["width"], spatial["height"]
    nodes = spatial[node_metric]
    flows: dict[tuple[int, int], float] = {}
    wraps: list[str] = []
    for link in spatial["links"]:
        (sx, sy), (dx, dy) = link["src"], link["dst"]
        if abs(sx - dx) + abs(sy - dy) == 1:
            # The between-cell of the expanded grid: midpoint of the
            # doubled node coordinates.
            key = (sx + dx, sy + dy)
            flows[key] = flows.get(key, 0) + link["transits"]
        else:
            wraps.append(
                f"  ({sx},{sy})->({dx},{dy}): {link['transits']}"
            )
    node_peak = _peak(nodes)
    link_peak = max(flows.values(), default=0)
    lines = [
        f"noc spatial map: nodes={node_metric} (peak={node_peak:g}), "
        f"links=transits (peak={link_peak:g})"
    ]
    for gy in range(2 * height - 1):
        chars = []
        for gx in range(2 * width - 1):
            if gx % 2 == 0 and gy % 2 == 0:
                chars.append(_shade(nodes[gy // 2][gx // 2], node_peak))
            elif (gx + gy) % 2 == 1:
                chars.append(_shade(flows.get((gx, gy), 0), link_peak))
            else:
                chars.append(" ")
        lines.append("".join(chars))
    lines.append(_legend(max(node_peak, link_peak)))
    if wraps:
        lines.append("wrap links (transits):")
        lines.extend(wraps)
    return "\n".join(lines)


def _panel_positions(panels: list[dict]) -> dict[int, tuple[int, int, int]]:
    """Map node id -> (panel index, local x, local y)."""
    positions: dict[int, tuple[int, int, int]] = {}
    for index, panel in enumerate(panels):
        for y, row in enumerate(panel["nodes"]):
            for x, node in enumerate(row):
                positions[node] = (index, x, y)
    return positions


def _flatten(rows: list[list[float]]) -> list[float]:
    """Row-major matrix -> per-node list (hierarchical dumps are 1 x n)."""
    return [value for row in rows for value in row]


def render_panel_map(
    spatial: dict, node_metric: str = "deflections"
) -> str:
    """Hierarchical counterpart of :func:`render_link_map`.

    One expanded node+link grid per panel (the IO die and each compute
    chiplet), then the inter-chiplet links — which have no "between"
    cell in any panel — listed busiest-first with their endpoint labels
    (``io``, ``c1:2,0``).
    """
    panels = spatial["panels"]
    labels = spatial["labels"]
    nodes = _flatten(spatial[node_metric])
    positions = _panel_positions(panels)
    flows: list[dict[tuple[int, int], float]] = [{} for __ in panels]
    crossings: list[tuple[float, str]] = []
    for link in spatial["links"]:
        src, dst = link["src_node"], link["dst_node"]
        src_panel, sx, sy = positions[src]
        dst_panel, dx, dy = positions[dst]
        if src_panel == dst_panel:
            key = (sx + dx, sy + dy)
            flows[src_panel][key] = (
                flows[src_panel].get(key, 0) + link["transits"]
            )
        else:
            crossings.append((
                link["transits"],
                f"  {labels[src]}->{labels[dst]}: {link['transits']}",
            ))
    node_peak = max(nodes, default=0)
    link_peak = max(
        (value for panel in flows for value in panel.values()), default=0
    )
    lines = [
        f"noc spatial map: nodes={node_metric} (peak={node_peak:g}), "
        f"links=transits (peak={link_peak:g})"
    ]
    for index, panel in enumerate(panels):
        lines.append(f"{panel['name']}:")
        width, height = panel["width"], panel["height"]
        for gy in range(2 * height - 1):
            chars = []
            for gx in range(2 * width - 1):
                if gx % 2 == 0 and gy % 2 == 0:
                    node = panel["nodes"][gy // 2][gx // 2]
                    chars.append(_shade(nodes[node], node_peak))
                elif (gx + gy) % 2 == 1:
                    chars.append(
                        _shade(flows[index].get((gx, gy), 0), link_peak)
                    )
                else:
                    chars.append(" ")
            lines.append("  " + "".join(chars))
    lines.append(_legend(max(node_peak, link_peak)))
    if crossings:
        lines.append("inter-chiplet links (transits):")
        lines.extend(
            text for __, text in
            sorted(crossings, key=lambda item: -item[0])
        )
    return "\n".join(lines)


def render_panel_heatmap(
    spatial: dict, metric: str, title: str
) -> str:
    """Per-panel shade grids for one per-switch metric.

    The hierarchical analogue of :func:`render_heatmap`: panels share
    one peak so shades compare across chiplets.
    """
    panels = spatial["panels"]
    nodes = _flatten(spatial[metric])
    peak = max(nodes, default=0)
    lines = [f"{title} (peak={peak:g})"]
    for panel in panels:
        lines.append(f"{panel['name']}:")
        for row in panel["nodes"]:
            lines.append(
                "  " + " ".join(_shade(nodes[node], peak) for node in row)
            )
    lines.append(_legend(peak))
    return "\n".join(lines)


def render_windowed_utilization(
    windows: list[dict], per_line: int = 60
) -> str:
    """Shade the busiest link's utilization per sample window over time.

    ``windows`` rows come from
    :func:`~repro.telemetry.attribution.windowed_link_utilization`; each
    contributes one ramp character (its busiest link's flits/cycle
    against the run's peak window), so congestion bursts read as dark
    runs on a time axis the spatial grids integrate away.
    """
    if not windows:
        return "windowed link utilization: no sampled windows"
    peak = max(window["busiest_util"] for window in windows)
    lines = [
        f"windowed link utilization: busiest link per window "
        f"(peak={peak:.3f} flits/cyc over {len(windows)} windows)"
    ]
    for start in range(0, len(windows), per_line):
        chunk = windows[start:start + per_line]
        ramp = "".join(
            _shade(window["busiest_util"], peak) for window in chunk
        )
        lines.append(f"  cycle {chunk[0]['cycle']:>9} |{ramp}|")
    hottest = max(windows, key=lambda window: window["busiest_util"])
    lines.append(
        f"  hottest window: cycle {hottest['cycle']} on "
        f"{hottest['busiest']} ({hottest['busiest_transits']} transits, "
        f"{hottest['busiest_util']:.3f} flits/cyc)"
    )
    lines.append(_legend(peak))
    return "\n".join(lines)


def render_noc_report(
    spatial: dict | None, windows: list[dict] | None = None
) -> str:
    """The full spatial triage text: link map plus per-switch matrices.

    Pass the windowed-utilization rows to append the time axis (the
    trace/analyze CLIs do; callers without a sampled registry omit it).
    """
    if spatial is None:
        return "noc spatial telemetry: off"
    hierarchical = "panels" in spatial
    sections = [
        render_panel_map(spatial) if hierarchical
        else render_link_map(spatial)
    ]
    for metric, title in (
        ("deflections", "switch deflections"),
        ("inject_stalls", "injection stalls"),
        ("ejects", "ejections"),
    ):
        sections.append(
            render_panel_heatmap(spatial, metric, title) if hierarchical
            else render_heatmap(spatial[metric], title)
        )
    if windows is not None:
        sections.append(render_windowed_utilization(windows))
    return "\n\n".join(sections)
