"""ASCII heatmaps for the NoC spatial telemetry view.

Renders the matrices from :meth:`~repro.noc.network.NocFabric.spatial_dict`
— per-link transit counts and per-switch deflection/stall/eject totals —
as terminal-friendly shade grids, for DSE reports and quick triage
without leaving the shell.  The same dict dumps to JSON for external
tooling.  ``medea trace --heatmap``, ``medea analyze`` and the ``noc``
DSE report all render through :func:`render_noc_report`, the one shared
path; :func:`render_windowed_utilization` adds the time axis (per
sample window) that the spatial grids integrate away.
"""

from __future__ import annotations

#: Shade ramp, blank (zero) to full.
SHADES = " .:-=+*#%@"


def _shade(value: float, peak: float) -> str:
    """The ramp character for ``value`` against ``peak``.

    Zero is blank; any activity gets at least the faintest mark so a
    single transit is distinguishable from silence.
    """
    if value <= 0:
        return SHADES[0]
    if peak <= 0:
        return SHADES[-1]
    index = round(value / peak * (len(SHADES) - 1))
    return SHADES[max(1, min(index, len(SHADES) - 1))]


def _peak(rows: list[list[float]]) -> float:
    """The largest cell of a row-major matrix (0 for an empty one)."""
    return max((value for row in rows for value in row), default=0)


def _legend(peak: float) -> str:
    """The shared ramp legend line every grid view ends with."""
    return f"legend: ' '=0 .. '{SHADES[-1]}'={peak:g}"


def render_heatmap(
    rows: list[list[float]], title: str | None = None
) -> str:
    """One shade grid for a row-major ``[y][x]`` matrix, with a legend."""
    peak = _peak(rows)
    lines = []
    if title is not None:
        lines.append(f"{title} (peak={peak:g})")
    for row in rows:
        lines.append(" ".join(_shade(value, peak) for value in row))
    lines.append(_legend(peak))
    return "\n".join(lines)


def render_link_map(
    spatial: dict, node_metric: str = "deflections"
) -> str:
    """Combined node + link view on an expanded ``(2h-1) x (2w-1)`` grid.

    Mesh nodes sit at even positions (shaded by ``node_metric``); the
    character between two adjacent nodes shades the *sum* of transits
    over both directions of that link.  Wrap-around (torus) links have no
    "between" cell and are listed below the grid instead.
    """
    width, height = spatial["width"], spatial["height"]
    nodes = spatial[node_metric]
    flows: dict[tuple[int, int], float] = {}
    wraps: list[str] = []
    for link in spatial["links"]:
        (sx, sy), (dx, dy) = link["src"], link["dst"]
        if abs(sx - dx) + abs(sy - dy) == 1:
            # The between-cell of the expanded grid: midpoint of the
            # doubled node coordinates.
            key = (sx + dx, sy + dy)
            flows[key] = flows.get(key, 0) + link["transits"]
        else:
            wraps.append(
                f"  ({sx},{sy})->({dx},{dy}): {link['transits']}"
            )
    node_peak = _peak(nodes)
    link_peak = max(flows.values(), default=0)
    lines = [
        f"noc spatial map: nodes={node_metric} (peak={node_peak:g}), "
        f"links=transits (peak={link_peak:g})"
    ]
    for gy in range(2 * height - 1):
        chars = []
        for gx in range(2 * width - 1):
            if gx % 2 == 0 and gy % 2 == 0:
                chars.append(_shade(nodes[gy // 2][gx // 2], node_peak))
            elif (gx + gy) % 2 == 1:
                chars.append(_shade(flows.get((gx, gy), 0), link_peak))
            else:
                chars.append(" ")
        lines.append("".join(chars))
    lines.append(_legend(max(node_peak, link_peak)))
    if wraps:
        lines.append("wrap links (transits):")
        lines.extend(wraps)
    return "\n".join(lines)


def render_windowed_utilization(
    windows: list[dict], per_line: int = 60
) -> str:
    """Shade the busiest link's utilization per sample window over time.

    ``windows`` rows come from
    :func:`~repro.telemetry.attribution.windowed_link_utilization`; each
    contributes one ramp character (its busiest link's flits/cycle
    against the run's peak window), so congestion bursts read as dark
    runs on a time axis the spatial grids integrate away.
    """
    if not windows:
        return "windowed link utilization: no sampled windows"
    peak = max(window["busiest_util"] for window in windows)
    lines = [
        f"windowed link utilization: busiest link per window "
        f"(peak={peak:.3f} flits/cyc over {len(windows)} windows)"
    ]
    for start in range(0, len(windows), per_line):
        chunk = windows[start:start + per_line]
        ramp = "".join(
            _shade(window["busiest_util"], peak) for window in chunk
        )
        lines.append(f"  cycle {chunk[0]['cycle']:>9} |{ramp}|")
    hottest = max(windows, key=lambda window: window["busiest_util"])
    lines.append(
        f"  hottest window: cycle {hottest['cycle']} on "
        f"{hottest['busiest']} ({hottest['busiest_transits']} transits, "
        f"{hottest['busiest_util']:.3f} flits/cyc)"
    )
    lines.append(_legend(peak))
    return "\n".join(lines)


def render_noc_report(
    spatial: dict | None, windows: list[dict] | None = None
) -> str:
    """The full spatial triage text: link map plus per-switch matrices.

    Pass the windowed-utilization rows to append the time axis (the
    trace/analyze CLIs do; callers without a sampled registry omit it).
    """
    if spatial is None:
        return "noc spatial telemetry: off"
    sections = [render_link_map(spatial)]
    for metric, title in (
        ("deflections", "switch deflections"),
        ("inject_stalls", "injection stalls"),
        ("ejects", "ejections"),
    ):
        sections.append(render_heatmap(spatial[metric], title))
    if windows is not None:
        sections.append(render_windowed_utilization(windows))
    return "\n\n".join(sections)
