"""ASCII heatmaps for the NoC spatial telemetry view.

Renders the matrices from :meth:`~repro.noc.network.NocFabric.spatial_dict`
— per-link transit counts and per-switch deflection/stall/eject totals —
as terminal-friendly shade grids, for DSE reports and quick triage
without leaving the shell.  The same dict dumps to JSON for external
tooling.
"""

from __future__ import annotations

#: Shade ramp, blank (zero) to full.
SHADES = " .:-=+*#%@"


def _shade(value: float, peak: float) -> str:
    """The ramp character for ``value`` against ``peak``.

    Zero is blank; any activity gets at least the faintest mark so a
    single transit is distinguishable from silence.
    """
    if value <= 0:
        return SHADES[0]
    if peak <= 0:
        return SHADES[-1]
    index = round(value / peak * (len(SHADES) - 1))
    return SHADES[max(1, min(index, len(SHADES) - 1))]


def render_heatmap(
    rows: list[list[float]], title: str | None = None
) -> str:
    """One shade grid for a row-major ``[y][x]`` matrix, with a legend."""
    peak = max((value for row in rows for value in row), default=0)
    lines = []
    if title is not None:
        lines.append(f"{title} (peak={peak:g})")
    for row in rows:
        lines.append(" ".join(_shade(value, peak) for value in row))
    lines.append(f"legend: ' '=0 .. '{SHADES[-1]}'={peak:g}")
    return "\n".join(lines)


def render_link_map(
    spatial: dict, node_metric: str = "deflections"
) -> str:
    """Combined node + link view on an expanded ``(2h-1) x (2w-1)`` grid.

    Mesh nodes sit at even positions (shaded by ``node_metric``); the
    character between two adjacent nodes shades the *sum* of transits
    over both directions of that link.  Wrap-around (torus) links have no
    "between" cell and are listed below the grid instead.
    """
    width, height = spatial["width"], spatial["height"]
    nodes = spatial[node_metric]
    flows: dict[tuple[int, int], float] = {}
    wraps: list[str] = []
    for link in spatial["links"]:
        (sx, sy), (dx, dy) = link["src"], link["dst"]
        if abs(sx - dx) + abs(sy - dy) == 1:
            # The between-cell of the expanded grid: midpoint of the
            # doubled node coordinates.
            key = (sx + dx, sy + dy)
            flows[key] = flows.get(key, 0) + link["transits"]
        else:
            wraps.append(
                f"  ({sx},{sy})->({dx},{dy}): {link['transits']}"
            )
    node_peak = max((v for row in nodes for v in row), default=0)
    link_peak = max(flows.values(), default=0)
    lines = [
        f"noc spatial map: nodes={node_metric} (peak={node_peak:g}), "
        f"links=transits (peak={link_peak:g})"
    ]
    for gy in range(2 * height - 1):
        chars = []
        for gx in range(2 * width - 1):
            if gx % 2 == 0 and gy % 2 == 0:
                chars.append(_shade(nodes[gy // 2][gx // 2], node_peak))
            elif (gx + gy) % 2 == 1:
                chars.append(_shade(flows.get((gx, gy), 0), link_peak))
            else:
                chars.append(" ")
        lines.append("".join(chars))
    if wraps:
        lines.append("wrap links (transits):")
        lines.extend(wraps)
    return "\n".join(lines)


def render_noc_report(spatial: dict | None) -> str:
    """The full spatial triage text: link map plus per-switch matrices."""
    if spatial is None:
        return "noc spatial telemetry: off"
    sections = [render_link_map(spatial)]
    for metric, title in (
        ("deflections", "switch deflections"),
        ("inject_stalls", "injection stalls"),
        ("ejects", "ejections"),
    ):
        sections.append(render_heatmap(spatial[metric], title))
    return "\n\n".join(sections)
