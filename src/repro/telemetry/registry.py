"""MetricRegistry: hierarchical metric names + a delta-sampling timeline.

The simulator already counts everything (every component owns a
:class:`~repro.kernel.stats.CounterSet`; latency-critical paths keep
:class:`~repro.kernel.stats.LatencyStat` histograms) — but only as one
end-of-run number.  The registry unifies those per-component bags under
hierarchical names (``tile3.tie.data_flits_sent``,
``noc.link.(1,1)->(1,2).transits``) and a configurable-cadence sampler
snapshots the *deltas* between visits, so utilization, deflection rate,
credit stalls and retransmits become per-interval curves.

Sources are ``(prefix, provider, flush)`` triples: ``provider`` returns
the source's current absolute values as a flat dict, ``flush`` (optional)
folds any batched hot-path counters in first.  The registry computes the
deltas itself, so providers stay the plain ``as_dict`` accessors the
components already have.

Timing neutrality: sampling only *reads* simulator state (flushes move
already-earned counts between Python dicts), and the sampler component's
periodic wakeups merely add cycles to the kernel's visit schedule — the
same argument as the no-progress watchdog — so simulated cycle counts
are bit-identical with telemetry on or off.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.empi.requests import _EVENT_DELTAS, note_key
from repro.kernel.component import Component
from repro.kernel.stats import CounterSet, LatencyStat

#: A provider returns the source's current absolute counter values.
Provider = Callable[[], dict]


class MetricRegistry:
    """Named metric sources plus the sampled delta timeline."""

    def __init__(self, sample_interval: int = 4096) -> None:
        self.sample_interval = sample_interval
        self._sources: list[tuple[str, Provider, Callable[[], None] | None]] = []
        #: Absolute value at the last sample, per hierarchical name.
        self._prev: dict[str, float] = {}
        #: One row per sample: (cycle, {name: delta for changed names}).
        self.samples: list[tuple[int, dict[str, float]]] = []

    # -- source registration -------------------------------------------------

    def add_source(
        self,
        prefix: str,
        provider: Provider,
        flush: Callable[[], None] | None = None,
    ) -> None:
        """Register a metric source under ``prefix``.

        Keys of the provider's dict become ``{prefix}.{key}`` metric
        names.  Sources are sampled in registration order, so a flush
        hook registered early (e.g. a node's op-stats flush) also
        freshens later sources that share its batching.
        """
        self._sources.append((prefix, provider, flush))

    def add_counters(
        self,
        prefix: str,
        counters: CounterSet,
        flush: Callable[[], None] | None = None,
    ) -> None:
        self.add_source(prefix, counters.as_dict, flush)

    def add_latency(self, prefix: str, stat: LatencyStat) -> None:
        """Register a latency histogram as count/total counters.

        Sampled deltas of ``count``/``total`` give the per-interval mean
        latency without storing per-sample histograms.
        """
        self.add_source(
            prefix, lambda: {"count": stat.count, "total": stat.total}
        )

    # -- sampling ------------------------------------------------------------

    def sample(self, cycle: int) -> dict[str, float]:
        """Snapshot every source; record and return the delta row."""
        prev = self._prev
        row: dict[str, float] = {}
        for prefix, provider, flush in self._sources:
            if flush is not None:
                flush()
            for key, value in provider().items():
                name = f"{prefix}.{key}"
                before = prev.get(name, 0)
                if value != before:
                    row[name] = value - before
                    prev[name] = value
        self.samples.append((cycle, row))
        return row

    # -- timeline access -----------------------------------------------------

    def timeline(self, name: str) -> list[tuple[int, float]]:
        """The (cycle, delta) curve of one metric across all samples."""
        return [
            (cycle, row.get(name, 0)) for cycle, row in self.samples
        ]

    def series(self) -> dict[str, list[tuple[int, float]]]:
        """Every metric that ever moved, as (cycle, delta) curves."""
        names = sorted({name for __, row in self.samples for name in row})
        return {name: self.timeline(name) for name in names}

    def totals(self) -> dict[str, float]:
        """Absolute value of every metric as of the last sample."""
        return dict(self._prev)

    def total(self, name: str, default: float = 0) -> float:
        return self._prev.get(name, default)

    def describe(self, top: int = 6) -> str:
        """One-line snapshot summary for watchdog/timeout reports."""
        if not self.samples:
            return "telemetry: no samples yet"
        cycle, row = self.samples[-1]
        movers = sorted(row.items(), key=lambda kv: -abs(kv[1]))[:top]
        inner = ", ".join(f"{name}+{delta:g}" for name, delta in movers)
        return (
            f"telemetry: last sample at cycle {cycle} "
            f"({len(self.samples)} samples): {inner or 'no movement'}"
        )

    def as_dict(self) -> dict:
        """JSON-ready dump: the full timeline plus the running totals."""
        return {
            "sample_interval": self.sample_interval,
            "samples": [
                {"cycle": cycle, "deltas": row}
                for cycle, row in self.samples
            ],
            "totals": self.totals(),
        }


class OverlapNoteCounters:
    """Cumulative overlap counters folded incrementally from the notes.

    The request layer brackets in-flight windows and overlap regions
    with zero-cycle notes; :func:`~repro.empi.requests.overlap_stats`
    reduces a *finished* run's notes in one sweep.  This tracker does the
    same fold incrementally at each sample, exposing the running totals
    as plain counters (``rank0.inflight_cycles`` …, plus the aggregate
    ``inflight_cycles``/``coexist_cycles``), so the sampled timeline
    carries overlap efficiency per interval — and its end-to-end sum
    reproduces :func:`~repro.empi.requests.mean_overlap_efficiency`
    exactly, from counters alone.
    """

    def __init__(self, notes: list[tuple[int, int, str]], n_workers: int):
        self.notes = notes
        self._index = 0
        #: rank -> (inflight depth, overlap depth, last event cycle).
        self._depth = {rank: (0, 0, 0) for rank in range(n_workers)}
        self._counts: dict[str, int] = {
            "inflight_cycles": 0,
            "overlap_region_cycles": 0,
            "coexist_cycles": 0,
        }

    def values(self) -> dict[str, int]:
        """Fold any new notes, then return the cumulative counters."""
        notes = self.notes
        depth = self._depth
        counts = self._counts
        index = self._index
        while index < len(notes):
            cycle, rank, label = notes[index]
            index += 1
            deltas = _EVENT_DELTAS.get(note_key(label))
            if deltas is None or rank not in depth:
                continue
            inflight, in_overlap, last_cycle = depth[rank]
            elapsed = cycle - last_cycle
            if inflight > 0:
                counts["inflight_cycles"] += elapsed
                counts[f"rank{rank}.inflight_cycles"] = (
                    counts.get(f"rank{rank}.inflight_cycles", 0) + elapsed
                )
            if in_overlap > 0:
                counts["overlap_region_cycles"] += elapsed
            if inflight > 0 and in_overlap > 0:
                counts["coexist_cycles"] += elapsed
                counts[f"rank{rank}.coexist_cycles"] = (
                    counts.get(f"rank{rank}.coexist_cycles", 0) + elapsed
                )
            depth[rank] = (inflight + deltas[0], in_overlap + deltas[1], cycle)
        self._index = index
        return counts


def sampled_overlap_efficiency(registry: MetricRegistry) -> float:
    """Overlap efficiency recomputed from the sampled timeline alone.

    Sums the per-interval ``empi.overlap.*`` deltas across every sample
    row — no access to the notes or to
    :class:`~repro.empi.requests.OverlapStats` — so it proves the
    sampled counters carry the paper's overlap-efficiency number.
    """
    coexist = sum(
        row.get("empi.overlap.coexist_cycles", 0)
        for __, row in registry.samples
    )
    inflight = sum(
        row.get("empi.overlap.inflight_cycles", 0)
        for __, row in registry.samples
    )
    return coexist / inflight if inflight else 0.0


class TelemetrySampler(Component):
    """Periodic registry sampler (the watchdog's timing-neutral pattern).

    Registered last so its snapshots see each cycle's final state; its
    step only reads (and flushes batched counters), so cycle counts stay
    bit-identical with the sampler present.
    """

    def __init__(self, registry: MetricRegistry) -> None:
        super().__init__("telemetry")
        self.registry = registry

    def step(self, cycle: int) -> None:
        self.registry.sample(cycle)
        self.sleep(until=cycle + self.registry.sample_interval)
