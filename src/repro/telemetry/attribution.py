"""Cycle attribution: where every simulated cycle went, and why.

Three layers, each built from state the simulator already keeps:

* **Cycle ledgers** — :meth:`ProcessorNode.cycle_ledger` partitions each
  core's ``[0, end)`` cycles into exact state classes (the always-on
  ``_change_state`` counters close every interval, so the partition sums
  to the total bit-exactly — :func:`check_conservation` enforces it).
  The MPMMU and DMA engines contribute occupancy ledgers (busy/idle and
  streaming/stall counters) that are informative rather than
  conservation-checked: their work overlaps the cores' cycles.

* **Critical-path extraction** — when
  :attr:`~repro.telemetry.config.TelemetryConfig.attribution` is armed,
  the eMPI runtime brackets each blocking/non-blocking collective with
  zero-cycle ``cp+``/``cph``/``cp-`` notes.  :func:`extract_ops` groups
  them per op occurrence; :func:`critical_path` threads causal edges
  (same-rank program order plus FIFO-matched send→recv pairs) and walks
  the binding chain back from the op's last exit, yielding the longest
  dependency path with per-edge slack.  A synthetic ``skew`` edge from
  the op's earliest entry makes the per-edge cycles telescope exactly to
  the op latency (``max(cp-) - min(cp+)``).

* **The bottleneck report** — :func:`build_report` assembles ledgers,
  top-k stall sources (with fault/credit context), the ``_execute``
  dispatch histogram (ROADMAP item 2's input), windowed link utilization
  from the sampled spatial deltas, and the critical paths into one
  JSON-ready dict; :func:`render_report` is its terminal view.
"""

from __future__ import annotations

from repro.empi.requests import (
    NOTE_CP_ENTER,
    NOTE_CP_EXIT,
    NOTE_CP_HOP,
    note_key,
)
from repro.errors import MedeaError

#: Report schema identifier, bumped on breaking layout changes
#: (checked by ``benchmarks/validate_report.py`` and the CI smoke job).
REPORT_SCHEMA = "medea.attribution/1"

#: Ledger classes counted as *stalls* (everything but useful work and
#: the post-exit tail) — the candidate set for the top-k table.
STALL_CLASSES = (
    "wait_msg",
    "mem_stall",
    "credit_stall",
    "tx_stream",
    "barrier_spin",
    "lock_spin",
)

#: Every class a tile ledger carries, in report column order.
LEDGER_CLASSES = ("compute",) + STALL_CLASSES + ("idle",)


class AttributionError(MedeaError):
    """A ledger failed its conservation check — the instrumentation has
    a hole (a state change that bypassed ``_change_state``)."""


# -- cycle ledgers ---------------------------------------------------------------


def tile_ledgers(system) -> list[dict]:
    """Per-tile exact cycle partitions, conservation-checked.

    Each row carries the rank, the tile's topology label (``2,0`` on a
    grid, ``c1:2,0`` on a chiplet system), every ledger class, and
    ``total`` (always equal to the elapsed cycle count —
    :class:`AttributionError` otherwise, because an inexact ledger would
    silently misattribute).
    """
    cycles = system.sim.cycle
    tiles = []
    for node in system.nodes:
        ledger = node.cycle_ledger(cycles)
        total = sum(ledger.values())
        if total != cycles:
            raise AttributionError(
                f"rank {node.rank} ledger sums to {total}, "
                f"expected {cycles}: {ledger}"
            )
        tiles.append({
            "rank": node.rank,
            "tile": system.topology.label_of(node.node_id),
            "total": total,
            **ledger,
        })
    return tiles


def aggregate_ledger(tiles: list[dict]) -> dict:
    """Sum the per-tile ledgers into one machine-wide partition."""
    agg = {cls: 0 for cls in LEDGER_CLASSES}
    for tile in tiles:
        for cls in LEDGER_CLASSES:
            agg[cls] += tile[cls]
    agg["total"] = sum(agg[cls] for cls in LEDGER_CLASSES)
    return agg


def check_conservation(system) -> list[dict]:
    """Raise :class:`AttributionError` unless every tile ledger sums to
    the elapsed cycles exactly; returns the (validated) tile rows."""
    return tile_ledgers(system)


def occupancy_ledgers(system) -> dict:
    """MPMMU and DMA occupancy (overlapping the cores, not partitioned)."""
    cycles = system.sim.cycle
    system.mpmmu.flush_stats()
    busy = system.mpmmu.stats.get("busy_cycles")
    mpmmu = {
        "busy": busy,
        "idle": max(0, cycles - busy),
        "requests": system.mpmmu.stats.get("requests_received"),
    }
    dma = []
    for node in system.nodes:
        if node.dma is None:
            continue
        node.flush_op_stats()
        stats = node.dma.stats
        dma.append({
            "rank": node.rank,
            "flits_sent": stats.get("flits_sent"),
            "credit_stall_cycles": stats.get("credit_stall_cycles"),
            "values_reduced": stats.get("values_reduced"),
            "messages_started": stats.get("messages_started"),
            "retx_sent": stats.get("retx_sent"),
        })
    return {"mpmmu": mpmmu, "dma": dma}


def top_stalls(
    tiles: list[dict],
    cycles: int,
    k: int = 8,
    occupancy: dict | None = None,
    faults: dict | None = None,
) -> list[dict]:
    """The k largest (rank, stall class) cells, with their context.

    Credit stalls carry the rank's DMA credit/retransmit counters (the
    usual culprit); every row carries the fault summary when an injector
    ran, since dropped flits manifest as wait/credit time downstream.
    """
    dma_by_rank = {}
    if occupancy is not None:
        dma_by_rank = {row["rank"]: row for row in occupancy["dma"]}
    rows = []
    for tile in tiles:
        for cls in STALL_CLASSES:
            count = tile[cls]
            if not count:
                continue
            context = []
            if cls in ("credit_stall", "tx_stream"):
                dma = dma_by_rank.get(tile["rank"])
                if dma is not None:
                    context.append(
                        f"dma: {dma['credit_stall_cycles']} credit-stall cyc, "
                        f"{dma['retx_sent']} retx"
                    )
            if faults:
                active = ", ".join(
                    f"{name}={value}"
                    for name, value in sorted(faults.items())
                    if isinstance(value, int) and value
                )
                if active:
                    context.append(f"faults: {active}")
            rows.append({
                "rank": tile["rank"],
                "tile": tile.get("tile", ""),
                "class": cls,
                "cycles": count,
                "share": count / cycles if cycles else 0.0,
                "context": "; ".join(context),
            })
    rows.sort(key=lambda row: (-row["cycles"], row["rank"], row["class"]))
    return rows[:k]


# -- dispatch histogram ----------------------------------------------------------


def dispatch_histogram(system) -> dict[str, int]:
    """Aggregate ``_execute`` opcode counts across tiles, largest first.

    This is the direct input to ROADMAP item 2's dispatch-table work:
    the head of this histogram is the order the jump table should test.
    """
    histogram: dict[str, int] = {}
    for node in system.nodes:
        node.flush_op_stats()
        for name, value in node.stats.as_dict().items():
            if name.startswith("ops_") and value:
                opcode = name[len("ops_"):]
                histogram[opcode] = histogram.get(opcode, 0) + value
    return dict(
        sorted(histogram.items(), key=lambda item: (-item[1], item[0]))
    )


# -- windowed link utilization ---------------------------------------------------


def windowed_link_utilization(registry) -> dict:
    """Per-sample-window busiest link + aggregate flit motion.

    Built from the sampled ``noc.link.*.transits`` deltas the spatial
    matrices already feed the registry, so it costs nothing new; each
    window reports its span, total transits, and the single busiest link
    with its utilization (transits per cycle of window).
    """
    windows = []
    totals: dict[str, float] = {}
    prev_cycle = 0
    for cycle, row in registry.samples:
        links = {
            name: delta for name, delta in row.items()
            if name.startswith("noc.link.") and name.endswith(".transits")
        }
        span = cycle - prev_cycle
        prev_cycle = cycle
        if not links or span <= 0:
            continue
        for name, delta in links.items():
            totals[name] = totals.get(name, 0) + delta
        busiest, transits = max(
            links.items(), key=lambda item: (item[1], item[0])
        )
        windows.append({
            "cycle": cycle,
            "span": span,
            "flits": sum(links.values()),
            "busiest": busiest[len("noc."):-len(".transits")],
            "busiest_transits": transits,
            "busiest_util": transits / span,
        })
    top_links = sorted(
        totals.items(), key=lambda item: (-item[1], item[0])
    )[:8]
    return {
        "windows": windows,
        "top_links": [
            {
                "link": name[len("noc."):-len(".transits")],
                "transits": value,
            }
            for name, value in top_links
        ],
    }


# -- critical-path extraction ----------------------------------------------------


def extract_ops(notes: list[tuple[int, int, str]]) -> dict[str, dict]:
    """Group the ``cp+``/``cph``/``cp-`` notes per op occurrence.

    Returns ``{op_key: {rank: {"start", "end", "hops"}}}`` in first-seen
    order (dicts preserve it); ``hops`` rows are ``(cycle, kind, peer)``
    with ``kind`` in ``snd``/``rcv`` and ``peer`` a rank string or
    ``"*"`` for a hardware multicast post.
    """
    ops: dict[str, dict[int, dict]] = {}

    def rank_entry(op: str, rank: int) -> dict:
        entry = ops.setdefault(op, {})
        return entry.setdefault(
            rank, {"start": None, "end": None, "hops": []}
        )

    for cycle, rank, label in notes:
        head = note_key(label)
        if head == NOTE_CP_ENTER:
            rank_entry(label.split(" ", 1)[1], rank)["start"] = cycle
        elif head == NOTE_CP_EXIT:
            rank_entry(label.split(" ", 1)[1], rank)["end"] = cycle
        elif head == NOTE_CP_HOP:
            __, op, kind, peer = label.split(" ", 3)
            rank_entry(op, rank)["hops"].append((cycle, kind, peer))
    return ops


def critical_path(op: str, ranks: dict[int, dict]) -> dict | None:
    """The binding dependency chain through one collective op.

    Event graph: per rank, ``cp+`` → hops in program order → ``cp-``;
    plus one edge per matched send→recv pair (FIFO per sender/receiver
    pair; a multicast ``snd *`` feeds every receiver naming that
    sender).  Walking back from the *latest* ``cp-`` and always taking
    the latest-arriving predecessor yields the chain that actually
    bounded the op; the runner-up's margin is the edge's ``slack``.  A
    final ``skew`` edge from the earliest ``cp+`` makes the edge cycles
    telescope to ``latency = max(cp-) - min(cp+)`` exactly.
    """
    complete = {
        rank: entry for rank, entry in ranks.items()
        if entry["start"] is not None and entry["end"] is not None
    }
    if not complete:
        return None
    events: dict[int, list[tuple[str, int, str | None]]] = {}
    for rank, entry in complete.items():
        events[rank] = (
            [("start", entry["start"], None)]
            + [(kind, cycle, peer) for cycle, kind, peer in entry["hops"]]
            + [("end", entry["end"], None)]
        )

    # FIFO send queues per (sender, receiver); "*" fans out to everyone.
    send_queues: dict[tuple[int, int], list[tuple[int, int]]] = {}
    for rank, rows in events.items():
        for index, (kind, __, peer) in enumerate(rows):
            if kind != "snd":
                continue
            receivers = (
                [other for other in events if other != rank]
                if peer == "*" else [int(peer)]
            )
            for receiver in receivers:
                send_queues.setdefault((rank, receiver), []).append(
                    (rank, index)
                )
    matches: dict[tuple[int, int], tuple[int, int]] = {}
    for rank, rows in events.items():
        for index, (kind, __, peer) in enumerate(rows):
            if kind != "rcv" or peer == "*":
                continue
            queue = send_queues.get((int(peer), rank))
            if queue:
                matches[(rank, index)] = queue.pop(0)

    def cycle_of(node: tuple[int, int]) -> int:
        return events[node[0]][node[1]][1]

    global_start = min(entry["start"] for entry in complete.values())
    end_rank = max(complete, key=lambda rank: (complete[rank]["end"], rank))
    node = (end_rank, len(events[end_rank]) - 1)
    raw_edges: list[dict] = []
    while True:
        rank, index = node
        preds: list[tuple[tuple[int, int], str]] = []
        if index > 0:
            preds.append(((rank, index - 1), "local"))
        matched = matches.get(node)
        if matched is not None:
            preds.append((matched, "xfer"))
        if not preds:
            break
        # Binding = latest arrival; a tie goes to the transfer edge
        # (the communication is what the report should name).
        preds.sort(key=lambda pred: (cycle_of(pred[0]), pred[1] == "xfer"))
        binding, kind = preds[-1]
        slack = (
            cycle_of(binding) - cycle_of(preds[0][0])
            if len(preds) == 2 else 0
        )
        raw_edges.append({
            "from": binding,
            "to": node,
            "kind": kind,
            "slack": slack,
        })
        node = binding
    raw_edges.reverse()
    origin = node
    edges = []
    if cycle_of(origin) > global_start:
        min_rank = min(
            (rank for rank, entry in complete.items()
             if entry["start"] == global_start),
        )
        edges.append({
            "from_rank": min_rank,
            "from_event": "start",
            "from_cycle": global_start,
            "to_rank": origin[0],
            "to_event": events[origin[0]][origin[1]][0],
            "to_cycle": cycle_of(origin),
            "cycles": cycle_of(origin) - global_start,
            "kind": "skew",
            "slack": 0,
        })
    for edge in raw_edges:
        src, dst = edge["from"], edge["to"]
        src_kind, src_cycle, src_peer = events[src[0]][src[1]]
        dst_kind, dst_cycle, dst_peer = events[dst[0]][dst[1]]
        edges.append({
            "from_rank": src[0],
            "from_event": src_kind if src_peer is None
            else f"{src_kind}>{src_peer}" if src_kind == "snd"
            else f"{src_kind}<{src_peer}",
            "from_cycle": src_cycle,
            "to_rank": dst[0],
            "to_event": dst_kind if dst_peer is None
            else f"{dst_kind}>{dst_peer}" if dst_kind == "snd"
            else f"{dst_kind}<{dst_peer}",
            "to_cycle": dst_cycle,
            "cycles": dst_cycle - src_cycle,
            "kind": edge["kind"],
            "slack": edge["slack"],
        })
    latency = complete[end_rank]["end"] - global_start
    bound = None
    transfer_edges = [edge for edge in edges if edge["kind"] == "xfer"]
    if transfer_edges:
        bound = max(transfer_edges, key=lambda edge: edge["cycles"])
    elif edges:
        bound = max(edges, key=lambda edge: edge["cycles"])
    return {
        "op": op,
        "ranks": len(complete),
        "start": global_start,
        "end": complete[end_rank]["end"],
        "latency": latency,
        "bound_hop": (
            None if bound is None else {
                "from_rank": bound["from_rank"],
                "to_rank": bound["to_rank"],
                "event": bound["to_event"],
                "cycles": bound["cycles"],
                "kind": bound["kind"],
            }
        ),
        "edges": edges,
    }


def critical_paths(notes: list[tuple[int, int, str]]) -> list[dict]:
    """Critical path of every attributed op, in program order."""
    paths = []
    for op, ranks in extract_ops(notes).items():
        path = critical_path(op, ranks)
        if path is not None:
            paths.append(path)
    return paths


# -- the report ------------------------------------------------------------------


def attribution_summary(system) -> dict:
    """Compact ledger summary for DSE experiment rows and telemetry
    dumps: the aggregate partition plus the single worst stall cell."""
    tiles = tile_ledgers(system)
    aggregate = aggregate_ledger(tiles)
    cycles = system.sim.cycle
    worst = max(
        (
            {"rank": tile["rank"], "class": cls, "cycles": tile[cls]}
            for tile in tiles for cls in STALL_CLASSES
        ),
        key=lambda row: row["cycles"],
        default=None,
    )
    return {
        "cycles": cycles,
        "aggregate": aggregate,
        "top_stall": worst if worst and worst["cycles"] else None,
    }


def build_report(system, workload: str = "", stats: dict | None = None) -> dict:
    """Assemble the full bottleneck report for one finished run."""
    cycles = system.sim.cycle
    tiles = tile_ledgers(system)
    occupancy = occupancy_ledgers(system)
    faults = None
    if system.injector is not None:
        faults = system.injector.as_dict()
    links = None
    if system.telemetry is not None:
        links = windowed_link_utilization(system.telemetry.registry)
    return {
        "schema": REPORT_SCHEMA,
        "workload": workload,
        "cycles": cycles,
        "tile_labels": [tile["tile"] for tile in tiles],
        "ledger": {
            "tiles": tiles,
            "aggregate": aggregate_ledger(tiles),
            "mpmmu": occupancy["mpmmu"],
            "dma": occupancy["dma"],
            "conserved": True,
        },
        "stalls": top_stalls(
            tiles, cycles, occupancy=occupancy, faults=faults
        ),
        "dispatch": dispatch_histogram(system),
        "links": links,
        "critical_paths": critical_paths(system.notes),
        **({"faults": faults} if faults is not None else {}),
        **({"stats": stats} if stats is not None else {}),
    }


def _percent(part: int, whole: int) -> str:
    return f"{100.0 * part / whole:5.1f}%" if whole else "  0.0%"


def _rank_name(report: dict, rank: int) -> str:
    """``rank 3 (c1:0,1)`` — rank plus its topology tile label.

    Reports predating the label column (or hand-built ones) fall back
    to the bare rank.
    """
    labels = report.get("tile_labels")
    if labels and 0 <= rank < len(labels):
        return f"rank {rank} ({labels[rank]})"
    return f"rank {rank}"


def render_report(report: dict, top_paths: int = 4) -> str:
    """Terminal view of :func:`build_report`'s dict."""
    cycles = report["cycles"]
    lines = [
        f"cycle attribution: {report['workload'] or 'workload'} "
        f"({cycles} cycles)",
        "",
        "where the cycles went (per tile):",
    ]
    tile_width = max(
        (len(tile.get("tile", "")) for tile in report["ledger"]["tiles"]),
        default=0,
    )
    tile_width = max(tile_width, len("tile")) if tile_width else 0
    header = "  rank  " + (
        f"{'tile':<{tile_width}}  " if tile_width else ""
    ) + "".join(f"{cls:>14}" for cls in LEDGER_CLASSES)
    lines.append(header)
    for tile in report["ledger"]["tiles"]:
        cells = "".join(
            f"{tile[cls]:>7} {_percent(tile[cls], cycles)}"
            for cls in LEDGER_CLASSES
        )
        label = (
            f"{tile.get('tile', ''):<{tile_width}}  " if tile_width else ""
        )
        lines.append(f"  {tile['rank']:>4}  {label}{cells}")
    aggregate = report["ledger"]["aggregate"]
    total = aggregate["total"]
    cells = "".join(
        f"{aggregate[cls]:>7} {_percent(aggregate[cls], total)}"
        for cls in LEDGER_CLASSES
    )
    lines.append(f"   all  {' ' * (tile_width + 2) if tile_width else ''}{cells}")
    mpmmu = report["ledger"]["mpmmu"]
    lines.append(
        f"  mpmmu: busy {mpmmu['busy']} {_percent(mpmmu['busy'], cycles)}"
        f" of {cycles} cycles, {mpmmu['requests']} requests"
    )
    if report["stalls"]:
        lines += ["", "top stall sources:"]
        for row in report["stalls"]:
            context = f"  [{row['context']}]" if row["context"] else ""
            lines.append(
                f"  {_rank_name(report, row['rank']):<18} {row['class']:<13}"
                f" {row['cycles']:>8} cyc {_percent(row['cycles'], cycles)}"
                f"{context}"
            )
    if report["dispatch"]:
        lines += ["", "dispatch histogram (_execute opcodes):"]
        for opcode, count in list(report["dispatch"].items())[:12]:
            lines.append(f"  {opcode:<12} {count:>10}")
    links = report.get("links")
    if links and links["windows"]:
        lines += ["", "busiest link per sample window:"]
        for window in links["windows"][:10]:
            lines.append(
                f"  cycle {window['cycle']:>8}: {window['busiest']}"
                f" {window['busiest_transits']} transits"
                f" ({window['busiest_util']:.2f} flits/cyc,"
                f" window total {window['flits']})"
            )
        if len(links["windows"]) > 10:
            lines.append(
                f"  ... {len(links['windows']) - 10} more windows"
            )
    paths = report["critical_paths"]
    if paths:
        lines += ["", "critical paths:"]
        shown = sorted(
            paths, key=lambda path: -path["latency"]
        )[:top_paths]
        for path in shown:
            bound = path["bound_hop"]
            bound_text = (
                "no transfer edge" if bound is None else
                f"bound by {_rank_name(report, bound['from_rank'])} -> "
                f"{_rank_name(report, bound['to_rank'])} {bound['event']}"
                f" (+{bound['cycles']} cyc)"
            )
            lines.append(
                f"  {path['op']}: {path['latency']} cyc across"
                f" {path['ranks']} ranks, {bound_text}"
            )
            for edge in path["edges"]:
                lines.append(
                    f"    {edge['kind']:<5} {_rank_name(report, edge['from_rank'])}"
                    f" {edge['from_event']} @{edge['from_cycle']}"
                    f" -> {_rank_name(report, edge['to_rank'])} {edge['to_event']}"
                    f" @{edge['to_cycle']}  +{edge['cycles']} cyc"
                    f" (slack {edge['slack']})"
                )
        if len(paths) > len(shown):
            lines.append(f"  ... {len(paths) - len(shown)} more ops")
    return "\n".join(lines)
