"""TelemetryHub: the one object components see when telemetry is on.

Systems build a hub when ``SystemConfig.telemetry`` is set and hand it
to instrumented components as a single gated attribute (``dma.telemetry
= hub``) — the same opt-in pattern as the fault injector, so the
telemetry-off hot path pays only the existing is-it-None check.  The hub
bundles the metric registry with the simulator clock (components like
the DMA engine have no ``cycle`` argument in their API methods) and the
system tracer for span events.
"""

from __future__ import annotations

from repro.kernel.simulator import Simulator
from repro.kernel.trace import Tracer
from repro.telemetry.config import TelemetryConfig
from repro.telemetry.registry import MetricRegistry


class TelemetryHub:
    """Registry + clock + tracer behind one gated attribute."""

    def __init__(
        self, config: TelemetryConfig, sim: Simulator, tracer: Tracer
    ) -> None:
        self.config = config
        self.sim = sim
        self.tracer = tracer
        self.registry = MetricRegistry(config.sample_interval)
        self._finalized_at: int | None = None

    @property
    def cycle(self) -> int:
        """The current simulated cycle (valid while stepping)."""
        return self.sim.cycle

    def emit(self, source: str, kind: str, **fields) -> None:
        """Record a lifecycle event at the current cycle (if events on)."""
        if self.config.events:
            self.tracer.emit(self.sim.cycle, source, kind, **fields)

    def finalize(self, cycle: int) -> None:
        """Take the end-of-run sample (idempotent per cycle).

        The periodic sampler lands on interval boundaries; this closes
        the timeline at the actual last cycle so totals match the
        end-of-run counters exactly.
        """
        if self._finalized_at != cycle:
            self.registry.sample(cycle)
            self._finalized_at = cycle

    def describe(self) -> str:
        """Last-snapshot summary line for watchdog/timeout reports."""
        return self.registry.describe()
