"""Per-tile reliability agent: NACK/retransmit timers and credit probes.

Only instantiated when a fault plan is active (``SystemConfig.faults``),
so the fault-free model carries zero overhead.  The agent is the
*initiative* half of the reliable-delivery protocol in
:mod:`repro.pe.tie`: the TIE reacts to tokens (serving NACKs from its
retransmit buffer, answering probes with its current credit value), and
the agent decides *when* those tokens are owed in the first place.

Detection is timer-driven, never arrival-driven: a receive stream that
has not advanced past a missing slot for ``nack_timeout`` cycles gets a
NACK naming that slot, re-armed with exponential backoff (a NACK or its
retransmission may itself be lost).  Two starvation signals arm the
timer:

* a **gap** — words are buffered beyond a missing slot, so something in
  the middle was dropped;
* **demand** — a consumer asked the stream for words that never arrived
  (:attr:`ReceiveStream.wanted`), which catches tail loss where nothing
  later arrives to expose the hole.  Demand alone waits four times
  longer, because "the sender has not sent yet" looks identical to "the
  tail was dropped" and spurious NACKs are pure overhead.

The TX side is watched symmetrically: a sender credit-stalled for the
same horizon probes the gating peer for its current credit value (credit
tokens carry absolute slots, so the re-issued value is idempotent — this
repairs a *lost credit* the way NACKs repair lost data).

After ``max_retries`` expirations without progress the agent records the
failure on the injector's ``gave_up`` list and stops; it never raises.
Deciding that a silent component is dead is the watchdog's job
(:mod:`repro.kernel.watchdog`), which quotes ``gave_up`` in its report.
"""

from __future__ import annotations

import typing

from repro.pe.tie import (
    CREDIT_LIMIT,
    CREDIT_PROBE_WORD,
    MCAST_CREDIT_PROBE_WORD,
    MCAST_NACK_WORD,
    NACK_WORD,
    SLOT_MASK,
    ReceiveStream,
    TieInterface,
)

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dma.engine import DmaTxEngine
    from repro.faults import FaultInjector

#: Demand-only starvation waits this many times longer than a gap before
#: NACKing (see module docstring).
DEMAND_FACTOR = 4


class _Timer:
    """One armed starvation timer (per stream or per credit-gated peer)."""

    __slots__ = ("front", "deadline", "attempt", "dead")

    def __init__(self, front: int, deadline: int) -> None:
        self.front = front      # progress marker; any advance re-arms
        self.deadline = deadline
        self.attempt = 0
        self.dead = False       # retries exhausted; recorded on gave_up


class ReliabilityAgent:
    """Watches one tile's streams and issues NACK/probe tokens."""

    def __init__(
        self,
        tie: TieInterface,
        injector: "FaultInjector",
        dma: "DmaTxEngine | None" = None,
    ) -> None:
        self.tie = tie
        self.node_id = tie.node_id
        self.injector = injector
        self.dma = dma
        plan = injector.plan
        self.nack_timeout = plan.nack_timeout
        self.backoff = plan.nack_backoff
        self.max_retries = plan.max_retries
        #: Sleep horizon the owning node uses while any timer is armed:
        #: fine enough that a deadline is never overshot by more than
        #: half a timeout, coarse enough to stay off the hot path.
        self.poll_interval = max(8, plan.nack_timeout // 2)
        #: True after a tick that left at least one timer armed; the
        #: node then sleeps with a wakeup instead of indefinitely.
        self.wants_poll = False
        self._timers: dict[tuple, _Timer] = {}

    # -- per-cycle scan ------------------------------------------------------

    def tick(self, cycle: int) -> None:
        """Arm/advance all starvation timers; called early in node.step."""
        tie = self.tie
        live: set[tuple] = set()
        for src, stream in tie.streams.items():
            self._check_stream(cycle, ("rx", src), src, stream,
                               NACK_WORD, live)
        for src, stream in tie.mcast_streams.items():
            self._check_stream(cycle, ("mrx", src), src, stream,
                               MCAST_NACK_WORD, live)
        self._check_tx(cycle, live)
        timers = self._timers
        if len(live) != len(timers):
            for key in [k for k in timers if k not in live]:
                del timers[key]
        self.wants_poll = bool(timers)

    def _check_stream(
        self, cycle: int, key: tuple, src: int, stream: ReceiveStream,
        marker: int, live: set,
    ) -> None:
        gap = bool(stream.slots)
        if not gap and stream.wanted <= stream.lowest_missing:
            return
        live.add(key)
        self._expire(
            cycle, key, front=stream.lowest_missing, dst=src,
            token=marker | (stream.lowest_missing & SLOT_MASK),
            horizon=self.nack_timeout if gap else
            self.nack_timeout * DEMAND_FACTOR,
            what="nack",
        )

    def _check_tx(self, cycle: int, live: set) -> None:
        tie = self.tie
        tx = tie.tx
        if tx is not None and not tx.done:
            dst = tx.dst_node
            floor = tie._peer_credited.get(dst, 0)
            window = min(CREDIT_LIMIT, tie.retx_slots)
            if tx.current_slot() >= floor + window:
                key = ("tx", dst)
                live.add(key)
                self._expire(
                    cycle, key, front=floor, dst=dst,
                    token=CREDIT_PROBE_WORD,
                    horizon=self.nack_timeout, what="credit probe",
                )
        dma = self.dma
        active = dma._active if dma is not None else None
        if active is not None and not active.done:
            slot, member, _flit = active.entries[active.index]
            credited = tie.mcast_credited
            gating = active.members if member is None else (member,)
            for m in gating:
                floor = credited.get(m, 0)
                if slot >= floor + CREDIT_LIMIT:
                    key = ("mtx", m)
                    live.add(key)
                    self._expire(
                        cycle, key, front=floor, dst=m,
                        token=MCAST_CREDIT_PROBE_WORD,
                        horizon=self.nack_timeout, what="mcast credit probe",
                    )

    def _expire(
        self, cycle: int, key: tuple, front: int, dst: int, token: int,
        horizon: int, what: str,
    ) -> None:
        timer = self._timers.get(key)
        if timer is None or timer.front != front:
            self._timers[key] = _Timer(front, cycle + horizon)
            return
        if timer.dead or cycle < timer.deadline:
            return
        if timer.attempt >= self.max_retries:
            timer.dead = True
            self.injector.gave_up.append(
                f"pe[{self.node_id}] gave up on {what} to node {dst} "
                f"({key[0]} stream front slot {front}, "
                f"{timer.attempt} retries exhausted at cycle {cycle})"
            )
            return
        timer.attempt += 1
        timer.deadline = cycle + horizon * (self.backoff ** timer.attempt)
        self.tie.pending_credits.push((dst, token))
        self.injector.counts.inc(
            "nacks_issued" if what == "nack" else "probes_issued"
        )
