"""The processing-element node: core FSM + cache + bridge + TIE + arbiter.

One :class:`ProcessorNode` models a complete MEDEA tile (Fig. 3): the
in-order core executing its program, the L1 cache with its write policy,
the write buffer, the pif2NoC bridge with reorder buffer, the TIE
message-passing interface and the NoC-access arbiter in front of the
single injection port.

Intra-cycle phase order (one ``step`` = one clock):

1. drain one flit from the ejection port (data/req demux of Fig. 2-b),
   then let a fitted DMA engine's reduction assist combine one arrived
   multicast double into its accumulate-on-receive descriptor;
2. issue the next memory job to the bridge if it is idle;
3. offer the bridge's pending flit to the arbiter (memory class);
4. offer the message path's pending flit to the arbiter (message class):
   credits first, then request tokens, then the DMA engine's multicast
   stream (when a :mod:`repro.dma` engine is fitted), then the TIE's
   data stream;
5. run the core — execute program operations until one blocks or costs
   time (at most one timed operation per cycle);
6. arbiter grants at most one flit to the injection port.

The node sleeps whenever nothing above can make progress and is woken by
flit arrival, a scheduled compute/backoff expiry, or job completion.
"""

from __future__ import annotations

import enum
import typing
from collections import deque
from collections.abc import Generator

from repro.bridge.arbiter import NocAccessArbiter
from repro.bridge.pif import MemTransaction
from repro.bridge.pif2noc import Pif2NocBridge
from repro.cache.l1 import L1Cache, WritePolicy
from repro.cache.writebuffer import WriteBuffer
from repro.errors import ProgramError, ProtocolError
from repro.kernel.component import Component
from repro.mem.memory_map import MemoryMap
from repro.mem.scratchpad import Scratchpad
from repro.noc.flit import Flit
from repro.noc.network import NodePorts
from repro.noc.packet import PacketType
from repro.pe.costmodel import FpCostModel
from repro.pe.tie import TieInterface

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dma.engine import DmaTxEngine
    from repro.pe.reliability import ReliabilityAgent


class CoreState(enum.Enum):
    RUNNING = "running"
    WAIT_MEM = "wait_mem"      # blocking transaction in the pipeline
    WAIT_WB = "wait_wb"        # write buffer full, store stalled
    WAIT_TX = "wait_tx"        # streaming a TIE message out
    WAIT_MSG = "wait_msg"      # MPI-style receive pending
    WAIT_REQ = "wait_req"      # control-token receive pending
    WAIT_LOCK = "wait_lock"    # lock denied, backing off and retrying
    WAIT_FENCE = "wait_fence"  # draining all outstanding memory traffic
    DONE = "done"


#: Pre-built counter keys, so state changes and blocking ops never build
#: f-strings on the per-cycle path.
_CYCLES_KEY = {state: f"cycles_{state.value}" for state in CoreState}
_OPS_TAG_KEY = {tag: f"ops_{tag}" for tag in ("uload", "lock", "unlock")}


class _Job:
    """One queued memory-pipeline transaction."""

    __slots__ = ("txn", "tag", "not_before")

    def __init__(self, txn: MemTransaction, tag: str, not_before: int = 0) -> None:
        self.txn = txn
        self.tag = tag  # 'refill' | 'evict' | 'posted' | 'uload' | 'lock' | 'unlock'
        self.not_before = not_before


class ProcessorNode(Component):
    """A worker tile: executes one program against the full memory system."""

    def __init__(
        self,
        rank: int,
        ports: NodePorts,
        cache: L1Cache,
        write_buffer: WriteBuffer,
        bridge: Pif2NocBridge,
        arbiter: NocAccessArbiter,
        tie: TieInterface,
        scratchpad: Scratchpad,
        memory_map: MemoryMap,
        cost: FpCostModel,
        lock_retry_backoff: int = 16,
        recv_overhead: int = 2,
        notes: list[tuple[int, int, str]] | None = None,
        dma: "DmaTxEngine | None" = None,
        reliability: "ReliabilityAgent | None" = None,
    ) -> None:
        super().__init__(f"pe[{rank}]")
        self.rank = rank
        self.node_id = ports.node
        self.ports = ports
        ports.eject.owner = self
        self.cache = cache
        self.write_buffer = write_buffer
        self.bridge = bridge
        self.arbiter = arbiter
        self.tie = tie
        self.scratchpad = scratchpad
        self.map = memory_map
        self.cost = cost
        self.lock_retry_backoff = lock_retry_backoff
        self.recv_overhead = recv_overhead
        self.notes = notes if notes is not None else []
        #: Optional DMA/collective TX engine (None = seed behaviour).
        self.dma = dma
        #: Reliability agent (fault plan active only): NACK/probe timers.
        self.reliability = reliability

        self._program: Generator | None = None
        self.state = CoreState.DONE
        self._state_since = 0
        self._ready_at = 0
        self._send_value: object = None
        self._pending_op: tuple | None = None
        self._jobs: deque[_Job] = deque()
        self._active_job: _Job | None = None
        #: Pending blocking receive: (src_node, n_words, from_mcast_stream).
        self._wait_msg: tuple[int, int, bool] | None = None
        self._pending_req_flit: Flit | None = None
        self._last_op: tuple | None = None
        # Hot-path bindings: the deques backing the RX queue and the TIE
        # credit queue are stable objects, so step() can test them without
        # attribute chains or property calls.
        self._rx_items = ports.eject.queue._items
        self._credit_items = tie.pending_credits._items
        # Hot op counters, batched as plain ints and flushed into the
        # CounterSet whenever the node sleeps (see flush_op_stats).
        self._n_compute = 0
        self._n_compute_cycles = 0
        self._n_load_hit = 0
        self._n_load_miss = 0
        self._n_store_wt = 0
        self._n_store_hit = 0
        self._n_store_miss = 0
        self._n_lmem = 0
        # WAIT_TX cycles where the TIE data stream was credit-gated (the
        # peer's window exhausted), splitting cycles_wait_tx into
        # credit_stall vs plain streaming for the cycle ledger.
        self._n_credit_wait = 0

    # -- program control -------------------------------------------------------

    def load_program(self, program: Generator) -> None:
        """Install a fresh program generator and make the core runnable."""
        if self._program is not None and self.state is not CoreState.DONE:
            raise ProgramError(f"{self.name}: program already running")
        if not hasattr(program, "send"):
            # Accept any iterable of ops (ops that need no results).
            program = (op for op in program)
        self._program = program
        self.state = CoreState.RUNNING
        self._send_value = None
        self._pending_op = None
        self._ready_at = 0
        self.wake()

    @property
    def done(self) -> bool:
        return self.state is CoreState.DONE

    @property
    def drained(self) -> bool:
        """Program finished and every queued side effect has left the node."""
        return (
            self.state is CoreState.DONE
            and not self._jobs
            and self._active_job is None
            and self.bridge.idle
            and not self.tie.tx_busy
            and self._pending_req_flit is None
            and self.tie.pending_credits.empty
            and not self.tie.pending_retx
            and (self.dma is None or not (self.dma.busy or self.dma.rx_busy))
            and not self.arbiter.has_pending
            and self.ports.eject.queue.empty
        )

    # -- clocked behaviour ----------------------------------------------------------

    def step(self, cycle: int) -> None:
        # The six phases of the module docstring, with each phase's cheap
        # emptiness guard inlined so an idle phase costs one attribute test.
        bridge = self.bridge
        tie = self.tie
        dma = self.dma
        if self._rx_items:
            self._phase_rx(cycle)
        if self.reliability is not None:
            # After RX (freshly arrived words clear starvation before any
            # timer can expire on them), before TX (tokens armed this
            # cycle can leave this cycle).
            self.reliability.tick(cycle)
        if dma is not None and dma._rx is not None:
            # Reduction assist: combine one arrived double per cycle.
            dma.rx_pump()
        if self._jobs and self._active_job is None and bridge.idle:
            job = self._jobs[0]
            if job.not_before <= cycle:
                self._jobs.popleft()
                self._active_job = job
                bridge.start(job.txn, cycle)
        arbiter = self.arbiter
        outgoing = bridge._outgoing
        if outgoing and arbiter.offer_memory(outgoing[0]):
            bridge.output_sent()
        if (
            self._credit_items
            or self._pending_req_flit is not None
            or tie.tx is not None
            or tie.pending_retx
            or (dma is not None and dma.busy)
        ):
            self._phase_tie_tx(cycle)
        # Core phase (inlined _phase_core).
        if self.state is not CoreState.RUNNING:
            self._try_unblock(cycle)
        tie.rx_event = False
        if self.state is CoreState.RUNNING and self._ready_at <= cycle:
            self._execute(cycle)
        # Arbiter grant: skipped when it has no flit and no busy port to
        # account for (tick would be side-effect free).
        if arbiter.port.pending is not None or arbiter.has_pending:
            arbiter.tick()
        self._phase_sleep(cycle)

    # 1 -------------------------------------------------------------------------------

    def _phase_rx(self, cycle: int) -> None:
        queue = self.ports.eject.queue
        if queue.empty:
            return
        flit = queue.pop()
        if flit.ptype >= PacketType.MESSAGE:  # MESSAGE or MULTICAST
            self.tie.accept(flit)
        else:
            completed = self.bridge.on_reply(flit, cycle)
            if completed is not None:
                self._job_completed(cycle)

    # 4 -------------------------------------------------------------------------------

    def _phase_tie_tx(self, cycle: int) -> None:
        # Flow-control credits first: they unblock a stalled peer and are
        # generated by the TIE hardware, not the program.
        credit = self.tie.credit_flit()
        if credit is not None:
            if self.arbiter.offer_message(credit):
                self.tie.credit_sent()
            return
        if self.tie.pending_retx:
            # NACK-requested retransmissions next: the peer's stream is
            # stalled on these words (reliable-delivery mode only).
            retx = self.tie.retx_flit()
            if retx is not None and self.arbiter.offer_message(retx):
                self.tie.retx_sent()
            return
        if self._pending_req_flit is not None:
            if self.arbiter.offer_message(self._pending_req_flit):
                self._pending_req_flit = None
                if self.state is CoreState.WAIT_TX:
                    self._resume(cycle, cost=1)
            return
        dma = self.dma
        if dma is not None and dma.busy:
            # The engine drains autonomously: activate the head
            # descriptor (unicast heads ride the TIE's streaming path
            # below) and offer the current multicast flit, one per cycle.
            dma.pump()
            flit = dma.tx_current()
            if flit is not None:
                if self.arbiter.offer_message(flit):
                    dma.tx_advance()
                return
        flit = self.tie.tx_current()
        if flit is None:
            # tx_current() is None with a live tx exactly when the credit
            # gate refused it; a blocked core is credit-stalled this cycle.
            if self.tie.tx is not None and self.state is CoreState.WAIT_TX:
                self._n_credit_wait += 1
            return
        if self.arbiter.offer_message(flit):
            finished = self.tie.tx_advance()
            if finished and self.state is CoreState.WAIT_TX:
                self._resume(cycle, cost=1)

    # 5 -------------------------------------------------------------------------------

    def _try_unblock(self, cycle: int) -> None:
        state = self.state
        if state is CoreState.WAIT_MSG and self.tie.rx_event:
            assert self._wait_msg is not None
            src_node, n_words, from_mcast = self._wait_msg
            if from_mcast:
                stream = self.tie.mcast_stream_from(src_node)
            else:
                stream = self.tie.stream_from(src_node)
            if stream.available(n_words):
                self._wait_msg = None
                self._send_value = stream.take(n_words)
                self._resume(cycle, cost=self.recv_overhead + n_words)
        elif state is CoreState.WAIT_REQ and self.tie.requests:
            self._send_value = self.tie.requests.pop()
            self._resume(cycle, cost=2)
        elif state is CoreState.WAIT_FENCE and self._pipeline_empty():
            self._resume(cycle, cost=1)

    def _pipeline_empty(self) -> bool:
        return not self._jobs and self._active_job is None and self.bridge.idle

    def _resume(self, cycle: int, cost: int) -> None:
        self._change_state(CoreState.RUNNING, cycle)
        self._ready_at = cycle + cost

    def _change_state(self, new_state: CoreState, cycle: int) -> None:
        old = self.state
        if old is not new_state:
            self.stats.inc(_CYCLES_KEY[old], cycle - self._state_since)
            self._state_since = cycle
            self.state = new_state

    # -- the operation interpreter ----------------------------------------------------

    def _execute(self, cycle: int) -> None:
        while True:
            op = self._pending_op
            if op is None:
                op = self._next_op(cycle)
                if op is None:
                    return
            else:
                self._pending_op = None
            self._last_op = op
            code = op[0]
            if code == "compute":
                cycles = op[1]
                if cycles <= 0:
                    continue
                self._ready_at = cycle + cycles
                self._n_compute += 1
                self._n_compute_cycles += cycles
                return
            if code == "load":
                if self._op_load(cycle, op[1]):
                    return
                continue
            if code == "store":
                if self._op_store(cycle, op):
                    return
                continue
            if code == "lmem_read":
                self._send_value = self.scratchpad.read_word(op[1])
                self._ready_at = cycle + Scratchpad.ACCESS_CYCLES
                self._n_lmem += 1
                return
            if code == "lmem_write":
                self.scratchpad.write_word(op[1], op[2])
                self._ready_at = cycle + Scratchpad.ACCESS_CYCLES
                self._n_lmem += 1
                return
            if code == "send":
                if self._tx_port_contended():
                    # A DMA descriptor is streaming through the TIE TX
                    # port; retry the send next cycle instead of
                    # colliding with the engine (hardware would
                    # backpressure the core's TIE write the same way).
                    self._pending_op = op
                    self._ready_at = cycle + 1
                    return
                self.tie.begin_send(op[1], op[2])
                self._change_state(CoreState.WAIT_TX, cycle)
                self.stats.inc("ops_send")
                return
            if code == "recv":
                self._op_recv(cycle, op[1], op[2])
                return
            if code == "sendreq":
                self._pending_req_flit = self.tie.make_request_flit(op[1], op[2])
                self._change_state(CoreState.WAIT_TX, cycle)
                self.stats.inc("ops_sendreq")
                return
            if code == "recvreq":
                if self.tie.requests:
                    self._send_value = self.tie.requests.pop()
                    self._ready_at = cycle + 2
                else:
                    self._change_state(CoreState.WAIT_REQ, cycle)
                self.stats.inc("ops_recvreq")
                return
            if code == "isend":
                # Non-blocking send: write the TX descriptor and keep
                # running; the TIE streams the flits autonomously (the
                # node stays awake while tie.tx is pending).  The program
                # must confirm ("txdone",) before starting another send.
                if self._tx_port_contended():
                    self._pending_op = op
                    self._ready_at = cycle + 1
                    return
                self.tie.begin_send(op[1], op[2])
                self._ready_at = cycle + 2
                self.stats.inc("ops_isend")
                return
            if code == "txdone":
                # One-cycle poll of the TIE TX status register.
                self._send_value = self.tie.tx is None
                self._ready_at = cycle + 1
                self.stats.inc("ops_txdone")
                return
            if code == "trecv":
                # Non-blocking receive: complete at the same cost as a
                # blocking recv when the words are ready, else report
                # None after a one-cycle status poll.
                stream = self.tie.stream_from(op[1])
                n_words = op[2]
                if stream.available(n_words):
                    self._send_value = stream.take(n_words)
                    self._ready_at = cycle + self.recv_overhead + n_words
                else:
                    self._send_value = None
                    self._ready_at = cycle + 1
                self.stats.inc("ops_trecv")
                return
            if code == "qsend":
                # Post a unicast descriptor on the DMA TX queue; result
                # False means the queue was full (retry later).  The core
                # keeps running either way — the queue retires the
                # one-descriptor serialization of isend.
                self._send_value = self._dma().post_unicast(op[1], op[2])
                self._ready_at = cycle + 2
                self.stats.inc("ops_qsend")
                return
            if code == "qmcast":
                # Post a multicast descriptor (destination bitmask).
                self._send_value = self._dma().post_multicast(op[1], op[2])
                self._ready_at = cycle + 2
                self.stats.inc("ops_qmcast")
                return
            if code == "qstat":
                # One-cycle poll of the queue-status register.
                self._send_value = self._dma().free_slots
                self._ready_at = cycle + 1
                self.stats.inc("ops_qstat")
                return
            if code == "qreduce":
                # Post an accumulate-on-receive descriptor: the engine
                # combines the multicast stream from node op[1] into the
                # accumulator op[2] as flits arrive.  False = engine
                # busy with a previous reduce (retry later).
                self._send_value = self._dma().post_reduce(op[1], op[2], op[3])
                self._ready_at = cycle + 2
                self.stats.inc("ops_qreduce")
                return
            if code == "qrpoll":
                # One-cycle poll of the reduce-status register; returns
                # the finished accumulator (clearing the descriptor) or
                # None while the engine is still combining.
                self._send_value = self._dma().rx_result_poll()
                self._ready_at = cycle + 1
                self.stats.inc("ops_qrpoll")
                return
            if code == "mrecv":
                # Blocking receive from the multicast stream of node op[1].
                self._op_recv(cycle, op[1], op[2], from_mcast=True)
                return
            if code == "tmrecv":
                # Non-blocking multicast-stream take (trecv's twin).
                stream = self.tie.mcast_stream_from(op[1])
                n_words = op[2]
                if stream.available(n_words):
                    self._send_value = stream.take(n_words)
                    self._ready_at = cycle + self.recv_overhead + n_words
                else:
                    self._send_value = None
                    self._ready_at = cycle + 1
                self.stats.inc("ops_tmrecv")
                return
            if code == "uload":
                self._enqueue_blocking(
                    MemTransaction(PacketType.SINGLE_READ, self._check(op[1])),
                    "uload", cycle,
                )
                return
            if code == "ustore":
                if self._post_write(op[1], [op[2]], PacketType.SINGLE_WRITE, op):
                    self._ready_at = cycle + 1
                    self.stats.inc("ops_ustore")
                else:
                    self._change_state(CoreState.WAIT_WB, cycle)
                return
            if code == "flush":
                if self._op_flush(cycle, op):
                    return
                continue
            if code == "inval":
                self.cache.invalidate_line(op[1])
                self._ready_at = cycle + 1
                self.stats.inc("ops_inval")
                return
            if code == "fence":
                if self._pipeline_empty():
                    self._ready_at = cycle + 1
                else:
                    self._change_state(CoreState.WAIT_FENCE, cycle)
                return
            if code == "lock":
                self._enqueue_blocking(
                    MemTransaction(PacketType.LOCK, self._check(op[1])),
                    "lock", cycle,
                )
                return
            if code == "unlock":
                self._enqueue_blocking(
                    MemTransaction(PacketType.UNLOCK, self._check(op[1])),
                    "unlock", cycle,
                )
                return
            if code == "note":
                self.notes.append((cycle, self.rank, op[1]))
                continue
            raise ProgramError(f"{self.name}: unknown operation {op!r}")

    def _tx_port_contended(self) -> bool:
        """True when a queued DMA descriptor currently owns the TIE TX.

        Only possible with an engine fitted: without one, a busy TX at a
        send/isend op is a program error and begin_send raises as before.
        """
        return self.dma is not None and self.tie.tx is not None

    def _dma(self) -> "DmaTxEngine":
        if self.dma is None:
            raise ProgramError(
                f"{self.name}: no DMA/TX-queue engine on this tile; set "
                f"dma_tx_queue_depth >= 1 on the SystemConfig"
            )
        return self.dma

    def _next_op(self, cycle: int) -> tuple | None:
        assert self._program is not None
        try:
            op = self._program.send(self._send_value)
        except StopIteration:
            self._change_state(CoreState.DONE, cycle)
            return None
        self._send_value = None
        return op

    # -- memory operations ---------------------------------------------------------------

    def _check(self, addr: int) -> int:
        self.map.check_access(self.rank, addr)
        return addr

    def _op_load(self, cycle: int, addr: int) -> bool:
        """Returns True when the core must stop executing this cycle."""
        self.map.check_access(self.rank, addr)
        line = self.cache.lookup(addr)
        if line is not None:
            self._send_value = line.words[(addr % self.cache.line_bytes) >> 2]
            self._ready_at = cycle + 1
            self._n_load_hit += 1
            return True
        self._n_load_miss += 1
        self._start_refill(addr, cycle, ("load", addr))
        return True

    def _op_store(self, cycle: int, op: tuple) -> bool:
        __, addr, value = op
        self.map.check_access(self.rank, addr)
        if self.cache.policy is WritePolicy.WRITE_THROUGH:
            line = self.cache.lookup(addr, is_write=True)
            if not self._post_write(addr, [value], PacketType.SINGLE_WRITE, op):
                self._change_state(CoreState.WAIT_WB, cycle)
                return True
            if line is not None:
                # Keep the cached copy coherent with memory; stays clean.
                self.cache.write_word(addr, value, mark_dirty=False)
            self._ready_at = cycle + 1
            self._n_store_wt += 1
            return True
        # Write-back: write-allocate on miss.
        line = self.cache.lookup(addr, is_write=True)
        if line is not None:
            self.cache.write_word(addr, value, mark_dirty=True)
            self._ready_at = cycle + 1
            self._n_store_hit += 1
            return True
        self._n_store_miss += 1
        self._start_refill(addr, cycle, ("store_fill", addr, value))
        return True

    def _start_refill(self, addr: int, cycle: int, continuation: tuple) -> None:
        line_addr = self.cache.line_addr(addr)
        needs_wb, victim_addr, victim_words = self.cache.victim_for(addr)
        if needs_wb:
            self._jobs.append(
                _Job(
                    MemTransaction(
                        PacketType.BLOCK_WRITE, victim_addr,
                        write_words=victim_words, blocking=False,
                    ),
                    "evict",
                )
            )
        self._jobs.append(
            _Job(MemTransaction(PacketType.BLOCK_READ, line_addr), "refill")
        )
        self._pending_op = continuation
        self._change_state(CoreState.WAIT_MEM, cycle)

    def _post_write(
        self, addr: int, words: list[int], kind: PacketType, op: tuple
    ) -> bool:
        """Queue a posted write against write-buffer capacity."""
        self._check(addr)
        posted = sum(1 for job in self._jobs if job.tag == "posted")
        if self._active_job is not None and self._active_job.tag == "posted":
            posted += 1
        if posted >= self.write_buffer.depth:
            self.write_buffer.stall_cycles += 1
            self._pending_op = op
            return False
        self._jobs.append(
            _Job(MemTransaction(kind, addr, write_words=words, blocking=False),
                 "posted")
        )
        return True

    def _op_flush(self, cycle: int, op: tuple) -> bool:
        addr = op[1]
        result = self.cache.writeback_line(addr)
        if result is None:
            self._ready_at = cycle + 1
            self.stats.inc("ops_flush_clean")
            return True
        line_addr, words = result
        if not self._post_write(line_addr, words, PacketType.BLOCK_WRITE, op):
            # Roll the dirty bit back: the flush never happened this cycle.
            line = self.cache.probe(addr)
            assert line is not None
            line.dirty = True
            self._change_state(CoreState.WAIT_WB, cycle)
            return True
        self._ready_at = cycle + 1
        self.stats.inc("ops_flush_dirty")
        return True

    def _op_recv(self, cycle: int, src_node: int, n_words: int,
                 from_mcast: bool = False) -> None:
        if from_mcast:
            stream = self.tie.mcast_stream_from(src_node)
            counter = "ops_mrecv"
        else:
            stream = self.tie.stream_from(src_node)
            counter = "ops_recv"
        if stream.available(n_words):
            self._send_value = stream.take(n_words)
            self._ready_at = cycle + self.recv_overhead + n_words
            self.stats.inc(counter)
            return
        self._wait_msg = (src_node, n_words, from_mcast)
        self._change_state(CoreState.WAIT_MSG, cycle)
        self.stats.inc(counter)

    def _enqueue_blocking(self, txn: MemTransaction, tag: str, cycle: int) -> None:
        self._jobs.append(_Job(txn, tag))
        self._change_state(CoreState.WAIT_MEM if tag != "lock" else CoreState.WAIT_LOCK,
                           cycle)
        self.stats.inc(_OPS_TAG_KEY[tag])

    # -- job completion ----------------------------------------------------------------------

    def _job_completed(self, cycle: int) -> None:
        job = self._active_job
        assert job is not None, "bridge completed with no active job"
        self._active_job = None
        tag = job.tag
        if tag == "posted":
            if self.state is CoreState.WAIT_WB:
                # Retry the stalled op next cycle; _pending_op still holds it.
                self._resume(cycle, cost=1)
            return
        if tag == "evict":
            return
        if tag == "refill":
            self.cache.install(job.txn.addr, job.txn.read_words)
            assert self._pending_op is not None
            code = self._pending_op[0]
            if code == "store_fill":
                __, addr, value = self._pending_op
                self._pending_op = None
                self.cache.write_word(addr, value, mark_dirty=True)
                self._resume(cycle, cost=1)
            else:
                # Re-execute the load; it is now a guaranteed hit.
                self._resume(cycle, cost=0)
            return
        if tag == "uload":
            self._send_value = job.txn.read_words[0]
            self._resume(cycle, cost=1)
            return
        if tag == "lock":
            if job.txn.granted:
                self._resume(cycle, cost=1)
            else:
                self.stats.inc("lock_retries")
                self._jobs.append(
                    _Job(
                        MemTransaction(PacketType.LOCK, job.txn.addr),
                        "lock",
                        not_before=cycle + self.lock_retry_backoff,
                    )
                )
            return
        if tag == "unlock":
            self._resume(cycle, cost=1)
            return
        raise ProtocolError(f"unknown job tag {tag!r}")

    # -- sleep decision --------------------------------------------------------------------------

    def _phase_sleep(self, cycle: int) -> None:
        # Fast path: a running core that will be ready within a cycle
        # always stays awake, whatever else is pending.
        if self.state is CoreState.RUNNING and self._ready_at <= cycle + 1:
            return
        if self._rx_items:
            return
        if self.bridge._outgoing:
            return
        if self.arbiter.has_pending:
            return
        if (
            self.tie.tx is not None
            or self._pending_req_flit is not None
            or self._credit_items
            or self.tie.pending_retx
        ):
            return
        if self.dma is not None and (self.dma.busy or self.dma.rx_can_progress()):
            return
        if self._active_job is None and self._jobs:
            head = self._jobs[0]
            if head.not_before <= cycle + 1:
                return
            if self._nothing_but_backoff():
                self.flush_op_stats()
                self.sleep(until=head.not_before)
                return
            return
        if self.state is CoreState.RUNNING:
            if self._ready_at > cycle + 1:
                self.flush_op_stats()
                self.sleep(until=self._ready_at)
            return
        if self.state is CoreState.WAIT_FENCE and self._pipeline_empty():
            return
        # Blocked on an external event (reply flit, message, token) or done.
        self.flush_op_stats()
        if self.reliability is not None and self.reliability.wants_poll:
            # A starvation timer is armed: wake to check it even if no
            # flit ever arrives (the very loss being timed out on).
            self.sleep(until=cycle + self.reliability.poll_interval)
            return
        self.sleep()

    def _nothing_but_backoff(self) -> bool:
        return self.state is CoreState.WAIT_LOCK and self.bridge.idle

    def flush_op_stats(self) -> None:
        """Fold the batched hot-path op counters into the CounterSet.

        Called on every transition to sleep and before any external stats
        read (``MedeaSystem.collect_stats``), so observers see exact values.
        """
        self.tie.flush_stats()
        if self.dma is not None:
            self.dma.flush_stats()
        inc = self.stats.inc
        if self._n_compute:
            inc("ops_compute", self._n_compute)
            inc("compute_cycles", self._n_compute_cycles)
            self._n_compute = 0
            self._n_compute_cycles = 0
        if self._n_load_hit:
            inc("ops_load_hit", self._n_load_hit)
            self._n_load_hit = 0
        if self._n_load_miss:
            inc("ops_load_miss", self._n_load_miss)
            self._n_load_miss = 0
        if self._n_store_wt:
            inc("ops_store_wt", self._n_store_wt)
            self._n_store_wt = 0
        if self._n_store_hit:
            inc("ops_store_hit", self._n_store_hit)
            self._n_store_hit = 0
        if self._n_store_miss:
            inc("ops_store_miss", self._n_store_miss)
            self._n_store_miss = 0
        if self._n_lmem:
            inc("ops_lmem", self._n_lmem)
            self._n_lmem = 0
        if self._n_credit_wait:
            inc("credit_wait_cycles", self._n_credit_wait)
            self._n_credit_wait = 0

    # -- diagnostics --------------------------------------------------------------------------------

    def cycle_ledger(self, end_cycle: int) -> dict[str, int]:
        """Exact per-state cycle partition of ``[0, end_cycle)``.

        Every ``_change_state`` adds ``cycle - _state_since`` to the old
        state's counter and moves ``_state_since``; folding the residual
        ``end_cycle - _state_since`` into the *current* state therefore
        makes the partition sum to ``end_cycle`` bit-exactly, by
        construction.  WAIT_TX is split into ``credit_stall`` (cycles the
        TIE data stream was credit-gated while the core blocked) and
        ``tx_stream`` (the rest: streaming / arbiter / port time) using
        the always-on ``credit_wait_cycles`` counter.  Read-only: flushes
        batched counters but never changes timing.
        """
        self.flush_op_stats()
        raw = {
            state: self.stats.get(_CYCLES_KEY[state]) for state in CoreState
        }
        raw[self.state] += end_cycle - self._state_since
        credit = min(self.stats.get("credit_wait_cycles"),
                     raw[CoreState.WAIT_TX])
        return {
            "compute": raw[CoreState.RUNNING],
            "mem_stall": (
                raw[CoreState.WAIT_MEM]
                + raw[CoreState.WAIT_WB]
                + raw[CoreState.WAIT_FENCE]
            ),
            "credit_stall": credit,
            "tx_stream": raw[CoreState.WAIT_TX] - credit,
            "wait_msg": raw[CoreState.WAIT_MSG],
            "barrier_spin": raw[CoreState.WAIT_REQ],
            "lock_spin": raw[CoreState.WAIT_LOCK],
            "idle": raw[CoreState.DONE],
        }

    def describe_state(self) -> str:
        return (
            f"{self.state.value}, ready_at={self._ready_at}, "
            f"jobs={len(self._jobs)}, active_job="
            f"{self._active_job.tag if self._active_job else None}, "
            f"last_op={self._last_op!r}, bridge={self.bridge.describe()}"
        )
