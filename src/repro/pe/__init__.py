"""Processing element: in-order core model + TIE message-passing interface.

A MEDEA PE is a small in-order RISC (a Tensilica Xtensa LX in the paper)
extended with TIE FIFO ports that connect the register file straight to
the NoC switch.  We model the PE as an operation-level machine: programs
are Python generators yielding architectural operations (loads, stores,
FP computations, TIE sends/receives, cache-management and lock ops); the
:class:`~repro.pe.processor.ProcessorNode` executes them against the cache,
bridge, arbiter and TIE models with per-operation cycle costs from
:class:`~repro.pe.costmodel.FpCostModel`.

This preserves exactly what the paper measures — the sequence and cost of
memory, FP and NoC operations — without modelling ISA encodings.
"""

from repro.pe.costmodel import FpCostModel
from repro.pe.processor import CoreState, ProcessorNode
from repro.pe.program import ProgramContext
from repro.pe.tie import ReceiveStream, TieInterface

__all__ = [
    "CoreState",
    "FpCostModel",
    "ProcessorNode",
    "ProgramContext",
    "ReceiveStream",
    "TieInterface",
]
