"""Per-operation cycle costs for the Xtensa-style core.

The paper quotes Tensilica's double-precision emulation figures: adds and
subtracts average 19 cycles; multiplies average 60 cycles with a 16/32-bit
multiplier, dropping to 26 cycles when the core includes the "Multiply
High" option (Section II-B).  Those numbers drive how compute-heavy a
Jacobi point is relative to the memory system, so they are front and
center here and configurable for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class FpCostModel:
    """Cycle costs of double-precision emulation plus scalar bookkeeping."""

    #: DP add/subtract average (Tensilica emulation library).
    fp_add: int = 19
    #: DP multiply with the Multiply-High option.
    fp_mul_mulhigh: int = 26
    #: DP multiply with only 16/32-bit multipliers.
    fp_mul_basic: int = 60
    #: Whether the configured core includes Multiply High.
    use_mul_high: bool = True
    #: DP compare (used by convergence checks).
    fp_cmp: int = 10
    #: DP divide (emulated; not used by Jacobi but part of the library).
    fp_div: int = 90
    #: Generic integer/address-arithmetic op.
    int_op: int = 1
    #: Taken-branch / loop-maintenance cost charged per loop body.
    loop_overhead: int = 2

    def __post_init__(self) -> None:
        for name in (
            "fp_add",
            "fp_mul_mulhigh",
            "fp_mul_basic",
            "fp_cmp",
            "fp_div",
            "int_op",
            "loop_overhead",
        ):
            if getattr(self, name) < 1:
                raise ConfigError(f"cost {name} must be >= 1")

    @property
    def fp_mul(self) -> int:
        """Effective multiply cost for the configured core."""
        return self.fp_mul_mulhigh if self.use_mul_high else self.fp_mul_basic

    def jacobi_point_cycles(self) -> int:
        """Pure-FP cost of one 4-point stencil update (3 adds + 1 multiply)."""
        return 3 * self.fp_add + self.fp_mul
