"""TIE message-passing interface.

Paper Section II-B: each Xtensa gains TIE ports that behave as FIFO
queues directly attached to the register file.  On send, hardware stamps
every flit with a sequence number (a counter) and resolves the destination
through a small LUT.  On receive, the sequence number is used as an offset
into the processor's local data memory so no sorting buffer is needed for
out-of-order flits, and a double buffer gives single-cycle reads.

The model here is architecturally equivalent:

* **TX** — one pending message at a time, emitted at one flit per cycle
  through the arbiter; per-destination slot counters generate the 4-bit
  wrapping sequence numbers.
* **RX** — a :class:`ReceiveStream` per source implements the seq-offset
  scatter with a two-window (double-buffer) tolerance for out-of-order
  arrival; *request* flits (the SUB-TYPE the paper reserves to distinguish
  requests from generic data) land in a separate control queue, keeping
  synchronization tokens out of the data path.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ProtocolError
from repro.kernel.fifo import Fifo
from repro.kernel.stats import CounterSet
from repro.noc.flit import Flit
from repro.noc.packet import PacketType, SubType

#: Sequence numbers are 4 bits on the wire.
SEQ_WINDOW = 16
#: Double buffering tolerates reordering across two windows.
MAX_SPAN = 2 * SEQ_WINDOW

#: Credit-based flow control over the request segment.  A sender may have
#: at most CREDIT_LIMIT unacknowledged stream slots in flight per
#: destination; the receiving TIE returns one credit token per
#: CREDIT_WINDOW contiguously completed slots.  This bounds the reorder
#: span seen by the receiver strictly below SEQ_WINDOW, so two flits
#: carrying the same 4-bit sequence number can never coexist in the
#: network — the condition the seq-offset scatter needs to be unambiguous.
#: (This is the flow-control role the paper assigns to request packets.)
CREDIT_WINDOW = 8
CREDIT_LIMIT = 16
#: Marker word carried by credit tokens; disjoint from eMPI token encoding.
CREDIT_WORD = 0x7F00_0000
#: Credit marker for the *multicast* stream (see below); every group
#: member returns one per CREDIT_WINDOW contiguous multicast slots, and
#: the DMA engine gates emission on the slowest member — the ack
#: aggregation a hardware collective engine performs.
MCAST_CREDIT_WORD = 0x7F01_0000
#: Multicast group (re-)registration handshake, riding the same reverse
#: request path as the credits.  A SYNC token carries the *phase* of the
#: sender's multicast stream slot (slot mod SEQ_WINDOW — the receiver's
#: absolute numbering is local bookkeeping, and CREDIT_WINDOW divides
#: SEQ_WINDOW, so phase alignment is all the seq-offset scatter and the
#: credit windows need); a *new* group member fast-forwards its receive
#: stream to that phase and answers with a SYNC_ACK, and the sending
#: engine holds the first post-re-registration descriptor until every
#: new member acked.
MCAST_SYNC_WORD = 0x7F02_0000
MCAST_SYNC_ACK_WORD = 0x7F03_0000
#: SYNC carries the slot phase (mod SEQ_WINDOW) in its low bits.
MCAST_SYNC_SLOT_MASK = SEQ_WINDOW - 1

#: Reliable-delivery control tokens (fault layer only; same 0x7Fxx_0000
#: marker family, still disjoint from eMPI token encoding).  In reliable
#: mode every credit/sync/NACK token carries an *absolute* stream slot
#: (mod 2^16) in its low 16 bits instead of being a bare increment — a
#: lost or duplicated token then merely delays the window instead of
#: corrupting it, and an idempotent probe can always resynchronize.
#: NACKs name the receiver's lowest missing slot; probes ask the peer to
#: re-send its current credit value after a suspicious stall.
NACK_WORD = 0x7F04_0000
MCAST_NACK_WORD = 0x7F05_0000
CREDIT_PROBE_WORD = 0x7F06_0000
MCAST_CREDIT_PROBE_WORD = 0x7F07_0000
#: High-half marker match for the whole token family.
MARKER_MASK = 0xFFFF_0000
#: Low-half payload of reliable-mode tokens (absolute slot mod 2^16).
SLOT_MASK = 0xFFFF


class ReceiveStream:
    """In-order word stream reassembled from out-of-order flits.

    Slot accounting is continuous across messages: flit *k* of the stream
    carries sequence number ``k % 16``, and arrivals are scattered into
    their slot on receipt (the hardware writes ``base + seq`` in local
    memory).  ``lowest_missing`` is the front of the current window; a
    sequence number that would land more than two windows ahead means the
    hardware double buffer would have been overrun, which is a protocol
    error rather than something to hide.
    """

    __slots__ = ("slots", "lowest_missing", "consumed", "max_span",
                 "credited_upto", "wide", "wanted")

    def __init__(self) -> None:
        self.slots: dict[int, int] = {}
        self.lowest_missing = 0
        self.consumed = 0
        self.max_span = 0
        #: Slots for which credit tokens have already been issued.
        self.credited_upto = 0
        #: Reliable mode: flits carry 16-bit sequence numbers, so arrivals
        #: place exactly and duplicates (retransmit + late original) are
        #: detected and dropped instead of aliasing into a future frame.
        self.wide = False
        #: Highest slot a consumer has asked :meth:`available` for and not
        #: yet received — the reliability agent's starvation signal for
        #: tail loss (nothing buffered, but someone is waiting).
        self.wanted = 0

    def insert(self, seq: int, word: int) -> bool:
        """Scatter one arrival; False = duplicate, silently discarded.

        Duplicates can only occur in reliable mode (a retransmit racing
        its delayed original); the fault-free 4-bit protocol never
        duplicates, so the narrow path keeps treating a same-slot arrival
        as the double-buffer overrun it would be in hardware.
        """
        if self.wide:
            delta = (seq - self.lowest_missing) & SLOT_MASK
            if delta >= 0x8000:
                return False  # behind the front: a stale duplicate
            slot = self.lowest_missing + delta
            if slot in self.slots:
                return False  # duplicate of a buffered arrival
            if delta >= MAX_SPAN:
                raise ProtocolError(
                    f"reorder span exceeded double buffer: seq={seq}, "
                    f"oldest missing slot {self.lowest_missing}"
                )
        else:
            if not (0 <= seq < SEQ_WINDOW):
                raise ProtocolError(
                    f"sequence number {seq} exceeds 4-bit field"
                )
            # The two hardware buffers are frame-aligned: frame k covers
            # slots [16k, 16k+16).  A flit lands in the frame of the
            # oldest missing slot unless that slot already arrived, in
            # which case it belongs to the next frame (the second buffer).
            frame_base = (self.lowest_missing // SEQ_WINDOW) * SEQ_WINDOW
            slot = frame_base + seq
            if slot < self.lowest_missing or slot in self.slots:
                slot += SEQ_WINDOW
            if slot in self.slots:
                raise ProtocolError(
                    f"reorder span exceeded double buffer: seq={seq}, "
                    f"oldest missing slot {self.lowest_missing}"
                )
        self.slots[slot] = word
        span = slot - self.lowest_missing
        if span > self.max_span:
            self.max_span = span
        while self.lowest_missing in self.slots:
            self.lowest_missing += 1
        return True

    def available(self, n_words: int) -> bool:
        """True when the next ``n_words`` of the stream are contiguous."""
        need = self.consumed + n_words
        if need <= self.lowest_missing:
            return True
        if need > self.wanted:
            self.wanted = need
        return False

    def take(self, n_words: int) -> list[int]:
        if not self.available(n_words):
            raise ProtocolError(f"take({n_words}) on incomplete stream")
        start = self.consumed
        self.consumed = start + n_words
        return [self.slots.pop(start + i) for i in range(n_words)]

    @property
    def pending_words(self) -> int:
        return self.lowest_missing - self.consumed

    def realign(self, phase: int) -> None:
        """Fast-forward an idle stream to slot phase ``phase`` (group sync).

        Used when this stream's sender re-registers its multicast group
        with this node as a new member: the shared sequence space stands
        at some slot with ``slot % SEQ_WINDOW == phase``, so the empty
        stream jumps forward to the nearest slot of that phase.  Only the
        phase matters — this stream's absolute numbering is local
        bookkeeping, and credit windows divide the sequence window, so
        windowed crediting stays aligned with the sender's counters.  A
        stream holding unconsumed or out-of-order words cannot be moved —
        that data would be lost, which is a protocol violation, not a
        detail to hide.
        """
        span = SLOT_MASK + 1 if self.wide else SEQ_WINDOW
        if not (0 <= phase < span):
            raise ProtocolError(f"sync phase {phase} exceeds the seq window")
        if self.slots or self.consumed != self.lowest_missing:
            raise ProtocolError(
                f"multicast stream re-synced with {self.pending_words} "
                f"unconsumed word(s) and {len(self.slots)} buffered flit(s)"
            )
        base = self.lowest_missing
        base += (phase - base) % span
        self.lowest_missing = base
        self.consumed = base
        self.credited_upto = base


class _PendingSend:
    """TX state for the message currently streaming out."""

    __slots__ = ("dst_node", "words", "index", "flits", "base_slot")

    def __init__(self, dst_node: int, words: list[int], flits: list[Flit],
                 base_slot: int):
        self.dst_node = dst_node
        self.words = words
        self.index = 0
        self.flits = flits
        self.base_slot = base_slot

    @property
    def done(self) -> bool:
        return self.index >= len(self.flits)

    def current(self) -> Flit:
        return self.flits[self.index]

    def current_slot(self) -> int:
        return self.base_slot + self.index


class TieInterface:
    """Send/receive state of one PE's TIE ports."""

    def __init__(
        self,
        node_id: int,
        request_queue_depth: int = 64,
        credit_plan: dict[int, int] | None = None,
    ) -> None:
        self.node_id = node_id
        #: Topology-aware per-peer initial credit limits (slots in flight
        #: before the first credit token).  The system builder fills this
        #: from the topology's path latencies so high-RTT peers (across
        #: inter-chiplet links) get windows covering their round trip;
        #: peers absent from the plan use the hardware default
        #: CREDIT_LIMIT.  The 4-bit wire protocol caps any entry at
        #: CREDIT_LIMIT — only the wide (reliable) sequence format can
        #: track a larger span — so the builder clamps accordingly.
        self.credit_plan: dict[int, int] = credit_plan or {}
        self.streams: dict[int, ReceiveStream] = {}
        #: Separate per-source streams for multicast traffic: a multicast
        #: group shares one sequence space at the sender, which cannot be
        #: the unicast per-destination space (different receivers would
        #: disagree on slot numbering), so arrivals are scattered into
        #: their own double-buffered stream.
        self.mcast_streams: dict[int, ReceiveStream] = {}
        self.requests: Fifo[tuple[int, int]] = Fifo(
            request_queue_depth, name=f"tie[{node_id}].req"
        )
        self._send_slots: dict[int, int] = {}
        #: Per-destination highest stream slot the peer has credited.
        self._credit_limit: dict[int, int] = {}
        #: Multicast slots credited back, per group member (sender side);
        #: read by the DMA engine, which gates on the minimum.
        self.mcast_credited: dict[int, int] = {}
        #: Members that acknowledged a group-sync token (sender side);
        #: the DMA engine holds re-registered descriptors on this set.
        self.mcast_sync_acks: set[int] = set()
        #: Credit tokens owed to peers: (destination node, marker word).
        self.pending_credits: Fifo[tuple[int, int]] = Fifo(
            None, name=f"tie[{node_id}].cr"
        )
        self.tx: _PendingSend | None = None
        #: Reliable-delivery mode (fault layer active): 16-bit wire
        #: sequence numbers, absolute credit tokens, and a bounded
        #: retransmit buffer serving NACKs.  Default off — the fault-free
        #: protocol below is bit-identical to the pre-fault-layer model.
        self.reliable = False
        #: :class:`repro.faults.FaultInjector` when reliable (credit-drop
        #: hooks + fault accounting); None otherwise.
        self.faults = None
        #: Backpressure bound on emitted-but-unretired slots per peer
        #: (the modelled retransmit SRAM depth; <= CREDIT_LIMIT).
        self.retx_slots = CREDIT_LIMIT
        #: Per-destination absolute credit floor confirmed by the peer
        #: (reliable mode replacement for the incremental _credit_limit).
        self._peer_credited: dict[int, int] = {}
        #: Per-destination retransmit buffer: slot -> word, filled as
        #: flits are emitted and pruned as the peer's credits retire them.
        self._retx: dict[int, dict[int, int]] = {}
        #: NACK-requested retransmissions awaiting a TX slot:
        #: (dst, slot, word), drained by the node at one flit per cycle.
        self.pending_retx: deque[tuple[int, int, int]] = deque()
        self._retx_queued: set[tuple[int, int]] = set()
        #: Multicast NACKs for the DMA engine: (member, slot mod 2^16).
        self.mcast_nacks: deque[tuple[int, int]] = deque()
        self.stats = CounterSet(f"tie[{node_id}]")
        #: Set when a flit arrives; the node uses it to re-check waiters.
        self.rx_event = False
        # Per-flit hot counters, batched as plain ints and folded into the
        # CounterSet by flush_stats() whenever the owning node sleeps —
        # the same pattern as the core/MPMMU counters.
        self._n_data_flits_sent = 0
        self._n_data_flits_received = 0
        self._n_credit_stall_cycles = 0
        self._n_mcast_flits_received = 0

    def initial_credit(self, peer: int) -> int:
        """Initial in-flight slot budget toward ``peer`` (credit plan)."""
        return self.credit_plan.get(peer, CREDIT_LIMIT)

    # -- RX ------------------------------------------------------------------

    def accept(self, flit: Flit) -> None:
        """Sort an incoming MESSAGE flit into data stream or request queue."""
        if flit.ptype != PacketType.MESSAGE:
            if flit.ptype == PacketType.MULTICAST:
                self._accept_multicast(flit)
                return
            raise ProtocolError(f"TIE got non-message flit {flit!r}")
        self.rx_event = True
        if flit.subtype == SubType.MSG_REQUEST:
            # Token family dispatch on the marker half-word.  In the
            # fault-free protocol every token is exactly its marker (low
            # bits zero); reliable mode carries an absolute slot in the
            # low bits, which the masked match makes transparent here.
            marker = flit.data & MARKER_MASK
            if marker == CREDIT_WORD:
                # The peer completed a window of our stream to it.
                if self.faults is not None and self.faults.eat_credit(
                    self.node_id, flit.src
                ):
                    return
                if self.reliable:
                    self._apply_credit(flit.src, flit.data & SLOT_MASK)
                else:
                    limit = self._credit_limit.get(
                        flit.src, self.initial_credit(flit.src)
                    )
                    self._credit_limit[flit.src] = limit + CREDIT_WINDOW
                self.stats.inc("credits_received")
                return
            if marker == MCAST_CREDIT_WORD:
                # A multicast group member completed a window.
                if self.faults is not None and self.faults.eat_mcast_credit(
                    self.node_id, flit.src
                ):
                    return
                if self.reliable:
                    self._apply_mcast_credit(flit.src, flit.data & SLOT_MASK)
                else:
                    credited = self.mcast_credited.get(flit.src, 0)
                    self.mcast_credited[flit.src] = credited + CREDIT_WINDOW
                self.stats.inc("mcast_credits_received")
                return
            if marker == MCAST_SYNC_WORD:
                # The peer re-registered its multicast group with this
                # node as a new member: align our stream to the phase of
                # its shared sequence space and ack on the reverse path.
                phase = flit.data & self.sync_slot_mask
                self.mcast_stream_from(flit.src).realign(phase)
                self.pending_credits.push((flit.src, MCAST_SYNC_ACK_WORD))
                self.stats.inc("mcast_syncs_received")
                return
            if flit.data == MCAST_SYNC_ACK_WORD:
                self.mcast_sync_acks.add(flit.src)
                self.stats.inc("mcast_sync_acks_received")
                return
            if self.reliable:
                if marker == NACK_WORD:
                    self._handle_nack(flit.src, flit.data & SLOT_MASK)
                    return
                if marker == MCAST_NACK_WORD:
                    self.mcast_nacks.append((flit.src, flit.data & SLOT_MASK))
                    self.stats.inc("mcast_nacks_received")
                    return
                if marker == CREDIT_PROBE_WORD:
                    # Idempotent resync: re-issue our current credit value
                    # for the probing sender's stream (a lost credit token
                    # deadlocks its window otherwise).
                    stream = self.streams.get(flit.src)
                    upto = stream.credited_upto if stream is not None else 0
                    self.pending_credits.push(
                        (flit.src, CREDIT_WORD | (upto & SLOT_MASK))
                    )
                    self.stats.inc("credit_probes_received")
                    return
                if marker == MCAST_CREDIT_PROBE_WORD:
                    stream = self.mcast_streams.get(flit.src)
                    upto = stream.credited_upto if stream is not None else 0
                    self.pending_credits.push(
                        (flit.src, MCAST_CREDIT_WORD | (upto & SLOT_MASK))
                    )
                    self.stats.inc("mcast_credit_probes_received")
                    return
            self.requests.push((flit.src, flit.data))
            self.stats.inc("requests_received")
            return
        stream = self.streams.get(flit.src)
        if stream is None:
            stream = ReceiveStream()
            stream.wide = self.reliable
            self.streams[flit.src] = stream
        if not stream.insert(flit.seq, flit.data):
            self.stats.inc("duplicate_flits_dropped")
            return
        self._n_data_flits_received += 1
        # Flow control: one credit per CREDIT_WINDOW contiguous slots.
        while stream.lowest_missing >= stream.credited_upto + CREDIT_WINDOW:
            stream.credited_upto += CREDIT_WINDOW
            word = CREDIT_WORD
            if self.reliable:
                word |= stream.credited_upto & SLOT_MASK
            self.pending_credits.push((flit.src, word))
            self.stats.inc("credits_sent")

    def _accept_multicast(self, flit: Flit) -> None:
        """Scatter a multicast data flit into its per-source stream.

        Same seq-offset scatter and double buffer as the unicast path,
        over the dedicated multicast sequence space; the same windowed
        credit protocol flows back so the sending DMA engine can bound
        the reorder span group-wide.
        """
        self.rx_event = True
        stream = self.mcast_streams.get(flit.src)
        if stream is None:
            stream = ReceiveStream()
            stream.wide = self.reliable
            self.mcast_streams[flit.src] = stream
        if not stream.insert(flit.seq, flit.data):
            self.stats.inc("duplicate_flits_dropped")
            return
        self._n_mcast_flits_received += 1
        while stream.lowest_missing >= stream.credited_upto + CREDIT_WINDOW:
            stream.credited_upto += CREDIT_WINDOW
            word = MCAST_CREDIT_WORD
            if self.reliable:
                word |= stream.credited_upto & SLOT_MASK
            self.pending_credits.push((flit.src, word))
            self.stats.inc("mcast_credits_sent")

    def stream_from(self, src_node: int) -> ReceiveStream:
        stream = self.streams.get(src_node)
        if stream is None:
            stream = ReceiveStream()
            stream.wide = self.reliable
            self.streams[src_node] = stream
        return stream

    def mcast_stream_from(self, src_node: int) -> ReceiveStream:
        stream = self.mcast_streams.get(src_node)
        if stream is None:
            stream = ReceiveStream()
            stream.wide = self.reliable
            self.mcast_streams[src_node] = stream
        return stream

    @property
    def sync_slot_mask(self) -> int:
        """Slot bits carried by multicast SYNC tokens (wide when reliable)."""
        return SLOT_MASK if self.reliable else MCAST_SYNC_SLOT_MASK

    # -- reliable-delivery bookkeeping (fault layer only) --------------------

    def _apply_credit(self, src: int, value: int) -> None:
        """Fold an absolute 16-bit credit value into the per-peer floor.

        Forward-only (signed mod-2^16 delta): a reordered or retransmitted
        stale token is a no-op, so credits are idempotent under faults.
        """
        prev = self._peer_credited.get(src, 0)
        delta = (value - prev) & SLOT_MASK
        if not delta or delta >= 0x8000:
            return
        floor = prev + delta
        self._peer_credited[src] = floor
        retx = self._retx.get(src)
        if retx:
            for slot in [s for s in retx if s < floor]:
                del retx[slot]

    def _apply_mcast_credit(self, src: int, value: int) -> None:
        prev = self.mcast_credited.get(src, 0)
        delta = (value - prev) & SLOT_MASK
        if not delta or delta >= 0x8000:
            return
        self.mcast_credited[src] = prev + delta

    def _handle_nack(self, src: int, slot16: int) -> None:
        """Queue a retransmission for the peer's lowest missing slot."""
        self.stats.inc("nacks_received")
        floor = self._peer_credited.get(src, 0)
        delta = (slot16 - floor) & SLOT_MASK
        if delta >= 0x8000:
            # Behind the credited floor: the slot already retired from
            # the retransmit buffer (a stale NACK that crossed the credit
            # repairing it in flight) — nothing to do.
            self.stats.inc("nacks_retired")
            return
        slot = floor + delta
        retx = self._retx.get(src)
        if (
            slot >= self._send_slots.get(src, 0)
            or retx is None
            or slot not in retx
        ):
            # Unsent or unknown slot — e.g. the NACK token itself was
            # corrupted.  Harmless: the receiver keeps NACKing with
            # backoff until a well-formed one lands.
            self.stats.inc("nacks_ignored")
            return
        if (src, slot) not in self._retx_queued:
            self._retx_queued.add((src, slot))
            self.pending_retx.append((src, slot, retx[slot]))

    def retx_flit(self) -> Flit | None:
        """Next owed retransmission (drained by the node, 1/cycle)."""
        if not self.pending_retx:
            return None
        dst, slot, word = self.pending_retx[0]
        return Flit(
            dst=dst,
            src=self.node_id,
            ptype=PacketType.MESSAGE,
            subtype=int(SubType.MSG_RETX),
            seq=slot & SLOT_MASK,
            burst=1,
            data=word,
        )

    def retx_sent(self) -> None:
        dst, slot, _word = self.pending_retx.popleft()
        self._retx_queued.discard((dst, slot))
        self.stats.inc("retx_sent")

    # -- TX ----------------------------------------------------------------------

    @property
    def tx_busy(self) -> bool:
        return self.tx is not None

    def begin_send(self, dst_node: int, words: list[int]) -> None:
        """Start streaming a data message (one flit per cycle thereafter)."""
        if self.tx is not None:
            raise ProtocolError("TIE send started while a send is in flight")
        if not words:
            raise ProtocolError("empty message")
        base_slot = self._send_slots.get(dst_node, 0)
        flits = []
        total = len(words)
        seq_mod = SLOT_MASK + 1 if self.reliable else SEQ_WINDOW
        for offset, word in enumerate(words):
            slot = base_slot + offset
            # Logic packets group up to 4 flits; BURST tells the receiver
            # how many flits this flit's packet contains (2-bit field).
            burst = min(4, total - (offset // 4) * 4)
            flits.append(
                Flit(
                    dst=dst_node,
                    src=self.node_id,
                    ptype=PacketType.MESSAGE,
                    subtype=int(SubType.MSG_DATA),
                    seq=slot % seq_mod,
                    burst=burst,
                    data=word,
                )
            )
        self._send_slots[dst_node] = base_slot + total
        self.tx = _PendingSend(dst_node, words, flits, base_slot)
        self.stats.inc("messages_sent")

    def make_request_flit(self, dst_node: int, word: int) -> Flit:
        """Build a single-flit control token for the request segment."""
        self.stats.inc("requests_sent")
        return Flit(
            dst=dst_node,
            src=self.node_id,
            ptype=PacketType.MESSAGE,
            subtype=int(SubType.MSG_REQUEST),
            seq=0,
            burst=1,
            data=word,
        )

    def tx_current(self) -> Flit | None:
        if self.tx is None or self.tx.done:
            return None
        # Credit gate: never exceed the peer-confirmed window.
        if self.reliable:
            floor = self._peer_credited.get(self.tx.dst_node, 0)
            # Same window as the fault-free gate (floor + initial credit
            # == the incremental limit in a lossless run), narrowed by
            # the retransmit SRAM depth: every emitted-but-unretired slot
            # must stay replayable.
            limit = floor + min(
                self.initial_credit(self.tx.dst_node), self.retx_slots
            )
        else:
            limit = self._credit_limit.get(
                self.tx.dst_node, self.initial_credit(self.tx.dst_node)
            )
        if self.tx.current_slot() >= limit:
            self._n_credit_stall_cycles += 1
            return None
        return self.tx.current()

    def credit_flit(self) -> Flit | None:
        """Next owed credit token, if any (drained by the node, 1/cycle)."""
        if self.pending_credits.empty:
            return None
        dst, word = self.pending_credits.peek()
        return Flit(
            dst=dst,
            src=self.node_id,
            ptype=PacketType.MESSAGE,
            subtype=int(SubType.MSG_REQUEST),
            seq=0,
            burst=1,
            data=word,
        )

    def credit_sent(self) -> None:
        self.pending_credits.pop()

    def tx_advance(self) -> bool:
        """Mark the current flit accepted; True when the message finished."""
        assert self.tx is not None
        tx = self.tx
        if self.reliable:
            # Record the word at emission time, so the buffer only ever
            # holds emitted-but-unretired slots (bounded by the TX gate).
            slot = tx.base_slot + tx.index
            self._retx.setdefault(tx.dst_node, {})[slot] = tx.words[tx.index]
        tx.index += 1
        self._n_data_flits_sent += 1
        if self.tx.done:
            self.tx = None
            return True
        return False

    def flush_stats(self) -> None:
        """Fold the batched per-flit counters into the CounterSet.

        The owning node calls this from its own stats flush (every
        transition to sleep and before any external stats read), so
        observers always see exact values.
        """
        if self._n_data_flits_sent:
            self.stats.inc("data_flits_sent", self._n_data_flits_sent)
            self._n_data_flits_sent = 0
        if self._n_data_flits_received:
            self.stats.inc("data_flits_received", self._n_data_flits_received)
            self._n_data_flits_received = 0
        if self._n_credit_stall_cycles:
            self.stats.inc("credit_stall_cycles", self._n_credit_stall_cycles)
            self._n_credit_stall_cycles = 0
        if self._n_mcast_flits_received:
            self.stats.inc("mcast_flits_received", self._n_mcast_flits_received)
            self._n_mcast_flits_received = 0
