"""TIE message-passing interface.

Paper Section II-B: each Xtensa gains TIE ports that behave as FIFO
queues directly attached to the register file.  On send, hardware stamps
every flit with a sequence number (a counter) and resolves the destination
through a small LUT.  On receive, the sequence number is used as an offset
into the processor's local data memory so no sorting buffer is needed for
out-of-order flits, and a double buffer gives single-cycle reads.

The model here is architecturally equivalent:

* **TX** — one pending message at a time, emitted at one flit per cycle
  through the arbiter; per-destination slot counters generate the 4-bit
  wrapping sequence numbers.
* **RX** — a :class:`ReceiveStream` per source implements the seq-offset
  scatter with a two-window (double-buffer) tolerance for out-of-order
  arrival; *request* flits (the SUB-TYPE the paper reserves to distinguish
  requests from generic data) land in a separate control queue, keeping
  synchronization tokens out of the data path.
"""

from __future__ import annotations

from repro.errors import ProtocolError
from repro.kernel.fifo import Fifo
from repro.kernel.stats import CounterSet
from repro.noc.flit import Flit
from repro.noc.packet import PacketType, SubType

#: Sequence numbers are 4 bits on the wire.
SEQ_WINDOW = 16
#: Double buffering tolerates reordering across two windows.
MAX_SPAN = 2 * SEQ_WINDOW

#: Credit-based flow control over the request segment.  A sender may have
#: at most CREDIT_LIMIT unacknowledged stream slots in flight per
#: destination; the receiving TIE returns one credit token per
#: CREDIT_WINDOW contiguously completed slots.  This bounds the reorder
#: span seen by the receiver strictly below SEQ_WINDOW, so two flits
#: carrying the same 4-bit sequence number can never coexist in the
#: network — the condition the seq-offset scatter needs to be unambiguous.
#: (This is the flow-control role the paper assigns to request packets.)
CREDIT_WINDOW = 8
CREDIT_LIMIT = 16
#: Marker word carried by credit tokens; disjoint from eMPI token encoding.
CREDIT_WORD = 0x7F00_0000
#: Credit marker for the *multicast* stream (see below); every group
#: member returns one per CREDIT_WINDOW contiguous multicast slots, and
#: the DMA engine gates emission on the slowest member — the ack
#: aggregation a hardware collective engine performs.
MCAST_CREDIT_WORD = 0x7F01_0000
#: Multicast group (re-)registration handshake, riding the same reverse
#: request path as the credits.  A SYNC token carries the *phase* of the
#: sender's multicast stream slot (slot mod SEQ_WINDOW — the receiver's
#: absolute numbering is local bookkeeping, and CREDIT_WINDOW divides
#: SEQ_WINDOW, so phase alignment is all the seq-offset scatter and the
#: credit windows need); a *new* group member fast-forwards its receive
#: stream to that phase and answers with a SYNC_ACK, and the sending
#: engine holds the first post-re-registration descriptor until every
#: new member acked.
MCAST_SYNC_WORD = 0x7F02_0000
MCAST_SYNC_ACK_WORD = 0x7F03_0000
#: SYNC carries the slot phase (mod SEQ_WINDOW) in its low bits.
MCAST_SYNC_SLOT_MASK = SEQ_WINDOW - 1


class ReceiveStream:
    """In-order word stream reassembled from out-of-order flits.

    Slot accounting is continuous across messages: flit *k* of the stream
    carries sequence number ``k % 16``, and arrivals are scattered into
    their slot on receipt (the hardware writes ``base + seq`` in local
    memory).  ``lowest_missing`` is the front of the current window; a
    sequence number that would land more than two windows ahead means the
    hardware double buffer would have been overrun, which is a protocol
    error rather than something to hide.
    """

    __slots__ = ("slots", "lowest_missing", "consumed", "max_span",
                 "credited_upto")

    def __init__(self) -> None:
        self.slots: dict[int, int] = {}
        self.lowest_missing = 0
        self.consumed = 0
        self.max_span = 0
        #: Slots for which credit tokens have already been issued.
        self.credited_upto = 0

    def insert(self, seq: int, word: int) -> None:
        if not (0 <= seq < SEQ_WINDOW):
            raise ProtocolError(f"sequence number {seq} exceeds 4-bit field")
        # The two hardware buffers are frame-aligned: frame k covers slots
        # [16k, 16k+16).  A flit lands in the frame of the oldest missing
        # slot unless that slot already arrived, in which case it belongs
        # to the next frame (the second buffer).
        frame_base = (self.lowest_missing // SEQ_WINDOW) * SEQ_WINDOW
        slot = frame_base + seq
        if slot < self.lowest_missing or slot in self.slots:
            slot += SEQ_WINDOW
        if slot in self.slots:
            raise ProtocolError(
                f"reorder span exceeded double buffer: seq={seq}, "
                f"oldest missing slot {self.lowest_missing}"
            )
        self.slots[slot] = word
        span = slot - self.lowest_missing
        if span > self.max_span:
            self.max_span = span
        while self.lowest_missing in self.slots:
            self.lowest_missing += 1

    def available(self, n_words: int) -> bool:
        """True when the next ``n_words`` of the stream are contiguous."""
        return self.consumed + n_words <= self.lowest_missing

    def take(self, n_words: int) -> list[int]:
        if not self.available(n_words):
            raise ProtocolError(f"take({n_words}) on incomplete stream")
        start = self.consumed
        self.consumed = start + n_words
        return [self.slots.pop(start + i) for i in range(n_words)]

    @property
    def pending_words(self) -> int:
        return self.lowest_missing - self.consumed

    def realign(self, phase: int) -> None:
        """Fast-forward an idle stream to slot phase ``phase`` (group sync).

        Used when this stream's sender re-registers its multicast group
        with this node as a new member: the shared sequence space stands
        at some slot with ``slot % SEQ_WINDOW == phase``, so the empty
        stream jumps forward to the nearest slot of that phase.  Only the
        phase matters — this stream's absolute numbering is local
        bookkeeping, and credit windows divide the sequence window, so
        windowed crediting stays aligned with the sender's counters.  A
        stream holding unconsumed or out-of-order words cannot be moved —
        that data would be lost, which is a protocol violation, not a
        detail to hide.
        """
        if not (0 <= phase < SEQ_WINDOW):
            raise ProtocolError(f"sync phase {phase} exceeds the seq window")
        if self.slots or self.consumed != self.lowest_missing:
            raise ProtocolError(
                f"multicast stream re-synced with {self.pending_words} "
                f"unconsumed word(s) and {len(self.slots)} buffered flit(s)"
            )
        base = self.lowest_missing
        base += (phase - base) % SEQ_WINDOW
        self.lowest_missing = base
        self.consumed = base
        self.credited_upto = base


class _PendingSend:
    """TX state for the message currently streaming out."""

    __slots__ = ("dst_node", "words", "index", "flits", "base_slot")

    def __init__(self, dst_node: int, words: list[int], flits: list[Flit],
                 base_slot: int):
        self.dst_node = dst_node
        self.words = words
        self.index = 0
        self.flits = flits
        self.base_slot = base_slot

    @property
    def done(self) -> bool:
        return self.index >= len(self.flits)

    def current(self) -> Flit:
        return self.flits[self.index]

    def current_slot(self) -> int:
        return self.base_slot + self.index


class TieInterface:
    """Send/receive state of one PE's TIE ports."""

    def __init__(self, node_id: int, request_queue_depth: int = 64) -> None:
        self.node_id = node_id
        self.streams: dict[int, ReceiveStream] = {}
        #: Separate per-source streams for multicast traffic: a multicast
        #: group shares one sequence space at the sender, which cannot be
        #: the unicast per-destination space (different receivers would
        #: disagree on slot numbering), so arrivals are scattered into
        #: their own double-buffered stream.
        self.mcast_streams: dict[int, ReceiveStream] = {}
        self.requests: Fifo[tuple[int, int]] = Fifo(
            request_queue_depth, name=f"tie[{node_id}].req"
        )
        self._send_slots: dict[int, int] = {}
        #: Per-destination highest stream slot the peer has credited.
        self._credit_limit: dict[int, int] = {}
        #: Multicast slots credited back, per group member (sender side);
        #: read by the DMA engine, which gates on the minimum.
        self.mcast_credited: dict[int, int] = {}
        #: Members that acknowledged a group-sync token (sender side);
        #: the DMA engine holds re-registered descriptors on this set.
        self.mcast_sync_acks: set[int] = set()
        #: Credit tokens owed to peers: (destination node, marker word).
        self.pending_credits: Fifo[tuple[int, int]] = Fifo(
            None, name=f"tie[{node_id}].cr"
        )
        self.tx: _PendingSend | None = None
        self.stats = CounterSet(f"tie[{node_id}]")
        #: Set when a flit arrives; the node uses it to re-check waiters.
        self.rx_event = False
        # Per-flit hot counters, batched as plain ints and folded into the
        # CounterSet by flush_stats() whenever the owning node sleeps —
        # the same pattern as the core/MPMMU counters.
        self._n_data_flits_sent = 0
        self._n_data_flits_received = 0
        self._n_credit_stall_cycles = 0
        self._n_mcast_flits_received = 0

    # -- RX ------------------------------------------------------------------

    def accept(self, flit: Flit) -> None:
        """Sort an incoming MESSAGE flit into data stream or request queue."""
        if flit.ptype != PacketType.MESSAGE:
            if flit.ptype == PacketType.MULTICAST:
                self._accept_multicast(flit)
                return
            raise ProtocolError(f"TIE got non-message flit {flit!r}")
        self.rx_event = True
        if flit.subtype == SubType.MSG_REQUEST:
            if flit.data == CREDIT_WORD:
                # The peer completed a window of our stream to it.
                limit = self._credit_limit.get(flit.src, CREDIT_LIMIT)
                self._credit_limit[flit.src] = limit + CREDIT_WINDOW
                self.stats.inc("credits_received")
                return
            if flit.data == MCAST_CREDIT_WORD:
                # A multicast group member completed a window.
                credited = self.mcast_credited.get(flit.src, 0)
                self.mcast_credited[flit.src] = credited + CREDIT_WINDOW
                self.stats.inc("mcast_credits_received")
                return
            if flit.data & ~MCAST_SYNC_SLOT_MASK == MCAST_SYNC_WORD:
                # The peer re-registered its multicast group with this
                # node as a new member: align our stream to the phase of
                # its shared sequence space and ack on the reverse path.
                phase = flit.data & MCAST_SYNC_SLOT_MASK
                self.mcast_stream_from(flit.src).realign(phase)
                self.pending_credits.push((flit.src, MCAST_SYNC_ACK_WORD))
                self.stats.inc("mcast_syncs_received")
                return
            if flit.data == MCAST_SYNC_ACK_WORD:
                self.mcast_sync_acks.add(flit.src)
                self.stats.inc("mcast_sync_acks_received")
                return
            self.requests.push((flit.src, flit.data))
            self.stats.inc("requests_received")
            return
        stream = self.streams.get(flit.src)
        if stream is None:
            stream = ReceiveStream()
            self.streams[flit.src] = stream
        stream.insert(flit.seq, flit.data)
        self._n_data_flits_received += 1
        # Flow control: one credit per CREDIT_WINDOW contiguous slots.
        while stream.lowest_missing >= stream.credited_upto + CREDIT_WINDOW:
            stream.credited_upto += CREDIT_WINDOW
            self.pending_credits.push((flit.src, CREDIT_WORD))
            self.stats.inc("credits_sent")

    def _accept_multicast(self, flit: Flit) -> None:
        """Scatter a multicast data flit into its per-source stream.

        Same seq-offset scatter and double buffer as the unicast path,
        over the dedicated multicast sequence space; the same windowed
        credit protocol flows back so the sending DMA engine can bound
        the reorder span group-wide.
        """
        self.rx_event = True
        stream = self.mcast_streams.get(flit.src)
        if stream is None:
            stream = ReceiveStream()
            self.mcast_streams[flit.src] = stream
        stream.insert(flit.seq, flit.data)
        self._n_mcast_flits_received += 1
        while stream.lowest_missing >= stream.credited_upto + CREDIT_WINDOW:
            stream.credited_upto += CREDIT_WINDOW
            self.pending_credits.push((flit.src, MCAST_CREDIT_WORD))
            self.stats.inc("mcast_credits_sent")

    def stream_from(self, src_node: int) -> ReceiveStream:
        stream = self.streams.get(src_node)
        if stream is None:
            stream = ReceiveStream()
            self.streams[src_node] = stream
        return stream

    def mcast_stream_from(self, src_node: int) -> ReceiveStream:
        stream = self.mcast_streams.get(src_node)
        if stream is None:
            stream = ReceiveStream()
            self.mcast_streams[src_node] = stream
        return stream

    # -- TX ----------------------------------------------------------------------

    @property
    def tx_busy(self) -> bool:
        return self.tx is not None

    def begin_send(self, dst_node: int, words: list[int]) -> None:
        """Start streaming a data message (one flit per cycle thereafter)."""
        if self.tx is not None:
            raise ProtocolError("TIE send started while a send is in flight")
        if not words:
            raise ProtocolError("empty message")
        base_slot = self._send_slots.get(dst_node, 0)
        flits = []
        total = len(words)
        for offset, word in enumerate(words):
            slot = base_slot + offset
            # Logic packets group up to 4 flits; BURST tells the receiver
            # how many flits this flit's packet contains (2-bit field).
            burst = min(4, total - (offset // 4) * 4)
            flits.append(
                Flit(
                    dst=dst_node,
                    src=self.node_id,
                    ptype=PacketType.MESSAGE,
                    subtype=int(SubType.MSG_DATA),
                    seq=slot % SEQ_WINDOW,
                    burst=burst,
                    data=word,
                )
            )
        self._send_slots[dst_node] = base_slot + total
        self.tx = _PendingSend(dst_node, words, flits, base_slot)
        self.stats.inc("messages_sent")

    def make_request_flit(self, dst_node: int, word: int) -> Flit:
        """Build a single-flit control token for the request segment."""
        self.stats.inc("requests_sent")
        return Flit(
            dst=dst_node,
            src=self.node_id,
            ptype=PacketType.MESSAGE,
            subtype=int(SubType.MSG_REQUEST),
            seq=0,
            burst=1,
            data=word,
        )

    def tx_current(self) -> Flit | None:
        if self.tx is None or self.tx.done:
            return None
        # Credit gate: never exceed the peer-confirmed window.
        limit = self._credit_limit.get(self.tx.dst_node, CREDIT_LIMIT)
        if self.tx.current_slot() >= limit:
            self._n_credit_stall_cycles += 1
            return None
        return self.tx.current()

    def credit_flit(self) -> Flit | None:
        """Next owed credit token, if any (drained by the node, 1/cycle)."""
        if self.pending_credits.empty:
            return None
        dst, word = self.pending_credits.peek()
        return Flit(
            dst=dst,
            src=self.node_id,
            ptype=PacketType.MESSAGE,
            subtype=int(SubType.MSG_REQUEST),
            seq=0,
            burst=1,
            data=word,
        )

    def credit_sent(self) -> None:
        self.pending_credits.pop()

    def tx_advance(self) -> bool:
        """Mark the current flit accepted; True when the message finished."""
        assert self.tx is not None
        self.tx.index += 1
        self._n_data_flits_sent += 1
        if self.tx.done:
            self.tx = None
            return True
        return False

    def flush_stats(self) -> None:
        """Fold the batched per-flit counters into the CounterSet.

        The owning node calls this from its own stats flush (every
        transition to sleep and before any external stats read), so
        observers always see exact values.
        """
        if self._n_data_flits_sent:
            self.stats.inc("data_flits_sent", self._n_data_flits_sent)
            self._n_data_flits_sent = 0
        if self._n_data_flits_received:
            self.stats.inc("data_flits_received", self._n_data_flits_received)
            self._n_data_flits_received = 0
        if self._n_credit_stall_cycles:
            self.stats.inc("credit_stall_cycles", self._n_credit_stall_cycles)
            self._n_credit_stall_cycles = 0
        if self._n_mcast_flits_received:
            self.stats.inc("mcast_flits_received", self._n_mcast_flits_received)
            self._n_mcast_flits_received = 0
