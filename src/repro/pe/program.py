"""Program context: the architectural API programs are written against.

A MEDEA *program* is a Python generator function taking a
:class:`ProgramContext` and yielding operation tuples; the owning
:class:`~repro.pe.processor.ProcessorNode` executes each operation with
cycle-accurate cost and sends results back into the generator.  This is the
software layer of the paper — the same role the authors' C code plus eMPI
library plays on the real Xtensa.

Primitive operations (yield one, receive its result):

=====================  ==========================================  =========
op tuple               effect                                      result
=====================  ==========================================  =========
("compute", n)         occupy the core for n cycles                None
("load", a)            cached word load (global address)           word
("store", a, v)        cached word store                           None
("uload", a)           uncached word load (bypasses L1)            word
("ustore", a, v)       uncached posted word store                  None
("flush", a)           DHWB: write back the dirty line holding a   None
("inval", a)           DII: invalidate the line holding a          None
("fence",)             drain write buffer + posted transactions    None
("lmem_read", a)       local scratchpad read                       word
("lmem_write", a, v)   local scratchpad write                      None
("send", n, ws)        TIE data message to node n (1 flit/cycle)   None
("recv", n, k)         wait for k words from node n, copy them     [words]
("sendreq", n, w)      single-flit control token to node n         None
("recvreq",)           wait for a control token                    (src, w)
("isend", n, ws)       post a TIE TX descriptor; do not wait       None
("txdone",)            poll the TIE TX status register             bool
("trecv", n, k)        k words from node n if ready, else None     [w]|None
("qsend", n, ws)       post unicast descriptor on the DMA queue    bool
("qmcast", m, ws)      post multicast descriptor (bitmask m)       bool
("qstat",)             poll the DMA queue's free-slot count        int
("qreduce", n, vs, o)  post accumulate-on-receive: combine the     bool
                       multicast stream from node n into the
                       doubles accumulator vs with ReduceOp o
("qrpoll",)            poll the reduce status; the finished        [v]|None
                       accumulator once combined, else None
("mrecv", n, k)        wait for k multicast-stream words from n    [words]
("tmrecv", n, k)       multicast words from n if ready, else None  [w]|None
("lock", a)            MPMMU lock word a (spins on NACK)           None
("unlock", a)          MPMMU unlock word a                         None
("note", label)        record (cycle, rank, label); zero cycles    None
=====================  ==========================================  =========

The helpers below compose these into doubles, row transfers, range
flush/invalidate, etc., so application code reads like the C it stands for.
"""

from __future__ import annotations

import typing
from collections.abc import Generator

from repro.mem.memory_map import MemoryMap
from repro.mem.values import (
    float_to_words,
    pack_doubles,
    unpack_doubles,
    words_to_float,
)
from repro.pe.costmodel import FpCostModel

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.empi.runtime import Empi

#: Type alias for program generators.
Program = Generator[tuple, object, None]


class ProgramContext:
    """Everything a program can see: identity, memory map, cost model, eMPI."""

    def __init__(
        self,
        rank: int,
        n_workers: int,
        node_id: int,
        memory_map: MemoryMap,
        cost: FpCostModel,
        rank_to_node: dict[int, int],
        line_bytes: int = 16,
        local_mem_bytes: int = 1 << 20,
        dma_queue_depth: int = 0,
        dma_reduce_assist: bool = True,
        empi_timeout_cycles: int = 0,
        empi_timeout_retries: int = 3,
    ) -> None:
        self.rank = rank
        self.n_workers = n_workers
        self.node_id = node_id
        self.map = memory_map
        self.cost = cost
        self.rank_to_node = rank_to_node
        self.line_bytes = line_bytes
        self.local_mem_bytes = local_mem_bytes
        #: Depth of this tile's DMA TX queue (0 = no engine; the ``hw``
        #: collective algorithm refuses to run without one).
        self.dma_queue_depth = dma_queue_depth
        #: Whether the engine's accumulate-on-receive (qreduce) datapath
        #: is used by the runtime's hw/ring reductions.  Off = PR-4
        #: behaviour: the combining leg serializes through processor ops.
        self.dma_reduce_assist = dma_reduce_assist
        #: eMPI wait/progress cycle budget before a timed retry; 0 = the
        #: fault-free default, wait forever.
        self.empi_timeout_cycles = empi_timeout_cycles
        #: Exponential-backoff retries before a timed-out eMPI wait
        #: raises :class:`~repro.errors.EmpiTimeoutError`.
        self.empi_timeout_retries = empi_timeout_retries
        self._local_alloc = 0
        #: Rank groups per compute chiplet (None on flat topologies):
        #: ``rank_groups[c]`` lists the ranks living on chiplet ``c``, in
        #: node order.  The hierarchical collectives ring within each
        #: group and tree across the group leaders.
        self.rank_groups: list[list[int]] | None = None
        # Bound by the system builder (import cycle otherwise).
        self.empi: "Empi | None" = None
        #: Optional () -> str callable supplying fault-injection context
        #: for timeout diagnostics; set by the system builder when a
        #: fault plan is active.
        self.fault_context: "typing.Callable[[], str] | None" = None

    # -- address helpers -----------------------------------------------------

    @property
    def shared_base(self) -> int:
        return self.map.shared.base

    @property
    def private_base(self) -> int:
        return self.map.private_base(self.rank)

    def node_of(self, rank: int) -> int:
        return self.rank_to_node[rank]

    def local_alloc(self, n_bytes: int) -> int:
        """Reserve local-memory space (a linker stand-in for buffers)."""
        aligned = (n_bytes + 3) & ~3
        base = self._local_alloc
        if base + aligned > self.local_mem_bytes:
            raise MemoryError("local memory exhausted")
        self._local_alloc = base + aligned
        return base

    # -- word-level op builders ------------------------------------------------

    @staticmethod
    def compute(cycles: int) -> tuple:
        return ("compute", cycles)

    def fp_add(self) -> tuple:
        return ("compute", self.cost.fp_add)

    def fp_mul(self) -> tuple:
        return ("compute", self.cost.fp_mul)

    def fp_cmp(self) -> tuple:
        return ("compute", self.cost.fp_cmp)

    @staticmethod
    def load(addr: int) -> tuple:
        return ("load", addr)

    @staticmethod
    def store(addr: int, value: int) -> tuple:
        return ("store", addr, value)

    @staticmethod
    def note(label: str) -> tuple:
        return ("note", label)

    # -- double-precision helpers (two 32-bit words each) --------------------------

    def load_double(self, addr: int) -> Program:
        low = yield ("load", addr)
        high = yield ("load", addr + 4)
        return words_to_float(low, high)

    def store_double(self, addr: int, value: float) -> Program:
        low, high = float_to_words(value)
        yield ("store", addr, low)
        yield ("store", addr + 4, high)

    def uncached_load_double(self, addr: int) -> Program:
        low = yield ("uload", addr)
        high = yield ("uload", addr + 4)
        return words_to_float(low, high)

    def uncached_store_double(self, addr: int, value: float) -> Program:
        low, high = float_to_words(value)
        yield ("ustore", addr, low)
        yield ("ustore", addr + 4, high)

    def lmem_read_double(self, addr: int) -> Program:
        low = yield ("lmem_read", addr)
        high = yield ("lmem_read", addr + 4)
        return words_to_float(low, high)

    def lmem_write_double(self, addr: int, value: float) -> Program:
        low, high = float_to_words(value)
        yield ("lmem_write", addr, low)
        yield ("lmem_write", addr + 4, high)

    # -- cache-management helpers ------------------------------------------------------

    def flush_range(self, addr: int, n_bytes: int) -> Program:
        """DHWB every line overlapping [addr, addr + n_bytes)."""
        line = self.line_bytes
        first = addr & ~(line - 1)
        last = (addr + n_bytes - 1) & ~(line - 1)
        for line_addr in range(first, last + 1, line):
            yield ("flush", line_addr)

    def invalidate_range(self, addr: int, n_bytes: int) -> Program:
        """DII every line overlapping [addr, addr + n_bytes)."""
        line = self.line_bytes
        first = addr & ~(line - 1)
        last = (addr + n_bytes - 1) & ~(line - 1)
        for line_addr in range(first, last + 1, line):
            yield ("inval", line_addr)

    # -- message helpers (rank-addressed) -------------------------------------------------

    def send_words(self, dst_rank: int, words: list[int]) -> tuple:
        return ("send", self.node_of(dst_rank), words)

    def recv_words(self, src_rank: int, n_words: int) -> tuple:
        return ("recv", self.node_of(src_rank), n_words)

    def send_doubles(self, dst_rank: int, values: list[float]) -> Program:
        yield ("send", self.node_of(dst_rank), pack_doubles(values))

    def recv_doubles(self, src_rank: int, n_values: int) -> Program:
        words = yield ("recv", self.node_of(src_rank), 2 * n_values)
        return unpack_doubles(words)
