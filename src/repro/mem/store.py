"""Sparse word-addressable backing store."""

from __future__ import annotations

from repro.errors import MemoryAccessError

WORD_BYTES = 4
WORD_MASK = 0xFFFF_FFFF


def check_word_aligned(addr: int) -> None:
    if addr % WORD_BYTES:
        raise MemoryAccessError(f"address {addr:#x} is not word aligned")


class WordStore:
    """A sparse 32-bit word memory with byte addressing.

    Backs the DDR and the per-PE scratchpads.  Unwritten words read as 0
    (like initialized SRAM/DRAM models in RTL simulation).  Bounds are
    enforced when ``size_bytes`` is given.
    """

    def __init__(self, size_bytes: int | None = None, name: str = "mem") -> None:
        if size_bytes is not None and (size_bytes <= 0 or size_bytes % WORD_BYTES):
            raise MemoryAccessError(
                f"{name}: size must be a positive multiple of {WORD_BYTES}"
            )
        self.name = name
        self.size_bytes = size_bytes
        self._words: dict[int, int] = {}

    def _index(self, addr: int) -> int:
        check_word_aligned(addr)
        if addr < 0 or (self.size_bytes is not None and addr >= self.size_bytes):
            raise MemoryAccessError(
                f"{self.name}: address {addr:#x} outside size {self.size_bytes}"
            )
        return addr >> 2

    def read_word(self, addr: int) -> int:
        return self._words.get(self._index(addr), 0)

    def write_word(self, addr: int, value: int) -> None:
        if not (0 <= value <= WORD_MASK):
            raise MemoryAccessError(
                f"{self.name}: value {value:#x} does not fit in 32 bits"
            )
        self._words[self._index(addr)] = value

    def read_block(self, addr: int, n_words: int) -> list[int]:
        base = self._index(addr)
        words = self._words
        return [words.get(base + i, 0) for i in range(n_words)]

    def write_block(self, addr: int, values: list[int]) -> None:
        base = self._index(addr)
        for offset, value in enumerate(values):
            if not (0 <= value <= WORD_MASK):
                raise MemoryAccessError(
                    f"{self.name}: value {value:#x} does not fit in 32 bits"
                )
            self._words[base + offset] = value

    @property
    def words_written(self) -> int:
        return len(self._words)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<WordStore {self.name} {self.words_written} words>"
