"""Memory substrate: word stores, DDR timing, segmented memory map.

MEDEA's global memory is a single DDR behind the MPMMU, logically split
into one *shared* segment plus one *private* segment per core (paper
Section II-C).  Each PE additionally has a local data RAM (scratchpad)
where the TIE interface scatters incoming message flits.

All modelled memories are word-addressable (32-bit words, byte addresses,
4-byte aligned); doubles live as little-endian word pairs via
:mod:`repro.mem.values` — matching the 32-bit PIF datapath, so every
double-precision load/store costs two word transactions like the real
machine.
"""

from repro.mem.ddr import DdrModel
from repro.mem.memory_map import MemoryMap, Segment
from repro.mem.scratchpad import Scratchpad
from repro.mem.store import WordStore
from repro.mem.values import float_to_words, words_to_float

__all__ = [
    "DdrModel",
    "MemoryMap",
    "Scratchpad",
    "Segment",
    "WordStore",
    "float_to_words",
    "words_to_float",
]
