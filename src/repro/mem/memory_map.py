"""Segmented global memory map.

The global shared memory is divided into one *shared* segment and N
*private* segments, one per worker core (paper Section II-C).  Private
segments need no coherence support (only their owner may touch them);
shared data needs the software flush/invalidate protocol of Section II-E.

Layout (byte addresses inside the DDR):

```
0x0000_0000  shared segment           (shared_size bytes)
shared_size  private segment, rank 0  (private_size bytes)
...          private segment, rank k  at shared_size + k * private_size
```
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, MemoryAccessError


@dataclass(frozen=True)
class Segment:
    """A contiguous address range with an owner (-1 = shared)."""

    name: str
    base: int
    size: int
    owner: int  # worker rank, or -1 for the shared segment

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class MemoryMap:
    """Shared + per-rank private segments over one DDR address space."""

    def __init__(
        self,
        n_workers: int,
        shared_size: int = 1 << 20,
        private_size: int = 1 << 20,
    ) -> None:
        if n_workers < 1:
            raise ConfigError(f"need at least one worker, got {n_workers}")
        for label, size in (("shared", shared_size), ("private", private_size)):
            if size <= 0 or size % 16:
                raise ConfigError(
                    f"{label} segment size must be a positive multiple of a "
                    f"16-byte cache line, got {size}"
                )
        self.n_workers = n_workers
        self.shared = Segment("shared", 0, shared_size, owner=-1)
        self.privates = [
            Segment(f"private[{rank}]", shared_size + rank * private_size,
                    private_size, owner=rank)
            for rank in range(n_workers)
        ]
        self.total_size = shared_size + n_workers * private_size

    # -- lookups ----------------------------------------------------------------

    def segment_of(self, addr: int) -> Segment:
        if self.shared.contains(addr):
            return self.shared
        if addr < self.total_size:
            rank = (addr - self.shared.size) // self.privates[0].size
            return self.privates[rank]
        raise MemoryAccessError(
            f"address {addr:#x} beyond mapped memory ({self.total_size:#x})"
        )

    def is_shared(self, addr: int) -> bool:
        return self.shared.contains(addr)

    def private_base(self, rank: int) -> int:
        if not (0 <= rank < self.n_workers):
            raise MemoryAccessError(f"no private segment for rank {rank}")
        return self.privates[rank].base

    def check_access(self, rank: int, addr: int, n_bytes: int = 4) -> Segment:
        """Validate that ``rank`` may touch [addr, addr+n_bytes).

        Enforces the paper's ownership rule: private segments are only
        accessible to their owner.  Returns the containing segment.

        This sits on the core's per-load/store path, so the common case
        (an in-bounds access that stays inside one segment) is decided
        with plain integer arithmetic before any Segment object is built.
        """
        shared = self.shared
        if addr < shared.size:
            if addr + n_bytes <= shared.size and addr >= 0:
                return shared
        elif 0 <= rank < self.n_workers:
            own = self.privates[rank]
            base = own.base
            if base <= addr and addr + n_bytes <= base + own.size:
                return own
        segment = self.segment_of(addr)
        if not segment.contains(addr + n_bytes - 1):
            raise MemoryAccessError(
                f"access {addr:#x}+{n_bytes} crosses segment {segment.name}"
            )
        if segment.owner not in (-1, rank):
            raise MemoryAccessError(
                f"rank {rank} touched {segment.name} at {addr:#x}"
            )
        return segment

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<MemoryMap shared={self.shared.size:#x} "
            f"{self.n_workers}x private={self.privates[0].size:#x}>"
        )
