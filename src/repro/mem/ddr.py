"""DDR timing model behind the MPMMU.

The paper attaches the MPMMU to a DDR controller over a PIF bus; the
evaluation never varies DRAM parameters, so a first-order latency model is
the right fidelity: a fixed access latency for the first word of a read
plus a per-word streaming cost, and cheap posted writes (a real controller
write queue hides write latency from the issuing processor).

The data itself lives in a :class:`~repro.mem.store.WordStore`; this class
only answers "how many MPMMU cycles does this access occupy".
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.mem.store import WordStore


class DdrModel:
    """Fixed-latency, fixed-bandwidth DRAM timing + backing data."""

    def __init__(
        self,
        size_bytes: int | None = None,
        read_latency: int = 24,
        words_per_cycle: int = 1,
        posted_write_cost: int = 2,
    ) -> None:
        if read_latency < 1:
            raise ConfigError(f"read_latency must be >= 1, got {read_latency}")
        if words_per_cycle < 1:
            raise ConfigError(f"words_per_cycle must be >= 1, got {words_per_cycle}")
        if posted_write_cost < 1:
            raise ConfigError(f"posted_write_cost must be >= 1, got {posted_write_cost}")
        self.read_latency = read_latency
        self.words_per_cycle = words_per_cycle
        self.posted_write_cost = posted_write_cost
        self.store = WordStore(size_bytes, name="ddr")
        self.reads = 0
        self.writes = 0
        self.busy_cycles = 0

    # -- timing ------------------------------------------------------------

    def read_cost(self, n_words: int) -> int:
        """Cycles the controller is busy for an ``n_words`` burst read."""
        burst = -(-n_words // self.words_per_cycle)  # ceil division
        return self.read_latency + burst

    def write_cost(self, n_words: int) -> int:
        """Cycles to hand ``n_words`` to the (posted) write queue."""
        return self.posted_write_cost * n_words

    # -- data + accounting ------------------------------------------------------

    def read_block(self, addr: int, n_words: int) -> tuple[list[int], int]:
        """Return (words, busy_cycles) for a burst read."""
        cost = self.read_cost(n_words)
        self.reads += 1
        self.busy_cycles += cost
        return self.store.read_block(addr, n_words), cost

    def write_block(self, addr: int, values: list[int]) -> int:
        """Perform a posted burst write; return busy cycles."""
        cost = self.write_cost(len(values))
        self.writes += 1
        self.busy_cycles += cost
        self.store.write_block(addr, values)
        return cost
