"""Conversion between Python numbers and 32-bit memory words.

The datapath is 32 bits wide (PIF bus, flit DATA field), so IEEE-754
doubles occupy two consecutive words, little-endian (low word at the lower
address) — the layout the Xtensa's double-precision emulation library uses.
Bit-exactness matters: the Jacobi validation compares simulated results
against numpy *bit for bit*, so any lossy conversion here would show up as
a test failure rather than silent drift.
"""

from __future__ import annotations

import struct

_PACK_DOUBLE = struct.Struct("<d")
_PACK_WORDS = struct.Struct("<II")
_PACK_FLOAT = struct.Struct("<f")
_PACK_WORD = struct.Struct("<I")


def float_to_words(value: float) -> tuple[int, int]:
    """Split a float64 into (low word, high word)."""
    low, high = _PACK_WORDS.unpack(_PACK_DOUBLE.pack(value))
    return low, high


def words_to_float(low: int, high: int) -> float:
    """Reassemble a float64 from (low word, high word)."""
    return _PACK_DOUBLE.unpack(_PACK_WORDS.pack(low, high))[0]


def pack_doubles(values: list[float]) -> list[int]:
    """Flatten float64s into the word stream a message carries."""
    words: list[int] = []
    for value in values:
        low, high = float_to_words(value)
        words.append(low)
        words.append(high)
    return words


def unpack_doubles(words: list[int]) -> list[float]:
    """Reassemble float64s from a received word stream."""
    return [
        words_to_float(words[2 * i], words[2 * i + 1])
        for i in range(len(words) // 2)
    ]


def float32_to_word(value: float) -> int:
    """Pack a float32 into one word (round-to-nearest, IEEE single)."""
    return _PACK_WORD.unpack(_PACK_FLOAT.pack(value))[0]


def word_to_float32(word: int) -> float:
    """Unpack one word as a float32."""
    return _PACK_FLOAT.unpack(_PACK_WORD.pack(word))[0]


def int_to_word(value: int) -> int:
    """Two's-complement encode a signed 32-bit integer."""
    if not (-(1 << 31) <= value < (1 << 31)):
        raise ValueError(f"{value} does not fit a signed 32-bit word")
    return value & 0xFFFF_FFFF


def word_to_int(word: int) -> int:
    """Two's-complement decode a word to a signed integer."""
    if word & 0x8000_0000:
        return word - (1 << 32)
    return word
