"""Per-PE local data RAM.

Each Xtensa has a single-cycle local data memory; the TIE receive interface
scatters incoming message flits straight into it (Fig. 2-b), and programs
read received data from it at one word per cycle.  It is private to its PE,
so there is no coherence concern and no NoC traffic for local accesses.
"""

from __future__ import annotations

from repro.mem.store import WordStore


class Scratchpad:
    """Single-cycle local memory with simple region bookkeeping."""

    #: Access latency in core cycles.
    ACCESS_CYCLES = 1

    def __init__(self, size_bytes: int = 1 << 20, name: str = "localmem") -> None:
        self.store = WordStore(size_bytes, name=name)
        self.size_bytes = size_bytes
        self._alloc_ptr = 0

    def alloc(self, n_bytes: int) -> int:
        """Reserve a word-aligned region; a linker stand-in for buffers."""
        aligned = (n_bytes + 3) & ~3
        base = self._alloc_ptr
        if base + aligned > self.size_bytes:
            raise MemoryError(
                f"scratchpad exhausted: need {aligned} bytes at {base:#x} "
                f"of {self.size_bytes:#x}"
            )
        self._alloc_ptr = base + aligned
        return base

    def read_word(self, addr: int) -> int:
        return self.store.read_word(addr)

    def write_word(self, addr: int, value: int) -> None:
        self.store.write_word(addr, value)

    def read_block(self, addr: int, n_words: int) -> list[int]:
        return self.store.read_block(addr, n_words)

    def write_block(self, addr: int, values: list[int]) -> None:
        self.store.write_block(addr, values)
