"""Design-space exploration: sweep runner, area model, Pareto + kill rule.

Section III of the paper explores 168 architecture points (2-15 workers x
2-64 kB x WB/WT) with the Jacobi workload at three problem sizes, then
prunes the (area, speedup) cloud to a Pareto front and applies Agarwal's
"kill rule" (kill a resource increase that buys less than linear
performance).  This package is that harness:

* :mod:`repro.dse.space` — declarative sweep definitions;
* :mod:`repro.dse.runner` — multiprocessing sweep executor with a JSON
  result cache (re-running a figure is free once its points exist);
* :mod:`repro.dse.area` — the TSMC-65nm-calibrated area model;
* :mod:`repro.dse.pareto` — Pareto front + kill-rule pruning;
* :mod:`repro.dse.report` — figure regeneration: series tables and ASCII
  plots that mirror Figs. 6-9.
"""

from repro.dse.area import AreaModel
from repro.dse.pareto import kill_rule_prune, pareto_front
from repro.dse.runner import SweepResult, run_sweep
from repro.dse.space import SweepPoint, SweepSpec

__all__ = [
    "AreaModel",
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "kill_rule_prune",
    "pareto_front",
    "run_sweep",
]
