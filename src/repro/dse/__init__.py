"""Design-space exploration: sweep service, area model, Pareto + kill rule.

Section III of the paper explores 168 architecture points (2-15 workers x
2-64 kB x WB/WT) with the Jacobi workload at three problem sizes, then
prunes the (area, speedup) cloud to a Pareto front and applies Agarwal's
"kill rule" (kill a resource increase that buys less than linear
performance).  This package is that harness:

* :mod:`repro.dse.space` — declarative sweep spaces: named axes over the
  architecture config and any app's params dataclass, compiled to a
  keyed worklist;
* :mod:`repro.dse.executor` — the sweep service: pluggable
  inline/process/threaded backends, bounded retries, progress callbacks,
  and resumable schema-hashed caching;
* :mod:`repro.dse.runner` — the journaled result store + the classic
  Jacobi ``run_sweep`` entry point;
* :mod:`repro.dse.registry` — the experiment registry the CLI introspects;
* :mod:`repro.dse.area` — the TSMC-65nm-calibrated area model;
* :mod:`repro.dse.pareto` — Pareto front + kill-rule pruning;
* :mod:`repro.dse.report` — figure regeneration: series tables and ASCII
  plots that mirror Figs. 6-9.
"""

from repro.dse.area import AreaModel
from repro.dse.executor import PointOutcome, SpaceResults, run_space
from repro.dse.pareto import kill_rule_prune, pareto_front
from repro.dse.registry import Experiment, ExperimentReport, register_experiment
from repro.dse.runner import SweepResult, run_sweep
from repro.dse.space import Axis, SweepSpace, Variant, jacobi_sweep_space

__all__ = [
    "AreaModel",
    "Axis",
    "Experiment",
    "ExperimentReport",
    "PointOutcome",
    "SpaceResults",
    "SweepResult",
    "SweepSpace",
    "Variant",
    "jacobi_sweep_space",
    "kill_rule_prune",
    "pareto_front",
    "register_experiment",
    "run_space",
    "run_sweep",
]
