"""Sweep-as-a-service: pluggable executors with resumable, keyed caching.

The paper ran its 168-configuration design-space exploration overnight on
five dual-Xeon servers; this module is the batch service that absorbs the
same kind of sweep traffic for *any* experiment.  A declarative
:class:`~repro.dse.space.SweepSpace` compiles to a worklist of keyed
points; :func:`run_space` drives that worklist through a swappable
:class:`Executor` backend and returns the payloads in point order:

* ``inline`` — evaluate in the calling process, one point at a time (the
  deterministic baseline: ``--backend inline --jobs 1`` reproduces the
  pool bit for bit);
* ``process`` — a :mod:`multiprocessing` pool drained with
  ``imap_unordered`` (the default for CPU-bound simulation sweeps);
* ``threaded`` — a thread pool for I/O-light aggregation work where
  process startup would dominate.

Every point's wall time and failure (message, not a crashed sweep) is
captured; failed points are retried up to a bounded number of rounds
before the sweep raises :class:`~repro.errors.SweepError` naming every
unrecovered key.  Completed points persist *incrementally* through the
journaled :class:`~repro.dse.runner.ResultCache` — a sweep killed at
point k resumes at point k+1, not at zero — and cache keys carry the
space's schema hash, so a changed axis definition or dataclass migration
can never serve stale rows.  Progress is reported through a callback (or
the classic stderr ticker) as each point completes.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path

from repro.dse.runner import ResultCache
from repro.dse.space import SweepSpace, WorkItem
from repro.errors import ConfigError, SweepError

#: Progress callback signature: (points done, points pending in total).
ProgressFn = Callable[[int, int], None]

#: Per-point profiling hook (``--profile``): when a list, every point
#: evaluated *in this process* appends its own ``cProfile.Profile`` here
#: for the CLI to merge — attribution per workload regime instead of one
#: whole-run blob.  Only meaningful with the inline backend (worker
#: processes have their own module globals).
PROFILE_SINK: list | None = None


def _run_work(item: WorkItem) -> tuple[WorkItem, dict | None, float, str | None]:
    """Evaluate one point; the body every backend's workers run.

    Captures the point's wall time and turns an app exception into an
    error string (the service decides whether to retry); interrupts
    (``KeyboardInterrupt``/``SystemExit``) propagate so a killed sweep
    dies instead of recording a bogus failure.
    """
    started = time.perf_counter()
    profile = None
    if PROFILE_SINK is not None:
        import cProfile

        profile = cProfile.Profile()
        profile.enable()
    try:
        payload = item.app(item.config, item.params)
        error = None
    except Exception as exc:  # noqa: BLE001 - reported, retried, re-raised
        payload = None
        error = f"{type(exc).__name__}: {exc}"
    finally:
        if profile is not None:
            profile.disable()
            PROFILE_SINK.append(profile)
    return item, payload, time.perf_counter() - started, error


class InlineExecutor:
    """Evaluate points one by one in the calling process."""

    name = "inline"

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = 1

    def imap_unordered(self, fn: Callable, items: Iterable) -> Iterator:
        return map(fn, items)

    def close(self) -> None:
        pass


class ThreadedExecutor:
    """A thread pool: for I/O-light aggregation, not CPU-bound simulation."""

    name = "threaded"

    def __init__(self, jobs: int) -> None:
        from concurrent.futures import ThreadPoolExecutor

        self.jobs = jobs
        self._pool = ThreadPoolExecutor(max_workers=jobs)

    def imap_unordered(self, fn: Callable, items: Iterable) -> Iterator:
        from concurrent.futures import as_completed

        futures = [self._pool.submit(fn, item) for item in items]
        return (future.result() for future in as_completed(futures))

    def close(self) -> None:
        self._pool.shutdown(wait=True)


class ProcessExecutor:
    """A :mod:`multiprocessing` pool drained with ``imap_unordered``."""

    name = "process"

    def __init__(self, jobs: int) -> None:
        self.jobs = jobs
        self._pool = multiprocessing.Pool(jobs)

    def imap_unordered(self, fn: Callable, items: Iterable) -> Iterator:
        return self._pool.imap_unordered(fn, items)

    def close(self) -> None:
        self._pool.close()
        self._pool.join()


EXECUTOR_BACKENDS: dict[str, Callable[[int], object]] = {
    "inline": InlineExecutor,
    "threaded": ThreadedExecutor,
    "process": ProcessExecutor,
}


def get_executor(backend: str, jobs: int):
    """Instantiate a backend by name (``inline``/``process``/``threaded``)."""
    try:
        factory = EXECUTOR_BACKENDS[backend]
    except KeyError:
        raise ConfigError(
            f"unknown executor backend {backend!r}; choose from "
            f"{sorted(EXECUTOR_BACKENDS)}"
        ) from None
    return factory(jobs)


def resolve_backend(backend: str | None, jobs: int) -> str:
    """Pick a backend: explicit choice wins; one job runs inline."""
    if backend is not None:
        return backend
    return "inline" if jobs == 1 else "process"


def auto_jobs(n_pending: int, jobs: int | None) -> int:
    """Pool sizing: requested, else cpu-1 capped at the pending count."""
    if jobs is not None:
        return max(1, jobs)
    return max(1, min(n_pending, (os.cpu_count() or 2) - 1))


@dataclass
class PointOutcome:
    """One evaluated (or cache-served) sweep point."""

    item: WorkItem
    payload: dict
    wall_seconds: float
    attempts: int
    from_cache: bool

    @property
    def key(self) -> str:
        return self.item.key

    @property
    def coords(self) -> dict:
        return self.item.coords_dict


class SpaceResults:
    """The outcome of one space's sweep, addressable by axis coordinates.

    ``outcomes`` is in point order (the space's axis declaration order);
    :meth:`get` looks a payload up by its exact coordinate labels, which
    is how experiment summaries iterate in their own report order
    independently of execution order.
    """

    def __init__(self, space: SweepSpace, outcomes: list[PointOutcome]) -> None:
        self.space = space
        self.outcomes = outcomes
        self._by_coords = {
            tuple(sorted(outcome.item.coords)): outcome for outcome in outcomes
        }

    def get(self, **coords) -> dict:
        """Payload of the point at exactly these axis labels."""
        return self.outcome(**coords).payload

    def outcome(self, **coords) -> PointOutcome:
        key = tuple(sorted(coords.items()))
        try:
            return self._by_coords[key]
        except KeyError:
            raise KeyError(
                f"space {self.space.name!r} has no point at {coords!r}"
            ) from None

    def payloads(self) -> list[dict]:
        return [outcome.payload for outcome in self.outcomes]

    @property
    def n_cached(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.from_cache)

    @property
    def n_computed(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.from_cache)

    @property
    def n_retried(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.attempts > 1)


def stderr_progress(done: int, total: int) -> None:
    """The classic one-line sweep ticker (what ``progress=True`` means)."""
    print(f"\r  sweep: {done}/{total} points", end="", file=sys.stderr)
    if done == total:
        print(file=sys.stderr)


def run_space(
    space: SweepSpace,
    *,
    backend: str | None = None,
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
    resume: bool = True,
    retries: int = 0,
    progress: bool | ProgressFn = False,
) -> SpaceResults:
    """Run every point of ``space`` through an executor backend.

    With a ``cache_dir``, previously persisted points are served without
    recomputation (unless ``resume=False``, which recomputes everything
    but still persists), and each newly computed point is journaled to
    disk *as it completes* — a sweep killed mid-run resumes with only the
    remainder.  Failed points are retried up to ``retries`` extra rounds;
    whatever still fails raises :class:`~repro.errors.SweepError` naming
    every unrecovered point.  Results come back in point order regardless
    of backend scheduling, so ``--backend inline --jobs 1`` reproduces a
    pool run exactly.
    """
    items = space.points()
    cache = (
        ResultCache(cache_dir, space.name)
        if cache_dir is not None and space.cacheable
        else None
    )

    outcomes: dict[str, PointOutcome] = {}
    pending: list[WorkItem] = []
    for item in items:
        if item.key in outcomes:
            continue  # zipped/pruned spaces cannot repeat keys; belt-and-braces
        payload = cache.get_raw(item.key) if cache is not None and resume else None
        if payload is not None:
            outcomes[item.key] = PointOutcome(
                item=item, payload=payload, wall_seconds=0.0, attempts=0,
                from_cache=True,
            )
        elif not any(queued.key == item.key for queued in pending):
            pending.append(item)

    report: ProgressFn | None
    if progress is True:
        report = stderr_progress
    elif callable(progress):
        report = progress
    else:
        report = None

    if pending:
        jobs_now = auto_jobs(len(pending), jobs)
        backend_name = resolve_backend(backend, jobs_now)
        done = 0
        round_items = pending
        attempts: dict[str, int] = {}
        failures: list[tuple[WorkItem, str]] = []
        for _round in range(retries + 1):
            failures = []
            executor = get_executor(backend_name, min(jobs_now, len(round_items)))
            try:
                for item, payload, wall, error in executor.imap_unordered(
                    _run_work, round_items
                ):
                    attempts[item.key] = attempts.get(item.key, 0) + 1
                    if error is not None:
                        failures.append((item, error))
                        continue
                    outcomes[item.key] = PointOutcome(
                        item=item, payload=payload, wall_seconds=wall,
                        attempts=attempts[item.key], from_cache=False,
                    )
                    if cache is not None:
                        cache.append(item.key, payload)
                    done += 1
                    if report is not None:
                        report(done, len(pending))
            finally:
                executor.close()
            if not failures:
                break
            round_items = [item for item, __ in failures]
        if failures:
            raise SweepError(space.name, [
                (item.key, error) for item, error in failures
            ])
        if cache is not None:
            cache.save()

    ordered = [outcomes[item.key] for item in items]
    return SpaceResults(space, ordered)
