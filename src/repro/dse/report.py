"""Report rendering: series tables, CSV export and ASCII plots.

The paper's figures are line plots; a terminal reproduction renders the
same series as aligned tables plus a character-cell plot so the knees and
crossovers are visible without a display server.
"""

from __future__ import annotations

import io
from collections.abc import Sequence
from pathlib import Path

Series = dict[str, list[tuple[float, float]]]

_MARKS = "ox+*#@%&$~^=<>"


def format_table(
    header: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width table with right-aligned numeric columns."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in header]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    out = io.StringIO()
    if title:
        out.write(f"{title}\n")
    out.write("  ".join(h.rjust(w) for h, w in zip(header, widths)) + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for row in cells:
        out.write("  ".join(c.rjust(w) for c, w in zip(row, widths)) + "\n")
    return out.getvalue()


def write_csv(path: str | Path, header: Sequence[str],
              rows: Sequence[Sequence[object]]) -> None:
    lines = [",".join(str(h) for h in header)]
    lines += [",".join(str(c) for c in row) for row in rows]
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    Path(path).write_text("\n".join(lines) + "\n")


def ascii_plot(
    series: Series,
    width: int = 72,
    height: int = 20,
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
) -> str:
    """Scatter plot of one or more labelled series on a character canvas."""
    points = [(x, y) for values in series.values() for x, y in values]
    if not points:
        return "(no data)\n"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    canvas = [[" "] * width for __ in range(height)]

    def plot_cell(x: float, y: float) -> tuple[int, int]:
        col = int((x - x_min) / x_span * (width - 1))
        row = int((y - y_min) / y_span * (height - 1))
        return height - 1 - row, col

    for index, (label, values) in enumerate(series.items()):
        mark = _MARKS[index % len(_MARKS)]
        for x, y in values:
            row, col = plot_cell(x, y)
            canvas[row][col] = mark

    out = io.StringIO()
    if title:
        out.write(f"{title}\n")
    out.write(f"{y_label}: {y_min:.3g} .. {y_max:.3g} (bottom to top)\n")
    for row in canvas:
        out.write("|" + "".join(row) + "\n")
    out.write("+" + "-" * width + "\n")
    out.write(f"{x_label}: {x_min:.3g} .. {x_max:.3g} (left to right)\n")
    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]}={label}" for i, label in enumerate(series)
    )
    out.write(f"legend: {legend}\n")
    return out.getvalue()
