"""Chip-area model (TSMC 65 nm), after the paper's Section III.

The paper estimates area "from core/cache data given by the processor
vendor for a TSMC 65nm CMOS technology and including an overhead for NoC
switches, bridges and routing area of about 100% of the total core area
(excluding caches)".  Vendor numbers are not public, so the constants
below are calibrated to land the paper's own anchor points:

* the sweep's largest configurations (15 workers, 32 kB) sit near
  20-22 mm^2 in Fig. 7;
* the smallest (2 workers, small caches) sit near 2-3 mm^2.

Only *relative* area matters for the Pareto fronts and kill-rule knees, so
any linear recalibration leaves the reproduced figures unchanged in shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.system.config import SystemConfig


@dataclass(frozen=True)
class AreaModel:
    """Per-component mm^2 figures for a 65 nm implementation."""

    #: Xtensa LX core logic incl. TIE ports and DP-FP emulation support.
    core_logic_mm2: float = 0.55
    #: NoC switch + pif2NoC bridge + routing overhead, as a fraction of
    #: core logic area (the paper uses ~100%).
    noc_overhead_ratio: float = 1.0
    #: SRAM density for L1 arrays (6T cell + periphery, 65 nm).
    sram_mm2_per_kb: float = 0.0075
    #: Extra MPMMU logic beyond a core: DDR controller + queue glue.
    mpmmu_extra_mm2: float = 0.35

    def core_area(self, cache_kb: int) -> float:
        """One worker tile: core + its NoC share + its L1."""
        logic = self.core_logic_mm2 * (1.0 + self.noc_overhead_ratio)
        return logic + cache_kb * self.sram_mm2_per_kb

    def mpmmu_area(self, cache_kb: int) -> float:
        logic = self.core_logic_mm2 * (1.0 + self.noc_overhead_ratio)
        return logic + self.mpmmu_extra_mm2 + cache_kb * self.sram_mm2_per_kb

    def chip_area(self, config: SystemConfig) -> float:
        """Total die area of one architecture point, in mm^2."""
        return (
            config.n_workers * self.core_area(config.cache_size_kb)
            + self.mpmmu_area(config.mpmmu_cache_kb)
        )
