"""The journaled sweep result store and the classic Jacobi sweep runner.

Two layers live here:

* :class:`ResultCache` — one versioned JSON store per sweep name, with an
  append-only JSONL *journal* beside it.  The executor service persists
  every completed point to the journal as it finishes (crash-safe: a torn
  final line is ignored on load), and :meth:`ResultCache.save` compacts
  journal + store into the JSON file.  A sweep killed at point k resumes
  at point k+1 — the fix for the old whole-sweep-or-nothing write.
* :func:`run_sweep` — the historical entry point, now a thin wrapper over
  :func:`repro.dse.executor.run_space` for Jacobi-shaped spaces (see
  :func:`repro.dse.space.jacobi_sweep_space`), returning typed
  :class:`SweepResult` rows in point order.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro import __version__ as _repro_version
from repro.apps.jacobi.driver import run_jacobi


@dataclass
class SweepResult:
    """The distilled outcome of one sweep point (JSON-serializable)."""

    label: str
    n_workers: int
    cache_kb: int
    policy: str
    model: str
    n: int
    cycles_per_iteration: float
    iteration_cycles: list[int]
    total_cycles: int
    validated: bool
    wall_seconds: float
    noc_flits: int = 0
    noc_deflections: int = 0
    mpmmu_busy_cycles: int = 0
    extra: dict = field(default_factory=dict)

    @classmethod
    def from_json(cls, data: dict) -> "SweepResult":
        return cls(**data)


def jacobi_app(config, params) -> dict:
    """Evaluate one Jacobi point: the app driver every backend runs."""
    started = time.perf_counter()
    outcome = run_jacobi(config, params)
    wall = time.perf_counter() - started
    noc = outcome.stats.get("noc", {})
    mpmmu = outcome.stats.get("mpmmu", {})
    return asdict(SweepResult(
        label=config.label(),
        n_workers=config.n_workers,
        cache_kb=config.cache_size_kb,
        policy=config.policy.value,
        model=params.model.value if hasattr(params.model, "value")
        else str(params.model),
        n=params.n,
        cycles_per_iteration=outcome.cycles_per_iteration,
        iteration_cycles=outcome.iteration_cycles,
        total_cycles=outcome.total_cycles,
        validated=outcome.validated,
        wall_seconds=wall,
        noc_flits=noc.get("flits_ejected", 0),
        noc_deflections=noc.get("deflections", 0),
        mpmmu_busy_cycles=mpmmu.get("busy_cycles", 0),
    ))


#: Bump whenever a change can alter simulated cycle counts (kernel/NoC/
#: timing-model changes) or the cache-key/JSON layout: cached sweep points
#: are only trusted when they were produced by the same cache version, so
#: a hot-path overhaul can never silently serve stale figures.  Version 3
#: introduced schema-hash-prefixed keys and the resume journal.
CACHE_VERSION = f"3:{_repro_version}"


class ResultCache:
    """One JSON store + JSONL journal per sweep name, keyed by point.

    The compact file embeds :data:`CACHE_VERSION`; on load, any mismatch
    (including the version-less seed layout) discards the cached points
    wholesale and the sweep recomputes them.  The journal holds points
    persisted *during* a sweep — :meth:`append` writes one line per
    completed point, so an interrupted run keeps everything it finished.
    Journal lines are version-stamped too, and a torn final line (the
    crash case) is skipped silently.  :meth:`save` compacts journal +
    store into the JSON file and removes the journal.

    Two layers of access: ``get``/``put`` speak :class:`SweepResult` (the
    Jacobi-shaped sweeps), ``get_raw``/``put_raw`` speak plain JSON dicts
    so any experiment — collectives, CG, future apps — can reuse the same
    versioned store without forcing its results into the sweep schema.
    """

    def __init__(self, directory: str | Path, name: str) -> None:
        self.path = Path(directory) / f"{name}.json"
        self.journal_path = Path(directory) / f"{name}.journal.jsonl"
        self._data: dict[str, dict] = {}
        self.discarded_stale = False
        self.journal_points = 0
        if self.path.exists():
            raw = json.loads(self.path.read_text())
            points = (
                raw.get("points")
                if isinstance(raw, dict)
                and raw.get("__cache_version__") == CACHE_VERSION
                else None
            )
            if isinstance(points, dict):
                self._data = points
            else:
                self.discarded_stale = True
        if self.journal_path.exists():
            self._replay_journal()

    def _replay_journal(self) -> None:
        for line in self.journal_path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                break  # torn final line from a killed sweep: ignore the tail
            if entry.get("v") != CACHE_VERSION:
                continue
            self._data[entry["key"]] = entry["payload"]
            self.journal_points += 1

    def get_raw(self, key: str) -> dict | None:
        return self._data.get(key)

    def put_raw(self, key: str, payload: dict) -> None:
        self._data[key] = payload

    def append(self, key: str, payload: dict) -> None:
        """Persist one completed point durably, right now.

        The incremental half of resume semantics: one JSON line appended
        and flushed per point, so whatever a killed sweep already computed
        survives to the next run.
        """
        self._data[key] = payload
        self.journal_path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"v": CACHE_VERSION, "key": key, "payload": payload}
        with self.journal_path.open("a") as journal:
            journal.write(json.dumps(entry) + "\n")

    def get(self, key: str) -> SweepResult | None:
        raw = self.get_raw(key)
        return SweepResult.from_json(raw) if raw is not None else None

    def put(self, key: str, result: SweepResult) -> None:
        self.put_raw(key, asdict(result))

    def save(self) -> None:
        """Compact store + journal into the versioned JSON file."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"__cache_version__": CACHE_VERSION, "points": self._data}
        self.path.write_text(json.dumps(payload, indent=1, sort_keys=True))
        if self.journal_path.exists():
            self.journal_path.unlink()
        self.journal_points = 0


def run_sweep(
    space,
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
    progress: bool = False,
    backend: str | None = None,
) -> list[SweepResult]:
    """Evaluate every point of a Jacobi ``SweepSpace``; results in point order.

    ``jobs=None`` auto-sizes the pool (capped at the point count);
    ``jobs=1`` runs inline, which is what the unit tests use.  With a
    ``cache_dir``, previously computed points are reused and new points
    persist incrementally (a killed sweep resumes where it died).
    """
    from repro.dse.executor import run_space

    results = run_space(
        space, backend=backend, jobs=jobs, cache_dir=cache_dir,
        progress=progress,
    )
    return [SweepResult.from_json(outcome.payload)
            for outcome in results.outcomes]
