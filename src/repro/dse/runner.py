"""Parallel sweep execution with a JSON result cache.

The paper ran its 168 configurations overnight on five dual-Xeon servers;
we run them with a :mod:`multiprocessing` pool and cache each point's
result keyed by every field that affects it, so regenerating a figure
after the sweep exists costs nothing.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro import __version__ as _repro_version
from repro.apps.jacobi.driver import run_jacobi
from repro.dse.space import SweepPoint, SweepSpec


@dataclass
class SweepResult:
    """The distilled outcome of one sweep point (JSON-serializable)."""

    label: str
    n_workers: int
    cache_kb: int
    policy: str
    model: str
    n: int
    cycles_per_iteration: float
    iteration_cycles: list[int]
    total_cycles: int
    validated: bool
    wall_seconds: float
    noc_flits: int = 0
    noc_deflections: int = 0
    mpmmu_busy_cycles: int = 0
    extra: dict = field(default_factory=dict)

    @classmethod
    def from_json(cls, data: dict) -> "SweepResult":
        return cls(**data)


def evaluate_point(point: SweepPoint) -> SweepResult:
    """Run one sweep point in-process (also the pool worker body)."""
    started = time.perf_counter()
    outcome = run_jacobi(point.config, point.params)
    wall = time.perf_counter() - started
    noc = outcome.stats.get("noc", {})
    mpmmu = outcome.stats.get("mpmmu", {})
    return SweepResult(
        label=point.config.label(),
        n_workers=point.config.n_workers,
        cache_kb=point.config.cache_size_kb,
        policy=point.config.policy.value,
        model=point.params.model.value,  # type: ignore[union-attr]
        n=point.params.n,
        cycles_per_iteration=outcome.cycles_per_iteration,
        iteration_cycles=outcome.iteration_cycles,
        total_cycles=outcome.total_cycles,
        validated=outcome.validated,
        wall_seconds=wall,
        noc_flits=noc.get("flits_ejected", 0),
        noc_deflections=noc.get("deflections", 0),
        mpmmu_busy_cycles=mpmmu.get("busy_cycles", 0),
    )


def _pool_worker(item: tuple[str, SweepPoint]) -> tuple[str, SweepResult]:
    key, point = item
    return key, evaluate_point(point)


#: Bump whenever a change can alter simulated cycle counts (kernel/NoC/
#: timing-model changes): cached sweep points are only trusted when they
#: were produced by the same cache version, so a hot-path overhaul can
#: never silently serve stale figures.  The schema part covers the JSON
#: layout itself.
CACHE_VERSION = f"2:{_repro_version}"


class ResultCache:
    """One JSON file per sweep name, mapping point keys to results.

    The file embeds :data:`CACHE_VERSION`; on load, any mismatch (including
    the version-less seed layout) discards the cached points wholesale and
    the sweep recomputes them.

    Two layers of access: ``get``/``put`` speak :class:`SweepResult` (the
    Jacobi-shaped sweeps), ``get_raw``/``put_raw`` speak plain JSON dicts
    so any experiment — collectives, CG, future apps — can reuse the same
    versioned store without forcing its results into the sweep schema.
    """

    def __init__(self, directory: str | Path, name: str) -> None:
        self.path = Path(directory) / f"{name}.json"
        self._data: dict[str, dict] = {}
        self.discarded_stale = False
        if self.path.exists():
            raw = json.loads(self.path.read_text())
            points = (
                raw.get("points")
                if isinstance(raw, dict)
                and raw.get("__cache_version__") == CACHE_VERSION
                else None
            )
            if isinstance(points, dict):
                self._data = points
            else:
                self.discarded_stale = True

    def get_raw(self, key: str) -> dict | None:
        return self._data.get(key)

    def put_raw(self, key: str, payload: dict) -> None:
        self._data[key] = payload

    def get(self, key: str) -> SweepResult | None:
        raw = self.get_raw(key)
        return SweepResult.from_json(raw) if raw is not None else None

    def put(self, key: str, result: SweepResult) -> None:
        self.put_raw(key, asdict(result))

    def save(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"__cache_version__": CACHE_VERSION, "points": self._data}
        self.path.write_text(json.dumps(payload, indent=1, sort_keys=True))


def run_sweep(
    spec: SweepSpec,
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
    progress: bool = False,
) -> list[SweepResult]:
    """Evaluate every point of ``spec``; results come back in point order.

    ``jobs=None`` auto-sizes the pool (capped at the point count);
    ``jobs=1`` runs inline, which is what the unit tests use.  With a
    ``cache_dir``, previously computed points are reused.
    """
    points = spec.points()
    cache = ResultCache(cache_dir, spec.name) if cache_dir is not None else None
    keyed = [(point.key(), point) for point in points]
    results: dict[str, SweepResult] = {}
    pending: list[tuple[str, SweepPoint]] = []
    for key, point in keyed:
        cached = cache.get(key) if cache is not None else None
        if cached is not None:
            results[key] = cached
        else:
            pending.append((key, point))

    if pending:
        if jobs is None:
            jobs = max(1, min(len(pending), (os.cpu_count() or 2) - 1))
        done = 0
        if jobs == 1:
            for key, point in pending:
                results[key] = evaluate_point(point)
                done += 1
                _report_progress(progress, done, len(pending))
        else:
            with multiprocessing.Pool(jobs) as pool:
                for key, result in pool.imap_unordered(_pool_worker, pending):
                    results[key] = result
                    done += 1
                    _report_progress(progress, done, len(pending))
        if cache is not None:
            for key, __ in pending:
                cache.put(key, results[key])
            cache.save()

    return [results[key] for key, __ in keyed]


def _report_progress(enabled: bool, done: int, total: int) -> None:
    if enabled:
        print(f"\r  sweep: {done}/{total} points", end="", file=sys.stderr)
        if done == total:
            print(file=sys.stderr)
