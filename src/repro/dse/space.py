"""Declarative sweep spaces: named axes compiled to a keyed worklist.

A :class:`SweepSpace` describes one experiment's design space: a base
:class:`~repro.system.config.SystemConfig`, a base app-params dataclass
(any app — Jacobi, the collective microbenchmark, CG, synthetic NoC
traffic), and a tuple of named :class:`Axis` objects whose values are
either scalars (one field each) or :class:`Variant` bundles (several
coordinated overrides under one label, e.g. ``hw(q4)`` = queue depth 4
*and* the ``hw`` algorithm).  Axes combine as a cross product by default;
``zip_groups`` names axes that advance together instead (paired axes of
equal length).  An optional ``prune`` predicate drops coordinate
combinations that make no sense (e.g. tree-algorithm scatter).

``points()`` compiles the space to a list of :class:`WorkItem`\\ s, each
carrying a stable cache key ``schema_hash | config fields | app | params
fields``.  The schema hash covers the *shape* of the space — the app, the
axis names/targets/fields, the zip structure, and the field schemas of
the config and params dataclasses — so a changed axis definition or a
migrated dataclass can never serve stale cached rows, while value-level
changes are already covered by the per-field key body.  Two spaces with
the same shape share keys (and therefore cached points) even when their
value lists differ: that is what lets the speedup-vs-area figures reuse
the execution-time sweeps from a warm cache directory.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.system.config import SystemConfig


def _dataclass_cache_key(instance) -> str:
    """Stable ``k=v|...`` serialization of a dataclass, enum-tolerant.

    Every field participates, so any knob that can affect a simulated
    result changes the key; enum members stringify the same whether the
    caller passed the member or its string alias.
    """
    data = dataclasses.asdict(instance)
    parts = []
    for name in sorted(data):
        value = data[name]
        if isinstance(value, enum.Enum):
            value = str(value)
        parts.append(f"{name}={value}")
    return "|".join(parts)


def config_cache_key(config: SystemConfig) -> str:
    """Cache-key fragment for one architecture point."""
    return _dataclass_cache_key(config)


def params_cache_key(params) -> str:
    """Cache-key fragment for any app's params dataclass."""
    return _dataclass_cache_key(params)


def dataclass_schema(instance_or_cls) -> list[str]:
    """``name:type`` rows for every field of a dataclass (schema, not values)."""
    cls = (
        instance_or_cls
        if isinstance(instance_or_cls, type)
        else type(instance_or_cls)
    )
    return [f"{f.name}:{f.type}" for f in dataclasses.fields(cls)]


@dataclass(frozen=True)
class Variant:
    """One named bundle of coordinated overrides — a non-scalar axis value.

    ``config`` fields go through :meth:`SystemConfig.with_changes`,
    ``params`` fields through :func:`dataclasses.replace` on the app's
    params dataclass.  The ``label`` is the value's coordinate in result
    lookups and report rows.
    """

    label: str | int | float
    config: dict = field(default_factory=dict)
    params: dict = field(default_factory=dict)


@dataclass(frozen=True)
class Axis:
    """One named sweep axis.

    Scalar values override a single field (``field``, defaulting to the
    axis name) on the ``target`` dataclass (``"config"`` or ``"params"``);
    :class:`Variant` values carry their own per-target override dicts and
    ignore ``target``/``field``.  A seed axis is just an ordinary axis
    over a seed-bearing field (see :func:`seed_axis`).
    """

    name: str
    values: tuple
    target: str = "config"
    field: str | None = None

    def __post_init__(self) -> None:
        if not self.values:
            raise ConfigError(f"axis {self.name!r} has no values")
        if self.target not in ("config", "params"):
            raise ConfigError(
                f"axis {self.name!r}: target must be 'config' or 'params', "
                f"got {self.target!r}"
            )

    @property
    def field_name(self) -> str:
        return self.field if self.field is not None else self.name

    def label_of(self, value) -> str | int | float:
        return value.label if isinstance(value, Variant) else value

    def schema(self) -> list:
        """Shape of this axis (no values): participates in the schema hash."""
        kinds = sorted({
            "variant" if isinstance(v, Variant) else "scalar"
            for v in self.values
        })
        return [self.name, self.target, self.field_name, kinds]


def seed_axis(seeds: int | tuple[int, ...], name: str = "seed",
              target: str = "params") -> Axis:
    """An axis over a seed field: ``seeds`` is a count or explicit tuple."""
    values = tuple(range(seeds)) if isinstance(seeds, int) else tuple(seeds)
    return Axis(name=name, values=values, target=target)


@dataclass(frozen=True)
class WorkItem:
    """One compiled sweep point: what an executor worker evaluates.

    Picklable by construction (the app driver is a module-level callable,
    pickled by reference), so the same item runs identically on the
    inline, threaded and process backends.
    """

    key: str
    coords: tuple  # ((axis_name, label), ...) in axis order
    config: SystemConfig
    params: object
    app: Callable

    @property
    def coords_dict(self) -> dict:
        return dict(self.coords)


@dataclass
class SweepSpace:
    """A declarative sweep over one app: axes -> keyed worklist.

    ``app`` is a module-level callable ``(config, params) -> dict`` whose
    JSON-serializable payload is what gets cached; ``app_id`` names it in
    cache keys (defaults to the callable's ``__name__``).
    ``cacheable=False`` opts a space out of the result cache entirely
    (wall-clock measurements must rerun).
    """

    name: str
    app: Callable
    axes: tuple[Axis, ...] = ()
    base_config: SystemConfig = field(default_factory=SystemConfig)
    base_params: object = None
    zip_groups: tuple[tuple[str, ...], ...] = ()
    prune: Callable[[dict], bool] | None = None
    app_id: str | None = None
    cacheable: bool = True

    def __post_init__(self) -> None:
        if self.app_id is None:
            self.app_id = getattr(self.app, "__name__", str(self.app))
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ConfigError(f"space {self.name!r} has duplicate axis names")
        grouped = [name for group in self.zip_groups for name in group]
        if len(set(grouped)) != len(grouped):
            raise ConfigError(
                f"space {self.name!r}: an axis appears in two zip groups"
            )
        for name in grouped:
            if name not in names:
                raise ConfigError(
                    f"space {self.name!r}: zip group names unknown axis "
                    f"{name!r}"
                )

    # -- schema hashing ----------------------------------------------------

    def schema_hash(self) -> str:
        """12-hex-digit hash of the space's *shape* (axes + dataclass schemas).

        Covers the app id, every axis definition (name, target, field,
        value kind — not the value lists), the zip structure, and the
        field schemas of the config and params dataclasses.  Any change
        to one of those invalidates every cached row keyed under it;
        value-level changes are covered by the key body instead.
        """
        shape = {
            "app": self.app_id,
            "axes": [axis.schema() for axis in self.axes],
            "zip": sorted(tuple(g) for g in self.zip_groups),
            "config_schema": dataclass_schema(self.base_config),
            "params_schema": (
                dataclass_schema(self.base_params)
                if self.base_params is not None else None
            ),
        }
        digest = hashlib.sha256(
            json.dumps(shape, sort_keys=True, default=str).encode()
        )
        return digest.hexdigest()[:12]

    # -- worklist compilation ----------------------------------------------

    def _axis_groups(self) -> list[list[Axis]]:
        """Axes bundled by zip group, in declaration order of first member."""
        by_name = {axis.name: axis for axis in self.axes}
        grouped: dict[str, tuple[str, ...]] = {}
        for group in self.zip_groups:
            lengths = {len(by_name[name].values) for name in group}
            if len(lengths) > 1:
                raise ConfigError(
                    f"space {self.name!r}: zipped axes {group} have "
                    f"unequal lengths"
                )
            for name in group:
                grouped[name] = tuple(group)
        groups: list[list[Axis]] = []
        seen: set[tuple[str, ...]] = set()
        for axis in self.axes:
            group = grouped.get(axis.name)
            if group is None:
                groups.append([axis])
            elif group not in seen:
                seen.add(group)
                groups.append([by_name[name] for name in group])
        return groups

    def _apply(self, axis: Axis, value, config: SystemConfig, params):
        if isinstance(value, Variant):
            if value.config:
                config = config.with_changes(**value.config)
            if value.params:
                params = dataclasses.replace(params, **value.params)
            return config, params
        if axis.target == "config":
            return config.with_changes(**{axis.field_name: value}), params
        return config, dataclasses.replace(params, **{axis.field_name: value})

    def points(self) -> list[WorkItem]:
        """Compile the space to its worklist, in axis declaration order."""
        schema = self.schema_hash()
        items: list[WorkItem] = []

        def expand(group_index: int, config: SystemConfig, params,
                   coords: tuple) -> None:
            if group_index == len(groups):
                if self.prune is not None and self.prune(dict(coords)):
                    return
                key = (
                    f"s={schema}|{config_cache_key(config)}"
                    f"|app={self.app_id}|"
                    + (params_cache_key(params) if params is not None else "")
                )
                items.append(WorkItem(
                    key=key, coords=coords, config=config, params=params,
                    app=self.app,
                ))
                return
            group = groups[group_index]
            for position in range(len(group[0].values)):
                next_config, next_params = config, params
                next_coords = coords
                for axis in group:
                    value = axis.values[position]
                    next_config, next_params = self._apply(
                        axis, value, next_config, next_params
                    )
                    next_coords += ((axis.name, axis.label_of(value)),)
                expand(group_index + 1, next_config, next_params, next_coords)

        groups = self._axis_groups()
        expand(0, self.base_config, self.base_params, ())
        return items

    @property
    def n_points(self) -> int:
        return len(self.points())


def jacobi_sweep_space(
    name: str,
    workers: tuple[int, ...] = tuple(range(2, 16)),
    cache_sizes_kb: tuple[int, ...] | None = None,
    policies: tuple[str, ...] = ("wb", "wt"),
    base_config: SystemConfig | None = None,
    params=None,
) -> SweepSpace:
    """The paper's execution-time sweep as one :class:`SweepSpace`.

    Cores x cache size x write policy over the Jacobi workload — the
    168-point design space of Section III when called with the full axes.
    (This is the sweep that used to be hard-coded as ``SweepSpec``.)
    """
    from repro.apps.jacobi.driver import JacobiParams
    from repro.dse.runner import jacobi_app
    from repro.system.config import VALID_CACHE_SIZES_KB

    if cache_sizes_kb is None:
        cache_sizes_kb = VALID_CACHE_SIZES_KB
    return SweepSpace(
        name=name,
        app=jacobi_app,
        app_id="jacobi",
        axes=(
            Axis("workers", tuple(workers), field="n_workers"),
            Axis("cache_kb", tuple(cache_sizes_kb), field="cache_size_kb"),
            Axis("policy", tuple(policies), field="cache_policy"),
        ),
        base_config=base_config if base_config is not None else SystemConfig(),
        base_params=params if params is not None else JacobiParams(),
    )
