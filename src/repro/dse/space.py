"""Declarative sweep definitions."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.apps.jacobi.driver import JacobiParams
from repro.errors import ConfigError
from repro.system.config import VALID_CACHE_SIZES_KB, SystemConfig


@dataclass(frozen=True)
class SweepPoint:
    """One (architecture, workload) pair inside a sweep."""

    config: SystemConfig
    params: JacobiParams

    def key(self) -> str:
        """Stable cache key over every field that affects the result."""
        config_dict = dataclasses.asdict(self.config)
        params_dict = dataclasses.asdict(self.params)
        params_dict["model"] = str(params_dict["model"])
        config_dict["cache_policy"] = str(config_dict["cache_policy"])
        config_dict["arbiter_mode"] = str(config_dict["arbiter_mode"])
        config_dict["arbiter_high_priority"] = str(
            config_dict["arbiter_high_priority"]
        )
        config_dict["empi_barrier"] = str(config_dict["empi_barrier"])
        parts = [f"{k}={config_dict[k]}" for k in sorted(config_dict)]
        parts += [f"{k}={params_dict[k]}" for k in sorted(params_dict)]
        return "|".join(parts)


@dataclass
class SweepSpec:
    """A full sweep: the cross product of architecture axes x workload."""

    name: str
    workers: tuple[int, ...] = tuple(range(2, 16))
    cache_sizes_kb: tuple[int, ...] = VALID_CACHE_SIZES_KB
    policies: tuple[str, ...] = ("wb", "wt")
    base_config: SystemConfig = field(default_factory=SystemConfig)
    params: JacobiParams = field(default_factory=JacobiParams)

    def __post_init__(self) -> None:
        if not self.workers or not self.cache_sizes_kb or not self.policies:
            raise ConfigError(f"sweep {self.name!r} has an empty axis")

    def points(self) -> list[SweepPoint]:
        result = []
        for n_workers in self.workers:
            for cache_kb in self.cache_sizes_kb:
                for policy in self.policies:
                    config = self.base_config.with_changes(
                        n_workers=n_workers,
                        cache_size_kb=cache_kb,
                        cache_policy=policy,
                    )
                    result.append(SweepPoint(config, self.params))
        return result

    @property
    def n_points(self) -> int:
        return len(self.workers) * len(self.cache_sizes_kb) * len(self.policies)
