"""Declarative sweep definitions and result-cache key construction."""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field

from repro.apps.jacobi.driver import JacobiParams
from repro.errors import ConfigError
from repro.system.config import VALID_CACHE_SIZES_KB, SystemConfig


def _dataclass_cache_key(instance) -> str:
    """Stable ``k=v|...`` serialization of a dataclass, enum-tolerant.

    Every field participates, so any knob that can affect a simulated
    result changes the key; enum members stringify the same whether the
    caller passed the member or its string alias.
    """
    data = dataclasses.asdict(instance)
    parts = []
    for name in sorted(data):
        value = data[name]
        if isinstance(value, enum.Enum):
            value = str(value)
        parts.append(f"{name}={value}")
    return "|".join(parts)


def config_cache_key(config: SystemConfig) -> str:
    """Cache-key fragment for one architecture point."""
    return _dataclass_cache_key(config)


def params_cache_key(params) -> str:
    """Cache-key fragment for any app's params dataclass."""
    return _dataclass_cache_key(params)


@dataclass(frozen=True)
class SweepPoint:
    """One (architecture, workload) pair inside a sweep."""

    config: SystemConfig
    params: JacobiParams

    def key(self) -> str:
        """Stable cache key over every field that affects the result."""
        return f"{config_cache_key(self.config)}|{params_cache_key(self.params)}"


@dataclass
class SweepSpec:
    """A full sweep: the cross product of architecture axes x workload."""

    name: str
    workers: tuple[int, ...] = tuple(range(2, 16))
    cache_sizes_kb: tuple[int, ...] = VALID_CACHE_SIZES_KB
    policies: tuple[str, ...] = ("wb", "wt")
    base_config: SystemConfig = field(default_factory=SystemConfig)
    params: JacobiParams = field(default_factory=JacobiParams)

    def __post_init__(self) -> None:
        if not self.workers or not self.cache_sizes_kb or not self.policies:
            raise ConfigError(f"sweep {self.name!r} has an empty axis")

    def points(self) -> list[SweepPoint]:
        result = []
        for n_workers in self.workers:
            for cache_kb in self.cache_sizes_kb:
                for policy in self.policies:
                    config = self.base_config.with_changes(
                        n_workers=n_workers,
                        cache_size_kb=cache_kb,
                        cache_policy=policy,
                    )
                    result.append(SweepPoint(config, self.params))
        return result

    @property
    def n_points(self) -> int:
        return len(self.workers) * len(self.cache_sizes_kb) * len(self.policies)
