"""The experiment registry: declarative entry points the CLI introspects.

An :class:`Experiment` replaces the old informal ``(full, jobs,
cache_dir)`` callable convention: it names the artifact, carries the help
line the CLI listing shows, and plugs into the sweep service through two
hooks — ``build_space(full)`` returns the experiment's
:class:`~repro.dse.space.SweepSpace` (or a list of them), and
``summarize(run)`` turns the executed results into an
:class:`ExperimentReport`.  Calling the object runs the whole pipeline:

    report = ALL_EXPERIMENTS["fig6"](full=True, jobs=8, cache_dir="results")

Every registered experiment therefore shares pool wiring, resumable
caching, retry policy and backend selection for free; experiments whose
hand-rolled loops used to ``del jobs, cache_dir`` now parallelize and
cache like the figure sweeps do.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.dse.executor import SpaceResults, run_space
from repro.dse.space import SweepSpace


def full_scale_requested() -> bool:
    """Does the environment ask for the paper's full axes (``MEDEA_FULL``)?"""
    return os.environ.get("MEDEA_FULL", "") not in ("", "0")


@dataclass
class ExperimentReport:
    """Rendered outcome of one experiment."""

    experiment: str
    full_scale: bool
    text: str
    series: dict = field(default_factory=dict)
    rows: list = field(default_factory=list)
    wall_seconds: float = 0.0

    def save(self, out_dir: str | Path) -> Path:
        path = Path(out_dir) / f"{self.experiment}.txt"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.text)
        return path


@dataclass
class ExperimentRun:
    """What ``summarize`` receives: the executed spaces plus their context."""

    name: str
    full: bool
    spaces: list[SweepSpace]
    results: list[SpaceResults]

    def result(self, index: int = 0) -> SpaceResults:
        return self.results[index]


@dataclass
class Experiment:
    """One registered paper artifact: name, help line, and the two hooks.

    ``build_space(full)`` may return one space or a sequence (executed in
    order — later spaces see the earlier ones' warm cache);
    ``summarize(run)`` builds the report from the results.
    ``default_scale`` is what the CLI listing shows for a bare invocation
    (the ``MEDEA_FULL`` environment variable still upgrades it).
    """

    name: str
    help: str
    build_space: Callable[[bool], SweepSpace | Sequence[SweepSpace]]
    summarize: Callable[[ExperimentRun], ExperimentReport]
    default_scale: str = "quick"

    def __call__(
        self,
        full: bool | None = None,
        jobs: int | None = None,
        cache_dir: str | Path | None = None,
        backend: str | None = None,
        resume: bool = True,
        retries: int = 0,
        progress: bool = False,
    ) -> ExperimentReport:
        """Run the experiment end to end and return its report.

        ``full=None`` defers to ``MEDEA_FULL`` (then ``default_scale``);
        the remaining arguments configure the sweep service and default
        to the classic behaviour (auto-sized pool, resume from cache).
        """
        started = time.perf_counter()
        if full is None:
            full = full_scale_requested() or self.default_scale == "full"
        built = self.build_space(full)
        spaces = list(built) if isinstance(built, Sequence) else [built]
        results = [
            run_space(
                space, backend=backend, jobs=jobs, cache_dir=cache_dir,
                resume=resume, retries=retries, progress=progress,
            )
            for space in spaces
        ]
        report = self.summarize(
            ExperimentRun(name=self.name, full=full, spaces=spaces,
                          results=results)
        )
        report.wall_seconds = time.perf_counter() - started
        return report


#: Every registered experiment, keyed by name: the registry the CLI
#: introspects for choices and the ``list`` table.
REGISTRY: dict[str, Experiment] = {}


def register_experiment(
    name: str,
    help: str,  # noqa: A002 - mirrors argparse's vocabulary
    build_space: Callable[[bool], SweepSpace | Sequence[SweepSpace]],
    summarize: Callable[[ExperimentRun], ExperimentReport],
    default_scale: str = "quick",
) -> Experiment:
    """Create and register an :class:`Experiment` (last registration wins)."""
    experiment = Experiment(
        name=name, help=help, build_space=build_space, summarize=summarize,
        default_scale=default_scale,
    )
    REGISTRY[name] = experiment
    return experiment
