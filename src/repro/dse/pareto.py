"""Pareto pruning and the "kill rule" (Agarwal, DAC 2007).

The paper prunes its (area, speedup) cloud in two stages: drop
Pareto-dominated points (more area for less speedup), then walk the front
from the smallest area and *kill* any step whose relative performance gain
is smaller than its relative area cost — "kill if less than linear".
What survives is the labelled optimal-speedup-vs-area staircase of
Figs. 7 and 9.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FrontPoint:
    """One candidate design: die area, achieved speedup, display label."""

    area_mm2: float
    speedup: float
    label: str


def pareto_front(points: list[FrontPoint]) -> list[FrontPoint]:
    """Non-dominated subset, sorted by increasing area.

    A point survives when no other point offers >= speedup with <= area.
    Among equal-area points only the fastest is kept.
    """
    best_by_area: dict[float, FrontPoint] = {}
    for point in points:
        existing = best_by_area.get(point.area_mm2)
        if existing is None or point.speedup > existing.speedup:
            best_by_area[point.area_mm2] = point
    front: list[FrontPoint] = []
    best = float("-inf")
    for area in sorted(best_by_area):
        point = best_by_area[area]
        if point.speedup > best:
            front.append(point)
            best = point.speedup
    return front


def kill_rule_prune(
    front: list[FrontPoint], threshold: float = 1.0
) -> list[FrontPoint]:
    """Apply the kill rule along a Pareto front.

    Starting from the smallest-area design, a step to a bigger design is
    kept only if ``%speedup gain >= threshold * %area increase``.  The
    paper uses threshold 1.0 ("kill if less than linear").

    Skipped points remain candidates for the *next* comparison — the rule
    evaluates cumulative steps from the last kept design, so a sequence of
    individually-sublinear points can still be reached through one
    worthwhile jump.
    """
    if not front:
        return []
    ordered = sorted(front, key=lambda p: (p.area_mm2, p.speedup))
    kept = [ordered[0]]
    for point in ordered[1:]:
        last = kept[-1]
        if last.area_mm2 <= 0:
            kept.append(point)
            continue
        area_gain = (point.area_mm2 - last.area_mm2) / last.area_mm2
        perf_gain = (point.speedup - last.speedup) / last.speedup
        if area_gain <= 0:
            continue
        if perf_gain >= threshold * area_gain:
            kept.append(point)
    return kept
