"""Experiment definitions: one registered entry point per paper artifact.

Every experiment is an :class:`~repro.dse.registry.Experiment` built from
two hooks: ``build_space(full)`` declares its design space as one or more
:class:`~repro.dse.space.SweepSpace` objects, and ``summarize(run)``
renders the executed results into an
:class:`~repro.dse.registry.ExperimentReport` with the same series the
paper plots.  The sweep service (:mod:`repro.dse.executor`) supplies the
pool wiring, resumable schema-hashed caching, retries and progress for
all of them — no experiment hand-rolls its own cache or pool any more.
The CLI (``python -m repro``) and the benchmark suite both call the
registered objects, which keep the classic
``f(full=..., jobs=..., cache_dir=...)`` calling convention.

Scale control: ``full=False`` (default) runs a reduced grid that finishes
in minutes on a laptop; ``full=True`` reproduces the paper's exact axes
(the 168-point sweep per problem size).  The benchmarks honour the
``MEDEA_FULL=1`` environment variable.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.apps.cg import CgParams, run_cg
from repro.apps.collective_bench import (
    COLLECTIVES,
    CollectiveBenchParams,
    run_collective_bench,
)
from repro.apps.jacobi.driver import JacobiParams
from repro.apps.matmul import MatmulParams, run_matmul
from repro.apps.stream import StreamParams, run_stream
from repro.apps.synthetic import SyntheticParams, run_synthetic_point
from repro.dse.area import AreaModel
from repro.dse.executor import SpaceResults, run_space
from repro.dse.pareto import FrontPoint, kill_rule_prune, pareto_front
from repro.dse.registry import (
    REGISTRY,
    ExperimentReport,
    ExperimentRun,
    full_scale_requested,
    register_experiment,
)
from repro.dse.report import ascii_plot, format_table
from repro.dse.runner import SweepResult, jacobi_app
from repro.dse.space import Axis, SweepSpace, Variant, jacobi_sweep_space
from repro.faults import FaultPlan
from repro.system.config import SystemConfig
from repro.telemetry.heatmap import render_noc_report

#: Default location of the sweep cache and rendered reports.  The CLI
#: points every experiment at one ``--out`` directory, so the whole
#: figure pipeline shares a single warm cache: the speedup-vs-area
#: figures reuse the execution-time sweeps, and repeated invocations
#: reuse everything.
DEFAULT_RESULTS_DIR = Path("results")

#: The registry, under its historical name: the CLI introspects this.
ALL_EXPERIMENTS = REGISTRY


def _scale_note(full: bool, detail: str) -> str:
    if full:
        return "scale: FULL (paper axes)\n"
    return f"scale: reduced for quick runs ({detail}); MEDEA_FULL=1 for paper axes\n"


def _check_validated(results: list[SweepResult]) -> None:
    bad = [r.label for r in results if not r.validated]
    if bad:
        raise AssertionError(
            f"numerical validation failed for: {', '.join(bad)}"
        )


def _assert_validated(label: str, ok: bool) -> None:
    if not ok:
        raise AssertionError(f"numerical validation failed for: {label}")


# ---------------------------------------------------------------------------
# App drivers: module-level (config, params) -> JSON payload callables,
# picklable by reference so every executor backend can run them.
# ---------------------------------------------------------------------------


def collective_bench_app(config: SystemConfig,
                         params: CollectiveBenchParams) -> dict:
    result = run_collective_bench(config, params)
    return {
        "cycles_per_op": result.cycles_per_op,
        "total_cycles": result.total_cycles,
        "validated": result.validated,
    }


def cg_app(config: SystemConfig, params: CgParams) -> dict:
    result = run_cg(config, params)
    return {
        "total_cycles": result.total_cycles,
        "solve_cycles": result.solve_cycles,
        "overlap_efficiency": result.overlap_efficiency,
        "validated": result.validated,
        "converged": result.converged,
    }


def matmul_app(config: SystemConfig, params: MatmulParams) -> dict:
    result = run_matmul(config, params)
    return {
        "total_cycles": result.total_cycles,
        "reduce_cycles": result.reduce_cycles,
        "validated": result.validated,
    }


def stream_app(config: SystemConfig, params: StreamParams) -> dict:
    result = run_stream(config, params)
    return {
        "cycles_per_block": result.cycles_per_block,
        "validated": result.validated,
    }


def synthetic_app(config: SystemConfig, params: SyntheticParams) -> dict:
    del config  # a bare-fabric experiment: no PEs, no memory system
    stats = run_synthetic_point(params)
    return {
        "offered_rate": stats.offered_rate,
        "mean_latency": stats.mean_latency,
        "max_latency": stats.max_latency,
        "p99_latency_bound": stats.p99_latency_bound,
        "deflections_per_flit": stats.deflections_per_flit,
        "throughput": stats.throughput,
        "all_delivered": stats.all_delivered,
        # Plain lists/dicts: rides the JSON result cache unmodified.
        "spatial": stats.spatial,
    }


# ---------------------------------------------------------------------------
# Figures 6 and 8: execution time vs cores / cache size / policy
# ---------------------------------------------------------------------------


def _execution_time_space(
    name: str,
    size: int,
    policies: tuple[str, ...],
    cache_sizes: tuple[int, ...],
    workers: tuple[int, ...],
    iterations: int,
) -> SweepSpace:
    return jacobi_sweep_space(
        name=name,
        workers=workers,
        cache_sizes_kb=cache_sizes,
        policies=policies,
        params=JacobiParams(n=size, iterations=iterations, warmup=1),
    )


def _summarize_execution_time(
    experiment: str, paper_size: int, size: int, workers: tuple[int, ...],
    full: bool, results: SpaceResults,
) -> ExperimentReport:
    sweep = [SweepResult.from_json(payload) for payload in results.payloads()]
    _check_validated(sweep)

    series: dict[str, list[tuple[float, float]]] = {}
    for result in sweep:
        label = f"{result.cache_kb}kB${result.policy.upper()}"
        series.setdefault(label, []).append(
            (result.n_workers, result.cycles_per_iteration)
        )
    for values in series.values():
        values.sort()

    header = ["cores"] + list(series)
    by_workers: dict[int, dict[str, float]] = {}
    for label, values in series.items():
        for cores, cycles in values:
            by_workers.setdefault(int(cores), {})[label] = cycles
    rows = [
        [cores] + [f"{by_workers[cores].get(label, float('nan')):.0f}"
                   for label in series]
        for cores in sorted(by_workers)
    ]
    text = (
        f"{experiment}: Jacobi {size}x{size}, cycles per iteration after "
        f"warm-up\n"
        + _scale_note(full, f"{size}x{size}, {len(workers)} core counts")
        + format_table(header, rows)
        + "\n"
        + ascii_plot(
            series,
            x_label="worker cores",
            y_label="cycles/iteration",
            title=f"{experiment}: execution time vs cores "
                  f"(compare paper Fig. {'6' if paper_size == 60 else '8'})",
        )
    )
    return ExperimentReport(
        experiment=experiment, full_scale=full, text=text,
        series=series, rows=rows,
    )


def execution_time_experiment(
    experiment: str,
    paper_size: int,
    policies: tuple[str, ...],
    paper_caches: tuple[int, ...],
    full: bool,
    jobs: int | None,
    cache_dir: str | Path | None,
    quick_size: int,
    quick_caches: tuple[int, ...],
    quick_workers: tuple[int, ...] = (2, 4, 8, 15),
) -> ExperimentReport:
    """Shared harness for Figs. 6 and 8 (and WB/WT ablations)."""
    started = time.perf_counter()
    if full:
        size, caches, workers = paper_size, paper_caches, tuple(range(2, 16))
    else:
        size, caches, workers = quick_size, quick_caches, quick_workers
    space = _execution_time_space(
        f"{experiment}_n{size}", size, policies, caches, workers, 3
    )
    results = run_space(space, jobs=jobs, cache_dir=cache_dir, progress=True)
    report = _summarize_execution_time(
        experiment, paper_size, size, workers, full, results
    )
    report.wall_seconds = time.perf_counter() - started
    return report


def _register_execution_time(
    name: str, paper_size: int, policies: tuple[str, ...],
    paper_caches: tuple[int, ...], quick_size: int,
    quick_caches: tuple[int, ...], help_line: str,
) -> None:
    def scale(full: bool) -> tuple[int, tuple[int, ...], tuple[int, ...]]:
        if full:
            return paper_size, paper_caches, tuple(range(2, 16))
        return quick_size, quick_caches, (2, 4, 8, 15)

    def build_space(full: bool) -> SweepSpace:
        size, caches, workers = scale(full)
        return _execution_time_space(
            f"{name}_n{size}", size, policies, caches, workers, 3
        )

    def summarize(run: ExperimentRun) -> ExperimentReport:
        size, __, workers = scale(run.full)
        return _summarize_execution_time(
            name, paper_size, size, workers, run.full, run.result()
        )

    register_experiment(name, help_line, build_space, summarize)


_register_execution_time(
    "fig6", 60, ("wb", "wt"), (2, 4, 8, 16, 32, 64), 30, (2, 8, 32),
    "Fig. 6: 60x60 Jacobi execution time vs cores/cache/policy",
)
_register_execution_time(
    "fig8", 30, ("wb",), (2, 4, 8, 16, 32), 16, (2, 4, 8),
    "Fig. 8: 30x30 Jacobi execution time, write-back caches",
)


# ---------------------------------------------------------------------------
# Figures 7 and 9: optimal speedup vs chip area (Pareto + kill rule)
# ---------------------------------------------------------------------------


def _summarize_speedup_area(
    experiment: str, paper_size: int, size: int, full: bool,
    results: SpaceResults,
) -> ExperimentReport:
    sweep = [SweepResult.from_json(payload) for payload in results.payloads()]
    _check_validated(sweep)

    area_model = AreaModel()
    candidates = []
    for result in sweep:
        config = SystemConfig(
            n_workers=result.n_workers,
            cache_size_kb=result.cache_kb,
            cache_policy=result.policy,
        )
        candidates.append((result, area_model.chip_area(config)))
    # Speedup baseline: the smallest-area architecture of the sweep.
    baseline_result, baseline_area = min(candidates, key=lambda item: item[1])
    base_cycles = baseline_result.cycles_per_iteration
    points = [
        FrontPoint(
            area_mm2=area,
            speedup=base_cycles / result.cycles_per_iteration,
            label=f"{result.n_workers}P_{result.cache_kb}k$"
                  f"{'_WT' if result.policy == 'wt' else ''}",
        )
        for result, area in candidates
    ]
    front = pareto_front(points)
    optimal = kill_rule_prune(front)

    rows = [
        [f"{p.area_mm2:.2f}", f"{p.speedup:.2f}", p.label,
         "kept" if p in optimal else "pareto-only"]
        for p in front
    ]
    series = {
        "pareto": [(p.area_mm2, p.speedup) for p in front],
        "kill-rule": [(p.area_mm2, p.speedup) for p in optimal],
    }
    text = (
        f"{experiment}: optimal speedup vs chip area, Jacobi {size}x{size}\n"
        + _scale_note(full, f"{size}x{size}")
        + f"speedup baseline: {baseline_result.label} at "
          f"{baseline_area:.2f} mm^2 "
          f"({baseline_result.cycles_per_iteration:.0f} cycles/iter)\n"
        + format_table(["area_mm2", "speedup", "config", "kill rule"], rows)
        + "\n"
        + ascii_plot(
            series,
            x_label="chip area (mm^2)",
            y_label="speedup",
            title=f"{experiment}: speedup vs area "
                  f"(compare paper Fig. {'7' if paper_size == 60 else '9'})",
        )
    )
    return ExperimentReport(
        experiment=experiment, full_scale=full, text=text,
        series=series, rows=rows,
    )


def speedup_area_experiment(
    experiment: str,
    time_experiment: str,
    paper_size: int,
    paper_caches: tuple[int, ...],
    full: bool,
    jobs: int | None,
    cache_dir: str | Path | None,
    quick_size: int,
    quick_caches: tuple[int, ...],
) -> ExperimentReport:
    started = time.perf_counter()
    if full:
        size, caches, workers = paper_size, paper_caches, tuple(range(2, 16))
    else:
        size, caches, workers = quick_size, quick_caches, (2, 4, 8, 15)
    # Reuse the execution-time sweep (cache hit if that figure ran first)
    # plus WT points: the optimum may pick either policy.
    space = _execution_time_space(
        f"{time_experiment}_n{size}", size,
        ("wb", "wt") if full else ("wb",), caches, workers, 3,
    )
    results = run_space(space, jobs=jobs, cache_dir=cache_dir, progress=True)
    report = _summarize_speedup_area(experiment, paper_size, size, full,
                                     results)
    report.wall_seconds = time.perf_counter() - started
    return report


def _register_speedup_area(
    experiment: str, time_experiment: str, paper_size: int,
    paper_caches: tuple[int, ...], quick_size: int,
    quick_caches: tuple[int, ...], help_line: str,
) -> None:
    def build_space(full: bool) -> SweepSpace:
        if full:
            size, caches, workers = (
                paper_size, paper_caches, tuple(range(2, 16))
            )
        else:
            size, caches, workers = quick_size, quick_caches, (2, 4, 8, 15)
        return _execution_time_space(
            f"{time_experiment}_n{size}", size,
            ("wb", "wt") if full else ("wb",), caches, workers, 3,
        )

    def summarize(run: ExperimentRun) -> ExperimentReport:
        size = paper_size if run.full else quick_size
        return _summarize_speedup_area(
            experiment, paper_size, size, run.full, run.result()
        )

    register_experiment(experiment, help_line, build_space, summarize)


_register_speedup_area(
    "fig7", "fig6", 60, (2, 4, 8, 16, 32, 64), 30, (2, 8, 32),
    "Fig. 7: kill-rule speedup vs area for the 60x60 sweep",
)
_register_speedup_area(
    "fig9", "fig8", 30, (2, 4, 8, 16, 32), 16, (2, 4, 8),
    "Fig. 9: kill-rule speedup vs area for the 30x30 sweep",
)


# ---------------------------------------------------------------------------
# In-text comparison: hybrid vs sync-only vs pure shared memory
# ---------------------------------------------------------------------------


def _compare_workers(full: bool) -> tuple[int, ...]:
    return tuple(range(2, 16, 2)) + (15,) if full else (6, 10)


def _build_compare(full: bool) -> SweepSpace:
    return SweepSpace(
        name="compare_n60",
        app=jacobi_app,
        app_id="jacobi",
        axes=(
            Axis("workers", _compare_workers(full), field="n_workers"),
            Axis("model", ("hybrid_full", "hybrid_sync", "pure_sm"),
                 target="params"),
        ),
        base_config=SystemConfig(cache_size_kb=16, cache_policy="wb"),
        base_params=JacobiParams(n=60, iterations=3, warmup=1),
    )


def _summarize_compare(run: ExperimentRun) -> ExperimentReport:
    """Section III's programming-model comparison on the 60x60 problem.

    Paper claims: hybrid (full MP) beats pure shared memory by ~2x at 6
    cores/16 kB growing past 5x at higher core counts; the sync-only
    hybrid recovers 2x-2.8x of that; full vs sync-only differ by 2-20%
    when the miss rate is relevant.
    """
    results = run.result()
    workers = _compare_workers(run.full)
    rows = []
    series: dict[str, list[tuple[float, float]]] = {
        "sm_over_full": [], "sm_over_sync": [], "sync_over_full": [],
    }
    for n_workers in workers:
        cycles = {}
        for model in ("hybrid_full", "hybrid_sync", "pure_sm"):
            payload = results.get(workers=n_workers, model=model)
            _check_validated([SweepResult.from_json(payload)])
            cycles[model] = payload["cycles_per_iteration"]
        full_c = cycles["hybrid_full"]
        sync_c = cycles["hybrid_sync"]
        sm_c = cycles["pure_sm"]
        rows.append([
            n_workers, f"{full_c:.0f}", f"{sync_c:.0f}", f"{sm_c:.0f}",
            f"{sm_c / full_c:.2f}x", f"{sm_c / sync_c:.2f}x",
            f"{sync_c / full_c:.2f}x",
        ])
        series["sm_over_full"].append((n_workers, sm_c / full_c))
        series["sm_over_sync"].append((n_workers, sm_c / sync_c))
        series["sync_over_full"].append((n_workers, sync_c / full_c))

    text = (
        "compare: programming models on Jacobi 60x60, 16 kB WB caches\n"
        + _scale_note(run.full, "2 core counts")
        + format_table(
            ["cores", "hybrid_full", "hybrid_sync", "pure_sm",
             "sm/full", "sm/sync", "sync/full"],
            rows,
        )
        + "\npaper targets: sm/full 2x at 6 cores -> >5x at high counts; "
          "sm/sync in 2x-2.8x; sync/full within 2-20% at low counts\n"
    )
    return ExperimentReport(
        experiment="compare", full_scale=run.full, text=text,
        series=series, rows=rows,
    )


register_experiment(
    "compare",
    "Section III: hybrid vs sync-only vs pure-SM on 60x60 Jacobi",
    _build_compare, _summarize_compare,
)


# ---------------------------------------------------------------------------
# Collectives and the collective-heavy workloads (matmul, stream)
# ---------------------------------------------------------------------------


def _collectives_workers(full: bool) -> tuple[int, ...]:
    return (2, 4, 8, 15) if full else (4, 8)


def _build_collectives(full: bool) -> SweepSpace:
    n_values = 16 if full else 8
    repeats = 8 if full else 4
    return SweepSpace(
        name="collectives",
        app=collective_bench_app,
        app_id="collective_bench",
        axes=(
            Axis("workers", _collectives_workers(full), field="n_workers"),
            Axis("collective", tuple(COLLECTIVES), target="params"),
            Axis("algorithm", ("linear", "tree"), target="params"),
            Axis("model", ("empi", "pure_sm"), target="params"),
        ),
        base_params=CollectiveBenchParams(n_values=n_values, repeats=repeats),
        # Scatter/gather are root-centric by definition: linear only.
        prune=lambda coords: (
            coords["collective"] in ("scatter", "gather")
            and coords["algorithm"] == "tree"
        ),
    )


def _summarize_collectives(run: ExperimentRun) -> ExperimentReport:
    """Cycles per collective op: algorithm x programming model x mesh size.

    The per-collective generalization of the paper's barrier comparison:
    broadcast / reduce / allreduce / scatter / gather, each timed over
    the eMPI message path and the shared-memory MPMMU path.
    """
    results = run.result()
    workers = _collectives_workers(run.full)
    n_values = 16 if run.full else 8
    repeats = 8 if run.full else 4
    rows = []
    series: dict[str, list[tuple[float, float]]] = {}
    for n_workers in workers:
        for collective in COLLECTIVES:
            algorithms = (
                ("linear", "tree")
                if collective in ("bcast", "reduce", "allreduce")
                else ("linear",)
            )
            for algorithm in algorithms:
                cycles = {}
                for model in ("empi", "pure_sm"):
                    payload = results.get(
                        workers=n_workers, collective=collective,
                        algorithm=algorithm, model=model,
                    )
                    _assert_validated(
                        f"{collective}/{algorithm}/{model}/{n_workers}w",
                        payload["validated"],
                    )
                    cycles[model] = payload["cycles_per_op"]
                    series.setdefault(
                        f"{collective}_{algorithm}_{model}", []
                    ).append((n_workers, cycles[model]))
                rows.append([
                    collective, algorithm, n_workers,
                    f"{cycles['empi']:.0f}", f"{cycles['pure_sm']:.0f}",
                    f"{cycles['pure_sm'] / cycles['empi']:.2f}x",
                ])
    text = (
        f"collectives: cycles per op, {n_values} doubles, mean of "
        f"{repeats} reps\n"
        + _scale_note(run.full, f"{len(workers)} mesh sizes")
        + format_table(
            ["collective", "algorithm", "workers", "empi", "pure_sm",
             "sm/empi"],
            rows,
        )
        + "\npaper context (Table 1 generalized): every SM column is "
          "serialized MPMMU traffic; the hybrid column never touches it\n"
    )
    return ExperimentReport(
        experiment="collectives", full_scale=run.full, text=text,
        series=series, rows=rows,
    )


register_experiment(
    "collectives",
    "Collective ops: cycles/op over algorithm x model x mesh size",
    _build_collectives, _summarize_collectives,
)


def _matmul_scale(full: bool) -> tuple[tuple[int, ...], int, int]:
    workers = (2, 4, 8, 15) if full else (2, 4)
    n, tile = (12, 4) if full else (6, 2)
    return workers, n, tile


def _build_matmul(full: bool) -> SweepSpace:
    workers, n, tile = _matmul_scale(full)
    return SweepSpace(
        name="matmul",
        app=matmul_app,
        app_id="matmul",
        axes=(
            Axis("workers", workers, field="n_workers"),
            Axis("algorithm", ("linear", "tree"), target="params"),
            Axis("model", ("empi", "pure_sm"), target="params"),
        ),
        base_params=MatmulParams(n=n, tile=tile),
    )


def _summarize_matmul(run: ExperimentRun) -> ExperimentReport:
    """Tiled matmul: total and reduce-phase cycles per model/algorithm."""
    results = run.result()
    workers, n, tile = _matmul_scale(run.full)
    rows = []
    series: dict[str, list[tuple[float, float]]] = {}
    for n_workers in workers:
        for algorithm in ("linear", "tree"):
            totals = {}
            reduces = {}
            for model in ("empi", "pure_sm"):
                payload = results.get(
                    workers=n_workers, algorithm=algorithm, model=model
                )
                _assert_validated(
                    f"matmul/{algorithm}/{model}/{n_workers}w",
                    payload["validated"],
                )
                totals[model] = payload["total_cycles"]
                reduces[model] = payload["reduce_cycles"]
                series.setdefault(f"{model}_{algorithm}", []).append(
                    (n_workers, payload["total_cycles"])
                )
            rows.append([
                n_workers, algorithm,
                totals["empi"], totals["pure_sm"],
                f"{totals['pure_sm'] / totals['empi']:.2f}x",
                reduces["empi"], reduces["pure_sm"],
                f"{reduces['pure_sm'] / reduces['empi']:.2f}x",
            ])
    text = (
        f"matmul: {n}x{n} tiled (tile={tile}), row broadcast + "
        f"partial-sum reduce\n"
        + _scale_note(run.full, f"{n}x{n}, {len(workers)} mesh sizes")
        + format_table(
            ["workers", "algorithm", "empi_total", "sm_total", "sm/empi",
             "empi_reduce", "sm_reduce", "reduce sm/empi"],
            rows,
        )
        + "\n"
        + ascii_plot(
            series, x_label="worker cores", y_label="total cycles",
            title="matmul: execution time vs cores, by model/algorithm",
        )
    )
    return ExperimentReport(
        experiment="matmul", full_scale=run.full, text=text,
        series=series, rows=rows,
    )


register_experiment(
    "matmul",
    "Tiled matmul: bcast + partial-sum reduce over both models",
    _build_matmul, _summarize_matmul,
)


def _stream_scale(full: bool) -> tuple[tuple[int, ...], int, int]:
    workers = (2, 4, 8) if full else (2, 4)
    n_blocks, block_values = (16, 16) if full else (4, 8)
    return workers, n_blocks, block_values


def _build_stream(full: bool) -> SweepSpace:
    workers, n_blocks, block_values = _stream_scale(full)
    return SweepSpace(
        name="stream",
        app=stream_app,
        app_id="stream",
        axes=(
            Axis("workers", workers, field="n_workers"),
            Axis("model", ("empi", "pure_sm"), target="params"),
        ),
        base_params=StreamParams(n_blocks=n_blocks,
                                 block_values=block_values),
    )


def _summarize_stream(run: ExperimentRun) -> ExperimentReport:
    """Stream pipeline: cycles per block, TIE streams vs SM mailboxes."""
    results = run.result()
    workers, n_blocks, block_values = _stream_scale(run.full)
    rows = []
    series: dict[str, list[tuple[float, float]]] = {}
    for n_workers in workers:
        cycles = {}
        for model in ("empi", "pure_sm"):
            payload = results.get(workers=n_workers, model=model)
            _assert_validated(
                f"stream/{model}/{n_workers}w", payload["validated"]
            )
            cycles[model] = payload["cycles_per_block"]
            series.setdefault(model, []).append(
                (n_workers, payload["cycles_per_block"])
            )
        rows.append([
            n_workers,
            f"{cycles['empi']:.0f}", f"{cycles['pure_sm']:.0f}",
            f"{cycles['pure_sm'] / cycles['empi']:.2f}x",
        ])
    text = (
        f"stream: {n_blocks} blocks of {block_values} doubles through a "
        f"worker pipeline\n"
        + _scale_note(run.full, f"{len(workers)} pipeline depths")
        + format_table(
            ["workers", "empi cyc/blk", "sm cyc/blk", "sm/empi"], rows
        )
        + "\npipeline depth = worker count; empi rides the TIE streams, "
          "pure_sm polls shared-memory mailboxes through the MPMMU\n"
    )
    return ExperimentReport(
        experiment="stream", full_scale=run.full, text=text,
        series=series, rows=rows,
    )


register_experiment(
    "stream",
    "Producer/consumer pipeline: TIE streams vs SM mailboxes",
    _build_stream, _summarize_stream,
)


def _cg_scale(full: bool) -> tuple[tuple[int, ...], int, int]:
    # The 8-worker reference mesh is the acceptance point; keep it in
    # every scale.
    workers = (2, 4, 8, 15) if full else (4, 8)
    n, iterations = (128, 16) if full else (64, 10)
    return workers, n, iterations


def _build_cg(full: bool) -> SweepSpace:
    workers, n, iterations = _cg_scale(full)
    return SweepSpace(
        name="cg",
        app=cg_app,
        app_id="cg",
        axes=(
            Axis("workers", workers, field="n_workers"),
            Axis("model", ("empi", "pure_sm"), target="params"),
            Axis("overlap", (False, True), target="params"),
        ),
        base_params=CgParams(n=n, iterations=iterations, algorithm="tree"),
    )


def _summarize_cg(run: ExperimentRun) -> ExperimentReport:
    """Conjugate gradient: the overlap-on/off sweep over both models.

    The architecture argument of the non-blocking layer, in one table:
    for each mesh size and programming model the solver runs blocking
    and overlapped, converging bit-identically all four ways, and the
    report shows the cycles saved plus the measured overlap efficiency
    (fraction of in-flight communication hidden behind compute).  The
    hybrid model has hardware to overlap with — the TIE streams while
    the core computes — while the pure-SM model must move every word
    with the core, which is exactly what the efficiency column shows.
    """
    results = run.result()
    workers, n, iterations = _cg_scale(run.full)
    rows = []
    series: dict[str, list[tuple[float, float]]] = {}
    for n_workers in workers:
        for model in ("empi", "pure_sm"):
            cycles: dict[bool, int] = {}
            efficiency: dict[bool, float] = {}
            for overlap in (False, True):
                payload = results.get(
                    workers=n_workers, model=model, overlap=overlap
                )
                _assert_validated(
                    f"cg/{model}/overlap={overlap}/{n_workers}w",
                    payload["validated"] and payload["converged"],
                )
                cycles[overlap] = payload["total_cycles"]
                efficiency[overlap] = payload["overlap_efficiency"]
                series.setdefault(
                    f"{model}_{'overlap' if overlap else 'blocking'}", []
                ).append((n_workers, cycles[overlap]))
            rows.append([
                n_workers, model,
                cycles[False], cycles[True],
                cycles[False] - cycles[True],
                f"{cycles[False] / cycles[True]:.4f}x",
                f"{efficiency[True]:.2f}",
            ])
    text = (
        f"cg: conjugate gradient, {n}-row tridiagonal SPD system, "
        f"{iterations} iterations\n"
        + _scale_note(run.full, f"n={n}, {len(workers)} mesh sizes")
        + format_table(
            ["workers", "model", "blocking", "overlap", "saved",
             "speedup", "ovl eff"],
            rows,
        )
        + "\nhalo isend/irecv hide behind interior SpMV rows; the "
          "residual-norm iallreduce hides behind the x update.  All four "
          "variants per mesh converge bit-identically; 'ovl eff' is the "
          "fraction of in-flight communication cycles spent computing\n"
    )
    return ExperimentReport(
        experiment="cg", full_scale=run.full, text=text,
        series=series, rows=rows,
    )


register_experiment(
    "cg",
    "CG solver: compute/communication overlap on vs off, both models",
    _build_cg, _summarize_cg,
)


# ---------------------------------------------------------------------------
# Hardware collective engine vs software: the offload crossover
# ---------------------------------------------------------------------------


def _hw_scale(full: bool):
    workers = (2, 4, 8, 15) if full else (4, 8)
    depths = (1, 2, 4, 8) if full else (1, 4)
    lengths = (16, 64, 256, 1024) if full else (16, 64, 256)
    repeats = 8 if full else 4
    long_repeats = 4 if full else 2
    return workers, depths, lengths, repeats, long_repeats


def _build_hw_collectives(full: bool) -> list[SweepSpace]:
    workers, depths, lengths, repeats, long_repeats = _hw_scale(full)
    variants = (
        Variant("linear", params={"algorithm": "linear"}),
        Variant("tree", params={"algorithm": "tree"}),
        *(
            Variant(f"hw(q{depth})",
                    config={"dma_tx_queue_depth": depth},
                    params={"algorithm": "hw"})
            for depth in depths
        ),
        Variant("hw-uc",
                config={"dma_tx_queue_depth": depths[-1],
                        "noc_multicast": False},
                params={"algorithm": "hw"}),
    )
    main = SweepSpace(
        name="hw_collectives",
        app=collective_bench_app,
        app_id="collective_bench",
        axes=(
            Axis("workers", workers, field="n_workers"),
            Axis("collective", ("bcast", "allreduce"), target="params"),
            Axis("variant", variants),
        ),
        base_params=CollectiveBenchParams(model="empi", n_values=16,
                                          repeats=repeats),
    )
    long_variants = (
        Variant("tree", params={"algorithm": "tree"}),
        Variant("ring", params={"algorithm": "ring"}),
        Variant("hw-na",
                config={"dma_tx_queue_depth": depths[-1],
                        "dma_reduce_assist": False},
                params={"algorithm": "hw"}),
        Variant("hw",
                config={"dma_tx_queue_depth": depths[-1]},
                params={"algorithm": "hw"}),
        Variant("ring-hw",
                config={"dma_tx_queue_depth": depths[-1]},
                params={"algorithm": "ring"}),
    )
    long = SweepSpace(
        name="hw_collectives_long",
        app=collective_bench_app,
        app_id="collective_bench",
        axes=(
            Axis("workers", workers, field="n_workers"),
            Axis("variant", long_variants),
            Axis("length", lengths, target="params", field="n_values"),
        ),
        base_params=CollectiveBenchParams(collective="allreduce",
                                          model="empi",
                                          repeats=long_repeats),
    )
    return [main, long]


def _summarize_hw_collectives(run: ExperimentRun) -> ExperimentReport:
    """Hardware collective engine vs software: the offload crossover.

    Sweeps bcast and allreduce over queue depth x algorithm x mesh size:
    the software baselines (``linear``/``tree``, no engine) against the
    ``hw`` algorithm (DMA TX queue + NoC multicast + reduction assist)
    at each queue depth, plus the equivalence-tested unicast-fallback
    point (``hw-uc``, engine on, fabric replication off).  A second
    table sweeps allreduce over vector length x mesh — the long-vector
    crossover: software ``tree`` vs software ``ring`` vs the engine
    paths, with the PR-4 engine (``hw-na``, reduction assist off, only
    the broadcast leg offloaded) as the hw-reduce-vs-sw-reduce
    comparison point.  Every point validates bit for bit against the
    combine-order references.
    """
    workers, depths, lengths, repeats, long_repeats = _hw_scale(run.full)
    main, long_results = run.result(0), run.result(1)
    n_values = 16

    def point(results: SpaceResults, label: str, **coords) -> float:
        payload = results.get(**coords)
        _assert_validated(label, payload["validated"])
        return payload["cycles_per_op"]

    rows = []
    series: dict[str, list[tuple[float, float]]] = {}
    crossover: dict[str, int | None] = {}
    for w in workers:
        for collective in ("bcast", "allreduce"):
            cycles: dict[str, float] = {}
            for variant in (
                ["linear", "tree"]
                + [f"hw(q{d})" for d in depths]
                + ["hw-uc"]
            ):
                cycles[variant] = point(
                    main,
                    f"hw_collectives/{collective}/{variant}/{w}w",
                    workers=w, collective=collective, variant=variant,
                )
            best_hw = min(cycles[f"hw(q{d})"] for d in depths)
            if best_hw < cycles["tree"] and collective not in crossover:
                crossover[collective] = w
            rows.append(
                [collective, w]
                + [f"{cycles[k]:.0f}" for k in cycles]
                + [f"{cycles['tree'] / best_hw:.2f}x"]
            )
            series.setdefault(f"{collective}_tree", []).append(
                (w, cycles["tree"])
            )
            series.setdefault(f"{collective}_hw", []).append((w, best_hw))
    # -- long-vector crossover: allreduce over vector length x mesh --------
    long_rows = []
    long_series: dict[str, list[tuple[float, float]]] = {}
    long_algos = ("tree", "ring", "hw-na", "hw", "ring-hw")
    ring_crossover: dict[int, int | None] = {}
    for w in workers:
        for length in lengths:
            cycles = {
                name: point(
                    long_results,
                    f"hw_collectives/allreduce/{name}/{w}w/{length}v",
                    workers=w, variant=name, length=length,
                )
                for name in long_algos
            }
            if cycles["ring"] < cycles["tree"] and w not in ring_crossover:
                ring_crossover[w] = length
            long_rows.append(
                ["allreduce", w, length]
                + [f"{cycles[k]:.0f}" for k in long_algos]
                + [
                    f"{cycles['tree'] / cycles['ring']:.2f}x",
                    f"{cycles['hw-na'] / cycles['hw']:.2f}x",
                ]
            )
            long_series.setdefault(f"ring_{w}w", []).append(
                (length, cycles["ring"])
            )
            long_series.setdefault(f"tree_{w}w", []).append(
                (length, cycles["tree"])
            )
        ring_crossover.setdefault(w, None)
    labels = (
        ["linear", "tree"] + [f"hw(q{d})" for d in depths] + ["hw-uc"]
    )
    crossings = ", ".join(
        f"{coll}: {'never' if crossover.get(coll) is None else f'from {crossover[coll]}w'}"
        for coll in ("bcast", "allreduce")
    )
    ring_crossings = ", ".join(
        f"{w}w: {'never' if length is None else f'from {length} doubles'}"
        for w, length in sorted(ring_crossover.items())
    )
    text = (
        f"hw_collectives: cycles per op, {n_values} doubles, mean of "
        f"{repeats} reps (empi model)\n"
        + _scale_note(run.full,
                      f"{len(workers)} mesh sizes, {len(depths)} depths")
        + format_table(
            ["collective", "workers"] + labels + ["tree/hw"], rows
        )
        + f"\nhw beats the software tree ({crossings}); 'hw-uc' is the "
          "unicast-fallback equivalence point (engine on, fabric "
          "replication off).  All points deliver bit-identical vectors; "
          "hw combines in the tree order.\n\n"
        + f"long-vector crossover: allreduce cycles/op over vector length "
          f"(mean of {long_repeats} reps; engine points at queue depth "
          f"{depths[-1]})\n"
        + format_table(
            ["collective", "workers", "doubles"] + list(long_algos)
            + ["tree/ring", "hw-na/hw"],
            long_rows,
        )
        + f"\nring beats tree ({ring_crossings}); 'hw-na' is the PR-4 "
          "engine (broadcast leg offloaded, reduce leg through processor "
          "ops) — the hw-reduce vs sw-reduce comparison; 'ring-hw' rides "
          "neighbour multicast descriptors + qreduce accumulate-on-"
          "receive.  ring combines in its own reference order, hw in the "
          "tree order; every point validates bit for bit.\n"
        + ascii_plot(
            series, x_label="worker cores", y_label="cycles/op",
            title="hw_collectives: hardware vs software crossover",
        )
        + ascii_plot(
            long_series, x_label="vector length (doubles)",
            y_label="cycles/op",
            title="hw_collectives: ring vs tree over vector length",
        )
    )
    return ExperimentReport(
        experiment="hw_collectives", full_scale=run.full, text=text,
        series={**series, **{f"long_{k}": v for k, v in long_series.items()}},
        rows=rows + long_rows,
    )


register_experiment(
    "hw_collectives",
    "HW collective engine vs software: offload + long-vector crossover",
    _build_hw_collectives, _summarize_hw_collectives,
)


# ---------------------------------------------------------------------------
# Chiplet-scale DSE: flat vs hierarchical collectives across packages
# ---------------------------------------------------------------------------


def _chiplet_packages(full: bool) -> tuple[tuple[str, dict], ...]:
    """(label, config overrides) per package point.

    Each package scales the off-die penalty with its size — more
    chiplets share a bigger, slower IO die, the way real SerDes-based
    packages degrade — so the axis reads as "how far off one mesh are
    we", not one knob at a time.
    """

    def package(chiplets: int, width: int, height: int,
                latency: int, serialization: int) -> tuple[str, dict]:
        workers = chiplets * width * height
        return (
            f"{chiplets}x({width}x{height})",
            {
                "topology_kind": "chiplet",
                "n_workers": workers,
                "chiplets": chiplets,
                "chiplet_grid": (width, height),
                "chiplet_link_latency": latency,
                "chiplet_link_width": serialization,
            },
        )

    if full:
        return (
            package(4, 2, 2, latency=8, serialization=2),
            package(8, 2, 2, latency=16, serialization=4),
            package(16, 2, 2, latency=32, serialization=4),
            package(8, 4, 2, latency=16, serialization=4),
        )
    return (
        package(4, 2, 2, latency=8, serialization=2),
        package(8, 2, 2, latency=16, serialization=4),
    )


def _chiplet_scale(full: bool):
    packages = _chiplet_packages(full)
    lengths = (4, 8, 16, 64) if full else (4, 16)
    repeats = 4 if full else 2
    return packages, lengths, repeats


#: The collective schedules the chiplet sweep compares: the two flat
#: software schedules against the topology-aware hierarchical one.
CHIPLET_ALGORITHMS = ("tree", "ring", "hier")


def _build_chiplet_sweep(full: bool) -> SweepSpace:
    packages, lengths, repeats = _chiplet_scale(full)
    return SweepSpace(
        name="chiplet_sweep",
        app=collective_bench_app,
        app_id="collective_bench",
        axes=(
            Axis("package", tuple(
                Variant(label, config=overrides)
                for label, overrides in packages
            )),
            Axis("algorithm", CHIPLET_ALGORITHMS, target="params"),
            Axis("length", lengths, target="params", field="n_values"),
        ),
        base_params=CollectiveBenchParams(collective="allreduce",
                                          model="empi",
                                          repeats=repeats),
    )


def _summarize_chiplet_sweep(run: ExperimentRun) -> ExperimentReport:
    """Where hierarchical collectives beat flat ones on chiplet packages.

    Sweeps allreduce over package (chiplet count x chiplet size, with
    off-die latency/serialization scaled to the package) x algorithm x
    vector length.  ``tree`` and ``ring`` are the flat schedules —
    topology-blind rank orders whose neighbour hops cross the IO die
    wherever the rank ring does; ``hier`` runs an intra-chiplet ring, a
    binomial tree across the chiplet gateways, and a broadcast back
    down.  The crossover table marks each cell's winner: hierarchical
    wins where per-hop off-die latency dominates (many chiplets, short
    vectors), flat ring wins where bandwidth does (long vectors slice
    into per-rank segments that amortize the off-die hops).  Every
    point validates bit for bit against its combine-order reference.
    """
    packages, lengths, repeats = _chiplet_scale(run.full)
    results = run.result(0)

    rows = []
    series: dict[str, list[tuple[float, float]]] = {}
    hier_wins: list[str] = []
    for label, overrides in packages:
        workers = overrides["n_workers"]
        for length in lengths:
            cycles: dict[str, float] = {}
            for algorithm in CHIPLET_ALGORITHMS:
                payload = results.get(
                    package=label, algorithm=algorithm, length=length
                )
                _assert_validated(
                    f"chiplet_sweep/{label}/{algorithm}/{length}v",
                    payload["validated"],
                )
                cycles[algorithm] = payload["cycles_per_op"]
            flat = min(cycles["tree"], cycles["ring"])
            winner = (
                "hier" if cycles["hier"] < flat
                else min(("tree", "ring"), key=cycles.get)
            )
            if winner == "hier":
                hier_wins.append(f"{label}/{length}v")
            rows.append(
                [label, workers, length]
                + [f"{cycles[a]:.0f}" for a in CHIPLET_ALGORITHMS]
                + [f"{flat / cycles['hier']:.2f}x", winner]
            )
            series.setdefault(f"hier_{label}", []).append(
                (length, cycles["hier"])
            )
            series.setdefault(f"ring_{label}", []).append(
                (length, cycles["ring"])
            )
    wins_text = (
        ", ".join(hier_wins) if hier_wins
        else "none at this scale (off-die hops too cheap)"
    )
    text = (
        f"chiplet_sweep: allreduce cycles/op across chiplet packages "
        f"(mean of {repeats} reps, empi model)\n"
        + _scale_note(run.full,
                      f"{len(packages)} packages, {len(lengths)} lengths")
        + format_table(
            ["package", "workers", "doubles"] + list(CHIPLET_ALGORITHMS)
            + ["flat/hier", "winner"],
            rows,
        )
        + f"\nhierarchical wins: {wins_text}.\n"
          "'flat/hier' compares hier against the better flat schedule; "
          "packages scale off-die latency/serialization with chiplet "
          "count (SerDes-based IO die).  Flat ring already places "
          "consecutive ranks within one chiplet, so only its "
          "group-boundary hops cross the IO die — hier has to beat "
          "that, not a strawman.\n"
        + ascii_plot(
            series, x_label="vector length (doubles)",
            y_label="cycles/op",
            title="chiplet_sweep: hierarchical vs flat ring",
        )
    )
    return ExperimentReport(
        experiment="chiplet_sweep", full_scale=run.full, text=text,
        series=series, rows=rows,
    )


register_experiment(
    "chiplet_sweep",
    "Chiplet packages: flat vs hierarchical collective crossover",
    _build_chiplet_sweep, _summarize_chiplet_sweep,
)


# ---------------------------------------------------------------------------
# NoC characterization + simulator speed
# ---------------------------------------------------------------------------


def _noc_scale(full: bool) -> tuple[tuple[float, ...], int]:
    rates = (0.02, 0.05, 0.1, 0.2, 0.3, 0.45) if full else (0.05, 0.2, 0.45)
    cycles = 4000 if full else 1500
    return rates, cycles


def _build_noc(full: bool) -> SweepSpace:
    rates, cycles = _noc_scale(full)
    return SweepSpace(
        name="noc",
        app=synthetic_app,
        app_id="synthetic",
        axes=(
            Axis("pattern", ("uniform", "hotspot"), target="params"),
            Axis("rate", rates, target="params"),
        ),
        base_params=SyntheticParams(cycles=cycles, spatial=True),
    )


def _summarize_noc(run: ExperimentRun) -> ExperimentReport:
    """Deflection-routing latency/throughput and outlier behaviour."""
    results = run.result()
    rates, __ = _noc_scale(run.full)
    rows = []
    series: dict[str, list[tuple[float, float]]] = {}
    for pattern in ("uniform", "hotspot"):
        for rate in rates:
            stats = results.get(pattern=pattern, rate=rate)
            rows.append([
                pattern, f"{stats['offered_rate']:.2f}",
                f"{stats['mean_latency']:.1f}", stats["max_latency"],
                stats["p99_latency_bound"],
                f"{stats['deflections_per_flit']:.2f}",
                f"{stats['throughput']:.3f}",
                "yes" if stats["all_delivered"] else "NO",
            ])
            series.setdefault(pattern, []).append(
                (stats["offered_rate"], stats["mean_latency"])
            )
    text = (
        "noc: deflection routing under synthetic traffic (4x4 folded torus)\n"
        + _scale_note(run.full, "3 rates, 1500 cycles")
        + format_table(
            ["pattern", "rate", "mean_lat", "max_lat", "p99<=",
             "defl/flit", "thruput", "all delivered"],
            rows,
        )
        + "\npaper context (Sec. II-A): sporadic high-latency flits, no "
          "livelock observed; max/p99 vs mean quantifies the outliers\n"
        + ascii_plot(series, x_label="offered rate (flits/node/cycle)",
                     y_label="mean latency (cycles)",
                     title="noc: load-latency curve")
    )
    # Spatial heatmaps at the heaviest load: *where* the deflections and
    # stalls concentrate, per pattern (the ROADMAP item-2 attribution).
    heaviest = rates[-1]
    for pattern in ("uniform", "hotspot"):
        spatial = results.get(pattern=pattern, rate=heaviest).get("spatial")
        if spatial is not None:
            text += (
                f"\n--- spatial view: {pattern} @ rate {heaviest:.2f} ---\n"
                + render_noc_report(spatial) + "\n"
            )
    return ExperimentReport(
        experiment="noc", full_scale=run.full, text=text, series=series,
        rows=rows,
    )


register_experiment(
    "noc",
    "Deflection-routed NoC alone: load/latency under synthetic traffic",
    _build_noc, _summarize_noc,
)


def _build_simspeed(full: bool) -> SweepSpace:
    return SweepSpace(
        name="simspeed",
        app=jacobi_app,
        app_id="jacobi",
        axes=(),
        base_config=SystemConfig(n_workers=8, cache_size_kb=16),
        base_params=JacobiParams(n=30 if not full else 60, iterations=3,
                                 warmup=1),
        cacheable=False,  # a wall-clock measurement: caching would lie
    )


def _summarize_simspeed(run: ExperimentRun) -> ExperimentReport:
    """Simulator-throughput counterpart of the paper's 15x HDL-ISS claim."""
    space = run.spaces[0]
    payload = run.result().payloads()[0]
    wall = payload["wall_seconds"]
    cps = payload["total_cycles"] / wall
    sweep_points = 168 * 3  # three problem sizes, as in the paper
    est_hours = sweep_points * wall / 3600
    rows = [[
        space.base_config.label(), space.base_params.n,
        payload["total_cycles"], f"{wall:.2f}", f"{cps:,.0f}",
        f"{est_hours:.2f}",
    ]]
    text = (
        "simspeed: kernel throughput (stand-in for the paper's 15x-vs-"
        "HDL-ISS claim)\n"
        + _scale_note(run.full, "30x30 reference run")
        + format_table(
            ["config", "grid", "cycles", "wall_s", "cycles/sec",
             "est. hours for 168x3 sweep (serial)"],
            rows,
        )
        + "\npaper context: 168 configs x 3 sizes in ~1 day on 5 dual-Xeon "
          "servers; the estimate above is single-process — divide by the "
          "worker-pool size used in run_sweep.\n"
    )
    return ExperimentReport(
        experiment="simspeed", full_scale=run.full, text=text, rows=rows,
    )


register_experiment(
    "simspeed",
    "Simulator throughput: cycles/sec on the reference Jacobi run",
    _build_simspeed, _summarize_simspeed,
)


# ---------------------------------------------------------------------------
# Fault tolerance: reliable delivery under seeded faults
# ---------------------------------------------------------------------------


def _fault_scale(full: bool):
    drop_rates = (0.005, 0.01, 0.02, 0.05) if full else (0.01, 0.05)
    repeats = 4 if full else 2
    return drop_rates, repeats


def _fault_variants(full: bool) -> tuple[Variant, ...]:
    drop_rates, __ = _fault_scale(full)
    seed = 3
    corrupt_rate = 0.01
    variants = [
        Variant("off", config={"faults": None}),
        Variant("rate 0", config={"faults": FaultPlan(seed=seed)}),
    ]
    variants += [
        Variant(f"drop {rate:g}",
                config={"faults": FaultPlan(seed=seed, drop_rate=rate)})
        for rate in drop_rates
    ]
    variants.append(
        Variant(f"corrupt {corrupt_rate:g}",
                config={"faults": FaultPlan(seed=seed,
                                            corrupt_rate=corrupt_rate)})
    )
    variants.append(
        Variant("dead link",
                config={"faults": FaultPlan(seed=seed,
                                            dead_links=((1, 1, 200),))})
    )
    return tuple(variants)


def _build_fault_sweep(full: bool) -> SweepSpace:
    __, repeats = _fault_scale(full)
    algorithms = (
        Variant("tree", params={"algorithm": "tree"}),
        Variant("ring", params={"algorithm": "ring"}),
        Variant("hw", config={"dma_tx_queue_depth": 4},
                params={"algorithm": "hw"}),
    )
    return SweepSpace(
        name="fault_sweep",
        app=collective_bench_app,
        app_id="collective_bench",
        axes=(
            Axis("algorithm", algorithms),
            Axis("faults", _fault_variants(full)),
        ),
        base_config=SystemConfig(n_workers=8, topology_kind="mesh"),
        base_params=CollectiveBenchParams(collective="allreduce",
                                          model="empi", n_values=16,
                                          repeats=repeats),
    )


def _summarize_fault_sweep(run: ExperimentRun) -> ExperimentReport:
    """Reliable delivery under seeded faults: recovery overhead table.

    Sweeps allreduce on the reference 8-worker mesh over fault rate x
    algorithm (software ``tree``/``ring`` and the hardware engine path),
    asserting at every point that the delivered vectors are bit-identical
    to the fault-free combine-order reference — transient flit loss and
    corruption must be fully masked by the CRC + NACK/retransmit layer,
    at a cycle cost the table quantifies.  Three extra rows pin the
    protocol's edges: ``off`` (no fault layer — the golden baseline
    format), ``rate 0`` (reliable format on, nothing injected — the pure
    protocol overhead: wider flits, CRC stamping, credit traffic), and
    ``dead link`` (a permanently killed non-critical link mid-run — the
    deflection router's recomputed productive table must deliver, at
    degraded cycles, without a single lost value).
    """
    results = run.result()
    drop_rates, repeats = _fault_scale(run.full)
    seed = 3
    n_values = 16
    variant_names = [variant.label for variant in _fault_variants(run.full)]
    rows = []
    series: dict[str, list[tuple[float, float]]] = {}
    for algorithm in ("tree", "ring", "hw"):
        baseline: int | None = None
        for name in variant_names:
            payload = results.get(algorithm=algorithm, faults=name)
            _assert_validated(
                f"fault_sweep/allreduce/{algorithm}/{name}",
                payload["validated"],
            )
            cycles = payload["total_cycles"]
            if baseline is None:
                baseline = cycles
            rows.append([
                "allreduce", algorithm, name, cycles,
                f"{cycles / baseline:.2f}x",
            ])
            if name.startswith("drop"):
                series.setdefault(algorithm, []).append(
                    (float(name.split()[1]), cycles / baseline)
                )
    text = (
        f"fault_sweep: allreduce under seeded link faults, 8-worker mesh, "
        f"{n_values} doubles, {repeats} reps (empi model)\n"
        + _scale_note(run.full, f"{len(drop_rates)} drop rates, seed {seed}")
        + format_table(
            ["collective", "algorithm", "faults", "cycles", "vs off"], rows
        )
        + "\nevery point delivered vectors bit-identical to the fault-free "
          "combine-order reference — transient drops and corruptions are "
          "fully repaired by CRC + NACK/retransmit; 'rate 0' is the pure "
          "protocol overhead (wide reliable flit format, CRC stamping, "
          "credit traffic); 'dead link' kills link 1->E at cycle 200 and "
          "the rerouted productive table still delivers every value.\n"
        + ascii_plot(
            series, x_label="drop rate", y_label="cycle overhead (x)",
            title="fault_sweep: recovery overhead vs fault rate",
        )
    )
    return ExperimentReport(
        experiment="fault_sweep", full_scale=run.full, text=text,
        series=series, rows=rows,
    )


register_experiment(
    "fault_sweep",
    "Allreduce under seeded faults: recovery overhead vs fault rate",
    _build_fault_sweep, _summarize_fault_sweep,
)


# ---------------------------------------------------------------------------
# Back-compat callables: the registered objects under their classic names.
# ---------------------------------------------------------------------------

experiment_fig6 = ALL_EXPERIMENTS["fig6"]
experiment_fig7 = ALL_EXPERIMENTS["fig7"]
experiment_fig8 = ALL_EXPERIMENTS["fig8"]
experiment_fig9 = ALL_EXPERIMENTS["fig9"]
experiment_compare = ALL_EXPERIMENTS["compare"]
experiment_collectives = ALL_EXPERIMENTS["collectives"]
experiment_hw_collectives = ALL_EXPERIMENTS["hw_collectives"]
experiment_matmul = ALL_EXPERIMENTS["matmul"]
experiment_stream = ALL_EXPERIMENTS["stream"]
experiment_cg = ALL_EXPERIMENTS["cg"]
experiment_noc = ALL_EXPERIMENTS["noc"]
experiment_simspeed = ALL_EXPERIMENTS["simspeed"]
experiment_fault_sweep = ALL_EXPERIMENTS["fault_sweep"]

__all__ = [
    "ALL_EXPERIMENTS",
    "DEFAULT_RESULTS_DIR",
    "ExperimentReport",
    "execution_time_experiment",
    "full_scale_requested",
    "speedup_area_experiment",
]
