"""Experiment definitions: one entry point per paper figure / claim.

Each ``experiment_*`` function runs (or reuses, via the sweep cache) the
simulations behind one artifact of the paper's evaluation and returns an
:class:`ExperimentReport` with the same series the paper plots.  The CLI
(``python -m repro``) and the benchmark suite both call these.

Scale control: ``full=False`` (default) runs a reduced grid that finishes
in minutes on a laptop; ``full=True`` reproduces the paper's exact axes
(the 168-point sweep per problem size).  The benchmarks honour the
``MEDEA_FULL=1`` environment variable.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.apps.cg import CgParams, run_cg
from repro.apps.collective_bench import (
    COLLECTIVES,
    CollectiveBenchParams,
    run_collective_bench,
)
from repro.apps.jacobi.driver import JacobiParams, run_jacobi
from repro.apps.matmul import MatmulParams, run_matmul
from repro.apps.stream import StreamParams, run_stream
from repro.apps.synthetic import latency_throughput_sweep
from repro.dse.area import AreaModel
from repro.system.presets import mesh_sweep_configs
from repro.dse.pareto import FrontPoint, kill_rule_prune, pareto_front
from repro.dse.report import ascii_plot, format_table
from repro.dse.runner import ResultCache, SweepResult, run_sweep
from repro.dse.space import SweepSpec, config_cache_key, params_cache_key
from repro.system.config import SystemConfig

#: Default location of the sweep cache and rendered reports.
DEFAULT_RESULTS_DIR = Path("results")


@dataclass
class ExperimentReport:
    """Rendered outcome of one experiment."""

    experiment: str
    full_scale: bool
    text: str
    series: dict = field(default_factory=dict)
    rows: list = field(default_factory=list)
    wall_seconds: float = 0.0

    def save(self, out_dir: str | Path) -> Path:
        path = Path(out_dir) / f"{self.experiment}.txt"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.text)
        return path


def full_scale_requested() -> bool:
    return os.environ.get("MEDEA_FULL", "") not in ("", "0")


def _scale_note(full: bool, detail: str) -> str:
    if full:
        return "scale: FULL (paper axes)\n"
    return f"scale: reduced for quick runs ({detail}); MEDEA_FULL=1 for paper axes\n"


# ---------------------------------------------------------------------------
# Figures 6 and 8: execution time vs cores / cache size / policy
# ---------------------------------------------------------------------------


def _execution_time_spec(
    name: str,
    size: int,
    policies: tuple[str, ...],
    cache_sizes: tuple[int, ...],
    workers: tuple[int, ...],
    iterations: int,
    base_config: SystemConfig,
) -> SweepSpec:
    return SweepSpec(
        name=name,
        workers=workers,
        cache_sizes_kb=cache_sizes,
        policies=policies,
        base_config=base_config,
        params=JacobiParams(n=size, iterations=iterations, warmup=1),
    )


def execution_time_experiment(
    experiment: str,
    paper_size: int,
    policies: tuple[str, ...],
    paper_caches: tuple[int, ...],
    full: bool,
    jobs: int | None,
    cache_dir: str | Path | None,
    quick_size: int,
    quick_caches: tuple[int, ...],
    quick_workers: tuple[int, ...] = (2, 4, 8, 15),
) -> ExperimentReport:
    """Shared harness for Figs. 6 and 8 (and WB/WT ablations)."""
    started = time.perf_counter()
    if full:
        size = paper_size
        caches = paper_caches
        workers = tuple(range(2, 16))
    else:
        size = quick_size
        caches = quick_caches
        workers = quick_workers
    spec = _execution_time_spec(
        f"{experiment}_n{size}", size, policies, caches, workers, 3, SystemConfig()
    )
    results = run_sweep(spec, jobs=jobs, cache_dir=cache_dir, progress=True)
    _check_validated(results)

    series: dict[str, list[tuple[float, float]]] = {}
    for result in results:
        label = f"{result.cache_kb}kB${result.policy.upper()}"
        series.setdefault(label, []).append(
            (result.n_workers, result.cycles_per_iteration)
        )
    for values in series.values():
        values.sort()

    header = ["cores"] + list(series)
    by_workers: dict[int, dict[str, float]] = {}
    for label, values in series.items():
        for cores, cycles in values:
            by_workers.setdefault(int(cores), {})[label] = cycles
    rows = [
        [cores] + [f"{by_workers[cores].get(label, float('nan')):.0f}"
                   for label in series]
        for cores in sorted(by_workers)
    ]
    text = (
        f"{experiment}: Jacobi {size}x{size}, cycles per iteration after "
        f"warm-up\n"
        + _scale_note(full, f"{size}x{size}, {len(workers)} core counts")
        + format_table(header, rows)
        + "\n"
        + ascii_plot(
            series,
            x_label="worker cores",
            y_label="cycles/iteration",
            title=f"{experiment}: execution time vs cores "
                  f"(compare paper Fig. {'6' if paper_size == 60 else '8'})",
        )
    )
    report = ExperimentReport(
        experiment=experiment,
        full_scale=full,
        text=text,
        series=series,
        rows=rows,
        wall_seconds=time.perf_counter() - started,
    )
    return report


def experiment_fig6(
    full: bool | None = None,
    jobs: int | None = None,
    cache_dir: str | Path | None = DEFAULT_RESULTS_DIR,
) -> ExperimentReport:
    """Fig. 6: 60x60 Jacobi, WB and WT, cache 2-64 kB, 2-15 cores."""
    full = full_scale_requested() if full is None else full
    return execution_time_experiment(
        "fig6",
        paper_size=60,
        policies=("wb", "wt"),
        paper_caches=(2, 4, 8, 16, 32, 64),
        full=full,
        jobs=jobs,
        cache_dir=cache_dir,
        quick_size=30,
        quick_caches=(2, 8, 32),
    )


def experiment_fig8(
    full: bool | None = None,
    jobs: int | None = None,
    cache_dir: str | Path | None = DEFAULT_RESULTS_DIR,
) -> ExperimentReport:
    """Fig. 8: 30x30 Jacobi, write-back only, cache 2-32 kB."""
    full = full_scale_requested() if full is None else full
    return execution_time_experiment(
        "fig8",
        paper_size=30,
        policies=("wb",),
        paper_caches=(2, 4, 8, 16, 32),
        full=full,
        jobs=jobs,
        cache_dir=cache_dir,
        quick_size=16,
        quick_caches=(2, 4, 8),
    )


# ---------------------------------------------------------------------------
# Figures 7 and 9: optimal speedup vs chip area (Pareto + kill rule)
# ---------------------------------------------------------------------------


def speedup_area_experiment(
    experiment: str,
    time_experiment: str,
    paper_size: int,
    paper_caches: tuple[int, ...],
    full: bool,
    jobs: int | None,
    cache_dir: str | Path | None,
    quick_size: int,
    quick_caches: tuple[int, ...],
) -> ExperimentReport:
    started = time.perf_counter()
    if full:
        size = paper_size
        caches = paper_caches
        workers = tuple(range(2, 16))
    else:
        size = quick_size
        caches = quick_caches
        workers = (2, 4, 8, 15)
    # Reuse the execution-time sweep (cache hit if that figure ran first)
    # plus WT points: the optimum may pick either policy.
    spec = _execution_time_spec(
        f"{time_experiment}_n{size}", size, ("wb", "wt") if full else ("wb",),
        caches, workers, 3, SystemConfig(),
    )
    results = run_sweep(spec, jobs=jobs, cache_dir=cache_dir, progress=True)
    _check_validated(results)

    area_model = AreaModel()
    candidates = []
    for result in results:
        config = SystemConfig(
            n_workers=result.n_workers,
            cache_size_kb=result.cache_kb,
            cache_policy=result.policy,
        )
        candidates.append((result, area_model.chip_area(config)))
    # Speedup baseline: the smallest-area architecture of the sweep.
    baseline_result, baseline_area = min(candidates, key=lambda item: item[1])
    base_cycles = baseline_result.cycles_per_iteration
    points = [
        FrontPoint(
            area_mm2=area,
            speedup=base_cycles / result.cycles_per_iteration,
            label=f"{result.n_workers}P_{result.cache_kb}k$"
                  f"{'_WT' if result.policy == 'wt' else ''}",
        )
        for result, area in candidates
    ]
    front = pareto_front(points)
    optimal = kill_rule_prune(front)

    rows = [
        [f"{p.area_mm2:.2f}", f"{p.speedup:.2f}", p.label,
         "kept" if p in optimal else "pareto-only"]
        for p in front
    ]
    series = {
        "pareto": [(p.area_mm2, p.speedup) for p in front],
        "kill-rule": [(p.area_mm2, p.speedup) for p in optimal],
    }
    text = (
        f"{experiment}: optimal speedup vs chip area, Jacobi {size}x{size}\n"
        + _scale_note(full, f"{size}x{size}")
        + f"speedup baseline: {baseline_result.label} at "
          f"{baseline_area:.2f} mm^2 "
          f"({baseline_result.cycles_per_iteration:.0f} cycles/iter)\n"
        + format_table(["area_mm2", "speedup", "config", "kill rule"], rows)
        + "\n"
        + ascii_plot(
            series,
            x_label="chip area (mm^2)",
            y_label="speedup",
            title=f"{experiment}: speedup vs area "
                  f"(compare paper Fig. {'7' if paper_size == 60 else '9'})",
        )
    )
    return ExperimentReport(
        experiment=experiment,
        full_scale=full,
        text=text,
        series=series,
        rows=rows,
        wall_seconds=time.perf_counter() - started,
    )


def experiment_fig7(
    full: bool | None = None,
    jobs: int | None = None,
    cache_dir: str | Path | None = DEFAULT_RESULTS_DIR,
) -> ExperimentReport:
    """Fig. 7: kill-rule-pruned speedup vs area for the 60x60 run."""
    full = full_scale_requested() if full is None else full
    return speedup_area_experiment(
        "fig7", "fig6", 60, (2, 4, 8, 16, 32, 64),
        full, jobs, cache_dir, quick_size=30, quick_caches=(2, 8, 32),
    )


def experiment_fig9(
    full: bool | None = None,
    jobs: int | None = None,
    cache_dir: str | Path | None = DEFAULT_RESULTS_DIR,
) -> ExperimentReport:
    """Fig. 9: kill-rule-pruned speedup vs area for the 30x30 run."""
    full = full_scale_requested() if full is None else full
    return speedup_area_experiment(
        "fig9", "fig8", 30, (2, 4, 8, 16, 32),
        full, jobs, cache_dir, quick_size=16, quick_caches=(2, 4, 8),
    )


# ---------------------------------------------------------------------------
# In-text comparison: hybrid vs sync-only vs pure shared memory
# ---------------------------------------------------------------------------


def experiment_compare(
    full: bool | None = None,
    jobs: int | None = None,
    cache_dir: str | Path | None = DEFAULT_RESULTS_DIR,
) -> ExperimentReport:
    """Section III's programming-model comparison on the 60x60 problem.

    Paper claims: hybrid (full MP) beats pure shared memory by ~2x at 6
    cores/16 kB growing past 5x at higher core counts; the sync-only
    hybrid recovers 2x-2.8x of that; full vs sync-only differ by 2-20%
    when the miss rate is relevant.
    """
    started = time.perf_counter()
    full = full_scale_requested() if full is None else full
    workers = tuple(range(2, 16, 2)) + (15,) if full else (6, 10)
    cache_kb = 16
    rows = []
    series: dict[str, list[tuple[float, float]]] = {
        "sm_over_full": [], "sm_over_sync": [], "sync_over_full": [],
    }
    for n_workers in workers:
        cycles = {}
        for model in ("hybrid_full", "hybrid_sync", "pure_sm"):
            spec_m = SweepSpec(
                name=f"compare_n60_{model}",
                workers=(n_workers,),
                cache_sizes_kb=(cache_kb,),
                policies=("wb",),
                params=JacobiParams(n=60, iterations=3, warmup=1, model=model),
            )
            result = run_sweep(spec_m, jobs=jobs, cache_dir=cache_dir)[0]
            _check_validated([result])
            cycles[model] = result.cycles_per_iteration
        full_c = cycles["hybrid_full"]
        sync_c = cycles["hybrid_sync"]
        sm_c = cycles["pure_sm"]
        rows.append([
            n_workers, f"{full_c:.0f}", f"{sync_c:.0f}", f"{sm_c:.0f}",
            f"{sm_c / full_c:.2f}x", f"{sm_c / sync_c:.2f}x",
            f"{sync_c / full_c:.2f}x",
        ])
        series["sm_over_full"].append((n_workers, sm_c / full_c))
        series["sm_over_sync"].append((n_workers, sm_c / sync_c))
        series["sync_over_full"].append((n_workers, sync_c / full_c))

    text = (
        "compare: programming models on Jacobi 60x60, 16 kB WB caches\n"
        + _scale_note(full, "2 core counts")
        + format_table(
            ["cores", "hybrid_full", "hybrid_sync", "pure_sm",
             "sm/full", "sm/sync", "sync/full"],
            rows,
        )
        + "\npaper targets: sm/full 2x at 6 cores -> >5x at high counts; "
          "sm/sync in 2x-2.8x; sync/full within 2-20% at low counts\n"
    )
    return ExperimentReport(
        experiment="compare",
        full_scale=full,
        text=text,
        series=series,
        rows=rows,
        wall_seconds=time.perf_counter() - started,
    )


# ---------------------------------------------------------------------------
# Collectives and the collective-heavy workloads (matmul, stream)
# ---------------------------------------------------------------------------


def _assert_validated(label: str, ok: bool) -> None:
    if not ok:
        raise AssertionError(f"numerical validation failed for: {label}")


def experiment_collectives(
    full: bool | None = None,
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
) -> ExperimentReport:
    """Cycles per collective op: algorithm x programming model x mesh size.

    The per-collective generalization of the paper's barrier comparison:
    broadcast / reduce / allreduce / scatter / gather, each timed over
    the eMPI message path and the shared-memory MPMMU path.  Points run
    inline (``jobs`` is accepted for CLI uniformity and ignored) but go
    through the versioned :class:`ResultCache`, so repeated sweeps hit
    disk exactly like the Jacobi figures do.
    """
    del jobs
    started = time.perf_counter()
    full = full_scale_requested() if full is None else full
    workers = (2, 4, 8, 15) if full else (4, 8)
    n_values = 16 if full else 8
    repeats = 8 if full else 4
    cache = (
        ResultCache(cache_dir, "collectives") if cache_dir is not None else None
    )
    rows = []
    series: dict[str, list[tuple[float, float]]] = {}
    for config in mesh_sweep_configs(workers):
        sm_bcast_cycles: float | None = None
        for collective in COLLECTIVES:
            # Scatter/gather are root-centric by definition: linear only.
            algorithms = (
                ("linear", "tree")
                if collective in ("bcast", "reduce", "allreduce")
                else ("linear",)
            )
            for algorithm in algorithms:
                cycles = {}
                for model in ("empi", "pure_sm"):
                    label = (
                        f"{collective}/{algorithm}/{model}/"
                        f"{config.n_workers}w"
                    )
                    params = CollectiveBenchParams(
                        collective=collective, model=model,
                        algorithm=algorithm, n_values=n_values,
                        repeats=repeats,
                    )
                    key = (
                        f"{config_cache_key(config)}|app=collective_bench|"
                        f"{params_cache_key(params)}"
                    )
                    cached = cache.get_raw(key) if cache is not None else None
                    if cached is not None:
                        cycles[model] = cached["cycles_per_op"]
                    elif (collective == "bcast" and model == "pure_sm"
                            and sm_bcast_cycles is not None):
                        # The SM broadcast ignores the algorithm (the
                        # MPMMU serializes all readers either way), so
                        # the tree point would be a bit-identical rerun.
                        cycles[model] = sm_bcast_cycles
                        if cache is not None:
                            cache.put_raw(
                                key, {"cycles_per_op": sm_bcast_cycles}
                            )
                    else:
                        result = run_collective_bench(config, params)
                        _assert_validated(label, result.validated)
                        cycles[model] = result.cycles_per_op
                        if cache is not None:
                            cache.put_raw(
                                key, {"cycles_per_op": result.cycles_per_op}
                            )
                    if collective == "bcast" and model == "pure_sm":
                        sm_bcast_cycles = cycles[model]
                    series.setdefault(
                        f"{collective}_{algorithm}_{model}", []
                    ).append((config.n_workers, cycles[model]))
                rows.append([
                    collective, algorithm, config.n_workers,
                    f"{cycles['empi']:.0f}", f"{cycles['pure_sm']:.0f}",
                    f"{cycles['pure_sm'] / cycles['empi']:.2f}x",
                ])
    if cache is not None:
        cache.save()
    text = (
        f"collectives: cycles per op, {n_values} doubles, mean of "
        f"{repeats} reps\n"
        + _scale_note(full, f"{len(workers)} mesh sizes")
        + format_table(
            ["collective", "algorithm", "workers", "empi", "pure_sm",
             "sm/empi"],
            rows,
        )
        + "\npaper context (Table 1 generalized): every SM column is "
          "serialized MPMMU traffic; the hybrid column never touches it\n"
    )
    return ExperimentReport(
        experiment="collectives", full_scale=full, text=text,
        series=series, rows=rows,
        wall_seconds=time.perf_counter() - started,
    )


def experiment_matmul(
    full: bool | None = None,
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
) -> ExperimentReport:
    """Tiled matmul: total and reduce-phase cycles per model/algorithm."""
    del jobs, cache_dir
    started = time.perf_counter()
    full = full_scale_requested() if full is None else full
    workers = (2, 4, 8, 15) if full else (2, 4)
    n, tile = (12, 4) if full else (6, 2)
    rows = []
    series: dict[str, list[tuple[float, float]]] = {}
    for config in mesh_sweep_configs(workers):
        for algorithm in ("linear", "tree"):
            totals = {}
            reduces = {}
            for model in ("empi", "pure_sm"):
                result = run_matmul(
                    config,
                    MatmulParams(n=n, tile=tile, model=model,
                                 algorithm=algorithm),
                )
                _assert_validated(
                    f"matmul/{algorithm}/{model}/{config.n_workers}w",
                    result.validated,
                )
                totals[model] = result.total_cycles
                reduces[model] = result.reduce_cycles
                series.setdefault(f"{model}_{algorithm}", []).append(
                    (config.n_workers, result.total_cycles)
                )
            rows.append([
                config.n_workers, algorithm,
                totals["empi"], totals["pure_sm"],
                f"{totals['pure_sm'] / totals['empi']:.2f}x",
                reduces["empi"], reduces["pure_sm"],
                f"{reduces['pure_sm'] / reduces['empi']:.2f}x",
            ])
    text = (
        f"matmul: {n}x{n} tiled (tile={tile}), row broadcast + "
        f"partial-sum reduce\n"
        + _scale_note(full, f"{n}x{n}, {len(workers)} mesh sizes")
        + format_table(
            ["workers", "algorithm", "empi_total", "sm_total", "sm/empi",
             "empi_reduce", "sm_reduce", "reduce sm/empi"],
            rows,
        )
        + "\n"
        + ascii_plot(
            series, x_label="worker cores", y_label="total cycles",
            title="matmul: execution time vs cores, by model/algorithm",
        )
    )
    return ExperimentReport(
        experiment="matmul", full_scale=full, text=text,
        series=series, rows=rows,
        wall_seconds=time.perf_counter() - started,
    )


def experiment_stream(
    full: bool | None = None,
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
) -> ExperimentReport:
    """Stream pipeline: cycles per block, TIE streams vs SM mailboxes."""
    del jobs, cache_dir
    started = time.perf_counter()
    full = full_scale_requested() if full is None else full
    workers = (2, 4, 8) if full else (2, 4)
    n_blocks, block_values = (16, 16) if full else (4, 8)
    rows = []
    series: dict[str, list[tuple[float, float]]] = {}
    for config in mesh_sweep_configs(workers):
        cycles = {}
        for model in ("empi", "pure_sm"):
            result = run_stream(
                config,
                StreamParams(n_blocks=n_blocks, block_values=block_values,
                             model=model),
            )
            _assert_validated(
                f"stream/{model}/{config.n_workers}w", result.validated
            )
            cycles[model] = result.cycles_per_block
            series.setdefault(model, []).append(
                (config.n_workers, result.cycles_per_block)
            )
        rows.append([
            config.n_workers,
            f"{cycles['empi']:.0f}", f"{cycles['pure_sm']:.0f}",
            f"{cycles['pure_sm'] / cycles['empi']:.2f}x",
        ])
    text = (
        f"stream: {n_blocks} blocks of {block_values} doubles through a "
        f"worker pipeline\n"
        + _scale_note(full, f"{len(workers)} pipeline depths")
        + format_table(
            ["workers", "empi cyc/blk", "sm cyc/blk", "sm/empi"], rows
        )
        + "\npipeline depth = worker count; empi rides the TIE streams, "
          "pure_sm polls shared-memory mailboxes through the MPMMU\n"
    )
    return ExperimentReport(
        experiment="stream", full_scale=full, text=text,
        series=series, rows=rows,
        wall_seconds=time.perf_counter() - started,
    )


def experiment_cg(
    full: bool | None = None,
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
) -> ExperimentReport:
    """Conjugate gradient: the overlap-on/off sweep over both models.

    The architecture argument of the non-blocking layer, in one table:
    for each mesh size and programming model the solver runs blocking
    and overlapped, converging bit-identically all four ways, and the
    report shows the cycles saved plus the measured overlap efficiency
    (fraction of in-flight communication hidden behind compute).  The
    hybrid model has hardware to overlap with — the TIE streams while
    the core computes — while the pure-SM model must move every word
    with the core, which is exactly what the efficiency column shows.
    Points run inline but cache through the versioned
    :class:`ResultCache` (``jobs`` accepted for CLI uniformity).
    """
    del jobs
    started = time.perf_counter()
    full = full_scale_requested() if full is None else full
    # The 8-worker reference mesh is the acceptance point; keep it in
    # every scale.
    workers = (2, 4, 8, 15) if full else (4, 8)
    n, iterations = (128, 16) if full else (64, 10)
    cache = ResultCache(cache_dir, "cg") if cache_dir is not None else None
    rows = []
    series: dict[str, list[tuple[float, float]]] = {}
    for config in mesh_sweep_configs(workers):
        for model in ("empi", "pure_sm"):
            cycles: dict[bool, int] = {}
            efficiency: dict[bool, float] = {}
            for overlap in (False, True):
                params = CgParams(
                    n=n, iterations=iterations, model=model,
                    algorithm="tree", overlap=overlap,
                )
                key = (
                    f"{config_cache_key(config)}|app=cg|"
                    f"{params_cache_key(params)}"
                )
                cached = cache.get_raw(key) if cache is not None else None
                if cached is not None:
                    cycles[overlap] = cached["total_cycles"]
                    efficiency[overlap] = cached["overlap_efficiency"]
                else:
                    result = run_cg(config, params)
                    _assert_validated(
                        f"cg/{model}/overlap={overlap}/{config.n_workers}w",
                        result.validated and result.converged,
                    )
                    cycles[overlap] = result.total_cycles
                    efficiency[overlap] = result.overlap_efficiency
                    if cache is not None:
                        cache.put_raw(key, {
                            "total_cycles": result.total_cycles,
                            "solve_cycles": result.solve_cycles,
                            "overlap_efficiency": result.overlap_efficiency,
                        })
                series.setdefault(
                    f"{model}_{'overlap' if overlap else 'blocking'}", []
                ).append((config.n_workers, cycles[overlap]))
            rows.append([
                config.n_workers, model,
                cycles[False], cycles[True],
                cycles[False] - cycles[True],
                f"{cycles[False] / cycles[True]:.4f}x",
                f"{efficiency[True]:.2f}",
            ])
    if cache is not None:
        cache.save()
    text = (
        f"cg: conjugate gradient, {n}-row tridiagonal SPD system, "
        f"{iterations} iterations\n"
        + _scale_note(full, f"n={n}, {len(workers)} mesh sizes")
        + format_table(
            ["workers", "model", "blocking", "overlap", "saved",
             "speedup", "ovl eff"],
            rows,
        )
        + "\nhalo isend/irecv hide behind interior SpMV rows; the "
          "residual-norm iallreduce hides behind the x update.  All four "
          "variants per mesh converge bit-identically; 'ovl eff' is the "
          "fraction of in-flight communication cycles spent computing\n"
    )
    return ExperimentReport(
        experiment="cg", full_scale=full, text=text,
        series=series, rows=rows,
        wall_seconds=time.perf_counter() - started,
    )


def experiment_hw_collectives(
    full: bool | None = None,
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
) -> ExperimentReport:
    """Hardware collective engine vs software: the offload crossover.

    Sweeps bcast and allreduce over queue depth x algorithm x mesh size:
    the software baselines (``linear``/``tree``, no engine) against the
    ``hw`` algorithm (DMA TX queue + NoC multicast + reduction assist)
    at each queue depth, plus the equivalence-tested unicast-fallback
    point (``hw-uc``, engine on, fabric replication off).  A second
    table sweeps allreduce over vector length x mesh — the long-vector
    crossover: software ``tree`` vs software ``ring`` vs the engine
    paths, with the PR-4 engine (``hw-na``, reduction assist off, only
    the broadcast leg offloaded) as the hw-reduce-vs-sw-reduce
    comparison point.  Every point validates bit for bit against the
    combine-order references.  Points run inline but cache through the
    versioned :class:`ResultCache` (``jobs`` accepted for CLI
    uniformity).
    """
    del jobs
    started = time.perf_counter()
    full = full_scale_requested() if full is None else full
    workers = (2, 4, 8, 15) if full else (4, 8)
    depths = (1, 2, 4, 8) if full else (1, 4)
    lengths = (16, 64, 256, 1024) if full else (16, 64, 256)
    n_values = 16
    repeats = 8 if full else 4
    long_repeats = 4 if full else 2
    cache = (
        ResultCache(cache_dir, "hw_collectives")
        if cache_dir is not None else None
    )

    def point(config: SystemConfig, collective: str, algorithm: str,
              label: str, n_values: int = n_values,
              repeats: int = repeats) -> float:
        params = CollectiveBenchParams(
            collective=collective, model="empi", algorithm=algorithm,
            n_values=n_values, repeats=repeats,
        )
        key = (
            f"{config_cache_key(config)}|app=collective_bench|"
            f"{params_cache_key(params)}"
        )
        cached = cache.get_raw(key) if cache is not None else None
        if cached is not None:
            return cached["cycles_per_op"]
        result = run_collective_bench(config, params)
        _assert_validated(label, result.validated)
        if cache is not None:
            cache.put_raw(key, {"cycles_per_op": result.cycles_per_op})
        return result.cycles_per_op

    rows = []
    series: dict[str, list[tuple[float, float]]] = {}
    crossover: dict[str, int | None] = {}
    for config in mesh_sweep_configs(workers):
        w = config.n_workers
        for collective in ("bcast", "allreduce"):
            cycles: dict[str, float] = {}
            for algorithm in ("linear", "tree"):
                cycles[algorithm] = point(
                    config, collective, algorithm,
                    f"hw_collectives/{collective}/{algorithm}/{w}w",
                )
            for depth in depths:
                hw_config = config.with_changes(dma_tx_queue_depth=depth)
                cycles[f"hw(q{depth})"] = point(
                    hw_config, collective, "hw",
                    f"hw_collectives/{collective}/hw-q{depth}/{w}w",
                )
            fallback_config = config.with_changes(
                dma_tx_queue_depth=depths[-1], noc_multicast=False
            )
            cycles["hw-uc"] = point(
                fallback_config, collective, "hw",
                f"hw_collectives/{collective}/hw-uc/{w}w",
            )
            best_hw = min(cycles[f"hw(q{d})"] for d in depths)
            if best_hw < cycles["tree"] and collective not in crossover:
                crossover[collective] = w
            rows.append(
                [collective, w]
                + [f"{cycles[k]:.0f}" for k in cycles]
                + [f"{cycles['tree'] / best_hw:.2f}x"]
            )
            series.setdefault(f"{collective}_tree", []).append(
                (w, cycles["tree"])
            )
            series.setdefault(f"{collective}_hw", []).append((w, best_hw))
    # -- long-vector crossover: allreduce over vector length x mesh --------
    long_rows = []
    long_series: dict[str, list[tuple[float, float]]] = {}
    long_algos = ("tree", "ring", "hw-na", "hw", "ring-hw")
    ring_crossover: dict[int, int | None] = {}
    for config in mesh_sweep_configs(workers):
        w = config.n_workers
        engine_config = config.with_changes(dma_tx_queue_depth=depths[-1])
        noassist_config = engine_config.with_changes(dma_reduce_assist=False)
        variants = {
            "tree": (config, "tree"),
            "ring": (config, "ring"),
            "hw-na": (noassist_config, "hw"),
            "hw": (engine_config, "hw"),
            "ring-hw": (engine_config, "ring"),
        }
        for length in lengths:
            cycles = {
                name: point(
                    cfg, "allreduce", algorithm,
                    f"hw_collectives/allreduce/{name}/{w}w/{length}v",
                    n_values=length, repeats=long_repeats,
                )
                for name, (cfg, algorithm) in variants.items()
            }
            if cycles["ring"] < cycles["tree"] and w not in ring_crossover:
                ring_crossover[w] = length
            long_rows.append(
                ["allreduce", w, length]
                + [f"{cycles[k]:.0f}" for k in long_algos]
                + [
                    f"{cycles['tree'] / cycles['ring']:.2f}x",
                    f"{cycles['hw-na'] / cycles['hw']:.2f}x",
                ]
            )
            long_series.setdefault(f"ring_{w}w", []).append(
                (length, cycles["ring"])
            )
            long_series.setdefault(f"tree_{w}w", []).append(
                (length, cycles["tree"])
            )
        ring_crossover.setdefault(w, None)
    if cache is not None:
        cache.save()
    labels = (
        ["linear", "tree"] + [f"hw(q{d})" for d in depths] + ["hw-uc"]
    )
    crossings = ", ".join(
        f"{coll}: {'never' if crossover.get(coll) is None else f'from {crossover[coll]}w'}"
        for coll in ("bcast", "allreduce")
    )
    ring_crossings = ", ".join(
        f"{w}w: {'never' if length is None else f'from {length} doubles'}"
        for w, length in sorted(ring_crossover.items())
    )
    text = (
        f"hw_collectives: cycles per op, {n_values} doubles, mean of "
        f"{repeats} reps (empi model)\n"
        + _scale_note(full, f"{len(workers)} mesh sizes, {len(depths)} depths")
        + format_table(
            ["collective", "workers"] + labels + ["tree/hw"], rows
        )
        + f"\nhw beats the software tree ({crossings}); 'hw-uc' is the "
          "unicast-fallback equivalence point (engine on, fabric "
          "replication off).  All points deliver bit-identical vectors; "
          "hw combines in the tree order.\n\n"
        + f"long-vector crossover: allreduce cycles/op over vector length "
          f"(mean of {long_repeats} reps; engine points at queue depth "
          f"{depths[-1]})\n"
        + format_table(
            ["collective", "workers", "doubles"] + list(long_algos)
            + ["tree/ring", "hw-na/hw"],
            long_rows,
        )
        + f"\nring beats tree ({ring_crossings}); 'hw-na' is the PR-4 "
          "engine (broadcast leg offloaded, reduce leg through processor "
          "ops) — the hw-reduce vs sw-reduce comparison; 'ring-hw' rides "
          "neighbour multicast descriptors + qreduce accumulate-on-"
          "receive.  ring combines in its own reference order, hw in the "
          "tree order; every point validates bit for bit.\n"
        + ascii_plot(
            series, x_label="worker cores", y_label="cycles/op",
            title="hw_collectives: hardware vs software crossover",
        )
        + ascii_plot(
            long_series, x_label="vector length (doubles)",
            y_label="cycles/op",
            title="hw_collectives: ring vs tree over vector length",
        )
    )
    return ExperimentReport(
        experiment="hw_collectives", full_scale=full, text=text,
        series={**series, **{f"long_{k}": v for k, v in long_series.items()}},
        rows=rows + long_rows,
        wall_seconds=time.perf_counter() - started,
    )


# ---------------------------------------------------------------------------
# NoC characterization + simulator speed
# ---------------------------------------------------------------------------


def experiment_noc(
    full: bool | None = None,
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
) -> ExperimentReport:
    """Deflection-routing latency/throughput and outlier behaviour."""
    del jobs, cache_dir  # accepted for CLI uniformity; runs inline
    started = time.perf_counter()
    full = full_scale_requested() if full is None else full
    rates = (0.02, 0.05, 0.1, 0.2, 0.3, 0.45) if full else (0.05, 0.2, 0.45)
    cycles = 4000 if full else 1500
    rows = []
    series: dict[str, list[tuple[float, float]]] = {}
    for pattern in ("uniform", "hotspot"):
        stats_list = latency_throughput_sweep(
            rates=rates, pattern=pattern, cycles=cycles
        )
        for stats in stats_list:
            rows.append([
                pattern, f"{stats.offered_rate:.2f}",
                f"{stats.mean_latency:.1f}", stats.max_latency,
                stats.p99_latency_bound,
                f"{stats.deflections_per_flit:.2f}",
                f"{stats.throughput:.3f}",
                "yes" if stats.all_delivered else "NO",
            ])
            series.setdefault(pattern, []).append(
                (stats.offered_rate, stats.mean_latency)
            )
    text = (
        "noc: deflection routing under synthetic traffic (4x4 folded torus)\n"
        + _scale_note(full, "3 rates, 1500 cycles")
        + format_table(
            ["pattern", "rate", "mean_lat", "max_lat", "p99<=",
             "defl/flit", "thruput", "all delivered"],
            rows,
        )
        + "\npaper context (Sec. II-A): sporadic high-latency flits, no "
          "livelock observed; max/p99 vs mean quantifies the outliers\n"
        + ascii_plot(series, x_label="offered rate (flits/node/cycle)",
                     y_label="mean latency (cycles)",
                     title="noc: load-latency curve")
    )
    return ExperimentReport(
        experiment="noc", full_scale=full, text=text, series=series,
        rows=rows, wall_seconds=time.perf_counter() - started,
    )


def experiment_simspeed(
    full: bool | None = None,
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
) -> ExperimentReport:
    """Simulator-throughput counterpart of the paper's 15x HDL-ISS claim."""
    del jobs, cache_dir  # accepted for CLI uniformity; runs inline
    started = time.perf_counter()
    full = full_scale_requested() if full is None else full
    config = SystemConfig(n_workers=8, cache_size_kb=16)
    params = JacobiParams(n=30 if not full else 60, iterations=3, warmup=1)
    t0 = time.perf_counter()
    result = run_jacobi(config, params)
    wall = time.perf_counter() - t0
    cps = result.total_cycles / wall
    sweep_points = 168 * 3  # three problem sizes, as in the paper
    est_hours = sweep_points * wall / 3600
    rows = [[
        config.label(), params.n, result.total_cycles, f"{wall:.2f}",
        f"{cps:,.0f}", f"{est_hours:.2f}",
    ]]
    text = (
        "simspeed: kernel throughput (stand-in for the paper's 15x-vs-"
        "HDL-ISS claim)\n"
        + _scale_note(full, "30x30 reference run")
        + format_table(
            ["config", "grid", "cycles", "wall_s", "cycles/sec",
             "est. hours for 168x3 sweep (serial)"],
            rows,
        )
        + "\npaper context: 168 configs x 3 sizes in ~1 day on 5 dual-Xeon "
          "servers; the estimate above is single-process — divide by the "
          "worker-pool size used in run_sweep.\n"
    )
    return ExperimentReport(
        experiment="simspeed", full_scale=full, text=text, rows=rows,
        wall_seconds=time.perf_counter() - started,
    )


# ---------------------------------------------------------------------------
# Fault tolerance: reliable delivery under seeded faults
# ---------------------------------------------------------------------------


def experiment_fault_sweep(
    full: bool | None = None,
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
) -> ExperimentReport:
    """Reliable delivery under seeded faults: recovery overhead table.

    Sweeps allreduce on the reference 8-worker mesh over fault rate x
    algorithm (software ``tree``/``ring`` and the hardware engine path),
    asserting at every point that the delivered vectors are bit-identical
    to the fault-free combine-order reference — transient flit loss and
    corruption must be fully masked by the CRC + NACK/retransmit layer,
    at a cycle cost the table quantifies.  Three extra rows pin the
    protocol's edges: ``off`` (no fault layer — the golden baseline
    format), ``rate 0`` (reliable format on, nothing injected — the pure
    protocol overhead: wider flits, CRC stamping, credit traffic), and
    ``dead link`` (a permanently killed non-critical link mid-run — the
    deflection router's recomputed productive table must deliver, at
    degraded cycles, without a single lost value).  Points run inline
    but cache through the versioned :class:`ResultCache`.
    """
    del jobs
    started = time.perf_counter()
    full = full_scale_requested() if full is None else full
    algorithms = ("tree", "ring", "hw")
    drop_rates = (0.005, 0.01, 0.02, 0.05) if full else (0.01, 0.05)
    corrupt_rate = 0.01
    seed = 3
    n_values = 16
    repeats = 4 if full else 2
    base = SystemConfig(n_workers=8, topology_kind="mesh")
    cache = (
        ResultCache(cache_dir, "fault_sweep")
        if cache_dir is not None else None
    )

    def point(config: SystemConfig, algorithm: str, label: str) -> int:
        params = CollectiveBenchParams(
            collective="allreduce", model="empi", algorithm=algorithm,
            n_values=n_values, repeats=repeats,
        )
        key = (
            f"{config_cache_key(config)}|app=collective_bench|"
            f"{params_cache_key(params)}"
        )
        cached = cache.get_raw(key) if cache is not None else None
        if cached is not None:
            return cached["total_cycles"]
        result = run_collective_bench(config, params)
        _assert_validated(label, result.validated)
        if cache is not None:
            cache.put_raw(key, {"total_cycles": result.total_cycles})
        return result.total_cycles

    from repro.faults import FaultPlan

    variants: list[tuple[str, FaultPlan | None]] = [
        ("off", None),
        ("rate 0", FaultPlan(seed=seed)),
    ]
    variants += [
        (f"drop {rate:g}", FaultPlan(seed=seed, drop_rate=rate))
        for rate in drop_rates
    ]
    variants.append(
        (f"corrupt {corrupt_rate:g}",
         FaultPlan(seed=seed, corrupt_rate=corrupt_rate))
    )
    variants.append(
        ("dead link", FaultPlan(seed=seed, dead_links=((1, 1, 200),)))
    )

    rows = []
    series: dict[str, list[tuple[float, float]]] = {}
    for algorithm in algorithms:
        config = (
            base.with_changes(dma_tx_queue_depth=4)
            if algorithm == "hw" else base
        )
        baseline: int | None = None
        for name, plan in variants:
            cycles = point(
                config.with_changes(faults=plan), algorithm,
                f"fault_sweep/allreduce/{algorithm}/{name}",
            )
            if baseline is None:
                baseline = cycles
            rows.append([
                "allreduce", algorithm, name, cycles,
                f"{cycles / baseline:.2f}x",
            ])
            if name.startswith("drop"):
                series.setdefault(algorithm, []).append(
                    (float(name.split()[1]), cycles / baseline)
                )
    if cache is not None:
        cache.save()
    text = (
        f"fault_sweep: allreduce under seeded link faults, 8-worker mesh, "
        f"{n_values} doubles, {repeats} reps (empi model)\n"
        + _scale_note(full, f"{len(drop_rates)} drop rates, seed {seed}")
        + format_table(
            ["collective", "algorithm", "faults", "cycles", "vs off"], rows
        )
        + "\nevery point delivered vectors bit-identical to the fault-free "
          "combine-order reference — transient drops and corruptions are "
          "fully repaired by CRC + NACK/retransmit; 'rate 0' is the pure "
          "protocol overhead (wide reliable flit format, CRC stamping, "
          "credit traffic); 'dead link' kills link 1->E at cycle 200 and "
          "the rerouted productive table still delivers every value.\n"
        + ascii_plot(
            series, x_label="drop rate", y_label="cycle overhead (x)",
            title="fault_sweep: recovery overhead vs fault rate",
        )
    )
    return ExperimentReport(
        experiment="fault_sweep", full_scale=full, text=text,
        series=series, rows=rows,
        wall_seconds=time.perf_counter() - started,
    )


# ---------------------------------------------------------------------------


def _check_validated(results: list[SweepResult]) -> None:
    bad = [r.label for r in results if not r.validated]
    if bad:
        raise AssertionError(
            f"numerical validation failed for: {', '.join(bad)}"
        )


ALL_EXPERIMENTS = {
    "fig6": experiment_fig6,
    "fig7": experiment_fig7,
    "fig8": experiment_fig8,
    "fig9": experiment_fig9,
    "compare": experiment_compare,
    "collectives": experiment_collectives,
    "hw_collectives": experiment_hw_collectives,
    "matmul": experiment_matmul,
    "stream": experiment_stream,
    "cg": experiment_cg,
    "noc": experiment_noc,
    "simspeed": experiment_simspeed,
    "fault_sweep": experiment_fault_sweep,
}
