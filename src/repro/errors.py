"""Exception hierarchy for the MEDEA reproduction.

Every error raised by the package derives from :class:`MedeaError` so that
callers can catch simulator-level failures without masking genuine Python
bugs (``TypeError`` and friends propagate untouched).
"""

from __future__ import annotations


class MedeaError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(MedeaError):
    """An invalid or inconsistent :class:`~repro.system.config.SystemConfig`."""


class SimulationError(MedeaError):
    """The simulation kernel reached an illegal state."""


class DeadlockError(SimulationError):
    """Nothing can make progress but the stop condition is unmet.

    Raised by :meth:`repro.kernel.simulator.Simulator.run` when every
    component is idle, no wakeup is scheduled and the caller's ``until``
    predicate is still false.  The message includes a per-component
    diagnostic to make protocol bugs debuggable.
    """


class WatchdogError(DeadlockError):
    """The no-progress watchdog expired.

    Raised by :class:`repro.kernel.watchdog.ProgressWatchdog` when no flit
    has moved and every core has sat in a WAIT state for a full budget of
    cycles.  Semantically a deadlock (and a subclass of
    :class:`DeadlockError` so existing handlers keep working), but raised
    *eagerly* from inside a still-live simulation — e.g. when reliability
    retries were exhausted under an unrecoverable fault plan — instead of
    waiting for the kernel's wakeup queue to drain.
    """


class EmpiTimeoutError(MedeaError):
    """An eMPI wait/progress loop exceeded its cycle budget.

    Carries the rank, the stuck operation (with its algorithm, e.g.
    ``iallreduce[ring]``), every still-pending request label and — when a
    fault plan is active — the fault context, so a lost-message hang names
    its victim instead of spinning forever.
    """


class FifoError(MedeaError):
    """Illegal operation on a hardware FIFO model."""


class FifoFullError(FifoError):
    """Push attempted on a full bounded FIFO."""


class FifoEmptyError(FifoError):
    """Pop/peek attempted on an empty FIFO."""


class ProtocolError(MedeaError):
    """A NoC/bridge/MPMMU protocol invariant was violated."""


class MemoryAccessError(MedeaError):
    """Out-of-segment or misaligned access to a modelled memory."""


class PacketFormatError(MedeaError):
    """A field does not fit in its bit-accurate packet slot."""


class ProgramError(MedeaError):
    """A PE program yielded an unknown or malformed operation."""


class SweepError(MedeaError):
    """Sweep points still failed after every bounded retry round.

    Raised by :func:`repro.dse.executor.run_space` with the space name and
    every unrecovered ``(point key, error message)`` pair, so a 168-point
    overnight sweep reports *which* points died instead of crashing on the
    first one.  Points that did complete were already persisted
    incrementally and are served from cache on the next run.
    """

    def __init__(self, space: str, failures: list[tuple[str, str]]) -> None:
        self.space = space
        self.failures = failures
        lines = "\n".join(f"  {key}: {error}" for key, error in failures[:10])
        more = len(failures) - 10
        if more > 0:
            lines += f"\n  ... and {more} more"
        super().__init__(
            f"sweep {space!r}: {len(failures)} point(s) failed after "
            f"retries:\n{lines}"
        )
