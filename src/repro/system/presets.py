"""Canonical configurations: the reference machine and the paper's sweep."""

from __future__ import annotations

from collections.abc import Iterator

from repro.system.config import VALID_CACHE_SIZES_KB, SystemConfig


def reference_config(**overrides: object) -> SystemConfig:
    """The baseline machine of Section II: 4x4-capable folded torus,
    dual-FIFO arbiter, Multiply-High core, 16 kB write-back caches."""
    config = SystemConfig()
    if overrides:
        config = config.with_changes(**overrides)
    return config


def cg_reference_config(**overrides: object) -> SystemConfig:
    """The overlap proof-point machine: the Section II reference scaled
    to 8 workers — the mesh on which the CG acceptance comparison
    (overlap on vs. off) is run and logged."""
    config = SystemConfig(n_workers=8, cache_size_kb=16)
    if overrides:
        config = config.with_changes(**overrides)
    return config


def mesh_sweep_configs(
    workers: tuple[int, ...] | None = None,
    base: SystemConfig | None = None,
) -> Iterator[SystemConfig]:
    """Reference machines across mesh sizes (worker counts only).

    The axis the collective and workload sweeps turn: everything stays at
    the Section II reference point except the worker count (the NoC grid
    grows with it automatically).
    """
    if workers is None:
        workers = tuple(range(2, 16))
    template = base if base is not None else SystemConfig()
    for n_workers in workers:
        yield template.with_changes(n_workers=n_workers)


def paper_sweep_configs(
    workers: tuple[int, ...] | None = None,
    cache_sizes_kb: tuple[int, ...] | None = None,
    policies: tuple[str, ...] = ("wb", "wt"),
    base: SystemConfig | None = None,
) -> Iterator[SystemConfig]:
    """The 168-point design space of Section III.

    Cores 3-16 (= 2-15 workers plus the MPMMU) x cache 2-64 kB x WB/WT
    gives 14 * 6 * 2 = 168 architectures, exactly the number the paper
    simulated overnight on five servers.
    """
    if workers is None:
        workers = tuple(range(2, 16))
    if cache_sizes_kb is None:
        cache_sizes_kb = VALID_CACHE_SIZES_KB
    template = base if base is not None else SystemConfig()
    for n_workers in workers:
        for cache_kb in cache_sizes_kb:
            for policy in policies:
                yield template.with_changes(
                    n_workers=n_workers,
                    cache_size_kb=cache_kb,
                    cache_policy=policy,
                )
