"""System configuration: every knob of the MEDEA design space."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cache.l1 import WritePolicy
from repro.bridge.arbiter import ArbiterMode, TrafficClass
from repro.empi.runtime import BarrierAlgorithm
from repro.errors import ConfigError
from repro.faults import FaultPlan
from repro.pe.costmodel import FpCostModel
from repro.telemetry.config import TelemetryConfig

#: The paper sweeps caches from 2 kB to 64 kB in powers of two.
VALID_CACHE_SIZES_KB = (2, 4, 8, 16, 32, 64)


@dataclass
class SystemConfig:
    """Full description of one architecture point.

    The three headline axes of the paper's exploration are ``n_workers``
    (2-15 compute cores; the MPMMU is one more node), ``cache_size_kb``
    (2-64 kB) and ``cache_policy`` ('wb'/'wt').  Everything else defaults
    to the reference implementation described in Section II.
    """

    # -- exploration axes ---------------------------------------------------
    n_workers: int = 4
    cache_size_kb: int = 16
    cache_policy: WritePolicy | str = "wb"

    # -- L1 details -----------------------------------------------------------
    cache_line_bytes: int = 16
    cache_assoc: int = 2
    write_buffer_depth: int = 4

    # -- NoC ------------------------------------------------------------------
    topology_kind: str = "folded_torus"  # or "mesh" / "chiplet"
    grid: tuple[int, int] | None = None  # None = smallest near-square fit
    eject_width: int = 1
    strict_encoding: bool = False

    # -- chiplet topology (used when topology_kind == "chiplet") --------------
    #: Number of compute chiplets around the central IO chiplet (which
    #: holds the MPMMU at node 0, next to the memory controller).
    chiplets: int = 4
    #: Per-chiplet compute mesh shape; None = smallest near-square mesh
    #: that fits the workers split evenly across the chiplets.
    chiplet_grid: tuple[int, int] | None = None
    #: Flight latency of each inter-chiplet link in cycles (on-die links
    #: are always 1; off-package SerDes hops cost several).
    chiplet_link_latency: int = 4
    #: Inter-chiplet link serialization factor: cycles one flit occupies
    #: the wire (2 = half-width off-die link).
    chiplet_link_width: int = 1

    # -- DMA/collective engine (opt-in hardware assist) -----------------------
    #: Depth of the per-tile DMA TX descriptor queue; 0 disables the
    #: engine entirely (seed behaviour — every committed golden cycle
    #: count is bit-identical with it off).
    dma_tx_queue_depth: int = 0
    #: When the engine exists, emit true MULTICAST flits the fabric
    #: replicates (True) or expand multicast descriptors into per-member
    #: unicast streams (False — the equivalence-tested fallback for
    #: networks whose flit format cannot carry the mask).
    noc_multicast: bool = True
    #: When the engine exists, let reductions combine at the engine on
    #: flit arrival (the ``qreduce`` accumulate-on-receive assist).
    #: False reproduces the PR-4 engine: broadcast offloads, the
    #: combining leg serializes through processor ops — the sw-reduce
    #: baseline of the DSE crossover table.
    dma_reduce_assist: bool = True

    # -- arbiter (Fig. 3 configurations) ----------------------------------------
    arbiter_mode: ArbiterMode | str = "dual_fifo"
    arbiter_fifo_depth: int = 4
    arbiter_high_priority: TrafficClass | str = "message"

    # -- MPMMU + DDR --------------------------------------------------------------
    mpmmu_cache_kb: int = 16
    #: The MPMMU is a processor running protocol software; ~12 cycles of
    #: decode/dispatch per transaction (calibrated in EXPERIMENTS.md).
    mpmmu_service_overhead: int = 12
    mpmmu_cache_hit_cycles: int = 2
    mpmmu_out_fifo_depth: int = 16
    mpmmu_data_fifo_depth: int = 8
    ddr_read_latency: int = 24
    ddr_words_per_cycle: int = 1
    ddr_posted_write_cost: int = 2

    # -- memory map ------------------------------------------------------------------
    shared_size: int = 1 << 20
    private_size: int = 1 << 20
    local_mem_bytes: int = 1 << 20

    # -- core -----------------------------------------------------------------------
    fp: FpCostModel = field(default_factory=FpCostModel)
    lock_retry_backoff: int = 16
    recv_overhead: int = 2

    # -- runtime ----------------------------------------------------------------------
    empi_barrier: BarrierAlgorithm | str = "central"
    trace: bool = False
    max_cycles: int = 2_000_000_000

    # -- fault injection + recovery (opt-in; default off) -----------------------------
    #: Seeded fault schedule (:class:`repro.faults.FaultPlan`).  None keeps
    #: every fault/reliability code path dormant — committed golden cycle
    #: counts are bit-identical with the subsystem absent.
    faults: FaultPlan | None = None
    #: No-progress watchdog check interval in cycles; 0 = disabled unless
    #: a fault plan is active (then a 200k-cycle default kicks in, so a
    #: stuck recovery reports instead of spinning to max_cycles).
    watchdog_cycles: int = 0
    #: eMPI wait/progress cycle budget before a timed retry; 0 = wait
    #: forever (the fault-free default).
    empi_timeout_cycles: int = 0
    #: Exponential-backoff retries before an eMPI wait raises
    #: :class:`~repro.errors.EmpiTimeoutError`.
    empi_timeout_retries: int = 3

    # -- telemetry (opt-in; default off) -----------------------------------------------
    #: Observability layer (:class:`repro.telemetry.TelemetryConfig`):
    #: sampled metric timelines, lifecycle trace events, NoC spatial
    #: matrices.  None keeps every committed golden bit-identical; the
    #: only hot-path cost anywhere is an is-it-None attribute check.
    telemetry: TelemetryConfig | None = None

    # -- derived -------------------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Worker cores plus the MPMMU node."""
        return self.n_workers + 1

    @property
    def cache_size_bytes(self) -> int:
        return self.cache_size_kb * 1024

    @property
    def policy(self) -> WritePolicy:
        return WritePolicy.parse(self.cache_policy)

    def validate(self) -> None:
        """Raise :class:`ConfigError` on any inconsistent setting."""
        if not (1 <= self.n_workers):
            raise ConfigError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.cache_size_kb < 1 or self.cache_size_kb & (self.cache_size_kb - 1):
            raise ConfigError(
                f"cache_size_kb must be a power of two, got {self.cache_size_kb}"
            )
        WritePolicy.parse(self.cache_policy)
        ArbiterMode.parse(self.arbiter_mode)
        if isinstance(self.arbiter_high_priority, str):
            TrafficClass(self.arbiter_high_priority.lower())
        if isinstance(self.empi_barrier, str):
            BarrierAlgorithm(self.empi_barrier.lower())
        if self.topology_kind not in ("folded_torus", "mesh", "chiplet"):
            raise ConfigError(
                f"unknown topology {self.topology_kind!r}; "
                f"use 'folded_torus', 'mesh' or 'chiplet'"
            )
        if self.grid is not None:
            width, height = self.grid
            if width * height < self.n_nodes:
                raise ConfigError(
                    f"{self.topology_kind} grid {width}x{height} "
                    f"({width * height} tiles) too small for "
                    f"{self.n_nodes} nodes ({self.n_workers} workers + "
                    f"the MPMMU)"
                )
        if self.topology_kind == "chiplet":
            if self.chiplets < 1:
                raise ConfigError(
                    f"chiplet topology needs >= 1 compute chiplet, "
                    f"got chiplets={self.chiplets}"
                )
            if self.chiplet_grid is not None:
                width, height = self.chiplet_grid
                if width < 1 or height < 1:
                    raise ConfigError(
                        f"chiplet topology needs chiplet_grid dimensions "
                        f">= 1x1, got {width}x{height}"
                    )
                if self.chiplets * width * height < self.n_workers:
                    raise ConfigError(
                        f"chiplet topology ({self.chiplets} chiplets of "
                        f"{width}x{height} = "
                        f"{self.chiplets * width * height} tiles) too "
                        f"small for {self.n_workers} workers"
                    )
            if self.chiplet_link_latency < 1 or self.chiplet_link_width < 1:
                raise ConfigError(
                    f"chiplet topology needs chiplet_link_latency and "
                    f"chiplet_link_width >= 1, got latency="
                    f"{self.chiplet_link_latency}, "
                    f"width={self.chiplet_link_width}"
                )
        if self.eject_width < 1:
            raise ConfigError("eject_width must be >= 1")
        if self.dma_tx_queue_depth < 0:
            raise ConfigError(
                f"dma_tx_queue_depth must be >= 0, "
                f"got {self.dma_tx_queue_depth}"
            )
        if self.write_buffer_depth < 1:
            raise ConfigError("write_buffer_depth must be >= 1")
        if self.cache_line_bytes != 16:
            # The wire protocol (block transactions of 4 words, 4-bit seq)
            # is built around 16-byte lines, like the reference design.
            raise ConfigError("this implementation models 16-byte cache lines")
        for name in ("mpmmu_service_overhead", "ddr_read_latency"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1")
        if self.faults is not None:
            self.faults.validate()
        for name in ("watchdog_cycles", "empi_timeout_cycles",
                     "empi_timeout_retries"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")
        if self.telemetry is not None:
            self.telemetry.validate()

    def with_changes(self, **changes: object) -> "SystemConfig":
        """A copy with the given fields replaced (sweep convenience)."""
        return replace(self, **changes)

    def label(self) -> str:
        """Short human label, e.g. ``8P_16k$_WB`` (paper figure style)."""
        policy = self.policy.value.upper()
        return f"{self.n_workers}P_{self.cache_size_kb}k$_{policy}"
