"""MedeaSystem: builds and runs one complete architecture instance."""

from __future__ import annotations

from collections.abc import Callable, Generator

from repro.bridge.arbiter import NocAccessArbiter
from repro.bridge.pif2noc import AddressLut, Pif2NocBridge
from repro.dma.engine import DmaTxEngine
from repro.cache.l1 import L1Cache, WritePolicy
from repro.cache.writebuffer import WriteBuffer
from repro.empi.runtime import Empi
from repro.errors import ConfigError, MemoryAccessError
from repro.faults import FaultInjector
from repro.kernel.simulator import Simulator
from repro.kernel.watchdog import ProgressWatchdog
from repro.kernel.trace import Tracer
from repro.mem.ddr import DdrModel
from repro.mem.memory_map import MemoryMap
from repro.mem.scratchpad import Scratchpad
from repro.mem.values import words_to_float
from repro.mpmmu.mpmmu import MpmmuNode
from repro.noc.network import NocFabric
from repro.noc.topology import build_topology
from repro.pe.processor import ProcessorNode
from repro.pe.program import ProgramContext
from repro.pe.reliability import ReliabilityAgent
from repro.pe.tie import (
    CREDIT_LIMIT,
    CREDIT_WINDOW,
    MAX_SPAN,
    TieInterface,
)
from repro.system.config import SystemConfig
from repro.telemetry.hub import TelemetryHub
from repro.telemetry.registry import (
    OverlapNoteCounters,
    TelemetrySampler,
    sampled_overlap_efficiency,
)

#: A program factory takes the rank's context and returns its generator.
ProgramFactory = Callable[[ProgramContext], Generator]

#: The MPMMU always occupies NoC node 0; worker rank r sits at node r + 1.
MPMMU_NODE = 0


class MedeaSystem:
    """One MEDEA instance: NoC + MPMMU + worker tiles, ready to run programs."""

    def __init__(self, config: SystemConfig) -> None:
        config.validate()
        self.config = config
        self.topology = build_topology(
            config.topology_kind,
            config.n_nodes,
            grid=config.grid,
            chiplets=config.chiplets,
            chiplet_grid=config.chiplet_grid,
            chiplet_link_latency=config.chiplet_link_latency,
            chiplet_link_width=config.chiplet_link_width,
        )
        self.sim = Simulator()
        telemetry_cfg = config.telemetry
        if telemetry_cfg is not None and telemetry_cfg.events:
            # Telemetry events ride the system tracer, ring-buffered so
            # long runs keep the *tail* (the interesting part of a hang).
            self.tracer = Tracer(enabled=True, limit=telemetry_cfg.event_limit)
        else:
            self.tracer = Tracer(enabled=config.trace)
        #: Fault-injection runtime (None when config.faults is None — the
        #: fault-free build carries no hook anywhere on the hot path).
        self.injector = (
            FaultInjector(config.faults, self.topology)
            if config.faults is not None else None
        )
        self.fabric = NocFabric(
            self.topology,
            eject_capacity=config.eject_width,
            strict_encoding=config.strict_encoding,
            tracer=self.tracer,
            faults=self.injector,
        )
        self.sim.register(self.fabric)

        self.map = MemoryMap(
            config.n_workers,
            shared_size=config.shared_size,
            private_size=config.private_size,
        )
        self.ddr = DdrModel(
            size_bytes=self.map.total_size,
            read_latency=config.ddr_read_latency,
            words_per_cycle=config.ddr_words_per_cycle,
            posted_write_cost=config.ddr_posted_write_cost,
        )
        self.mpmmu = MpmmuNode(
            self.fabric.ports_of(MPMMU_NODE),
            cache=L1Cache(
                config.mpmmu_cache_kb * 1024,
                line_bytes=config.cache_line_bytes,
                assoc=config.cache_assoc,
                policy=WritePolicy.WRITE_BACK,
                name="mpmmu.l1",
            ),
            ddr=self.ddr,
            n_workers=config.n_workers,
            service_overhead=config.mpmmu_service_overhead,
            cache_hit_cycles=config.mpmmu_cache_hit_cycles,
            out_fifo_depth=config.mpmmu_out_fifo_depth,
            data_fifo_depth=config.mpmmu_data_fifo_depth,
        )
        self.sim.register(self.mpmmu)

        self.rank_to_node = {
            rank: rank + 1 for rank in range(config.n_workers)
        }
        #: Rank groups per compute chiplet (None on flat topologies).
        #: Node-order numbering means chiplet 0 fills first; only ranks
        #: that exist appear (trailing switch-only tiles are dropped).
        self.rank_groups: list[list[int]] | None = None
        groups = self.topology.chiplet_groups()
        if groups is not None:
            node_to_rank = {
                node: rank for rank, node in self.rank_to_node.items()
            }
            self.rank_groups = [
                ranks for ranks in (
                    [node_to_rank[m] for m in members if m in node_to_rank]
                    for members in groups
                ) if ranks
            ]
        self.notes: list[tuple[int, int, str]] = []
        self.nodes: list[ProcessorNode] = []
        for rank in range(config.n_workers):
            self.nodes.append(self._build_worker(rank))
        self.contexts: list[ProgramContext] = []

        #: Telemetry hub (None when config.telemetry is None — the
        #: default build carries only is-it-None checks, like faults).
        self.telemetry = None
        if telemetry_cfg is not None:
            self.telemetry = self._build_telemetry(telemetry_cfg)

        # The watchdog registers last so its checks see each cycle's
        # final state.  Default on whenever faults are injected: a failed
        # recovery must report, not spin silently to max_cycles.
        budget = config.watchdog_cycles or (
            200_000 if self.injector is not None else 0
        )
        self.watchdog = None
        if budget > 0:
            self.watchdog = self.sim.register(
                ProgressWatchdog(
                    budget,
                    snapshot=self._progress_snapshot,
                    busy=self._progress_busy,
                    report=self._progress_report,
                )
            )
            # Components register asleep; arm the periodic check so the
            # kernel always holds a pending wakeup for it.
            self.watchdog.wake()

    # -- construction -----------------------------------------------------------

    def _credit_plan(self, node_id: int) -> dict[int, int]:
        """Topology-aware per-peer initial credit limits for one tile.

        On uniform (legacy) topologies every hop RTT fits the hardware
        default window, so the plan is empty and every code path is
        bit-identical to the fixed-constant scheme.  With slow
        inter-chiplet links, a peer's window wants to cover its credit
        round trip (``2 x path latency``) plus one credit window of
        slack; the 4-bit wire sequence format caps the span at
        CREDIT_LIMIT, so the widened budget only takes effect in
        reliable mode, whose 16-bit sequence numbers track spans up to
        the double-buffer bound (MAX_SPAN - CREDIT_WINDOW keeps the
        crediting granularity inside it).
        """
        topology = self.topology
        if topology.uniform_links:
            return {}
        reliable = self.injector is not None
        cap = (MAX_SPAN - CREDIT_WINDOW) if reliable else CREDIT_LIMIT
        plan = {}
        for peer in range(topology.n_nodes):
            if peer == node_id:
                continue
            rtt = 2 * topology.path_latency(node_id, peer)
            limit = max(CREDIT_LIMIT, min(cap, rtt + CREDIT_WINDOW))
            if limit != CREDIT_LIMIT:
                plan[peer] = limit
        return plan

    def _build_worker(self, rank: int) -> ProcessorNode:
        config = self.config
        node_id = self.rank_to_node[rank]
        ports = self.fabric.ports_of(node_id)
        lut = AddressLut(MPMMU_NODE)
        tie = TieInterface(node_id, credit_plan=self._credit_plan(node_id))
        if self.injector is not None:
            tie.reliable = True
            tie.faults = self.injector
            # The retransmit SRAM must hold every in-flight slot, so a
            # widened chiplet credit plan sizes it up along with the window.
            tie.retx_slots = max(
                config.faults.retx_slots,
                max(tie.credit_plan.values(), default=0),
            )
        dma = None
        if config.dma_tx_queue_depth > 0:
            dma = DmaTxEngine(
                tie,
                n_nodes=self.topology.n_nodes,
                depth=config.dma_tx_queue_depth,
                multicast=config.noc_multicast,
            )
        reliability = None
        if self.injector is not None:
            reliability = ReliabilityAgent(tie, self.injector, dma=dma)
        node = ProcessorNode(
            rank=rank,
            ports=ports,
            cache=L1Cache(
                config.cache_size_bytes,
                line_bytes=config.cache_line_bytes,
                assoc=config.cache_assoc,
                policy=config.policy,
                name=f"l1[{rank}]",
            ),
            write_buffer=WriteBuffer(config.write_buffer_depth, name=f"wbuf[{rank}]"),
            bridge=Pif2NocBridge(node_id, lut, name=f"pif2noc[{rank}]"),
            arbiter=NocAccessArbiter(
                ports.inject,
                mode=config.arbiter_mode,
                fifo_depth=config.arbiter_fifo_depth,
                high_priority=config.arbiter_high_priority,
                name=f"arb[{rank}]",
            ),
            tie=tie,
            scratchpad=Scratchpad(config.local_mem_bytes, name=f"lmem[{rank}]"),
            memory_map=self.map,
            cost=config.fp,
            lock_retry_backoff=config.lock_retry_backoff,
            recv_overhead=config.recv_overhead,
            notes=self.notes,
            dma=dma,
            reliability=reliability,
        )
        self.sim.register(node)
        return node

    def _build_telemetry(self, telemetry_cfg) -> TelemetryHub:
        """Assemble the metric registry and arm the periodic sampler.

        Registration order matters twice: the tile's *core* source
        carries the ``flush_op_stats`` hook (which also folds the TIE and
        DMA batched counters, so the later tile sources read exact
        values), and the sampler component registers after every worker
        so its snapshots see each cycle's final state.
        """
        hub = TelemetryHub(telemetry_cfg, self.sim, self.tracer)
        registry = hub.registry
        if telemetry_cfg.spatial:
            self.fabric.enable_spatial()
            registry.add_source("noc", self.fabric.spatial_values)
        registry.add_counters("noc", self.fabric.stats)
        registry.add_latency("noc.latency", self.fabric.latency)
        registry.add_counters(
            "mpmmu", self.mpmmu.stats, flush=self.mpmmu.flush_stats
        )
        for node in self.nodes:
            node_id = self.rank_to_node[node.rank]
            registry.add_counters(
                f"tile{node_id}.core", node.stats,
                flush=node.flush_op_stats,
            )
            registry.add_counters(f"tile{node_id}.cache", node.cache.stats)
            registry.add_counters(f"tile{node_id}.tie", node.tie.stats)
            if node.dma is not None:
                registry.add_counters(f"tile{node_id}.dma", node.dma.stats)
                node.dma.telemetry = hub
        if self.injector is not None:
            registry.add_counters("faults", self.injector.counts)
        registry.add_source(
            "empi.overlap",
            OverlapNoteCounters(self.notes, self.config.n_workers).values,
        )
        self.sampler = self.sim.register(TelemetrySampler(registry))
        self.sampler.wake()
        return hub

    # -- watchdog plumbing -------------------------------------------------------

    def _progress_snapshot(self) -> tuple:
        """Flit-motion fingerprint: unchanged between checks = no traffic."""
        stats = self.fabric.stats
        return (
            stats.get("flits_injected"),
            stats.get("flits_ejected"),
            self.fabric.flits_in_network,
        )

    def _progress_busy(self) -> bool:
        """True while any core is RUNNING or the MPMMU is mid-service."""
        from repro.pe.processor import CoreState
        if not self.mpmmu.idle:
            return True
        return any(
            node.state is CoreState.RUNNING for node in self.nodes
        )

    def _ledger_summary(self) -> str:
        """Top cycle-ledger stall class per unfinished rank, one line.

        Rides the always-on state counters, so it is available in every
        hang/timeout report even with telemetry off.
        """
        from repro.pe.processor import CoreState
        cycle = self.sim.cycle
        parts = []
        for node in self.nodes:
            if node.state is CoreState.DONE:
                continue
            ledger = node.cycle_ledger(cycle)
            stall, cycles = max(
                (item for item in ledger.items()
                 if item[0] not in ("compute", "idle")),
                key=lambda item: item[1],
            )
            share = (100 * cycles) // cycle if cycle else 0
            parts.append(f"rank {node.rank} {stall} {cycles}cyc ({share}%)")
        if not parts:
            return "cycle ledger: all ranks done"
        return "cycle ledger: " + ", ".join(parts)

    def _progress_report(self) -> str:
        lines = [f"  {self._ledger_summary()}"]
        for comp in self.sim.components:
            lines.append(f"  {comp.name}: {comp.describe_state()}")
        for ctx in self.contexts:
            empi = getattr(ctx, "empi", None)
            if empi is not None:
                labels = empi.engine.active_labels
                if labels:
                    lines.append(
                        f"  empi[rank {ctx.rank}]: pending {', '.join(labels)}"
                    )
        if self.injector is not None:
            lines.append(f"  {self.injector.describe()}")
        if self.telemetry is not None:
            lines.append(f"  {self.telemetry.describe()}")
        return "\n".join(lines)

    def context_for(self, rank: int) -> ProgramContext:
        """Build the architectural context handed to rank's program."""
        config = self.config
        ctx = ProgramContext(
            rank=rank,
            n_workers=config.n_workers,
            node_id=self.rank_to_node[rank],
            memory_map=self.map,
            cost=config.fp,
            rank_to_node=self.rank_to_node,
            line_bytes=config.cache_line_bytes,
            local_mem_bytes=config.local_mem_bytes,
            dma_queue_depth=config.dma_tx_queue_depth,
            dma_reduce_assist=config.dma_reduce_assist,
            empi_timeout_cycles=config.empi_timeout_cycles,
            empi_timeout_retries=config.empi_timeout_retries,
        )
        ctx.rank_groups = self.rank_groups
        # Timeout/watchdog reports carry every diagnostic describer we
        # have: fault state, the last telemetry snapshot, and the cycle
        # ledger's top stall class per stuck rank.
        describers = [
            source.describe
            for source in (self.injector, self.telemetry)
            if source is not None
        ]
        describers.append(self._ledger_summary)
        if len(describers) == 1:
            ctx.fault_context = describers[0]
        else:
            ctx.fault_context = lambda: "\n".join(
                describe() for describe in describers
            )
        telemetry_cfg = config.telemetry
        ctx.attribution = (
            telemetry_cfg is not None and telemetry_cfg.attribution
        )
        ctx.empi = Empi(ctx, barrier_algorithm=config.empi_barrier)
        return ctx

    # -- program loading & running ---------------------------------------------------

    def load_programs(self, factories: list[ProgramFactory]) -> None:
        """Install one program per rank (list length must equal n_workers)."""
        if len(factories) != self.config.n_workers:
            raise ConfigError(
                f"need {self.config.n_workers} programs, got {len(factories)}"
            )
        self.contexts = []
        for rank, factory in enumerate(factories):
            ctx = self.context_for(rank)
            self.contexts.append(ctx)
            self.nodes[rank].load_program(factory(ctx))

    def finished(self) -> bool:
        """True when every program ended and all traffic has drained."""
        return (
            all(node.drained for node in self.nodes)
            and self.mpmmu.idle
            and self.fabric.flits_in_network == 0
        )

    def run(self, max_cycles: int | None = None) -> int:
        """Run to completion; returns elapsed cycles.

        Raises :class:`~repro.errors.DeadlockError` (with per-component
        diagnostics) if the system wedges, and
        :class:`~repro.errors.SimulationError` if ``max_cycles`` elapse
        first.
        """
        budget = max_cycles if max_cycles is not None else self.config.max_cycles
        start = self.sim.cycle
        # A finished system is necessarily quiescent (every component has
        # slept), so the drained/idle scan only needs to run on cycles
        # where the kernel's active set is empty.
        self.sim.run(max_cycles=budget, until=self.finished, until_idle=True)
        return self.sim.cycle - start

    @property
    def cycle(self) -> int:
        return self.sim.cycle

    # -- post-run inspection -------------------------------------------------------------

    def debug_read_word(self, addr: int) -> int:
        """Architectural value of a word, wherever it currently lives.

        Private segments: the owner's cache wins over DDR (it may hold
        dirty lines).  Shared segment: any worker holding the line *dirty*
        wins (at most one may, if the software protocol was followed);
        otherwise DDR is authoritative.
        """
        segment = self.map.segment_of(addr)
        if segment.owner >= 0:
            line = self.nodes[segment.owner].cache.probe(addr)
            if line is not None:
                return line.words[(addr % self.config.cache_line_bytes) >> 2]
            return self.ddr.store.read_word(addr)
        dirty_value: int | None = None
        for node in self.nodes:
            line = node.cache.probe(addr)
            if line is not None and line.dirty:
                if dirty_value is not None:
                    raise MemoryAccessError(
                        f"two dirty copies of shared word {addr:#x}: "
                        f"software coherence protocol was violated"
                    )
                dirty_value = line.words[(addr % self.config.cache_line_bytes) >> 2]
        if dirty_value is not None:
            return dirty_value
        return self.ddr.store.read_word(addr)

    def debug_read_double(self, addr: int) -> float:
        return words_to_float(
            self.debug_read_word(addr), self.debug_read_word(addr + 4)
        )

    def collect_stats(self) -> dict:
        """Aggregate statistics for reports and tests."""
        for node in self.nodes:
            node.flush_op_stats()
        self.mpmmu.flush_stats()
        return {
            "cycles": self.sim.cycle,
            "noc": {
                **self.fabric.stats.as_dict(),
                "latency": self.fabric.latency.as_dict(),
            },
            "mpmmu": self.mpmmu.stats.as_dict(),
            "workers": [
                {
                    "rank": node.rank,
                    "core": node.stats.as_dict(),
                    "cache": node.cache.stats.as_dict(),
                    "bridge": node.bridge.stats.as_dict(),
                    "bridge_latency": node.bridge.latency.as_dict(),
                    "tie": node.tie.stats.as_dict(),
                    "dma": (
                        node.dma.stats.as_dict()
                        if node.dma is not None else {}
                    ),
                }
                for node in self.nodes
            ],
            **(
                {"faults": self.injector.as_dict()}
                if self.injector is not None else {}
            ),
            **(
                {"telemetry": self._telemetry_summary()}
                if self.telemetry is not None else {}
            ),
        }

    def _telemetry_summary(self) -> dict:
        """Close the timeline at the current cycle and summarize it."""
        from repro.telemetry.attribution import attribution_summary
        self.telemetry.finalize(self.sim.cycle)
        registry = self.telemetry.registry
        return {
            "attribution": attribution_summary(self),
            "sample_interval": registry.sample_interval,
            "samples": len(registry.samples),
            "sampled_overlap_efficiency": sampled_overlap_efficiency(
                registry
            ),
            "trace_events": len(self.tracer),
            "trace_dropped": self.tracer.dropped,
            "noc_spatial": self.fabric.spatial_dict(),
        }
