"""System assembly: configuration, builder and the MedeaSystem facade.

This is the package users start from::

    from repro.system import MedeaSystem, SystemConfig

    system = MedeaSystem(SystemConfig(n_workers=4, cache_size_kb=16))
    system.load_programs([my_program] * 4)
    system.run()

The configuration axes mirror the paper's design-space exploration: number
of worker cores (the MPMMU adds one more node), L1 cache size and write
policy, plus NoC/arbiter/MPMMU/DDR parameters for finer studies.
"""

from repro.system.config import SystemConfig
from repro.system.medea import MedeaSystem
from repro.system.presets import paper_sweep_configs, reference_config

__all__ = [
    "MedeaSystem",
    "SystemConfig",
    "paper_sweep_configs",
    "reference_config",
]
