"""Non-blocking communication: request handles and the progress engine.

MEDEA's hybrid model only pays off when communication hides behind
computation.  The blocking eMPI layer serializes the two: a ``send``
parks the core in WAIT_TX while the TIE streams, a ``recv`` parks it in
WAIT_MSG until the words arrive.  This module adds the MPI-style split:
an operation is *posted* (returning a :class:`Request`), the hardware
makes progress on its own (the TIE streams a posted TX descriptor one
flit per cycle; arriving flits land in the per-source receive streams),
and the program *completes* the operation later with ``wait``/``test``.

Because MEDEA programs are cooperative generators, the runtime part of
an operation is a **communication fragment**: a generator that yields
ordinary machine ops (status polls, descriptor writes, uncached loads)
and the :data:`RESCHEDULE` sentinel whenever it cannot progress until
some external event.  The :class:`ProgressEngine` owns all live
fragments and interleaves them — with each other, and with user compute
via :meth:`ProgressEngine.overlap` — giving each fragment one slice per
progress round, in posting order, which keeps every run bit-for-bit
deterministic.

Matching semantics (both backends):

* operations on the same peer complete in the order their fragments
  first run — posting order for plain ``isend``/``irecv``; programs must
  post matching operations in the same relative order on both ends
  (MPI's ordered-matching rule);
* at most one non-blocking *collective* is in flight per engine at a
  time (later ones queue behind it), and every rank must post the same
  collectives in the same order — MPI-3's rule for non-blocking
  collectives;
* blocking data-path operations must not be issued while any request is
  outstanding (the engine owns the TIE TX port and the receive-stream
  fronts); barriers ride the request-token segment and stay safe.

Overlap instrumentation rides the zero-cycle ``note`` channel: the
engine brackets every request's in-flight window with ``ireq+``/``ireq-``
notes and every :meth:`overlap` region with ``ov+``/``ov-`` notes, and
:func:`overlap_stats` reduces a run's notes to per-rank *overlap
efficiency* — the fraction of in-flight communication cycles during
which the core was simultaneously computing.
"""

from __future__ import annotations

import typing
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import EmpiTimeoutError, ProgramError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pe.program import Program


class _Reschedule:
    """Singleton sentinel a fragment yields when it cannot progress."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "RESCHEDULE"


#: Yield this from a communication fragment to hand the slice back to the
#: progress engine (zero machine cycles; the fragment resumes next round).
RESCHEDULE = _Reschedule()

#: Note labels bracketing request in-flight windows and overlap regions.
#: A note may carry a payload after the marker (``"ireq+ isend->3"``):
#: the marker alone drives the overlap accounting, the payload names the
#: span in trace exports.
NOTE_REQUEST_POST = "ireq+"
NOTE_REQUEST_DONE = "ireq-"
NOTE_OVERLAP_ENTER = "ov+"
NOTE_OVERLAP_EXIT = "ov-"
#: Collective phase brackets (emitted by the collective facades).
NOTE_PHASE_ENTER = "coll+"
NOTE_PHASE_EXIT = "coll-"
#: Critical-path instrumentation (attribution only, off by default):
#: ``cp+ <op#k>`` / ``cp- <op#k>`` bracket one rank's participation in
#: collective occurrence ``op#k``; ``cph <op#k> snd|rcv <peer>`` marks a
#: completed hop inside it.  All zero-cycle notes, so arming them is
#: timing-neutral by construction.
NOTE_CP_ENTER = "cp+"
NOTE_CP_EXIT = "cp-"
NOTE_CP_HOP = "cph"


def note_key(label: str) -> str:
    """The marker part of a note label (everything before the payload)."""
    index = label.find(" ")
    return label if index < 0 else label[:index]


class Request:
    """Handle for one posted non-blocking operation."""

    __slots__ = ("label", "complete", "result", "_frag")

    def __init__(self, frag: "Program", label: str) -> None:
        self.label = label
        self.complete = False
        self.result: object = None
        self._frag = frag

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "complete" if self.complete else "pending"
        return f"Request({self.label}, {state})"


class TurnQueue:
    """Deterministic FIFO turn-taking for one serialized resource.

    Fragments contending for a resource (the TIE TX port, the front of a
    per-source receive stream, the collective arena) enter the queue and
    only act while they hold the head, so concurrent requests can never
    steal each other's hardware.
    """

    __slots__ = ("_queue",)

    def __init__(self) -> None:
        self._queue: deque[object] = deque()

    def enter(self, token: object) -> None:
        self._queue.append(token)

    def holds(self, token: object) -> bool:
        return bool(self._queue) and self._queue[0] is token

    def leave(self, token: object) -> None:
        if not self.holds(token):
            raise ProgramError("turn queue released out of order")
        self._queue.popleft()


class TimeoutGuard:
    """Round-counting timeout with exponential backoff for eMPI waits.

    Every progress round (and every spin iteration of the hw-collective
    descriptor loops) issues at least one machine op, so one tick is a
    cycle or more of simulated time — counting ticks against a cycle
    budget makes the budget a conservative *minimum* horizon without
    touching the clock (timing-neutral: a guard that never fires changes
    nothing).  When a horizon expires the guard backs off — the next
    horizon grows by ``budget << attempt`` — and after ``retries``
    expirations it raises :class:`~repro.errors.EmpiTimeoutError` naming
    the rank, the stuck operation, every outstanding request and (when a
    fault plan is active) the injector's fault context.
    """

    __slots__ = ("rank", "budget", "retries", "what", "pending",
                 "fault_context", "rounds", "attempt", "horizon")

    def __init__(
        self,
        rank: int,
        budget: int,
        retries: int,
        what: str,
        pending: Callable[[], list[str]] | None = None,
        fault_context: Callable[[], str] | None = None,
    ) -> None:
        self.rank = rank
        self.budget = budget
        self.retries = retries
        self.what = what
        self.pending = pending
        self.fault_context = fault_context
        self.rounds = 0
        self.attempt = 0
        self.horizon = budget

    def tick(self) -> None:
        """Count one round; escalate (backoff, then raise) when due."""
        self.rounds += 1
        if self.rounds < self.horizon:
            return
        self.attempt += 1
        if self.attempt > self.retries:
            raise EmpiTimeoutError(self._message())
        self.horizon += self.budget << self.attempt

    def _message(self) -> str:
        parts = [
            f"rank {self.rank}: {self.what} timed out after "
            f"{self.rounds} progress rounds "
            f"({self.retries} exponential-backoff retries on a "
            f"{self.budget}-round budget)"
        ]
        labels = self.pending() if self.pending is not None else []
        if labels:
            parts.append(f"outstanding requests: {', '.join(labels)}")
        if self.fault_context is not None:
            parts.append(self.fault_context())
        return "; ".join(parts)


class ProgressEngine:
    """Cooperative scheduler for communication fragments (one per rank).

    Backend-agnostic: the eMPI runtime posts fragments built from TIE
    descriptor/poll ops, the shared-memory backend posts fragments built
    from uncached MPMMU accesses.  The engine only ever sees op tuples
    and :data:`RESCHEDULE`.
    """

    def __init__(self) -> None:
        self._active: list[Request] = []
        self._turns: dict[object, TurnQueue] = {}
        # Timeout policy (0 budget = wait forever, the fault-free
        # default); set by configure_timeout.
        self.rank = -1
        self.timeout_rounds = 0
        self.timeout_retries = 3
        self.fault_context: Callable[[], str] | None = None

    def configure_timeout(
        self,
        rank: int,
        budget: int,
        retries: int,
        fault_context: Callable[[], str] | None = None,
    ) -> None:
        """Arm wait/progress timeouts (budget 0 keeps them off)."""
        self.rank = rank
        self.timeout_rounds = budget
        self.timeout_retries = retries
        self.fault_context = fault_context

    def guard(self, what: str) -> TimeoutGuard | None:
        """A fresh :class:`TimeoutGuard`, or None with timeouts off."""
        if self.timeout_rounds <= 0:
            return None
        return TimeoutGuard(
            self.rank, self.timeout_rounds, self.timeout_retries, what,
            pending=lambda: self.active_labels,
            fault_context=self.fault_context,
        )

    # -- resource turn-taking -------------------------------------------------

    def turn(self, key: object) -> TurnQueue:
        """The (created-on-demand) turn queue for one resource key."""
        queue = self._turns.get(key)
        if queue is None:
            queue = TurnQueue()
            self._turns[key] = queue
        return queue

    # -- posting and progressing ----------------------------------------------

    @property
    def idle(self) -> bool:
        """True when no posted request is still in flight."""
        return not self._active

    @property
    def n_active(self) -> int:
        return len(self._active)

    @property
    def active_labels(self) -> list[str]:
        """Labels of the outstanding requests, posting order (diagnostics)."""
        return [request.label for request in self._active]

    def post(self, frag: "Program", label: str = "request") -> "Program":
        """Post a fragment; returns its :class:`Request` after one slice.

        The immediate first slice is what makes posting *eager*: an
        ``isend`` with an idle TX port starts the hardware right away and
        an ``irecv`` whose data already arrived completes on the spot.
        """
        request = Request(frag, label)
        self._active.append(request)
        yield ("note", f"{NOTE_REQUEST_POST} {label}")
        yield from self._slice(request)
        return request

    def _slice(self, request: Request) -> "Program":
        """Run one fragment until it reschedules or completes."""
        frag = request._frag
        send_value: object = None
        while True:
            try:
                item = frag.send(send_value)
            except StopIteration as stop:
                request.result = stop.value
                request.complete = True
                self._active.remove(request)
                yield ("note", f"{NOTE_REQUEST_DONE} {request.label}")
                return
            if item is RESCHEDULE:
                return
            send_value = yield item

    def progress(self) -> "Program":
        """One progress round: a slice for every live request, post order."""
        for request in list(self._active):
            if not request.complete:
                yield from self._slice(request)

    # -- completion -----------------------------------------------------------

    def wait(self, request: Request) -> "Program":
        """Progress until ``request`` completes; returns its result.

        Progressing always issues at least one machine op per round for
        whichever fragment holds each resource head (a status poll costs
        one cycle), so simulated time advances and the spin terminates
        when the awaited event arrives.  With a timeout configured
        (``configure_timeout``) a wait that never completes raises
        :class:`~repro.errors.EmpiTimeoutError` instead of spinning
        forever.
        """
        guard = self.guard(f"wait on {request.label}")
        while not request.complete:
            yield from self.progress()
            if guard is not None:
                guard.tick()
        return request.result

    def waitall(self, requests: list[Request]) -> "Program":
        results = []
        for request in requests:
            result = yield from self.wait(request)
            results.append(result)
        return results

    def waitany(self, requests: list[Request]) -> "Program":
        """MPI_Waitany: progress until at least one of ``requests`` is
        complete; returns ``(index, result)`` of the first complete one
        in list order.  An already-complete request returns immediately
        without a progress round (matching ``wait``'s semantics)."""
        if not requests:
            raise ProgramError("waitany needs at least one request")
        guard = self.guard(
            f"waitany on {', '.join(r.label for r in requests)}"
        )
        while True:
            for index, request in enumerate(requests):
                if request.complete:
                    return index, request.result
            yield from self.progress()
            if guard is not None:
                guard.tick()

    def waitsome(self, requests: list[Request]) -> "Program":
        """MPI_Waitsome: progress until at least one of ``requests`` is
        complete; returns ``[(index, result), ...]`` for every currently
        complete request, in list order.  An empty list returns ``[]``
        immediately (mirroring ``waitall([])``)."""
        if not requests:
            return []
        guard = self.guard(
            f"waitsome on {', '.join(r.label for r in requests)}"
        )
        while True:
            completed = [
                (index, request.result)
                for index, request in enumerate(requests)
                if request.complete
            ]
            if completed:
                return completed
            yield from self.progress()
            if guard is not None:
                guard.tick()

    def test(self, request: Request) -> "Program":
        """One progress round, then report whether ``request`` finished."""
        if not request.complete:
            yield from self.progress()
        return request.complete

    # -- compute-communication overlap ----------------------------------------

    def overlap(self, frag: "Program", poll_interval: int = 2) -> "Program":
        """Run a compute fragment, progressing requests as it goes.

        ``frag`` is an ordinary program generator (ops only, no
        RESCHEDULE).  After every ``poll_interval`` forwarded ops the
        engine takes one progress round, so posted communication
        advances underneath the computation; the region is bracketed
        with ``ov+``/``ov-`` notes for :func:`overlap_stats`.  Returns
        the fragment's return value; outstanding requests are *not*
        waited for — complete them with ``wait``/``waitall``.
        """
        if poll_interval < 1:
            raise ProgramError("poll_interval must be >= 1")
        yield ("note", NOTE_OVERLAP_ENTER)
        ops_since_poll = 0
        send_value: object = None
        while True:
            try:
                item = frag.send(send_value)
            except StopIteration as stop:
                result = stop.value
                break
            send_value = yield item
            ops_since_poll += 1
            if ops_since_poll >= poll_interval and self._active:
                ops_since_poll = 0
                yield from self.progress()
        yield ("note", NOTE_OVERLAP_EXIT)
        return result


# ---------------------------------------------------------------------------
# Overlap accounting (consumes the notes a run recorded)
# ---------------------------------------------------------------------------


@dataclass
class OverlapStats:
    """Per-rank overlap accounting distilled from a run's notes."""

    #: Cycles with at least one posted request in flight.
    inflight_cycles: int = 0
    #: Cycles inside overlap() regions (compute offered for hiding).
    overlap_region_cycles: int = 0
    #: Cycles where both held at once — communication actually hidden.
    coexist_cycles: int = 0

    @property
    def efficiency(self) -> float:
        """Fraction of in-flight communication hidden behind compute."""
        if self.inflight_cycles == 0:
            return 0.0
        return self.coexist_cycles / self.inflight_cycles


#: Signed depth change per instrumentation label.
_EVENT_DELTAS = {
    NOTE_REQUEST_POST: (1, 0),
    NOTE_REQUEST_DONE: (-1, 0),
    NOTE_OVERLAP_ENTER: (0, 1),
    NOTE_OVERLAP_EXIT: (0, -1),
}


def overlap_stats(
    notes: list[tuple[int, int, str]], n_workers: int
) -> dict[int, OverlapStats]:
    """Reduce a run's notes to per-rank :class:`OverlapStats`.

    ``notes`` is the ``(cycle, rank, label)`` list a
    :class:`~repro.system.medea.MedeaSystem` records; labels other than
    the four instrumentation markers are ignored.  Notes are emitted in
    cycle order per rank, so a single forward sweep per rank suffices.
    """
    stats = {rank: OverlapStats() for rank in range(n_workers)}
    depth: dict[int, tuple[int, int, int]] = {
        rank: (0, 0, 0) for rank in range(n_workers)
    }  # (inflight depth, overlap depth, last event cycle)
    for cycle, rank, label in notes:
        deltas = _EVENT_DELTAS.get(note_key(label))
        if deltas is None or rank not in stats:
            continue
        inflight, in_overlap, last_cycle = depth[rank]
        elapsed = cycle - last_cycle
        entry = stats[rank]
        if inflight > 0:
            entry.inflight_cycles += elapsed
        if in_overlap > 0:
            entry.overlap_region_cycles += elapsed
        if inflight > 0 and in_overlap > 0:
            entry.coexist_cycles += elapsed
        depth[rank] = (inflight + deltas[0], in_overlap + deltas[1], cycle)
    return stats


def mean_overlap_efficiency(per_rank: dict[int, "OverlapStats"]) -> float:
    """Aggregate efficiency: total coexist over total in-flight cycles."""
    coexist = sum(entry.coexist_cycles for entry in per_rank.values())
    inflight = sum(entry.inflight_cycles for entry in per_rank.values())
    return coexist / inflight if inflight else 0.0
