"""eMPI: the embedded MPI subset of the paper, plus SM-sync baselines.

Section II-E: "we implemented a subset of MPI APIs called embedded-MPI
(eMPI).  With just three basic primitives, MPI_send(), MPI_receive() and
MPI_barrier() ... a direct communication between cores is possible totally
avoiding in some cases the access to the global-memory."

:mod:`repro.empi.runtime` provides those three primitives (plus gather /
broadcast / allreduce conveniences built from them) over the TIE port
operations.  :mod:`repro.empi.smsync` provides the *shared-memory*
synchronization used by the pure-SM baseline: MPMMU lock/unlock sections
and a sense-reversing barrier that spins on an uncached flag — every poll
a full round trip to memory, which is precisely the overhead the hybrid
architecture removes.
"""

from repro.empi.runtime import BarrierAlgorithm, Empi
from repro.empi.smsync import SharedMemoryBarrier, SharedMemoryLock

__all__ = [
    "BarrierAlgorithm",
    "Empi",
    "SharedMemoryBarrier",
    "SharedMemoryLock",
]
